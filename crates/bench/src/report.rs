//! Result emission: CSV files and markdown summaries under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A completed experiment's artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Experiment id, e.g. `"fig9"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Markdown body: measured results and paper-vs-measured notes.
    pub markdown: String,
    /// CSV artifacts: `(file stem, contents)`.
    pub csv: Vec<(String, String)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            markdown: String::new(),
            csv: Vec::new(),
        }
    }

    /// Appends a markdown line.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.markdown.push_str(s.as_ref());
        self.markdown.push('\n');
    }

    /// Attaches a CSV artifact.
    pub fn attach_csv(&mut self, stem: impl Into<String>, contents: String) {
        self.csv.push((stem.into(), contents));
    }

    /// Writes all artifacts into `dir` (created if needed): each CSV as
    /// `<stem>.csv` and the markdown as `<id>.md`. Returns written paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (stem, contents) in &self.csv {
            let path = dir.join(format!("{stem}.csv"));
            fs::write(&path, contents)?;
            written.push(path);
        }
        let md_path = dir.join(format!("{}.md", self.id));
        let mut doc = format!("# {} — {}\n\n", self.id, self.title);
        doc.push_str(&self.markdown);
        fs::write(&md_path, doc)?;
        written.push(md_path);
        Ok(written)
    }
}

/// Builds a CSV string from a header and rows of formatted cells.
///
/// # Examples
///
/// ```
/// use easched_bench::report::csv;
/// let s = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
/// assert_eq!(s, "a,b\n1,2\n");
/// ```
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Builds a markdown table.
///
/// ```
/// use easched_bench::report::md_table;
/// let t = md_table(&["x", "y"], &[vec!["1".into(), "2".into()]]);
/// assert!(t.contains("| x | y |"));
/// assert!(t.contains("| 1 | 2 |"));
/// ```
pub fn md_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Formats a ratio as a percentage string like `"96.2%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// A paper-vs-measured comparison row.
pub fn compare_line(what: &str, paper: &str, measured: &str) -> String {
    format!("- **{what}** — paper: {paper}; measured: {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shapes() {
        let s = csv(
            &["h1", "h2"],
            &[vec!["a".into(), "b".into()], vec!["c".into(), "d".into()]],
        );
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("h1,h2\n"));
    }

    #[test]
    fn md_table_shapes() {
        let t = md_table(&["a"], &[vec!["v".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1], "|---|");
    }

    #[test]
    fn report_roundtrip() {
        let dir = std::env::temp_dir().join(format!("easched_report_{}", std::process::id()));
        let mut r = Report::new("figX", "test");
        r.line("hello");
        r.attach_csv("figX_data", "a,b\n1,2\n".into());
        let written = r.write_to(&dir).unwrap();
        assert_eq!(written.len(), 2);
        let md = fs::read_to_string(dir.join("figX.md")).unwrap();
        assert!(md.contains("hello"));
        let data = fs::read_to_string(dir.join("figX_data.csv")).unwrap();
        assert!(data.contains("1,2"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.962), "96.2%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
