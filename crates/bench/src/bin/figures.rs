//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! figures <experiment>...       # fig1 fig2 fig3 fig4 fig5 fig6 table1
//!                               # fig9 fig10 fig11 fig12 overhead
//!                               # ablation-poly ablation-grid
//!                               # ablation-categories ablation-profile
//!                               # ablation-accum ablation-thresholds
//! figures chaos                 # fault-injection robustness study
//! figures all                   # every paper experiment
//! figures ablations             # every ablation study
//! ```
//!
//! Artifacts are written to `results/` (CSV + per-experiment markdown) and a
//! combined `results/SUMMARY.md`.

use easched_bench::{ablations, chaos, experiments, telemetry, Lab, Report};
use std::path::{Path, PathBuf};

fn run_one(lab: &mut Lab, name: &str) -> Option<Vec<Report>> {
    let report = match name {
        "fig1" => experiments::fig1(lab),
        "fig2" => experiments::fig2(lab),
        "fig3" => experiments::fig3(lab),
        "fig4" => experiments::fig4(lab),
        "fig5" => experiments::fig5(lab),
        "fig6" => experiments::fig6(lab),
        "table1" => experiments::table1(lab),
        "fig9" => experiments::fig9(lab),
        "fig10" => experiments::fig10(lab),
        "fig11" => experiments::fig11(lab),
        "fig12" => experiments::fig12(lab),
        "ed2" => experiments::ed2(lab),
        "tdp" => experiments::tdp(lab),
        "model-error" => experiments::model_error(lab),
        "trace-eas" => experiments::trace_eas(lab),
        "overhead" => experiments::overhead(lab),
        "ablation-poly" => ablations::poly_order(lab),
        "ablation-grid" => ablations::grid_resolution(lab),
        "ablation-categories" => ablations::categories(lab),
        "ablation-profile" => ablations::profile_strategy(lab),
        "ablation-accum" => ablations::accumulation(lab),
        "ablation-thresholds" => ablations::thresholds(lab),
        "ablation-drift" => ablations::drift(lab),
        "chaos" => chaos::chaos(lab),
        "telemetry" => telemetry::telemetry(lab),
        "all" => return Some(experiments::all(lab)),
        "ablations" => return Some(ablations::all(lab)),
        _ => return None,
    };
    Some(vec![report])
}

const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table1",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "ed2",
    "tdp",
    "model-error",
    "trace-eas",
    "overhead",
    "ablation-poly",
    "ablation-grid",
    "ablation-categories",
    "ablation-profile",
    "ablation-accum",
    "ablation-thresholds",
    "ablation-drift",
    "chaos",
    "telemetry",
    "all",
    "ablations",
];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `--out DIR` redirects artifacts (default: results/), so smoke runs
    // can regenerate experiments without clobbering the committed set.
    let mut out_dir = PathBuf::from("results");
    let mut args = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            }
        } else {
            args.push(a);
        }
    }
    if args.is_empty() || args.iter().any(|a| a == "list" || a == "--help") {
        eprintln!("usage: figures [--out DIR] <experiment>... | all | ablations");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    println!("characterizing platforms (one-time step)...");
    let mut lab = Lab::new();
    let results_dir: &Path = &out_dir;
    let mut summary = String::from("# easched — measured results\n\n");
    let mut failed = false;

    for name in &args {
        let started = std::time::Instant::now();
        match run_one(&mut lab, name) {
            Some(reports) => {
                for report in reports {
                    report
                        .write_to(results_dir)
                        .unwrap_or_else(|e| panic!("writing {}: {e}", report.id));
                    println!("\n## {} — {}\n", report.id, report.title);
                    println!("{}", report.markdown);
                    summary.push_str(&format!(
                        "## {} — {}\n\n{}\n",
                        report.id, report.title, report.markdown
                    ));
                }
                println!("[{name} done in {:.1?}]", started.elapsed());
            }
            None => {
                eprintln!("unknown experiment: {name}");
                failed = true;
            }
        }
    }

    std::fs::create_dir_all(results_dir).expect("create results dir");
    std::fs::write(results_dir.join("SUMMARY.md"), summary).expect("write summary");
    println!("\nartifacts written to {}/", results_dir.display());
    if failed {
        std::process::exit(2);
    }
}
