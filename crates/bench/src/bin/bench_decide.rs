//! Emits `BENCH_decide.json`: a machine-readable snapshot of the
//! hot-path costs the paper's §5 overhead claim rests on — one scheduling
//! decision (`ns_per_decide`, nominally a few hundred ns against the
//! paper's 1–2 µs budget), one telemetry record (`ns_per_record`), and
//! one fleet replication apply (`ns_per_apply`, the anti-entropy ingest
//! path — merge cost per envelope, DESIGN.md §15).
//!
//! The Criterion benches in `benches/decision.rs` and
//! `benches/telemetry.rs` remain the instrument for *investigating*
//! these paths; this binary exists because the vendored criterion
//! stand-in has no JSON output, and CI needs a versioned artifact to
//! diff against. The methodology is deliberately simple: median of many
//! fixed-size timed batches, which is robust to scheduling noise on
//! loaded CI machines.
//!
//! ```text
//! bench_decide [--out FILE] [--check BASELINE.json] [--factor F]
//! ```
//!
//! `--check` compares the fresh measurement against a committed
//! baseline and exits nonzero if `ns_per_decide` *or* `ns_per_record`
//! exceeds `F ×` the baseline (default factor 5.0 — wide, because CI
//! machines are noisy; the point is catching accidental O(n)
//! regressions on the hot paths, not 10 % drift). The baseline is the
//! *first* entry of the file's `runs` array — the oldest measurement,
//! so the gate never quietly ratchets. Fields added later
//! (`ns_per_apply`) gate against the first entry that *carries* them;
//! with no such entry the gate is skipped, never tripped.
//!
//! `--out` appends a run entry instead of overwriting: the committed
//! `BENCH_decide.json` accumulates one `{commit, ns_per_decide,
//! ns_per_record}` entry per PR, a real latency trajectory. A v1
//! (single-snapshot) file is migrated in place, its snapshot becoming
//! the first run.

use easched_core::{
    characterize, CharacterizationConfig, DecisionRecord, EasConfig, EasScheduler, InvocationPath,
    Objective, RingSink, TelemetrySink,
};
use easched_fleet::{Envelope, Op, ReplicaTable};
use easched_runtime::Observation;
use easched_sim::{CounterSnapshot, Platform};
use std::hint::black_box;
use std::time::Instant;

/// Bump when fields change meaning; checkers must match on it.
/// v2 replaced the single measurement snapshot with a `runs` trajectory.
const SCHEMA_VERSION: u32 = 2;

const SAMPLES: usize = 31;
const ITERS_PER_SAMPLE: u64 = 20_000;

fn observation() -> Observation {
    Observation {
        elapsed: 0.001,
        cpu_items: 1_000,
        gpu_items: 2_048,
        cpu_time: 0.001,
        gpu_time: 0.001,
        energy_joules: 0.05,
        counters: CounterSnapshot {
            instructions: 1e6,
            loads: 2e5,
            l3_misses: 1e5,
        },
    }
}

/// Median ns/iteration over `SAMPLES` batches of `ITERS_PER_SAMPLE`.
fn median_ns(mut body: impl FnMut()) -> f64 {
    // Warm up caches and branch predictors before the first sample.
    for _ in 0..ITERS_PER_SAMPLE {
        body();
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..ITERS_PER_SAMPLE {
                body();
            }
            start.elapsed().as_secs_f64() * 1.0e9 / ITERS_PER_SAMPLE as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[SAMPLES / 2]
}

fn measure_decide() -> f64 {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &CharacterizationConfig::default());
    let mut eas = EasScheduler::new(model, EasConfig::new(Objective::EnergyDelay));
    let obs = observation();
    median_ns(|| {
        black_box(eas.decide_alpha(black_box(&obs), black_box(500_000)));
    })
}

fn measure_record() -> f64 {
    let sink = RingSink::with_capacity(1 << 15);
    let record = DecisionRecord {
        path: InvocationPath::TableHit,
        alpha: 0.5,
        items: 500_000,
        ..DecisionRecord::default()
    };
    let mut seq = 0u64;
    median_ns(|| {
        let r = DecisionRecord { seq, ..record };
        seq = seq.wrapping_add(1);
        sink.record(black_box(&r));
    })
}

/// Replication-apply throughput: one envelope merged into the replica.
/// The stream is all watermark-fresh puts (every apply advances — the
/// expensive path); the table resets when the pregenerated stream wraps,
/// amortized over thousands of applies.
fn measure_apply() -> f64 {
    const STREAM: usize = 8_192;
    let platforms = ["haswell-desktop", "baytrail-tablet", "skylake-minipc"];
    let mut seqs = [0u64; 3];
    let stream: Vec<Envelope> = (0..STREAM)
        .map(|i| {
            let origin = (i % 3) as u16;
            seqs[i % 3] += 1;
            Envelope {
                origin,
                platform: platforms[i % 3].to_string(),
                generation: 1,
                seq: seqs[i % 3],
                op: Op::Put {
                    kernel: (i % 128) as u64,
                    alpha: 0.5 + (i % 10) as f64 * 0.01,
                    weight: 10.0,
                    seen: i as u64,
                    tainted: false,
                },
            }
        })
        .collect();
    let mut replica = ReplicaTable::new();
    let mut at = 0usize;
    median_ns(|| {
        if at == STREAM {
            replica = ReplicaTable::new();
            at = 0;
        }
        black_box(replica.apply(black_box(&stream[at])));
        at += 1;
    })
}

fn commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn render_entry(commit: &str, ns_per_decide: f64, ns_per_record: f64, ns_per_apply: f64) -> String {
    format!(
        "    {{\n      \"commit\": \"{commit}\",\n      \
         \"ns_per_decide\": {ns_per_decide:.1},\n      \
         \"ns_per_record\": {ns_per_record:.1},\n      \
         \"ns_per_apply\": {ns_per_apply:.1}\n    }}"
    )
}

fn render_document(entries: &[String]) -> String {
    format!(
        "{{\n  \"schema\": \"easched-bench-decide\",\n  \"version\": {SCHEMA_VERSION},\n  \
         \"samples\": {SAMPLES},\n  \"iters_per_sample\": {ITERS_PER_SAMPLE},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

/// Folds a fresh entry into an existing trajectory file: v2 appends to
/// the `runs` array, v1 is migrated (its snapshot becomes run zero).
fn merged_document(existing: &str, entry: String) -> Result<String, String> {
    let version = extract_number(existing, "version").unwrap_or(0.0) as u32;
    match version {
        1 => {
            let commit =
                extract_string(existing, "commit").unwrap_or_else(|| "unknown".to_string());
            let decide =
                extract_number(existing, "ns_per_decide").ok_or("v1 file lacks ns_per_decide")?;
            let record =
                extract_number(existing, "ns_per_record").ok_or("v1 file lacks ns_per_record")?;
            // Migrated v1 entries never measured the apply path; render
            // them without the field so the gate skips it honestly.
            let migrated = format!(
                "    {{\n      \"commit\": \"{commit}\",\n      \
                 \"ns_per_decide\": {decide:.1},\n      \
                 \"ns_per_record\": {record:.1}\n    }}"
            );
            Ok(render_document(&[migrated, entry]))
        }
        2 => {
            let close = existing
                .rfind("\n  ]")
                .ok_or("v2 file lacks a runs array")?;
            Ok(format!(
                "{},\n{entry}{}",
                &existing[..close],
                &existing[close..]
            ))
        }
        other => Err(format!("unknown schema version {other}")),
    }
}

/// Pulls the first occurrence of a numeric field out of our own schema
/// (no JSON library in the tree; the format is fully under our
/// control). In a v2 file the first occurrence sits in the first run —
/// the baseline.
fn extract_number(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let rest = &json[json.find(&key)? + key.len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

/// First occurrence of a string field.
fn extract_string(json: &str, field: &str) -> Option<String> {
    let key = format!("\"{field}\":");
    let rest = &json[json.find(&key)? + key.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(rest[..rest.find('"')?].to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut factor = 5.0f64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = it.next().cloned(),
            "--check" => check = it.next().cloned(),
            "--factor" => {
                factor = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--factor requires a number");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other:?}");
                eprintln!("usage: bench_decide [--out FILE] [--check BASELINE.json] [--factor F]");
                std::process::exit(2);
            }
        }
    }

    let ns_per_decide = measure_decide();
    let ns_per_record = measure_record();
    let ns_per_apply = measure_apply();
    let entry = render_entry(&commit_hash(), ns_per_decide, ns_per_record, ns_per_apply);
    match &out {
        Some(path) => {
            let document = match std::fs::read_to_string(path) {
                Ok(existing) => merged_document(&existing, entry).unwrap_or_else(|e| {
                    eprintln!("cannot append to {path}: {e}");
                    std::process::exit(2);
                }),
                Err(_) => render_document(&[entry]),
            };
            std::fs::write(path, &document).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            println!(
                "decide {ns_per_decide:.1} ns, record {ns_per_record:.1} ns, \
                 apply {ns_per_apply:.1} ns -> {path}"
            );
        }
        None => print!("{}", render_document(&[entry])),
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let version = extract_number(&baseline, "version").unwrap_or(0.0) as u32;
        if version != 1 && version != SCHEMA_VERSION {
            eprintln!(
                "baseline {baseline_path} has schema version {version}, this binary speaks {SCHEMA_VERSION}"
            );
            std::process::exit(2);
        }
        let mut regressed = false;
        for (name, fresh, required) in [
            ("ns_per_decide", ns_per_decide, true),
            ("ns_per_record", ns_per_record, true),
            // Added after the original baselines; gate against the first
            // entry that carries it, or skip if none does yet.
            ("ns_per_apply", ns_per_apply, false),
        ] {
            let base = match (extract_number(&baseline, name), required) {
                (Some(base), _) => base,
                (None, true) => {
                    eprintln!("baseline {baseline_path} lacks {name}");
                    std::process::exit(2);
                }
                (None, false) => {
                    println!("{name}: no baseline entry carries it yet; gate skipped");
                    continue;
                }
            };
            if fresh > base * factor {
                eprintln!("{name} regressed: {fresh:.1} ns > {factor}x baseline {base:.1} ns");
                regressed = true;
            } else {
                println!("{name} ok: {fresh:.1} ns <= {factor}x baseline {base:.1} ns");
            }
        }
        if regressed {
            std::process::exit(1);
        }
    }
}
