//! Chaos study: EDP efficiency under injected observation faults
//! (DESIGN.md §9).
//!
//! Each fault plan corrupts what the EAS scheduler *observes* during the
//! desktop suite — never what executes — and we score the scheduled runs
//! against the same scheduler under a fault-free plan. A robust pipeline
//! keeps every benchmark functionally correct and loses little EDP even
//! while rejecting faulty rounds, quarantining the GPU, or re-profiling
//! tainted table entries.
//!
//! Regenerate with `figures chaos`; the seed for the random plans comes
//! from `EASCHED_CHAOS_SEED` (default 42) so CI can sweep a seed matrix.

use crate::report::{csv, md_table, pct, Report};
use crate::Lab;
use easched_core::{EasConfig, EasScheduler, Objective};
use easched_kernels::suite;
use easched_num::stats::mean;
use easched_runtime::chaos::{run_workload_chaos, ChaosInjector, Fault, FaultPlan};
use easched_sim::Machine;

/// Seed for the random fault plans: `EASCHED_CHAOS_SEED` or 42.
fn chaos_seed() -> u64 {
    std::env::var("EASCHED_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The fault plans the study sweeps: a clean baseline, each fault kind
/// injected randomly on 30% of observation steps, a mixed storm, and a
/// sustained GPU outage across the first profiling rounds.
fn plans(seed: u64) -> Vec<(String, FaultPlan)> {
    let mut out = vec![("clean".to_string(), FaultPlan::None)];
    for fault in Fault::ALL {
        let name = format!("{fault:?}")
            .chars()
            .flat_map(|c| {
                if c.is_uppercase() {
                    vec!['-', c.to_ascii_lowercase()]
                } else {
                    vec![c]
                }
            })
            .collect::<String>()
            .trim_start_matches('-')
            .to_string();
        out.push((
            name,
            FaultPlan::Random {
                seed,
                rate: 0.3,
                kinds: vec![fault],
            },
        ));
    }
    out.push((
        "mixed-storm".to_string(),
        FaultPlan::Random {
            seed,
            rate: 0.4,
            kinds: Fault::ALL.to_vec(),
        },
    ));
    out.push((
        "gpu-outage".to_string(),
        FaultPlan::GpuOutage { from: 0, until: 6 },
    ));
    out
}

/// Aggregate health counters for one plan across the whole suite.
#[derive(Default)]
struct Tally {
    injected: u64,
    rejected: u64,
    retries: u64,
    taints: u64,
    trips: u64,
    degraded: u64,
    probes: u64,
    recoveries: u64,
}

/// DESIGN.md §9 — graceful degradation under observation faults: per-plan
/// mean EDP efficiency vs the fault-free scheduler, plus the health
/// telemetry that explains where the lost energy went.
pub fn chaos(lab: &mut Lab) -> Report {
    let seed = chaos_seed();
    let objective = Objective::EnergyDelay;
    let mut report = Report::new(
        "chaos",
        "EDP efficiency and health telemetry under injected observation faults",
    );

    // Fault-free EDP per workload: the baseline every plan is scored
    // against (plans() always lists it first).
    let mut clean_scores: Vec<f64> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, plan) in plans(seed) {
        let mut effs = Vec::new();
        let mut scores = Vec::new();
        let mut tally = Tally::default();
        for (i, w) in suite::desktop_suite().iter().enumerate() {
            let mut machine = Machine::new(lab.desktop.clone());
            let mut eas =
                EasScheduler::new(lab.desktop_model.clone(), EasConfig::new(objective.clone()));
            let mut injector = ChaosInjector::new(plan.clone());
            let (m, v) = run_workload_chaos(&mut machine, w.as_ref(), &mut eas, &mut injector);
            assert!(
                v.is_passed(),
                "{}: {} must stay functionally correct under faults",
                name,
                w.spec().abbrev
            );
            let score = objective.of_totals(m.energy_joules, m.time);
            scores.push(score);
            if let Some(&clean) = clean_scores.get(i) {
                effs.push(if score > 0.0 { clean / score } else { 0.0 });
            } else {
                effs.push(1.0);
            }
            let h = eas.health();
            tally.injected += injector.injected();
            tally.rejected += h.observations_rejected;
            tally.retries += h.retries;
            tally.taints += h.taints;
            tally.trips += h.breaker_trips;
            tally.degraded += h.degraded_invocations;
            tally.probes += h.probes;
            tally.recoveries += h.recoveries;
        }
        if clean_scores.is_empty() {
            clean_scores = scores;
        }
        let worst = effs.iter().copied().fold(f64::INFINITY, f64::min);
        rows.push(vec![
            name,
            format!("{:.3}", mean(&effs).unwrap_or(0.0)),
            format!("{worst:.3}"),
            tally.injected.to_string(),
            tally.rejected.to_string(),
            tally.retries.to_string(),
            tally.taints.to_string(),
            tally.trips.to_string(),
            tally.degraded.to_string(),
            tally.probes.to_string(),
            tally.recoveries.to_string(),
        ]);
    }

    report.attach_csv(
        "chaos",
        csv(
            &[
                "plan",
                "mean_edp_efficiency_vs_clean",
                "min_edp_efficiency_vs_clean",
                "injected",
                "rejected",
                "retries",
                "taints",
                "breaker_trips",
                "degraded",
                "probes",
                "recoveries",
            ],
            &rows,
        ),
    );
    report.line(format!(
        "Desktop suite under each fault plan (seed {seed}); every run is \
         verified functionally correct. EDP efficiency is the fault-free \
         scheduler's EDP over the faulted run's EDP, per workload."
    ));
    report.line("");
    report.line(md_table(
        &[
            "plan",
            "mean EDP eff. vs clean",
            "min",
            "injected",
            "rejected",
            "retries",
            "taints",
            "trips",
            "degraded",
            "probes",
            "recoveries",
        ],
        &rows,
    ));
    let storm = rows
        .iter()
        .find(|r| r[0] == "mixed-storm")
        .map(|r| r[1].clone())
        .unwrap_or_default();
    report.line(format!(
        "- Under the mixed 40% fault storm the suite retains a mean EDP \
         efficiency of {} vs the clean scheduler ({} of clean EDP).",
        storm,
        pct(storm.parse::<f64>().unwrap_or(0.0)),
    ));
    report.line(
        "- Sensor faults (energy, counters, NaN) cost retries and taints but \
         never trip the breaker; only GPU-implicating faults quarantine the \
         GPU and run invocations CPU-only until a probe recovers.",
    );
    report
}
