//! Post-hoc telemetry analysis: run the desktop suite with a
//! [`RingSink`] attached, then compute per-kernel model drift — how far
//! the engine's predicted P(α)/T(α)/EDP landed from what the platform
//! realized (DESIGN.md §10).
//!
//! On a fault-free run the drift is pure model error (the combined-mode
//! rates the profiler observed vs. the partly-uncontended tail it
//! predicts for), so a regression here means the time model, the power
//! curves, or the telemetry plumbing broke — which is exactly what the
//! ci.sh smoke step pins.

use crate::experiments::Lab;
use crate::report::{csv, md_table, pct, Report};
use easched_core::telemetry::{model_drift, parse_trace, to_trace, DecisionRecord};
use easched_core::{EasConfig, EasRuntime, EasScheduler, Objective, RingSink, TelemetrySink};
use easched_kernels::suite;
use easched_runtime::kernel_id_of;
use std::collections::HashMap;
use std::sync::Arc;

/// Fault-free mean EDP drift ceiling per kernel. The time model is exact
/// in the combined regime and pessimistic for GPU-heavy tails (see the
/// `model-error` experiment), so healthy drift on the desktop suite peaks
/// near 0.56 (NB); a breach means the model or the telemetry plumbing
/// regressed.
pub const MAX_MEAN_EDP_DRIFT: f64 = 0.75;

/// Structural defects that make a record unusable for analysis. A fresh
/// in-process ring can only produce these through a plumbing bug, so the
/// experiment refuses to publish numbers derived from them and exits
/// non-zero instead.
fn malformed(r: &DecisionRecord) -> Option<String> {
    if !r.alpha.is_finite() || !(0.0..=1.0).contains(&r.alpha) {
        return Some(format!("α {} outside [0, 1]", r.alpha));
    }
    if r.fault_rounds > r.rounds + 1 {
        return Some(format!(
            "{} fault rounds but only {} rounds",
            r.fault_rounds, r.rounds
        ));
    }
    if r.breaker > 2 {
        return Some(format!("unknown breaker code {}", r.breaker));
    }
    if r.path.has_prediction() && r.rounds == 0 {
        return Some("a profiled path with zero profiling rounds".into());
    }
    None
}

/// Whether any measured or predicted quantity is non-finite. Such records
/// are structurally sound (faulty runs produce them legitimately — a NaN
/// observation's phase totals stay NaN) but would poison drift means, so
/// the analysis clamps them out and reports how many it flagged.
fn non_finite(r: &DecisionRecord) -> bool {
    [
        r.predicted_power,
        r.predicted_time,
        r.predicted_objective,
        r.profile_time,
        r.profile_energy,
        r.split_time,
        r.split_energy,
    ]
    .iter()
    .any(|v| !v.is_finite())
}

/// Exits the process with status 3 when any record is structurally
/// malformed, naming each offender on stderr first. The stderr use is
/// deliberate: this runs inside the `figures` CLI, and a corrupt record
/// set must fail the pipeline, not decorate a report.
#[allow(clippy::print_stderr)]
fn audit_or_abort(records: &[DecisionRecord]) {
    let mut bad = 0usize;
    for r in records {
        if let Some(why) = malformed(r) {
            eprintln!(
                "malformed record seq {} (kernel {:#x}): {why}",
                r.seq, r.kernel
            );
            bad += 1;
        }
    }
    if bad > 0 {
        eprintln!(
            "{bad}/{} records malformed — aborting telemetry analysis",
            records.len()
        );
        std::process::exit(3);
    }
}

/// The `figures telemetry` experiment: desktop suite under EAS with
/// tracing on, per-kernel drift table, and a trace-format round-trip
/// self-check.
pub fn telemetry(lab: &mut Lab) -> Report {
    let mut report = Report::new(
        "telemetry",
        "Decision telemetry and model drift (desktop suite, EnergyDelay)",
    );

    let sink = Arc::new(RingSink::with_capacity(1 << 15));
    let mut eas = EasScheduler::new(
        lab.desktop_model.clone(),
        EasConfig::new(Objective::EnergyDelay),
    );
    eas.set_telemetry(Some(sink.clone() as Arc<dyn TelemetrySink>));
    let mut rt = EasRuntime::with_scheduler(lab.desktop.clone(), eas);

    let mut abbrevs: HashMap<u64, String> = HashMap::new();
    for workload in suite::desktop_suite() {
        abbrevs.insert(
            kernel_id_of(workload.as_ref()),
            workload.spec().abbrev.to_string(),
        );
        let out = rt.run(workload.as_ref());
        assert!(
            out.verification.is_passed(),
            "{} failed under telemetry",
            workload.spec().abbrev
        );
    }
    let health = rt.health();
    assert!(
        health.fault_free(),
        "clean run must stay fault-free: {health:?}"
    );

    let records = sink.snapshot();
    assert_eq!(
        records.len() as u64,
        sink.recorded(),
        "ring must hold every record (raise the capacity if the suite grew)"
    );
    assert_eq!(sink.dropped(), 0);

    // Acceptance self-check: the exported trace round-trips bit-for-bit
    // through the analyzer's parser.
    let trace = to_trace(&records);
    let reparsed = parse_trace(&trace).expect("exported trace must parse");
    assert_eq!(reparsed, records, "trace round-trip must be lossless");

    // Audit before analysis: a structurally malformed record means the
    // telemetry plumbing itself broke — refuse to publish and exit
    // non-zero so CI fails loudly rather than charting garbage.
    audit_or_abort(&records);
    // Clamp, don't crash, on non-finite measurements: legitimate under
    // fault injection, but they must not poison the drift means. On this
    // fault-free run the flagged count must be zero.
    let flagged = records.iter().filter(|r| non_finite(r)).count();
    let clean: Vec<DecisionRecord> = records.iter().filter(|r| !non_finite(r)).cloned().collect();
    assert_eq!(
        flagged, 0,
        "fault-free run must not record non-finite values"
    );

    let drift = model_drift(&clean);
    let mut rows = Vec::new();
    let mut worst: (String, f64) = (String::new(), 0.0);
    for k in &drift {
        let name = abbrevs
            .get(&k.kernel)
            .cloned()
            .unwrap_or_else(|| format!("{:#x}", k.kernel));
        if k.predicted > 0 && k.mean_edp_drift > worst.1 {
            worst = (name.clone(), k.mean_edp_drift);
        }
        rows.push(vec![
            name,
            k.invocations.to_string(),
            k.table_hits.to_string(),
            k.predicted.to_string(),
            format!("{:.4}", k.mean_time_error),
            format!("{:.4}", k.mean_power_error),
            format!("{:.4}", k.mean_edp_drift),
            format!("{:.4}", k.max_edp_drift),
        ]);
    }
    report.attach_csv(
        "telemetry",
        csv(
            &[
                "kernel",
                "invocations",
                "table_hits",
                "predicted",
                "mean_time_error",
                "mean_power_error",
                "mean_edp_drift",
                "max_edp_drift",
            ],
            &rows,
        ),
    );
    report.line(md_table(
        &[
            "kernel",
            "inv",
            "hits",
            "pred",
            "mean |ΔT|/T",
            "mean |ΔP|/P",
            "mean EDP drift",
            "max EDP drift",
        ],
        &rows,
    ));

    let m = sink.metrics();
    report.line(format!(
        "- {} invocations recorded ({} dropped), table hit rate {}, \
         profiling overhead {} of invocation time, mean decide latency {:.2} µs",
        sink.recorded(),
        sink.dropped(),
        pct(m.hit_rate()),
        pct(m.overhead_fraction()),
        m.decide_latency_ns.mean() / 1e3,
    ));
    report.line(format!(
        "- worst fault-free mean EDP drift: {} at {:.3} (ceiling {MAX_MEAN_EDP_DRIFT})",
        worst.0, worst.1
    ));
    report.line(format!(
        "- record audit: 0 malformed, {flagged} flagged non-finite (of {})",
        records.len()
    ));
    report.line(format!(
        "- control loop: {} drift reprofiles, {} suppressed, {} watchdog trips, {} split overruns",
        health.drift_reprofiles,
        health.reprofiles_suppressed,
        health.watchdog_trips,
        health.split_overruns,
    ));
    for k in &drift {
        assert!(
            k.mean_edp_drift.is_finite() && k.max_edp_drift.is_finite(),
            "kernel {:#x}: drift means must be finite after clamping",
            k.kernel
        );
        assert!(
            k.predicted == 0 || k.mean_edp_drift <= MAX_MEAN_EDP_DRIFT,
            "kernel {:#x}: fault-free mean EDP drift {:.3} above ceiling",
            k.kernel,
            k.mean_edp_drift
        );
    }
    report
}
