//! Post-hoc telemetry analysis: run the desktop suite with a
//! [`RingSink`] attached, then compute per-kernel model drift — how far
//! the engine's predicted P(α)/T(α)/EDP landed from what the platform
//! realized (DESIGN.md §10).
//!
//! On a fault-free run the drift is pure model error (the combined-mode
//! rates the profiler observed vs. the partly-uncontended tail it
//! predicts for), so a regression here means the time model, the power
//! curves, or the telemetry plumbing broke — which is exactly what the
//! ci.sh smoke step pins.

use crate::experiments::Lab;
use crate::report::{csv, md_table, pct, Report};
use easched_core::telemetry::{model_drift, parse_trace, to_trace};
use easched_core::{EasConfig, EasRuntime, EasScheduler, Objective, RingSink, TelemetrySink};
use easched_kernels::suite;
use easched_runtime::kernel_id_of;
use std::collections::HashMap;
use std::sync::Arc;

/// Fault-free mean EDP drift ceiling per kernel. The time model is exact
/// in the combined regime and pessimistic for GPU-heavy tails (see the
/// `model-error` experiment), so healthy drift on the desktop suite peaks
/// near 0.56 (NB); a breach means the model or the telemetry plumbing
/// regressed.
pub const MAX_MEAN_EDP_DRIFT: f64 = 0.75;

/// The `figures telemetry` experiment: desktop suite under EAS with
/// tracing on, per-kernel drift table, and a trace-format round-trip
/// self-check.
pub fn telemetry(lab: &mut Lab) -> Report {
    let mut report = Report::new(
        "telemetry",
        "Decision telemetry and model drift (desktop suite, EnergyDelay)",
    );

    let sink = Arc::new(RingSink::with_capacity(1 << 15));
    let mut eas = EasScheduler::new(
        lab.desktop_model.clone(),
        EasConfig::new(Objective::EnergyDelay),
    );
    eas.set_telemetry(Some(sink.clone() as Arc<dyn TelemetrySink>));
    let mut rt = EasRuntime::with_scheduler(lab.desktop.clone(), eas);

    let mut abbrevs: HashMap<u64, String> = HashMap::new();
    for workload in suite::desktop_suite() {
        abbrevs.insert(
            kernel_id_of(workload.as_ref()),
            workload.spec().abbrev.to_string(),
        );
        let out = rt.run(workload.as_ref());
        assert!(
            out.verification.is_passed(),
            "{} failed under telemetry",
            workload.spec().abbrev
        );
    }
    let health = rt.health();
    assert!(
        health.fault_free(),
        "clean run must stay fault-free: {health:?}"
    );

    let records = sink.snapshot();
    assert_eq!(
        records.len() as u64,
        sink.recorded(),
        "ring must hold every record (raise the capacity if the suite grew)"
    );
    assert_eq!(sink.dropped(), 0);

    // Acceptance self-check: the exported trace round-trips bit-for-bit
    // through the analyzer's parser.
    let trace = to_trace(&records);
    let reparsed = parse_trace(&trace).expect("exported trace must parse");
    assert_eq!(reparsed, records, "trace round-trip must be lossless");

    let drift = model_drift(&records);
    let mut rows = Vec::new();
    let mut worst: (String, f64) = (String::new(), 0.0);
    for k in &drift {
        let name = abbrevs
            .get(&k.kernel)
            .cloned()
            .unwrap_or_else(|| format!("{:#x}", k.kernel));
        if k.predicted > 0 && k.mean_edp_drift > worst.1 {
            worst = (name.clone(), k.mean_edp_drift);
        }
        rows.push(vec![
            name,
            k.invocations.to_string(),
            k.table_hits.to_string(),
            k.predicted.to_string(),
            format!("{:.4}", k.mean_time_error),
            format!("{:.4}", k.mean_power_error),
            format!("{:.4}", k.mean_edp_drift),
            format!("{:.4}", k.max_edp_drift),
        ]);
    }
    report.attach_csv(
        "telemetry",
        csv(
            &[
                "kernel",
                "invocations",
                "table_hits",
                "predicted",
                "mean_time_error",
                "mean_power_error",
                "mean_edp_drift",
                "max_edp_drift",
            ],
            &rows,
        ),
    );
    report.line(md_table(
        &[
            "kernel",
            "inv",
            "hits",
            "pred",
            "mean |ΔT|/T",
            "mean |ΔP|/P",
            "mean EDP drift",
            "max EDP drift",
        ],
        &rows,
    ));

    let m = sink.metrics();
    report.line(format!(
        "- {} invocations recorded ({} dropped), table hit rate {}, \
         profiling overhead {} of invocation time, mean decide latency {:.2} µs",
        sink.recorded(),
        sink.dropped(),
        pct(m.hit_rate()),
        pct(m.overhead_fraction()),
        m.decide_latency_ns.mean() / 1e3,
    ));
    report.line(format!(
        "- worst fault-free mean EDP drift: {} at {:.3} (ceiling {MAX_MEAN_EDP_DRIFT})",
        worst.0, worst.1
    ));
    for k in &drift {
        assert!(
            k.predicted == 0 || k.mean_edp_drift <= MAX_MEAN_EDP_DRIFT,
            "kernel {:#x}: fault-free mean EDP drift {:.3} above ceiling",
            k.kernel,
            k.mean_edp_drift
        );
    }
    report
}
