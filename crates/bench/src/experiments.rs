//! One regenerator per table and figure of the paper's evaluation.
//!
//! Each function produces a [`Report`] with the measured data (CSV) and a
//! paper-vs-measured markdown summary. `DESIGN.md` §4 maps experiment ids to
//! the paper's figures; `EXPERIMENTS.md` records the comparisons.

use crate::report::{compare_line, csv, md_table, pct, Report};
use easched_core::{
    characterize_with_sweeps, CharacterizationConfig, Classifier, EasConfig, EasScheduler,
    Evaluator, Objective, PowerModel, WorkloadComparison,
};
use easched_kernels::microbench::MicroBenchmark;
use easched_kernels::suite;
use easched_kernels::workload::{record_trace, InvocationTrace, Workload};
use easched_num::stats::mean;
use easched_runtime::scheduler::FixedAlpha;
use easched_runtime::{replay_trace, Backend, RunMetrics, SimBackend};
use easched_sim::{Machine, PhasePlan, Platform};
use std::collections::HashMap;

/// Cached platforms, power models, and workload traces shared by the
/// experiments (characterization runs once per platform; each workload
/// executes functionally once).
pub struct Lab {
    /// The Haswell desktop platform.
    pub desktop: Platform,
    /// The Bay Trail tablet platform.
    pub tablet: Platform,
    /// Desktop power model.
    pub desktop_model: PowerModel,
    /// Tablet power model.
    pub tablet_model: PowerModel,
    traces: HashMap<String, InvocationTrace>,
}

impl Lab {
    /// Characterizes both platforms (the one-time step).
    pub fn new() -> Lab {
        let desktop = Platform::haswell_desktop();
        let tablet = Platform::baytrail_tablet();
        let config = CharacterizationConfig::default();
        let (desktop_model, _) = characterize_with_sweeps(&desktop, &config);
        let (tablet_model, _) = characterize_with_sweeps(&tablet, &config);
        Lab {
            desktop,
            tablet,
            desktop_model,
            tablet_model,
            traces: HashMap::new(),
        }
    }

    /// Records (and caches) the invocation trace of a workload, asserting
    /// functional verification.
    pub fn trace(&mut self, key: &str, workload: &dyn Workload) -> InvocationTrace {
        if let Some(t) = self.traces.get(key) {
            return t.clone();
        }
        let (trace, verification) = record_trace(workload);
        assert!(
            verification.is_passed(),
            "workload {key} failed verification: {verification:?}"
        );
        self.traces.insert(key.to_string(), trace.clone());
        trace
    }

    fn evaluator(&self, desktop: bool) -> Evaluator {
        if desktop {
            Evaluator::new(self.desktop.clone(), self.desktop_model.clone())
        } else {
            Evaluator::new(self.tablet.clone(), self.tablet_model.clone())
        }
    }
}

impl Default for Lab {
    fn default() -> Self {
        Lab::new()
    }
}

/// Figure 1: Connected Components energy/time vs GPU offload on the desktop.
pub fn fig1(lab: &mut Lab) -> Report {
    let mut report = Report::new("fig1", "CC energy & performance vs GPU offload (desktop)");
    let cc = suite::cc_desktop();
    let trace = lab.trace("cc-desktop", cc.as_ref());
    let traits = cc.traits_for(&lab.desktop);

    let mut rows = Vec::new();
    let mut best_time = (0.0f64, f64::INFINITY);
    let mut best_energy = (0.0f64, f64::INFINITY);
    for i in 0..=10 {
        let alpha = i as f64 / 10.0;
        let mut machine = Machine::new(lab.desktop.clone());
        let m = replay_trace(
            &mut machine,
            &traits,
            1,
            &trace,
            &mut FixedAlpha::new(alpha),
        );
        if m.time < best_time.1 {
            best_time = (alpha, m.time);
        }
        if m.energy_joules < best_energy.1 {
            best_energy = (alpha, m.energy_joules);
        }
        rows.push(vec![
            format!("{alpha:.1}"),
            format!("{:.3}", m.time),
            format!("{:.1}", m.energy_joules),
            format!("{:.1}", m.edp()),
        ]);
    }
    report.attach_csv(
        "fig1_cc_sweep",
        csv(&["alpha", "time_s", "energy_j", "edp"], &rows),
    );
    report.line(md_table(&["α", "time (s)", "energy (J)", "EDP"], &rows));
    report.line(compare_line(
        "best-performance offload",
        "α = 0.6",
        &format!("α = {:.1}", best_time.0),
    ));
    report.line(compare_line(
        "minimum-energy offload",
        "α = 0.9",
        &format!("α = {:.1}", best_energy.0),
    ));
    report.line(format!(
        "- energy-optimal offload exceeds performance-optimal: **{}**",
        best_energy.0 > best_time.0
    ));
    report
}

/// Runs a micro-benchmark workload on a traced machine and returns the
/// trace CSV plus phase statistics.
fn traced_micro_run(
    platform: &Platform,
    micro: &MicroBenchmark,
    alpha: f64,
    invocations: u32,
) -> (String, f64, f64) {
    let mut machine = Machine::new(platform.clone());
    machine.enable_trace();
    for inv in 0..invocations {
        machine.run_phase(
            micro.traits(),
            &PhasePlan::split(micro.items, alpha).with_seed(u64::from(inv)),
        );
    }
    let trace = machine.take_trace();
    let resampled = trace.resample(0.010);
    (resampled.to_csv(), trace.min_power(), trace.max_power())
}

/// Figure 2: package power over time, memory-bound workload at 90-10
/// GPU-CPU split, on both platforms.
pub fn fig2(lab: &mut Lab) -> Report {
    let mut report = Report::new(
        "fig2",
        "Package power over time, memory-bound 90-10 GPU-CPU split",
    );
    for (platform, name) in [(&lab.tablet, "baytrail"), (&lab.desktop, "haswell")] {
        let micro = MicroBenchmark::for_platform(platform, true, false, false);
        let (trace_csv, min_w, max_w) = traced_micro_run(platform, &micro, 0.9, 3);
        report.attach_csv(format!("fig2_{name}"), trace_csv);
        report.line(format!("- {name}: power range {min_w:.2} – {max_w:.2} W"));
    }
    report.line(compare_line(
        "Bay Trail power drops in CPU-only intervals",
        "significant drop when GPU idle",
        "see fig2_baytrail.csv (GPU phases draw more than CPU phases)",
    ));
    report
}

/// Figure 3: power over time for long-running compute- vs memory-bound
/// micro-benchmarks (desktop).
pub fn fig3(lab: &mut Lab) -> Report {
    let mut report = Report::new("fig3", "Compute vs memory-bound power traces (desktop)");
    let mut combined = Vec::new();
    for (memory, name) in [(false, "compute"), (true, "memory")] {
        let micro = MicroBenchmark::for_platform(&lab.desktop, memory, false, false);
        let mut machine = Machine::new(lab.desktop.clone());
        machine.enable_trace();
        // Split near the balance point so the combined phase is long.
        let traits = micro.traits();
        let alpha_balanced = traits.gpu_rate() / (traits.cpu_rate() + traits.gpu_rate());
        machine.run_phase(traits, &PhasePlan::split(micro.items * 2, alpha_balanced));
        let trace = machine.take_trace();
        // Steady combined-phase power after the initial ramp.
        let window: Vec<f64> = trace
            .points()
            .iter()
            .filter(|p| p.time > 0.2 && p.time < 0.5)
            .map(|p| p.watts)
            .collect();
        let steady = mean(&window).unwrap_or(0.0);
        combined.push(steady);
        report.attach_csv(format!("fig3_{name}"), trace.resample(0.010).to_csv());
        report.line(format!(
            "- {name}-bound combined-phase power: {steady:.1} W"
        ));
    }
    report.line(compare_line(
        "combined power, compute-bound",
        "≈55 W",
        &format!("{:.1} W", combined[0]),
    ));
    report.line(compare_line(
        "combined power, memory-bound",
        "≈63 W",
        &format!("{:.1} W", combined[1]),
    ));
    report
}

/// Figure 4: ten short GPU bursts (α = 0.05) dropping package power below
/// 40 W on the desktop.
pub fn fig4(lab: &mut Lab) -> Report {
    let mut report = Report::new("fig4", "Short GPU bursts drop package power (desktop)");
    let micro = MicroBenchmark::for_platform(&lab.desktop, true, false, false);
    let mut machine = Machine::new(lab.desktop.clone());
    machine.enable_trace();
    for inv in 0..10 {
        machine.run_phase(
            micro.traits(),
            &PhasePlan::split(micro.items, 0.05).with_seed(inv),
        );
    }
    let trace = machine.take_trace();
    report.attach_csv("fig4_bursts", trace.resample(0.010).to_csv());

    // Count dips below 40 W after the initial from-idle ramp, and measure
    // the CPU-phase plateau.
    let points = trace.resample(0.005);
    let mut dips = 0;
    let mut below = false;
    let mut plateau = Vec::new();
    let mut burst_min = f64::INFINITY;
    for p in points.points().iter().skip_while(|p| p.time < 0.5) {
        if p.watts < 40.0 {
            if !below {
                dips += 1;
            }
            below = true;
            burst_min = burst_min.min(p.watts);
        } else {
            below = false;
        }
        if p.watts > 55.0 {
            plateau.push(p.watts);
        }
    }
    let plateau_mean = mean(&plateau).unwrap_or(0.0);
    report.line(compare_line(
        "CPU-phase package power",
        "≈60 W",
        &format!("{plateau_mean:.1} W"),
    ));
    report.line(compare_line(
        "package power during GPU bursts",
        "< ~40 W",
        &format!("{burst_min:.1} W minimum"),
    ));
    report.line(compare_line(
        "number of sub-40 W dips (10 bursts)",
        "10",
        &format!("{dips} after the first burst (which starts from idle and does not dip)"),
    ));
    report
}

/// Figures 5 and 6: the eight power-characterization curves per platform.
fn characterization_figure(id: &str, platform: &Platform) -> Report {
    let mut report = Report::new(
        id,
        format!(
            "Power characterization, eight categories ({})",
            platform.name
        ),
    );
    let (model, sweeps) = characterize_with_sweeps(platform, &CharacterizationConfig::default());
    let mut rows = Vec::new();
    for sweep in &sweeps {
        let curve = model.curve(sweep.class);
        let mut data_rows = Vec::new();
        for p in &sweep.points {
            data_rows.push(vec![
                format!("{:.2}", p.alpha),
                format!("{:.3}", p.watts),
                format!("{:.3}", curve.predict(p.alpha)),
            ]);
        }
        let stem = format!(
            "{id}_cat{}_{}",
            sweep.class.index(),
            sweep
                .label
                .to_lowercase()
                .replace([',', ' '], "_")
                .replace("__", "_")
        );
        report.attach_csv(stem, csv(&["alpha", "measured_w", "fitted_w"], &data_rows));
        // A degenerate sweep shows up as a quality note in the table
        // rather than aborting the whole figure run.
        let r2_cell = match easched_core::try_fit_curve_with_r2(sweep, 6) {
            Ok((_, r2)) => format!("{r2:.4}"),
            Err(e) => format!("n/a ({e})"),
        };
        rows.push(vec![
            sweep.label.clone(),
            format!("y = {}", curve.poly()),
            format!("{:.3}", curve.rmse()),
            r2_cell,
        ]);
    }
    report.line(md_table(
        &["category", "sixth-order fit", "RMSE (W)", "R²"],
        &rows,
    ));
    report.line(format!(
        "- paper: sixth-order polynomials fit the sweeps well; measured max RMSE {:.2} W",
        model
            .curves()
            .iter()
            .map(|c| c.rmse())
            .fold(0.0f64, f64::max)
    ));
    report
}

/// Figure 5: desktop power characterization.
pub fn fig5(lab: &mut Lab) -> Report {
    characterization_figure("fig5", &lab.desktop)
}

/// Figure 6: Bay Trail power characterization.
pub fn fig6(lab: &mut Lab) -> Report {
    let mut r = characterization_figure("fig6", &lab.tablet);
    // The paper's §2 observation: on Bay Trail memory-bound work draws LESS
    // power than compute-bound.
    let long = |mb| easched_core::WorkloadClass {
        memory_bound: mb,
        cpu_short: false,
        gpu_short: false,
    };
    let mem = lab.tablet_model.predict(long(true), 0.5);
    let comp = lab.tablet_model.predict(long(false), 0.5);
    r.line(compare_line(
        "memory-bound draws less than compute-bound (Bay Trail)",
        "0.7/1.3 W vs 1.5/2.0 W",
        &format!("P(0.5): memory {mem:.2} W vs compute {comp:.2} W"),
    ));
    r
}

/// Expected Table 1 classification per benchmark: (abbrev, regular,
/// memory-bound, cpu_short, gpu_short).
pub const TABLE1_EXPECTED: [(&str, bool, bool, bool, bool); 12] = [
    ("BH", false, true, false, false),
    ("BFS", false, true, true, true),
    ("CC", false, true, true, true),
    ("FD", false, false, true, true),
    ("MB", false, true, false, false),
    ("SL", false, true, false, false),
    ("SP", false, true, true, true),
    ("BS", true, false, true, true),
    ("MM", true, false, false, false),
    ("NB", true, false, false, true),
    ("RT", true, false, false, false),
    ("SM", true, true, true, true),
];

/// Table 1: per-benchmark invocation counts and runtime classification.
pub fn table1(lab: &mut Lab) -> Report {
    let mut report = Report::new(
        "table1",
        "Benchmark statistics and classification (both platforms)",
    );
    let mut desktop_summary = (0, 0);
    for desktop in [true, false] {
        let (platform, tag, workloads) = if desktop {
            (lab.desktop.clone(), "desktop", suite::desktop_suite())
        } else {
            (lab.tablet.clone(), "tablet", suite::tablet_suite())
        };
        let (rows, matches, total) = classify_suite(lab, &platform, tag, workloads);
        if desktop {
            desktop_summary = (matches, total);
        }
        report.attach_csv(
            format!("table1_{tag}"),
            csv(
                &[
                    "abbrev",
                    "input",
                    "invocations",
                    "items",
                    "reg",
                    "mem",
                    "cpu",
                    "gpu",
                    "matches_paper",
                ],
                &rows,
            ),
        );
        report.line(format!("### {tag}\n"));
        report.line(md_table(
            &[
                "Abbrev",
                "Input",
                "Invocations",
                "Items",
                "R/IR",
                "C/M",
                "CPU S/L",
                "GPU S/L",
                "= paper",
            ],
            &rows,
        ));
    }
    report.line(compare_line(
        "desktop classification agreement with Table 1",
        "12/12 (by construction on their hardware)",
        &format!("{}/{}", desktop_summary.0, desktop_summary.1),
    ));
    report.line(
        "- invocation counts are at our reduced functional scales; the paper's BFS/CC/SP run \
         1748/2147/2577 invocations at |V| = 6.2 M — the same one-invocation-per-round structure. \
         Table 1 prints a single classification column per benchmark (desktop-measured); tablet \
         rows are classified against the same expectations.",
    );
    report
}

fn classify_suite(
    lab: &mut Lab,
    platform: &Platform,
    tag: &str,
    workloads: Vec<Box<dyn Workload>>,
) -> (Vec<Vec<String>>, usize, usize) {
    let classifier = Classifier::default();
    let mut rows = Vec::new();
    let mut matches = 0;
    let mut total = 0;
    for w in workloads {
        let spec = w.spec();
        let key = format!("{}-{tag}", spec.abbrev.to_lowercase());
        let trace = lab.trace(&key, w.as_ref());
        let traits = w.traits_for(platform);

        // Classify from one online-profiling step on the first invocation,
        // as the runtime does.
        let mut machine = Machine::new(platform.clone());
        let n0 = trace.sizes[0];
        let mut backend = SimBackend::new(&mut machine, &traits, n0, None, 1);
        let obs = backend.profile_step(backend.gpu_profile_size().min(n0));
        let class = classifier.classify(&obs, backend.remaining());

        let expected = TABLE1_EXPECTED
            .iter()
            .find(|e| e.0 == spec.abbrev)
            .expect("every benchmark has an expected row");
        let class_match = expected.1 == spec.regular
            && expected.2 == class.memory_bound
            && expected.3 == class.cpu_short
            && expected.4 == class.gpu_short;
        total += 1;
        if class_match {
            matches += 1;
        }
        rows.push(vec![
            spec.abbrev.to_string(),
            w.input_description(),
            trace.invocations().to_string(),
            trace.total_items().to_string(),
            if spec.regular { "R" } else { "IR" }.to_string(),
            if class.memory_bound { "M" } else { "C" }.to_string(),
            if class.cpu_short { "S" } else { "L" }.to_string(),
            if class.gpu_short { "S" } else { "L" }.to_string(),
            if class_match { "✓" } else { "✗" }.to_string(),
        ]);
    }
    (rows, matches, total)
}

/// Paper-reported average efficiencies for Figures 9–12.
#[derive(Debug, Clone, Copy)]
pub struct PaperAverages {
    /// CPU-alone mean efficiency (None where the paper gives no number).
    pub cpu: Option<f64>,
    /// GPU-alone mean efficiency.
    pub gpu: Option<f64>,
    /// PERF mean efficiency.
    pub perf: Option<f64>,
    /// EAS mean efficiency.
    pub eas: Option<f64>,
}

/// One scheme-efficiency figure (9, 10, 11, or 12).
fn efficiency_figure(
    id: &str,
    title: &str,
    lab: &mut Lab,
    desktop: bool,
    objective: Objective,
    paper: PaperAverages,
) -> Report {
    let mut report = Report::new(id, title);
    let ev = lab.evaluator(desktop);
    let workloads = if desktop {
        suite::desktop_suite()
    } else {
        suite::tablet_suite()
    };
    let mut rows = Vec::new();
    let mut eff = [const { Vec::new() }; 4];
    for w in workloads {
        let key = format!(
            "{}-{}",
            w.spec().abbrev.to_lowercase(),
            if desktop { "desktop" } else { "tablet" }
        );
        let trace = lab.trace(&key, w.as_ref());
        let c: WorkloadComparison = ev.compare_trace(w.as_ref(), &trace, &objective);
        let effs = [
            c.efficiency(c.cpu),
            c.efficiency(c.gpu),
            c.efficiency(c.perf),
            c.efficiency(c.eas),
        ];
        for (v, acc) in effs.iter().zip(eff.iter_mut()) {
            acc.push(*v);
        }
        rows.push(vec![
            c.abbrev.clone(),
            pct(effs[0]),
            pct(effs[1]),
            pct(effs[2]),
            pct(effs[3]),
            format!("{:.1}", c.oracle_alpha),
            c.eas_alpha.map_or("-".into(), |a| format!("{a:.2}")),
        ]);
    }
    let means: Vec<f64> = eff.iter().map(|e| mean(e).unwrap_or(0.0)).collect();
    rows.push(vec![
        "**mean**".into(),
        pct(means[0]),
        pct(means[1]),
        pct(means[2]),
        pct(means[3]),
        "".into(),
        "".into(),
    ]);
    report.attach_csv(
        id.to_string(),
        csv(
            &[
                "abbrev",
                "cpu",
                "gpu",
                "perf",
                "eas",
                "oracle_alpha",
                "eas_alpha",
            ],
            &rows,
        ),
    );
    report.line(md_table(
        &[
            "Benchmark",
            "CPU",
            "GPU",
            "PERF",
            "EAS",
            "Oracle α",
            "EAS α",
        ],
        &rows,
    ));
    for (i, (name, p)) in [
        ("CPU", paper.cpu),
        ("GPU", paper.gpu),
        ("PERF", paper.perf),
        ("EAS", paper.eas),
    ]
    .iter()
    .enumerate()
    {
        if let Some(p) = p {
            report.line(compare_line(
                &format!("{name} mean efficiency"),
                &pct(*p),
                &pct(means[i]),
            ));
        }
    }
    report
}

/// Figure 9: relative EDP efficiency vs Oracle, desktop.
pub fn fig9(lab: &mut Lab) -> Report {
    efficiency_figure(
        "fig9",
        "Relative energy-delay product efficiency vs Oracle (desktop)",
        lab,
        true,
        Objective::EnergyDelay,
        PaperAverages {
            cpu: None,
            gpu: Some(0.796),
            perf: Some(0.839),
            eas: Some(0.962),
        },
    )
}

/// Figure 10: relative energy-use efficiency vs Oracle, desktop.
pub fn fig10(lab: &mut Lab) -> Report {
    efficiency_figure(
        "fig10",
        "Relative energy-use efficiency vs Oracle (desktop)",
        lab,
        true,
        Objective::Energy,
        PaperAverages {
            cpu: None,
            gpu: Some(0.958),
            perf: Some(0.704),
            eas: Some(0.972),
        },
    )
}

/// Figure 11: relative EDP efficiency vs Oracle, Bay Trail.
pub fn fig11(lab: &mut Lab) -> Report {
    // Paper gives EAS = 93.2% and relative gaps: +4.4% over PERF, +19.6%
    // over GPU, +85.9% over CPU.
    efficiency_figure(
        "fig11",
        "Relative energy-delay product efficiency vs Oracle (Bay Trail)",
        lab,
        false,
        Objective::EnergyDelay,
        PaperAverages {
            cpu: Some(0.932 / 1.859),
            gpu: Some(0.932 / 1.196),
            perf: Some(0.932 / 1.044),
            eas: Some(0.932),
        },
    )
}

/// Figure 12: relative energy-use efficiency vs Oracle, Bay Trail.
pub fn fig12(lab: &mut Lab) -> Report {
    efficiency_figure(
        "fig12",
        "Relative energy-use efficiency vs Oracle (Bay Trail)",
        lab,
        false,
        Objective::Energy,
        PaperAverages {
            cpu: Some(0.964 / 1.572),
            gpu: Some(0.964 / 1.101),
            perf: Some(0.964 / 1.075),
            eas: Some(0.964),
        },
    )
}

/// Extension: the ED² metric the paper names for HPC use (§1) but does not
/// evaluate — same harness, third objective.
pub fn ed2(lab: &mut Lab) -> Report {
    let mut r = efficiency_figure(
        "ed2",
        "Relative ED² efficiency vs Oracle (desktop) — extension",
        lab,
        true,
        Objective::EnergyDelaySquared,
        PaperAverages {
            cpu: None,
            gpu: None,
            perf: None,
            eas: None,
        },
    );
    r.line(
        "- the paper names ED² as the metric for time-critical HPC use (§1) but reports          no numbers; this extension exercises the same pipeline on it. ED² weighs time          even harder, so the performance-oriented schemes close most of their gap.",
    );
    r
}

/// Extension: the same desktop under a binding 45 W TDP — the §1 "shared
/// chip-level power budget" made explicit. Combined execution throttles
/// (45 W < the 55–63 W combined points), so hybrid splits lose some of
/// their appeal and the schemes shift.
pub fn tdp(lab: &mut Lab) -> Report {
    let mut report = Report::new(
        "tdp",
        "Scheme efficiency under a binding 45 W package TDP (extension)",
    );
    let mut capped = lab.desktop.clone();
    capped.pcu.tdp = Some(45.0);
    let model = easched_core::characterize(&capped, &CharacterizationConfig::default());
    let ev = Evaluator::new(capped.clone(), model);
    let objective = Objective::EnergyDelay;
    let mut rows = Vec::new();
    let mut eff = [const { Vec::new() }; 4];
    for w in suite::desktop_suite() {
        let key = format!("{}-desktop", w.spec().abbrev.to_lowercase());
        let trace = lab.trace(&key, w.as_ref());
        let c = ev.compare_trace(w.as_ref(), &trace, &objective);
        let effs = [
            c.efficiency(c.cpu),
            c.efficiency(c.gpu),
            c.efficiency(c.perf),
            c.efficiency(c.eas),
        ];
        for (v, acc) in effs.iter().zip(eff.iter_mut()) {
            acc.push(*v);
        }
        rows.push(vec![
            c.abbrev.clone(),
            pct(effs[0]),
            pct(effs[1]),
            pct(effs[2]),
            pct(effs[3]),
            format!("{:.1}", c.oracle_alpha),
        ]);
    }
    let means: Vec<f64> = eff.iter().map(|e| mean(e).unwrap_or(0.0)).collect();
    rows.push(vec![
        "**mean**".into(),
        pct(means[0]),
        pct(means[1]),
        pct(means[2]),
        pct(means[3]),
        "".into(),
    ]);
    report.attach_csv(
        "tdp",
        csv(
            &["abbrev", "cpu", "gpu", "perf", "eas", "oracle_alpha"],
            &rows,
        ),
    );
    report.line(md_table(
        &["Benchmark", "CPU", "GPU", "PERF", "EAS", "Oracle α"],
        &rows,
    ));
    report.line(format!(
        "- under the cap, characterization + EAS adapt automatically (black-box!): \
         EAS mean {} vs GPU-alone {}",
        pct(means[3]),
        pct(means[1])
    ));
    report
}

/// Diagnostic: how accurate is the analytical time model T(α) (Eqs. 1–4)
/// that EAS plans with? One profiling step supplies R_C/R_G; the model's
/// predictions are compared against measured fixed-α run times for a
/// CC-like kernel. The tail-phase error (the tail runs uncontended, faster
/// than the combined-mode rates predict) is the main EAS-vs-Oracle gap.
pub fn model_error(lab: &mut Lab) -> Report {
    use easched_core::TimeModel;
    let mut report = Report::new(
        "model-error",
        "Analytical T(α) model vs measured execution time (diagnostic)",
    );
    let cc = suite::cc_desktop();
    let trace = lab.trace("cc-desktop", cc.as_ref());
    let traits = cc.traits_for(&lab.desktop);
    let n: u64 = trace.sizes[0];

    // One profiling observation, as EAS would take it.
    let mut machine = Machine::new(lab.desktop.clone());
    let mut backend = SimBackend::new(&mut machine, &traits, n, None, 1);
    let obs = backend.profile_step(backend.gpu_profile_size());
    let tm = TimeModel::new(obs.cpu_rate(), obs.gpu_rate());
    let n_rem = backend.remaining();
    let _ = backend;

    let mut rows = Vec::new();
    let mut max_err: f64 = 0.0;
    for i in 0..=10 {
        let alpha = i as f64 / 10.0;
        let predicted = tm.total_time(alpha, n_rem);
        // Measure the same remaining work at this fixed split, continuing
        // from an identical post-profiling machine state.
        let mut machine = Machine::new(lab.desktop.clone());
        let mut b = SimBackend::new(&mut machine, &traits, n, None, 1);
        b.profile_step(b.gpu_profile_size());
        let measured = b.run_split(alpha).elapsed;
        let err = (predicted - measured) / measured;
        max_err = max_err.max(err.abs());
        rows.push(vec![
            format!("{alpha:.1}"),
            format!("{predicted:.4}"),
            format!("{measured:.4}"),
            format!("{:+.1}%", err * 100.0),
        ]);
    }
    report.attach_csv(
        "model-error",
        csv(&["alpha", "predicted_s", "measured_s", "rel_error"], &rows),
    );
    report.line(md_table(
        &["α", "T(α) predicted (s)", "measured (s)", "error"],
        &rows,
    ));
    report.line(format!(
        "- max |error| {:.1}%: the model is exact in the combined regime and \
         pessimistic for GPU-heavy splits (the single-device tail runs \
         uncontended, faster than the combined-mode R_G the profiler saw) — \
         the bias behind the paper\'s CC anecdote (§5).",
        max_err * 100.0
    ));
    report
}

/// Diagnostic: the package power trace of a full EAS-scheduled execution,
/// showing the profiling phase and the steady split — the runtime-level
/// analogue of Figures 2–4.
pub fn trace_eas(lab: &mut Lab) -> Report {
    let mut report = Report::new(
        "trace-eas",
        "Package power during an EAS-scheduled run (diagnostic)",
    );
    let sm = suite::seismic_desktop();
    let trace = lab.trace("sm-desktop", sm.as_ref());
    let traits = sm.traits_for(&lab.desktop);
    let mut machine = Machine::new(lab.desktop.clone());
    machine.enable_trace();
    let mut eas = EasScheduler::new(
        lab.desktop_model.clone(),
        EasConfig::new(Objective::EnergyDelay),
    );
    let metrics = replay_trace(&mut machine, &traits, 1, &trace, &mut eas);
    let power_trace = machine.take_trace();
    report.attach_csv("trace-eas", power_trace.resample(0.010).to_csv());
    report.attach_csv("trace-eas_decisions", eas.decision_log_csv());
    report.line(format!(
        "- SM under EAS: {:.2} s, {:.1} J, mean {:.1} W, learned α = {:?}, {} α decisions",
        metrics.time,
        metrics.energy_joules,
        metrics.mean_power(),
        eas.learned_alpha(1),
        eas.decisions(),
    ));
    report
}

/// §5 "Online profiling overhead": wall-clock cost of one EAS α decision.
pub fn overhead(lab: &mut Lab) -> Report {
    let mut report = Report::new("overhead", "Per-decision scheduling overhead");
    let mut eas = EasScheduler::new(
        lab.desktop_model.clone(),
        EasConfig::new(Objective::EnergyDelay),
    );
    let obs = easched_runtime::Observation {
        elapsed: 0.001,
        cpu_items: 1_000,
        gpu_items: 2_048,
        cpu_time: 0.001,
        gpu_time: 0.001,
        energy_joules: 0.05,
        counters: easched_sim::CounterSnapshot {
            instructions: 1e6,
            loads: 2e5,
            l3_misses: 1e5,
        },
    };
    let iterations = 100_000u32;
    let t0 = std::time::Instant::now();
    let mut acc = 0.0;
    for i in 0..iterations {
        acc += eas.decide_alpha(&obs, 100_000 + u64::from(i));
    }
    let per_decision = t0.elapsed().as_secs_f64() / f64::from(iterations);
    std::hint::black_box(acc);
    report.line(compare_line(
        "per-decision overhead",
        "1–2 µs",
        &format!("{:.2} µs", per_decision * 1e6),
    ));
    report
}

/// Runs every experiment in order.
pub fn all(lab: &mut Lab) -> Vec<Report> {
    vec![
        fig1(lab),
        fig2(lab),
        fig3(lab),
        fig4(lab),
        fig5(lab),
        fig6(lab),
        table1(lab),
        fig9(lab),
        ed2(lab),
        fig10(lab),
        fig11(lab),
        fig12(lab),
        tdp(lab),
        model_error(lab),
        trace_eas(lab),
        overhead(lab),
    ]
}

/// Total run metrics of a scheduler on a workload trace — helper for the
/// ablation studies.
pub fn run_metrics<S: easched_runtime::Scheduler>(
    platform: &Platform,
    traits: &easched_sim::KernelTraits,
    trace: &InvocationTrace,
    scheduler: &mut S,
) -> RunMetrics {
    let mut machine = Machine::new(platform.clone());
    replay_trace(&mut machine, traits, 1, trace, scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full experiments are exercised by the integration suite and the
    // figures binary; here we sanity-check the cheap pieces.

    #[test]
    fn table1_expected_covers_twelve() {
        let abbrevs: std::collections::HashSet<&str> =
            TABLE1_EXPECTED.iter().map(|e| e.0).collect();
        assert_eq!(abbrevs.len(), 12);
    }

    /// The experiments that need no functional workload traces run in a
    /// debug-build test (the trace-driven ones are exercised by the figures
    /// binary in release mode).
    #[test]
    fn trace_free_experiments_smoke() {
        let mut lab = Lab::new();
        for (report, needle) in [
            (fig2(&mut lab), "Bay Trail"),
            (fig3(&mut lab), "memory-bound"),
            (fig4(&mut lab), "GPU bursts"),
            (fig5(&mut lab), "sixth-order"),
            (fig6(&mut lab), "memory-bound draws less"),
            (overhead(&mut lab), "per-decision"),
        ] {
            assert!(!report.markdown.is_empty(), "{}", report.id);
            assert!(
                report.markdown.contains(needle),
                "{} missing {needle:?}",
                report.id
            );
        }
    }

    #[test]
    fn fig3_reports_paper_power_levels() {
        let mut lab = Lab::new();
        let r = fig3(&mut lab);
        // The markdown carries the measured combined powers; they must sit
        // at the paper's operating points.
        let compute: f64 = extract_watts(&r.markdown, "compute-bound combined-phase power");
        let memory: f64 = extract_watts(&r.markdown, "memory-bound combined-phase power");
        assert!((compute - 55.0).abs() < 2.0, "{compute}");
        assert!((memory - 63.0).abs() < 2.0, "{memory}");
    }

    fn extract_watts(md: &str, label: &str) -> f64 {
        let line = md
            .lines()
            .find(|l| l.contains(label))
            .expect("label present");
        line.split(':')
            .nth(1)
            .and_then(|v| v.trim().trim_end_matches(" W").parse().ok())
            .expect("parsable watts")
    }

    #[test]
    fn traced_micro_run_produces_power_data() {
        let platform = Platform::haswell_desktop();
        let micro = MicroBenchmark::for_platform(&platform, false, true, true);
        let (csv_data, min_w, max_w) = traced_micro_run(&platform, &micro, 0.5, 1);
        assert!(csv_data.lines().count() > 2);
        assert!(min_w > 0.0 && max_w > min_w);
    }
}
