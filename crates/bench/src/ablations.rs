//! Ablation studies for the design choices called out in `DESIGN.md` §5.
//!
//! Each study swaps exactly one knob of the EAS pipeline and measures the
//! mean EDP efficiency (vs the same Oracle) across the desktop suite.

use crate::report::{csv, md_table, Report};
use crate::Lab;
use easched_core::{
    characterize_with_sweeps, CharacterizationConfig, Classifier, EasConfig, EasScheduler,
    Objective, PowerCurve, PowerModel, WorkloadClass,
};
use easched_kernels::suite;
use easched_kernels::workload::InvocationTrace;
use easched_num::polyfit;
use easched_num::stats::mean;
use easched_runtime::replay_trace;
use easched_sim::{KernelTraits, Machine};

/// Per-workload evaluation context: trace, traits, and the Oracle scores
/// for EDP and Energy (scheduler-independent, so computed once per study).
struct Ctx {
    /// `(abbrev, traits, trace, oracle_edp, oracle_energy)`.
    items: Vec<(String, KernelTraits, InvocationTrace, f64, f64)>,
}

impl Ctx {
    fn new(lab: &mut Lab) -> Ctx {
        let ev = easched_core::Evaluator::new(lab.desktop.clone(), lab.desktop_model.clone());
        let mut items = Vec::new();
        for w in suite::desktop_suite() {
            let key = format!("{}-desktop", w.spec().abbrev.to_lowercase());
            let trace = lab.trace(&key, w.as_ref());
            let traits = w.traits_for(&lab.desktop);
            let (_, oracle_edp) = ev.oracle(&traits, &trace, &Objective::EnergyDelay);
            let (_, oracle_e) = ev.oracle(&traits, &trace, &Objective::Energy);
            items.push((
                w.spec().abbrev.to_string(),
                traits,
                trace,
                oracle_edp.score,
                oracle_e.score,
            ));
        }
        Ctx { items }
    }

    /// Mean (EDP, energy) efficiency of a freshly configured EAS across the
    /// suite; the EAS objective matches the metric being scored.
    fn eas_efficiency(
        &self,
        platform: &easched_sim::Platform,
        model: &PowerModel,
        config: &EasConfig,
    ) -> (f64, f64) {
        let mut edp_effs = Vec::new();
        let mut e_effs = Vec::new();
        for (_, traits, trace, oracle_edp, oracle_e) in &self.items {
            for (objective, oracle_score, out) in [
                (Objective::EnergyDelay, oracle_edp, &mut edp_effs),
                (Objective::Energy, oracle_e, &mut e_effs),
            ] {
                let mut cfg = config.clone();
                cfg.objective = objective.clone();
                let mut eas = EasScheduler::new(model.clone(), cfg);
                let mut machine = Machine::new(platform.clone());
                let m = replay_trace(&mut machine, traits, 1, trace, &mut eas);
                let score = objective.of_totals(m.energy_joules, m.time);
                out.push(if score > 0.0 {
                    oracle_score / score
                } else {
                    0.0
                });
            }
        }
        (mean(&edp_effs).unwrap_or(0.0), mean(&e_effs).unwrap_or(0.0))
    }
}

fn study_report(
    id: &str,
    title: &str,
    knob: &str,
    rows: Vec<(String, (f64, f64))>,
    note: &str,
) -> Report {
    let mut report = Report::new(id, title);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(k, (edp, e))| vec![k.clone(), format!("{edp:.3}"), format!("{e:.3}")])
        .collect();
    report.attach_csv(
        id.to_string(),
        csv(
            &[knob, "mean_edp_efficiency", "mean_energy_efficiency"],
            &table,
        ),
    );
    report.line(md_table(
        &[
            knob,
            "mean EDP eff. vs Oracle",
            "mean energy eff. vs Oracle",
        ],
        &table,
    ));
    report.line(format!("- {note}"));
    report
}

/// DESIGN.md §5.1 — polynomial order of the power-curve fit (paper: 6).
pub fn poly_order(lab: &mut Lab) -> Report {
    let ctx = Ctx::new(lab);
    let (_, sweeps) = characterize_with_sweeps(&lab.desktop, &CharacterizationConfig::default());
    let mut rows = Vec::new();
    let mut fit_rows = Vec::new();
    for order in 1..=8 {
        let curves: Vec<PowerCurve> = sweeps
            .iter()
            .map(|s| {
                let xs: Vec<f64> = s.points.iter().map(|p| p.alpha).collect();
                let ys: Vec<f64> = s.points.iter().map(|p| p.watts).collect();
                let fit = polyfit(&xs, &ys, order).expect("sweep fittable");
                let (rmse, n) = (fit.rmse(), fit.samples());
                PowerCurve::new(s.class, fit.into_poly(), rmse, n)
            })
            .collect();
        let mean_rmse = mean(&curves.iter().map(|c| c.rmse()).collect::<Vec<_>>()).unwrap();
        let model = PowerModel::new(lab.desktop.name, curves);
        let eff = ctx.eas_efficiency(
            &lab.desktop,
            &model,
            &EasConfig::new(Objective::EnergyDelay),
        );
        fit_rows.push(vec![order.to_string(), format!("{mean_rmse:.3}")]);
        rows.push((order.to_string(), eff));
    }
    let mut report = study_report(
        "ablation-poly",
        "Polynomial order of the power characterization fit",
        "order",
        rows,
        "the paper found sixth order a good fit; lower orders smooth away the curve \
         structure the scheduler relies on, higher orders chase measurement noise",
    );
    report.line("\nFit quality (mean RMSE in watts across the eight categories):\n");
    report.line(md_table(&["order", "mean RMSE (W)"], &fit_rows));
    report
}

/// DESIGN.md §5.2 — α-grid resolution for the objective minimization
/// (paper: 0.1 steps).
pub fn grid_resolution(lab: &mut Lab) -> Report {
    let ctx = Ctx::new(lab);
    let mut rows = Vec::new();
    for steps in [2usize, 4, 10, 20, 100] {
        let mut config = EasConfig::new(Objective::EnergyDelay);
        config.alpha_search = easched_core::AlphaSearch::Grid(steps);
        let eff = ctx.eas_efficiency(&lab.desktop, &lab.desktop_model, &config);
        rows.push((format!("grid 1/{steps}"), eff));
    }
    let mut config = EasConfig::new(Objective::EnergyDelay);
    config.alpha_search = easched_core::AlphaSearch::GoldenSection { tol: 1e-4 };
    rows.push((
        "golden section (continuous)".to_string(),
        ctx.eas_efficiency(&lab.desktop, &lab.desktop_model, &config),
    ));
    study_report(
        "ablation-grid",
        "GPU-offload grid resolution",
        "grid step",
        rows,
        "the paper evaluates the objective in 0.1 increments and notes the cost is \
         negligible; finer grids change decisions only marginally because the model \
         error exceeds the grid error",
    )
}

/// DESIGN.md §5.3 — eight workload categories vs a single pooled power
/// curve.
pub fn categories(lab: &mut Lab) -> Report {
    let ctx = Ctx::new(lab);
    let (_, sweeps) = characterize_with_sweeps(&lab.desktop, &CharacterizationConfig::default());

    // Pooled model: one fit over every sweep point, replicated to all eight
    // class slots.
    let xs: Vec<f64> = sweeps
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.alpha))
        .collect();
    let ys: Vec<f64> = sweeps
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.watts))
        .collect();
    let pooled_fit = polyfit(&xs, &ys, 6).expect("pooled sweep fittable");
    let pooled_curves: Vec<PowerCurve> = WorkloadClass::all()
        .into_iter()
        .map(|c| {
            PowerCurve::new(
                c,
                pooled_fit.poly().clone(),
                pooled_fit.rmse(),
                pooled_fit.samples(),
            )
        })
        .collect();
    let pooled = PowerModel::new(lab.desktop.name, pooled_curves);

    let config = EasConfig::new(Objective::EnergyDelay);
    let rows = vec![
        (
            "1 pooled curve".to_string(),
            ctx.eas_efficiency(&lab.desktop, &pooled, &config),
        ),
        (
            "8 per-category curves (paper)".to_string(),
            ctx.eas_efficiency(&lab.desktop, &lab.desktop_model, &config),
        ),
    ];
    study_report(
        "ablation-categories",
        "Eight workload categories vs one pooled power curve",
        "power model",
        rows,
        "pooling erases the compute/memory power difference (≈55 W vs ≈63 W combined) \
         and the short-burst transients, degrading α choices",
    )
}

/// DESIGN.md §5.4 — profiling strategy: fraction profiled and convergence
/// stopping.
pub fn profile_strategy(lab: &mut Lab) -> Report {
    let ctx = Ctx::new(lab);
    let mut rows = Vec::new();
    for (fraction, stable, label) in [
        (0.5, 0, "half, no early stop (paper Fig 7)"),
        (0.5, 3, "half, stop when α stable ×3 (default)"),
        (0.25, 3, "quarter, stop when stable"),
        (0.1, 3, "tenth, stop when stable"),
    ] {
        let mut config = EasConfig::new(Objective::EnergyDelay);
        config.profile_fraction = fraction;
        config.profile_stable_rounds = stable;
        let eff = ctx.eas_efficiency(&lab.desktop, &lab.desktop_model, &config);
        rows.push((label.to_string(), eff));
    }
    study_report(
        "ablation-profile",
        "Repeated-profiling budget (size-based strategy)",
        "strategy",
        rows,
        "profiling runs both devices at combined-mode power; stopping once the α \
         estimate converges keeps the overhead near zero on single-invocation kernels",
    )
}

/// DESIGN.md §5.5 — sample-weighted α accumulation vs last-value.
pub fn accumulation(lab: &mut Lab) -> Report {
    let ctx = Ctx::new(lab);
    let mut rows = Vec::new();
    for (acc, label) in [
        (
            easched_core::Accumulation::SampleWeighted,
            "sample-weighted (paper)",
        ),
        (easched_core::Accumulation::LastValue, "last value"),
    ] {
        let mut config = EasConfig::new(Objective::EnergyDelay);
        config.accumulation = acc;
        let eff = ctx.eas_efficiency(&lab.desktop, &lab.desktop_model, &config);
        rows.push((label.to_string(), eff));
    }
    study_report(
        "ablation-accum",
        "Offload-ratio accumulation across invocations",
        "accumulation",
        rows,
        "sample weighting lets early small-N CPU-only invocations and later \
         re-profiles average out per-invocation noise on irregular kernels",
    )
}

/// DESIGN.md §5.6 — classifier threshold sensitivity.
pub fn thresholds(lab: &mut Lab) -> Report {
    let ctx = Ctx::new(lab);
    let mut rows = Vec::new();
    for (mem, short, label) in [
        (0.33, 0.100, "0.33 miss/load, 100 ms (paper)"),
        (0.20, 0.100, "0.20 miss/load"),
        (0.50, 0.100, "0.50 miss/load"),
        (0.33, 0.050, "50 ms short/long"),
        (0.33, 0.200, "200 ms short/long"),
    ] {
        let mut config = EasConfig::new(Objective::EnergyDelay);
        config.classifier = Classifier {
            memory_threshold: mem,
            short_threshold: short,
        };
        let eff = ctx.eas_efficiency(&lab.desktop, &lab.desktop_model, &config);
        rows.push((label.to_string(), eff));
    }
    study_report(
        "ablation-thresholds",
        "Classifier threshold sensitivity",
        "thresholds",
        rows,
        "the paper notes both thresholds were sufficient for all twelve workloads on \
         both platforms; moderate perturbations mainly move borderline workloads \
         between adjacent curves",
    )
}

/// Extension study: a kernel whose device balance *drifts* mid-run — the
/// case §3.1 motivates with "for workloads where the same kernel behaves
/// differently over time, we repeat profiling".
pub fn drift(lab: &mut Lab) -> Report {
    use easched_runtime::Scheduler;

    let platform = &lab.desktop;
    // Phase A: GPU-friendly; phase B: the same kernel turns CPU-friendly
    // (e.g. its data becomes branch-divergent on the GPU).
    let traits_a = easched_sim::KernelTraits::builder("drift")
        .cpu_rate(3.0e6)
        .gpu_rate(7.5e6)
        .memory_intensity(0.2)
        .build();
    let traits_b = easched_sim::KernelTraits::builder("drift")
        .cpu_rate(7.5e6)
        .gpu_rate(1.5e6)
        .memory_intensity(0.2)
        .build();
    let half = InvocationTrace {
        sizes: vec![262_144; 40],
    };

    let run_pair = |mut sched: &mut dyn Scheduler| {
        let mut machine = Machine::new(platform.clone());
        let a = replay_trace(&mut machine, &traits_a, 1, &half, &mut sched);
        let b = replay_trace(&mut machine, &traits_b, 1, &half, &mut sched);
        Objective::EnergyDelay.of_totals(a.energy_joules + b.energy_joules, a.time + b.time)
    };

    // Drift-aware fixed-α oracle over the whole run.
    let mut oracle = f64::INFINITY;
    for i in 0..=10 {
        let mut fixed = easched_runtime::scheduler::FixedAlpha::new(i as f64 / 10.0);
        oracle = oracle.min(run_pair(&mut fixed));
    }

    let mut rows = Vec::new();
    for (reprofile, label) in [
        (None, "no re-profiling (strict Fig 7 reuse)"),
        (Some(8), "re-profile every 8 invocations"),
        (Some(2), "re-profile every 2 invocations"),
    ] {
        let mut config = EasConfig::new(Objective::EnergyDelay);
        config.reprofile_every = reprofile;
        let mut eas = EasScheduler::new(lab.desktop_model.clone(), config);
        let score = run_pair(&mut eas);
        rows.push(vec![label.to_string(), format!("{:.3}", oracle / score)]);
    }
    let mut report = Report::new(
        "ablation-drift",
        "Re-profiling under mid-run behaviour drift (extension)",
    );
    report.attach_csv(
        "ablation-drift",
        csv(&["strategy", "edp_efficiency_vs_drift_oracle"], &rows),
    );
    report.line(md_table(
        &["strategy", "EDP efficiency vs drift-aware fixed Oracle"],
        &rows,
    ));
    report.line(
        "- without re-profiling, the α learned in the GPU-friendly phase is reused          after the kernel turns CPU-friendly; periodic re-profiling recovers most of          the loss, at near-zero overhead (§3.1).",
    );
    report
}

/// Runs every ablation study.
pub fn all(lab: &mut Lab) -> Vec<Report> {
    vec![
        poly_order(lab),
        grid_resolution(lab),
        categories(lab),
        profile_strategy(lab),
        accumulation(lab),
        thresholds(lab),
        drift(lab),
    ]
}
