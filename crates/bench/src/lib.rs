//! Experiment harness for the `easched` reproduction: regenerates every
//! table and figure of the CGO'16 evaluation and runs the ablation studies
//! listed in `DESIGN.md` §5.
//!
//! The entry point is the `figures` binary:
//!
//! ```text
//! cargo run --release -p easched-bench --bin figures -- all
//! cargo run --release -p easched-bench --bin figures -- fig9
//! cargo run --release -p easched-bench --bin figures -- ablation-poly
//! ```
//!
//! Results are written under `results/` as CSV + markdown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod chaos;
pub mod experiments;
pub mod report;
pub mod telemetry;

pub use experiments::Lab;
pub use report::Report;
