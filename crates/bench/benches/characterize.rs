//! Cost of the one-time black-box power characterization (Figures 5–6):
//! single sweep points and the full eight-category fit.

use criterion::{criterion_group, criterion_main, Criterion};
use easched_core::characterize::{measure_point, sweep_category};
use easched_core::{characterize, CharacterizationConfig};
use easched_kernels::microbench::MicroBenchmark;
use easched_sim::Platform;
use std::hint::black_box;
use std::time::Duration;

fn bench_characterize(c: &mut Criterion) {
    let platform = Platform::haswell_desktop();
    let mut group = c.benchmark_group("characterize");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let long = MicroBenchmark::for_platform(&platform, true, false, false);
    group.bench_function("measure_point_long_memory", |b| {
        b.iter(|| measure_point(black_box(&platform), &long, 0.5, 1))
    });

    let short = MicroBenchmark::for_platform(&platform, false, true, true);
    group.bench_function("sweep_short_compute_11pts", |b| {
        b.iter(|| {
            sweep_category(
                black_box(&platform),
                &short,
                &CharacterizationConfig {
                    alpha_steps: 10,
                    ..Default::default()
                },
            )
        })
    });

    group.bench_function("full_characterization", |b| {
        b.iter(|| {
            characterize(
                black_box(&platform),
                &CharacterizationConfig {
                    alpha_steps: 10,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_characterize);
criterion_main!(benches);
