//! Numeric substrate costs: the sixth-order fit and the α grid search used
//! on every scheduling decision.

use criterion::{criterion_group, criterion_main, Criterion};
use easched_num::{grid_min, polyfit, Polynomial};
use std::hint::black_box;
use std::time::Duration;

fn bench_numeric(c: &mut Criterion) {
    let mut group = c.benchmark_group("numeric");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));

    // A realistic desktop power curve.
    let curve = Polynomial::new(vec![45.2, -37.9, 293.3, -849.5, 1129.7, -708.5, 170.0]);
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    let ys: Vec<f64> = xs.iter().map(|&x| curve.eval(x)).collect();

    group.bench_function("polyfit_order6_21pts", |b| {
        b.iter(|| polyfit(black_box(&xs), black_box(&ys), 6).unwrap())
    });

    group.bench_function("poly_eval", |b| b.iter(|| curve.eval(black_box(0.37))));

    group.bench_function("grid_min_11pts", |b| {
        b.iter(|| grid_min(0.0, 1.0, 10, |a| curve.eval(a) * (1.0 - a + 0.2)))
    });

    group.finish();
}

criterion_group!(benches, bench_numeric);
criterion_main!(benches);
