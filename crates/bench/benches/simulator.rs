//! Simulator throughput: how fast virtual phases execute (this bounds the
//! cost of oracle sweeps and trace replays).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use easched_sim::{KernelTraits, Machine, PhasePlan, Platform};
use std::hint::black_box;
use std::time::Duration;

fn bench_simulator(c: &mut Criterion) {
    let traits = KernelTraits::builder("bench")
        .cpu_rate(4.0e6)
        .gpu_rate(6.0e6)
        .memory_intensity(0.9)
        .build();

    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    for n in [10_000u64, 1_000_000, 10_000_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("split_phase_{n}_items"), |b| {
            b.iter(|| {
                let mut m = Machine::new(Platform::haswell_desktop());
                m.run_phase(black_box(&traits), &PhasePlan::split(n, 0.6))
            })
        });
    }

    group.bench_function("profile_step", |b| {
        b.iter(|| {
            let mut m = Machine::new(Platform::haswell_desktop());
            m.run_phase(black_box(&traits), &PhasePlan::profile(1_000_000, 2_048))
        })
    });

    group.bench_function("idle_one_second", |b| {
        b.iter(|| {
            let mut m = Machine::new(Platform::haswell_desktop());
            m.idle(1.0);
            black_box(m.total_joules())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
