//! Functional throughput of the benchmark kernels themselves (items/s of
//! real Rust work) — the cost of recording an invocation trace.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use easched_kernels::workload::{record_trace, SerialInvoker, Workload};
use easched_kernels::{
    blackscholes::BlackScholes, mandelbrot::Mandelbrot, matmul::MatMul, seismic::Seismic,
    skiplist::SkipList,
};
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    let bs = BlackScholes::new(16_384, 1, 1, BlackScholes::default_profile());
    group.throughput(Throughput::Elements(16_384));
    group.bench_function("blackscholes_16k_options", |b| {
        b.iter(|| bs.drive(&mut SerialInvoker))
    });

    let mb = Mandelbrot::new(256, 192, 128, Mandelbrot::default_profile());
    group.throughput(Throughput::Elements(256 * 192));
    group.bench_function("mandelbrot_256x192", |b| {
        b.iter(|| mb.drive(&mut SerialInvoker))
    });

    let mm = MatMul::new(96, 1, MatMul::default_profile());
    group.throughput(Throughput::Elements(96 * 96));
    group.bench_function("matmul_96", |b| b.iter(|| mm.drive(&mut SerialInvoker)));

    let sl = SkipList::new(50_000, 50_000, 1, SkipList::default_profile());
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("skiplist_50k_lookups", |b| {
        b.iter(|| sl.drive(&mut SerialInvoker))
    });

    let sm = Seismic::new(129, 97, 10, Seismic::default_profile());
    group.throughput(Throughput::Elements(129 * 97 * 10));
    group.bench_function("seismic_129x97x10", |b| {
        b.iter(|| sm.drive(&mut SerialInvoker))
    });

    let bfs = easched_kernels::graphs::Bfs::new(
        64,
        64,
        1,
        easched_kernels::graphs::Bfs::default_profile(),
    );
    group.bench_function("bfs_64x64_road_trace", |b| b.iter(|| record_trace(&bfs)));

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
