//! Work-stealing pool scaling: `parallel_for` wall time per item versus
//! worker count.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use easched_runtime::parallel_for;
use std::hint::black_box;
use std::time::Duration;

fn busy_item(i: usize) {
    let mut acc = i as u64;
    for k in 0..64u64 {
        acc = acc
            .wrapping_mul(0x9E3779B97F4A7C15)
            .rotate_left((k % 31) as u32);
    }
    black_box(acc);
}

fn bench_pool(c: &mut Criterion) {
    let n = 200_000u64;
    let mut group = c.benchmark_group("pool");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(n));
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("parallel_for_{workers}w"), |b| {
            b.iter(|| parallel_for(n, workers, &busy_item))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
