//! The paper's §5 overhead claim: one EAS scheduling decision costs
//! 1–2 µs. This bench times the decision path (classification + power-curve
//! lookup + α grid minimization) in isolation, plus the *reuse path*
//! (a table hit for an already-learned kernel) under reader contention —
//! the case the sharded [`KernelTable`] exists for.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use easched_core::{
    characterize, Accumulation, CharacterizationConfig, EasConfig, EasScheduler, KernelTable,
    Objective,
};
use easched_runtime::Observation;
use easched_sim::{CounterSnapshot, Platform};
use std::hint::black_box;
use std::time::Duration;

fn observation() -> Observation {
    Observation {
        elapsed: 0.001,
        cpu_items: 1_000,
        gpu_items: 2_048,
        cpu_time: 0.001,
        gpu_time: 0.001,
        energy_joules: 0.05,
        counters: CounterSnapshot {
            instructions: 1e6,
            loads: 2e5,
            l3_misses: 1e5,
        },
    }
}

fn bench_decision(c: &mut Criterion) {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &CharacterizationConfig::default());
    let obs = observation();

    let mut group = c.benchmark_group("decision");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));

    for (name, objective) in [
        ("edp", Objective::EnergyDelay),
        ("energy", Objective::Energy),
        ("time", Objective::Time),
    ] {
        let mut eas = EasScheduler::new(model.clone(), EasConfig::new(objective));
        group.bench_function(format!("decide_alpha_{name}"), |b| {
            b.iter(|| eas.decide_alpha(black_box(&obs), black_box(500_000)))
        });
    }

    // Finer grid: the cost should scale roughly linearly with grid points.
    let mut cfg = EasConfig::new(Objective::EnergyDelay);
    cfg.alpha_search = easched_core::AlphaSearch::Grid(100);
    let mut eas = EasScheduler::new(model.clone(), cfg);
    group.bench_function("decide_alpha_grid100", |b| {
        b.iter(|| eas.decide_alpha(black_box(&obs), black_box(500_000)))
    });

    let mut cfg = EasConfig::new(Objective::EnergyDelay);
    cfg.alpha_search = easched_core::AlphaSearch::GoldenSection { tol: 1e-4 };
    let mut eas = EasScheduler::new(model, cfg);
    group.bench_function("decide_alpha_golden", |b| {
        b.iter(|| eas.decide_alpha(black_box(&obs), black_box(500_000)))
    });
    group.finish();
}

/// The reuse path under contention: N threads probing learned kernels in
/// one shared table. `same_kernel` is the worst case — every probe hits
/// one shard (read lock + one atomic increment); `spread` distributes
/// probes over 64 kernels as a multi-programmed mix would. Throughput
/// should scale near-linearly with readers, since the path never takes a
/// write lock.
fn bench_reuse_contention(c: &mut Criterion) {
    const PROBES_PER_ITER: u64 = 100_000;
    const KERNELS: u64 = 64;

    let table = KernelTable::new();
    for k in 0..KERNELS {
        table.accumulate(k, 0.5, 1_000.0, Accumulation::SampleWeighted);
    }
    let table = &table;

    let mut group = c.benchmark_group("reuse_contention");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(PROBES_PER_ITER));

    for threads in [1u64, 2, 4, 8] {
        let per_thread = PROBES_PER_ITER / threads;
        group.bench_function(format!("same_kernel_{threads}thr"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        s.spawn(|| {
                            for _ in 0..per_thread {
                                black_box(table.note_reuse(black_box(7)));
                            }
                        });
                    }
                });
            })
        });
        group.bench_function(format!("spread_{threads}thr"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..threads {
                        s.spawn(move || {
                            for i in 0..per_thread {
                                let k = (t * per_thread + i) % KERNELS;
                                black_box(table.note_reuse(black_box(k)));
                            }
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision, bench_reuse_contention);
criterion_main!(benches);
