//! The paper's §5 overhead claim: one EAS scheduling decision costs
//! 1–2 µs. This bench times the decision path (classification + power-curve
//! lookup + α grid minimization) in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use easched_core::{characterize, CharacterizationConfig, EasConfig, EasScheduler, Objective};
use easched_runtime::Observation;
use easched_sim::{CounterSnapshot, Platform};
use std::hint::black_box;
use std::time::Duration;

fn observation() -> Observation {
    Observation {
        elapsed: 0.001,
        cpu_items: 1_000,
        gpu_items: 2_048,
        cpu_time: 0.001,
        gpu_time: 0.001,
        energy_joules: 0.05,
        counters: CounterSnapshot {
            instructions: 1e6,
            loads: 2e5,
            l3_misses: 1e5,
        },
    }
}

fn bench_decision(c: &mut Criterion) {
    let platform = Platform::haswell_desktop();
    let model = characterize(&platform, &CharacterizationConfig::default());
    let obs = observation();

    let mut group = c.benchmark_group("decision");
    group.sample_size(30).measurement_time(Duration::from_secs(2));

    for (name, objective) in [
        ("edp", Objective::EnergyDelay),
        ("energy", Objective::Energy),
        ("time", Objective::Time),
    ] {
        let mut eas = EasScheduler::new(model.clone(), EasConfig::new(objective));
        group.bench_function(format!("decide_alpha_{name}"), |b| {
            b.iter(|| eas.decide_alpha(black_box(&obs), black_box(500_000)))
        });
    }

    // Finer grid: the cost should scale roughly linearly with grid points.
    let mut cfg = EasConfig::new(Objective::EnergyDelay);
    cfg.alpha_search = easched_core::AlphaSearch::Grid(100);
    let mut eas = EasScheduler::new(model.clone(), cfg);
    group.bench_function("decide_alpha_grid100", |b| {
        b.iter(|| eas.decide_alpha(black_box(&obs), black_box(500_000)))
    });

    let mut cfg = EasConfig::new(Objective::EnergyDelay);
    cfg.alpha_search = easched_core::AlphaSearch::GoldenSection { tol: 1e-4 };
    let mut eas = EasScheduler::new(model, cfg);
    group.bench_function("decide_alpha_golden", |b| {
        b.iter(|| eas.decide_alpha(black_box(&obs), black_box(500_000)))
    });
    group.finish();
}

criterion_group!(benches, bench_decision);
criterion_main!(benches);
