//! Telemetry overhead: the full scheduling path with tracing off must be
//! cost-identical to the pre-telemetry code (the acceptance bar is <2%
//! on the decision path), and with tracing on the per-invocation record
//! cost must stay far below the paper's 1–2 µs decision budget.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use easched_core::{
    characterize, CharacterizationConfig, DecisionRecord, EasConfig, EasScheduler, InvocationPath,
    Objective, RingSink, TelemetrySink,
};
use easched_runtime::backend::test_support::FakeBackend;
use easched_runtime::{Backend, Scheduler};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// The dominant steady-state case: a learned kernel arriving again (one
/// table probe + one split), with and without a sink attached.
fn bench_table_hit_path(c: &mut Criterion) {
    let platform = easched_sim::Platform::haswell_desktop();
    let model = characterize(&platform, &CharacterizationConfig::default());

    let mut group = c.benchmark_group("telemetry_invocation");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));

    for (name, sink) in [
        ("table_hit_untraced", None),
        (
            "table_hit_traced",
            Some(Arc::new(RingSink::with_capacity(1 << 15)) as Arc<dyn TelemetrySink>),
        ),
    ] {
        let mut eas = EasScheduler::new(model.clone(), EasConfig::new(Objective::EnergyDelay));
        // Learn kernel 7 once so the timed loop is pure reuse.
        let mut warmup = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(7, &mut warmup);
        eas.set_telemetry(sink);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut backend = FakeBackend::new(100_000, 1.0e6, 2.0e6);
                eas.schedule(black_box(7), &mut backend);
                black_box(backend.remaining())
            })
        });
    }
    group.finish();
}

/// The raw sink cost: metrics update + lock-free ring publication of one
/// encoded record.
fn bench_sink_record(c: &mut Criterion) {
    let sink = RingSink::with_capacity(1 << 15);
    let record = DecisionRecord {
        seq: 0,
        kernel: 7,
        path: InvocationPath::Profiled,
        class: Some(3),
        rounds: 4,
        r_c: 1.0e6,
        r_g: 2.0e6,
        alpha: 0.7,
        predicted_power: 45.0,
        predicted_time: 0.05,
        predicted_objective: 0.11,
        profile_time: 0.002,
        profile_energy: 0.1,
        split_time: 0.05,
        split_energy: 2.2,
        items: 100_000,
        decide_nanos: 900,
        ..Default::default()
    };

    let mut group = c.benchmark_group("telemetry_sink");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(1));
    group.bench_function("record", |b| b.iter(|| sink.record(black_box(&record))));
    group.finish();
}

criterion_group!(benches, bench_table_hit_path, bench_sink_record);
criterion_main!(benches);
