//! High-level user-facing runtime: characterize once, then run workloads
//! under the energy-aware scheduler.

use crate::eas::{EasConfig, EasScheduler};
use crate::power_model::PowerModel;
use easched_kernels::{Verification, Workload};
use easched_runtime::{run_workload, RunMetrics};
use easched_sim::{Machine, Platform};

/// Outcome of running one workload under the energy-aware runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// End-to-end execution time, seconds.
    pub time: f64,
    /// Package energy, joules.
    pub energy_joules: f64,
    /// Energy-delay product, joule-seconds.
    pub edp: f64,
    /// Functional verification of the workload's output.
    pub verification: Verification,
    /// Raw totals.
    pub metrics: RunMetrics,
}

/// The user-facing energy-aware runtime: a machine plus an
/// [`EasScheduler`] with its cross-workload kernel table.
///
/// # Examples
///
/// ```
/// use easched_core::{characterize, CharacterizationConfig, EasConfig, EasRuntime, Objective};
/// use easched_kernels::suite;
/// use easched_sim::Platform;
///
/// let platform = Platform::haswell_desktop();
/// let model = characterize(&platform, &CharacterizationConfig::default());
/// let mut runtime = EasRuntime::new(platform, model, EasConfig::new(Objective::EnergyDelay));
/// let outcome = runtime.run(suite::blackscholes_small().as_ref());
/// assert!(outcome.verification.is_passed());
/// assert!(outcome.edp > 0.0);
/// ```
#[derive(Debug)]
pub struct EasRuntime {
    machine: Machine,
    scheduler: EasScheduler,
}

impl EasRuntime {
    /// Creates a runtime for `platform` from its characterized `model`.
    pub fn new(platform: Platform, model: PowerModel, config: EasConfig) -> EasRuntime {
        EasRuntime {
            machine: Machine::new(platform),
            scheduler: EasScheduler::new(model, config),
        }
    }

    /// Runs a workload to completion (functional execution + verification),
    /// partitioning every kernel invocation with EAS.
    pub fn run(&mut self, workload: &dyn Workload) -> RunOutcome {
        let (metrics, verification) =
            run_workload(&mut self.machine, workload, &mut self.scheduler);
        RunOutcome {
            time: metrics.time,
            energy_joules: metrics.energy_joules,
            edp: metrics.edp(),
            verification,
            metrics,
        }
    }

    /// Access to the scheduler (e.g. to inspect learned ratios).
    pub fn scheduler(&self) -> &EasScheduler {
        &self.scheduler
    }

    /// The machine's current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.machine.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizationConfig};
    use crate::objective::Objective;
    use easched_kernels::suite;

    fn runtime() -> EasRuntime {
        let mut platform = Platform::haswell_desktop();
        platform.pcu.measurement_noise = 0.0;
        let model = characterize(
            &platform,
            &CharacterizationConfig {
                alpha_steps: 10,
                ..Default::default()
            },
        );
        EasRuntime::new(platform, model, EasConfig::new(Objective::EnergyDelay))
    }

    #[test]
    fn runs_and_verifies_workloads() {
        let mut rt = runtime();
        let out = rt.run(suite::blackscholes_small().as_ref());
        assert!(out.verification.is_passed());
        assert!(out.time > 0.0 && out.energy_joules > 0.0);
        assert!((out.edp - out.energy_joules * out.time).abs() < 1e-9);
    }

    #[test]
    fn kernel_table_persists_across_workload_runs() {
        let mut rt = runtime();
        rt.run(suite::mandelbrot_small().as_ref());
        let first_decisions = rt.scheduler().decisions();
        rt.run(suite::mandelbrot_small().as_ref());
        // Second run of the same kernel reuses G: no new decisions.
        assert_eq!(rt.scheduler().decisions(), first_decisions);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut rt = runtime();
        let t0 = rt.now();
        rt.run(suite::blackscholes_small().as_ref());
        assert!(rt.now() > t0);
    }
}
