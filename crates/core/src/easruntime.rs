//! High-level user-facing runtime: characterize once, then run workloads
//! under the energy-aware scheduler.
//!
//! A runtime drives one workload stream. It either owns its scheduler
//! exclusively ([`EasRuntime::new`]) or holds a handle to an
//! [`Arc<SharedEas>`] ([`EasRuntime::with_shared`]), in which case any
//! number of runtimes — typically one per thread — learn into and reuse
//! one global kernel table G.

use crate::eas::{EasConfig, EasScheduler};
use crate::journal::StoreError;
use crate::power_model::PowerModel;
use crate::shared::{SharedEas, SharedEasExt};
use easched_kernels::{Verification, Workload};
use easched_runtime::{run_workload, Backend, KernelId, RunMetrics, Scheduler, Shared};
use easched_sim::{Machine, Platform};
use std::path::Path;
use std::sync::Arc;

/// Outcome of running one workload under the energy-aware runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// End-to-end execution time, seconds.
    pub time: f64,
    /// Package energy, joules.
    pub energy_joules: f64,
    /// Energy-delay product, joule-seconds.
    pub edp: f64,
    /// Functional verification of the workload's output.
    pub verification: Verification,
    /// Raw totals.
    pub metrics: RunMetrics,
}

/// The scheduling frontend a runtime drives: an owned exclusive scheduler,
/// or a per-stream handle onto a shared one.
#[derive(Debug)]
enum Driver {
    Exclusive(Box<EasScheduler>),
    Shared(Shared<SharedEas>),
}

impl Scheduler for Driver {
    fn name(&self) -> &str {
        match self {
            Driver::Exclusive(s) => s.name(),
            Driver::Shared(s) => s.name(),
        }
    }

    fn schedule(&mut self, kernel: KernelId, backend: &mut dyn Backend) {
        match self {
            Driver::Exclusive(s) => s.schedule(kernel, backend),
            Driver::Shared(s) => s.schedule(kernel, backend),
        }
    }
}

/// The user-facing energy-aware runtime: a machine plus an
/// [`EasScheduler`] with its cross-workload kernel table.
///
/// # Examples
///
/// ```
/// use easched_core::{characterize, CharacterizationConfig, EasConfig, EasRuntime, Objective};
/// use easched_kernels::suite;
/// use easched_sim::Platform;
///
/// let platform = Platform::haswell_desktop();
/// let model = characterize(&platform, &CharacterizationConfig::default());
/// let mut runtime = EasRuntime::new(platform, model, EasConfig::new(Objective::EnergyDelay));
/// let outcome = runtime.run(suite::blackscholes_small().as_ref());
/// assert!(outcome.verification.is_passed());
/// assert!(outcome.edp > 0.0);
/// ```
#[derive(Debug)]
pub struct EasRuntime {
    machine: Machine,
    driver: Driver,
}

impl EasRuntime {
    /// Creates a runtime for `platform` from its characterized `model`,
    /// with an exclusively owned scheduler.
    pub fn new(platform: Platform, model: PowerModel, config: EasConfig) -> EasRuntime {
        EasRuntime {
            machine: Machine::new(platform),
            driver: Driver::Exclusive(Box::new(EasScheduler::new(model, config))),
        }
    }

    /// Creates a runtime driving a *shared* scheduler: every runtime
    /// constructed from the same `Arc<SharedEas>` reads and writes one
    /// kernel table, so a ratio learned by one workload stream is
    /// immediately reused by the others.
    ///
    /// ```
    /// use easched_core::{characterize, CharacterizationConfig, EasConfig, EasRuntime,
    ///                    Objective, SharedEas};
    /// use easched_kernels::suite;
    /// use easched_sim::Platform;
    /// use std::sync::Arc;
    ///
    /// let platform = Platform::haswell_desktop();
    /// let model = characterize(&platform, &CharacterizationConfig::default());
    /// let eas = SharedEas::new(model, EasConfig::new(Objective::EnergyDelay));
    /// std::thread::scope(|s| {
    ///     for _ in 0..2 {
    ///         let eas = Arc::clone(&eas);
    ///         s.spawn(move || {
    ///             let mut rt = EasRuntime::with_shared(Platform::haswell_desktop(), eas);
    ///             assert!(rt.run(suite::blackscholes_small().as_ref()).verification.is_passed());
    ///         });
    ///     }
    /// });
    /// ```
    pub fn with_shared(platform: Platform, scheduler: Arc<SharedEas>) -> EasRuntime {
        EasRuntime {
            machine: Machine::new(platform),
            driver: Driver::Shared(scheduler.handle()),
        }
    }

    /// Creates a runtime around an already-built exclusive scheduler —
    /// for callers that configured the scheduler first (e.g. attached a
    /// telemetry sink with [`EasScheduler::set_telemetry`], or warmed its
    /// table) before handing it to a runtime.
    pub fn with_scheduler(platform: Platform, scheduler: EasScheduler) -> EasRuntime {
        EasRuntime {
            machine: Machine::new(platform),
            driver: Driver::Exclusive(Box::new(scheduler)),
        }
    }

    /// Like [`EasRuntime::new`], but the scheduler's kernel table is
    /// recovered from — and journaled to — the crash-safe store rooted at
    /// `dir` (see [`EasScheduler::with_persistence`]): after a `kill -9`,
    /// a new runtime opened on the same directory resumes with every
    /// learned α, taint mark, and the breaker state (DESIGN.md §11).
    pub fn with_persistence(
        platform: Platform,
        model: PowerModel,
        config: EasConfig,
        dir: impl AsRef<Path>,
    ) -> Result<EasRuntime, StoreError> {
        Ok(EasRuntime {
            machine: Machine::new(platform),
            driver: Driver::Exclusive(Box::new(EasScheduler::with_persistence(
                model, config, dir,
            )?)),
        })
    }

    /// Forces a snapshot + journal compaction of the underlying store —
    /// mode-agnostic; no-op when the scheduler has no persistence.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        match &self.driver {
            Driver::Exclusive(s) => s.checkpoint(),
            Driver::Shared(s) => s.policy().checkpoint(),
        }
    }

    /// Runs a workload to completion (functional execution + verification),
    /// partitioning every kernel invocation with EAS.
    pub fn run(&mut self, workload: &dyn Workload) -> RunOutcome {
        let (metrics, verification) = run_workload(&mut self.machine, workload, &mut self.driver);
        RunOutcome {
            time: metrics.time,
            energy_joules: metrics.energy_joules,
            edp: metrics.edp(),
            verification,
            metrics,
        }
    }

    /// Access to the scheduler (e.g. to inspect learned ratios).
    ///
    /// # Panics
    ///
    /// Panics for a shared runtime ([`EasRuntime::with_shared`]) — the
    /// scheduler is not exclusively owned there; inspect it through the
    /// `Arc<SharedEas>` instead, or use [`learned_alpha`](Self::learned_alpha),
    /// which works in both modes.
    pub fn scheduler(&self) -> &EasScheduler {
        match &self.driver {
            Driver::Exclusive(s) => s,
            Driver::Shared(_) => {
                panic!("shared runtime: inspect the Arc<SharedEas> instead")
            }
        }
    }

    /// The learned offload ratio for a kernel, if any — mode-agnostic.
    pub fn learned_alpha(&self, kernel: KernelId) -> Option<f64> {
        match &self.driver {
            Driver::Exclusive(s) => s.learned_alpha(kernel),
            Driver::Shared(s) => s.policy().learned_alpha(kernel),
        }
    }

    /// Fault-pipeline telemetry from the underlying scheduler —
    /// mode-agnostic (for a shared runtime the report aggregates every
    /// stream driving the same `Arc<SharedEas>`).
    pub fn health(&self) -> crate::health::HealthReport {
        match &self.driver {
            Driver::Exclusive(s) => s.health(),
            Driver::Shared(s) => s.policy().health(),
        }
    }

    /// The machine's current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.machine.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizationConfig};
    use crate::objective::Objective;
    use easched_kernels::suite;

    fn model_for(platform: &Platform) -> PowerModel {
        characterize(
            platform,
            &CharacterizationConfig {
                alpha_steps: 10,
                ..Default::default()
            },
        )
    }

    fn quiet_platform() -> Platform {
        let mut platform = Platform::haswell_desktop();
        platform.pcu.measurement_noise = 0.0;
        platform
    }

    fn runtime() -> EasRuntime {
        let platform = quiet_platform();
        let model = model_for(&platform);
        EasRuntime::new(platform, model, EasConfig::new(Objective::EnergyDelay))
    }

    #[test]
    fn runs_and_verifies_workloads() {
        let mut rt = runtime();
        let out = rt.run(suite::blackscholes_small().as_ref());
        assert!(out.verification.is_passed());
        assert!(out.time > 0.0 && out.energy_joules > 0.0);
        assert!((out.edp - out.energy_joules * out.time).abs() < 1e-9);
    }

    #[test]
    fn kernel_table_persists_across_workload_runs() {
        let mut rt = runtime();
        rt.run(suite::mandelbrot_small().as_ref());
        let first_decisions = rt.scheduler().decisions();
        rt.run(suite::mandelbrot_small().as_ref());
        // Second run of the same kernel reuses G: no new decisions.
        assert_eq!(rt.scheduler().decisions(), first_decisions);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut rt = runtime();
        let t0 = rt.now();
        rt.run(suite::blackscholes_small().as_ref());
        assert!(rt.now() > t0);
    }

    #[test]
    fn shared_runtime_matches_exclusive() {
        let platform = quiet_platform();
        let model = model_for(&platform);

        let mut exclusive = EasRuntime::new(
            platform.clone(),
            model.clone(),
            EasConfig::new(Objective::EnergyDelay),
        );
        let a = exclusive.run(suite::blackscholes_small().as_ref());

        let eas = SharedEas::new(model, EasConfig::new(Objective::EnergyDelay));
        let mut shared = EasRuntime::with_shared(platform, Arc::clone(&eas));
        let b = shared.run(suite::blackscholes_small().as_ref());

        // Same machine, same policy, same workload → identical outcome.
        assert_eq!(a, b);
        assert_eq!(
            exclusive.learned_alpha(easched_runtime::kernel_id_of(
                suite::blackscholes_small().as_ref()
            )),
            shared.learned_alpha(easched_runtime::kernel_id_of(
                suite::blackscholes_small().as_ref()
            )),
        );
    }

    #[test]
    fn shared_runtimes_reuse_each_others_learning() {
        let platform = quiet_platform();
        let model = model_for(&platform);
        let eas = SharedEas::new(model, EasConfig::new(Objective::EnergyDelay));

        let mut first = EasRuntime::with_shared(platform.clone(), Arc::clone(&eas));
        first.run(suite::mandelbrot_small().as_ref());
        let decisions_after_first = eas.decisions();
        assert!(decisions_after_first > 0);

        // A *different* runtime sharing the table needs no new decisions.
        let mut second = EasRuntime::with_shared(platform, Arc::clone(&eas));
        second.run(suite::mandelbrot_small().as_ref());
        assert_eq!(eas.decisions(), decisions_after_first);
    }

    #[test]
    #[should_panic(expected = "shared runtime")]
    fn shared_runtime_has_no_exclusive_scheduler() {
        let platform = quiet_platform();
        let model = model_for(&platform);
        let eas = SharedEas::new(model, EasConfig::new(Objective::EnergyDelay));
        let rt = EasRuntime::with_shared(platform, eas);
        let _ = rt.scheduler();
    }
}
