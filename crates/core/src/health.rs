//! Fault-handling state and telemetry: retry policy, the GPU circuit
//! breaker, and health counters.
//!
//! The profile loop consults one [`Health`] per scheduling frontend. Its
//! [`CircuitBreaker`] implements the degradation state machine (DESIGN.md
//! §9): **Closed** (normal scheduling) → after `breaker_threshold`
//! consecutive GPU-implicating faults → **Open** (the GPU is quarantined:
//! invocations run CPU-only, α = 0) → after `quarantine` invocations →
//! **HalfOpen** (one probe invocation re-profiles through the GPU) → a
//! clean probe closes the breaker (recovery), a faulty one re-opens it for
//! another quarantine period. [`HealthStats`] counts every event with
//! relaxed atomics so both the exclusive and the shared frontend can
//! report telemetry without locks.

use crate::selfheal::{DriftMonitor, DriftPolicy, Watchdog, WatchdogPolicy};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Tunable fault-handling policy, carried by
/// [`EasConfig`](crate::EasConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPolicy {
    /// Consecutive rejected profiling rounds tolerated per invocation
    /// before the invocation degrades (runs its remainder without further
    /// profiling).
    pub max_retries: u32,
    /// Consecutive GPU-implicating faults that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// Invocations the GPU stays quarantined (CPU-only) after a trip; the
    /// K-th invocation after the trip is the recovery probe.
    pub quarantine: u64,
}

impl Default for FaultPolicy {
    fn default() -> FaultPolicy {
        FaultPolicy {
            max_retries: 3,
            breaker_threshold: 3,
            quarantine: 8,
        }
    }
}

/// Lock-free event counters for the fault pipeline.
#[derive(Debug, Default)]
pub struct HealthStats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    trips: AtomicU64,
    probes: AtomicU64,
    recoveries: AtomicU64,
    taints: AtomicU64,
    quarantined: AtomicU64,
    drift_reprofiles: AtomicU64,
    reprofiles_suppressed: AtomicU64,
    watchdog_trips: AtomicU64,
    split_overruns: AtomicU64,
    throttled: AtomicU64,
    requests_shed: AtomicU64,
    requests_queued: AtomicU64,
    quota_denials: AtomicU64,
    brownout_transitions: AtomicU64,
}

macro_rules! note {
    ($($method:ident => $field:ident),* $(,)?) => {
        $(pub(crate) fn $method(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        })*
    };
}

impl HealthStats {
    note! {
        note_accepted => accepted,
        note_rejected => rejected,
        note_retry => retries,
        note_degraded => degraded,
        note_trip => trips,
        note_probe => probes,
        note_recovery => recoveries,
        note_taint => taints,
        note_quarantined => quarantined,
        note_drift_reprofile => drift_reprofiles,
        note_reprofile_suppressed => reprofiles_suppressed,
        note_watchdog_trip => watchdog_trips,
        note_split_overrun => split_overruns,
        note_throttled => throttled,
        note_request_shed => requests_shed,
        note_request_queued => requests_queued,
        note_quota_denial => quota_denials,
        note_brownout_transition => brownout_transitions,
    }

    /// One plain-value read of every counter — the single point where
    /// relaxed atomics become ordinary integers. `report()`, `Clone`, and
    /// the frontends' `health()` all route through this.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            trips: self.trips.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            taints: self.taints.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            drift_reprofiles: self.drift_reprofiles.load(Ordering::Relaxed),
            reprofiles_suppressed: self.reprofiles_suppressed.load(Ordering::Relaxed),
            watchdog_trips: self.watchdog_trips.load(Ordering::Relaxed),
            split_overruns: self.split_overruns.load(Ordering::Relaxed),
            throttled: self.throttled.load(Ordering::Relaxed),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            requests_queued: self.requests_queued.load(Ordering::Relaxed),
            quota_denials: self.quota_denials.load(Ordering::Relaxed),
            brownout_transitions: self.brownout_transitions.load(Ordering::Relaxed),
        }
    }

    /// A consistent-enough snapshot of all counters, in the public
    /// reporting shape.
    pub fn report(&self) -> HealthReport {
        self.snapshot().into()
    }
}

impl Clone for HealthStats {
    fn clone(&self) -> HealthStats {
        HealthStats::from(self.snapshot())
    }
}

/// A single consistent read of every [`HealthStats`] counter, as plain
/// integers. Field names mirror the counters themselves;
/// [`HealthReport`] is the equivalent user-facing shape with
/// descriptive names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSnapshot {
    /// Profiling observations that passed the guard.
    pub accepted: u64,
    /// Profiling observations rejected as faults.
    pub rejected: u64,
    /// Rejected rounds retried with a backed-off chunk.
    pub retries: u64,
    /// Invocations that gave up profiling and ran degraded.
    pub degraded: u64,
    /// Breaker trips.
    pub trips: u64,
    /// Recovery probes attempted.
    pub probes: u64,
    /// Probes that re-closed the breaker.
    pub recoveries: u64,
    /// Table entries tainted after faulty invocations.
    pub taints: u64,
    /// Invocations quarantined CPU-only.
    pub quarantined: u64,
    /// Re-profiles scheduled by the drift monitor.
    pub drift_reprofiles: u64,
    /// Drift re-profiles deferred by an empty token bucket.
    pub reprofiles_suppressed: u64,
    /// Profiling rounds cancelled by the watchdog deadline.
    pub watchdog_trips: u64,
    /// Chunk executions that overran the split deadline.
    pub split_overruns: u64,
    /// Invocations forced CPU-only by an admission context (brownout).
    pub throttled: u64,
    /// Requests shed by the admission layer.
    pub requests_shed: u64,
    /// Requests queued behind earlier arrivals.
    pub requests_queued: u64,
    /// Requests refused by an exhausted tenant GPU quota.
    pub quota_denials: u64,
    /// Brownout-ladder rung changes.
    pub brownout_transitions: u64,
}

impl From<HealthSnapshot> for HealthReport {
    fn from(s: HealthSnapshot) -> HealthReport {
        HealthReport {
            observations_accepted: s.accepted,
            observations_rejected: s.rejected,
            retries: s.retries,
            degraded_invocations: s.degraded,
            breaker_trips: s.trips,
            probes: s.probes,
            recoveries: s.recoveries,
            taints: s.taints,
            quarantined_invocations: s.quarantined,
            drift_reprofiles: s.drift_reprofiles,
            reprofiles_suppressed: s.reprofiles_suppressed,
            watchdog_trips: s.watchdog_trips,
            split_overruns: s.split_overruns,
            throttled_invocations: s.throttled,
            requests_shed: s.requests_shed,
            requests_queued: s.requests_queued,
            quota_denials: s.quota_denials,
            brownout_transitions: s.brownout_transitions,
            // Store counters live in the TableStore, not HealthStats;
            // the scheduler frontends merge them into the report.
            store_io_errors: 0,
            store_degraded: 0,
            store_bytes: 0,
        }
    }
}

impl From<HealthSnapshot> for HealthStats {
    fn from(s: HealthSnapshot) -> HealthStats {
        let stats = HealthStats::default();
        stats.accepted.store(s.accepted, Ordering::Relaxed);
        stats.rejected.store(s.rejected, Ordering::Relaxed);
        stats.retries.store(s.retries, Ordering::Relaxed);
        stats.degraded.store(s.degraded, Ordering::Relaxed);
        stats.trips.store(s.trips, Ordering::Relaxed);
        stats.probes.store(s.probes, Ordering::Relaxed);
        stats.recoveries.store(s.recoveries, Ordering::Relaxed);
        stats.taints.store(s.taints, Ordering::Relaxed);
        stats.quarantined.store(s.quarantined, Ordering::Relaxed);
        stats
            .drift_reprofiles
            .store(s.drift_reprofiles, Ordering::Relaxed);
        stats
            .reprofiles_suppressed
            .store(s.reprofiles_suppressed, Ordering::Relaxed);
        stats
            .watchdog_trips
            .store(s.watchdog_trips, Ordering::Relaxed);
        stats
            .split_overruns
            .store(s.split_overruns, Ordering::Relaxed);
        stats.throttled.store(s.throttled, Ordering::Relaxed);
        stats
            .requests_shed
            .store(s.requests_shed, Ordering::Relaxed);
        stats
            .requests_queued
            .store(s.requests_queued, Ordering::Relaxed);
        stats
            .quota_denials
            .store(s.quota_denials, Ordering::Relaxed);
        stats
            .brownout_transitions
            .store(s.brownout_transitions, Ordering::Relaxed);
        stats
    }
}

/// Snapshot of [`HealthStats`] — the telemetry surfaced by
/// [`EasScheduler::health`](crate::EasScheduler::health) and
/// [`SharedEas::health`](crate::SharedEas::health).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Profiling observations that passed the guard.
    pub observations_accepted: u64,
    /// Profiling observations rejected as faults.
    pub observations_rejected: u64,
    /// Rejected rounds that were retried (with a backed-off chunk).
    pub retries: u64,
    /// Invocations that gave up profiling and ran degraded.
    pub degraded_invocations: u64,
    /// Times the GPU circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Recovery probes attempted while half-open.
    pub probes: u64,
    /// Probes that found the GPU healthy again (breaker re-closed).
    pub recoveries: u64,
    /// Kernel-table entries marked suspect after a faulty invocation.
    pub taints: u64,
    /// Invocations forced to CPU-only by an open breaker.
    pub quarantined_invocations: u64,
    /// Re-profiles scheduled by the drift monitor (DESIGN.md §11).
    /// Adaptation, not a fault: it does not disturb
    /// [`fault_free`](HealthReport::fault_free).
    pub drift_reprofiles: u64,
    /// Drift re-profiles deferred because the global token bucket was
    /// empty.
    pub reprofiles_suppressed: u64,
    /// Profiling rounds cancelled by the watchdog deadline.
    pub watchdog_trips: u64,
    /// Chunk executions that overran the watchdog's split deadline.
    pub split_overruns: u64,
    /// Invocations forced CPU-only by their admission context (brownout
    /// or a denied GPU policy). Overload protection, not a fault: does
    /// not disturb [`fault_free`](HealthReport::fault_free).
    pub throttled_invocations: u64,
    /// Requests the admission layer shed (queue overflow, brownout
    /// stage 3). Adaptation, not a fault.
    pub requests_shed: u64,
    /// Requests the admission layer queued behind earlier arrivals.
    pub requests_queued: u64,
    /// Requests refused because a tenant's GPU quota window was spent.
    pub quota_denials: u64,
    /// Brownout-ladder rung changes (either direction).
    pub brownout_transitions: u64,
    /// Journal/snapshot I/O failures absorbed by the table store
    /// (DESIGN.md §16). Reduced durability, not reduced scheduling
    /// fidelity: excluded from [`fault_free`](HealthReport::fault_free).
    pub store_io_errors: u64,
    /// 1 while the table store is in degrade-to-memory mode, else 0.
    /// Excluded from [`fault_free`](HealthReport::fault_free).
    pub store_degraded: u64,
    /// Bytes the table store successfully persisted (journal lines and
    /// snapshots).
    pub store_bytes: u64,
}

/// Fold a [`StoreHealth`](crate::journal::StoreHealth) snapshot into a
/// report. The scheduler frontends call this so `health()` carries the
/// store counters without the store writing into `HealthStats`.
pub(crate) fn merge_store_health(report: &mut HealthReport, s: crate::journal::StoreHealth) {
    report.store_io_errors = s.io_errors;
    report.store_degraded = u64::from(s.degraded);
    report.store_bytes = s.bytes_written;
}

impl HealthReport {
    /// True when no fault was ever observed (the clean-path invariant).
    pub fn fault_free(&self) -> bool {
        self.observations_rejected == 0
            && self.retries == 0
            && self.degraded_invocations == 0
            && self.breaker_trips == 0
            && self.probes == 0
            && self.taints == 0
            && self.quarantined_invocations == 0
            && self.watchdog_trips == 0
            && self.split_overruns == 0
    }
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// Current position in the breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; faults are being counted.
    Closed,
    /// GPU quarantined: invocations run CPU-only.
    Open,
    /// Quarantine served: the next invocation probes the GPU.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric code used in telemetry records (0 closed, 1 open,
    /// 2 half-open — the internal encoding, made public for exports).
    pub fn code(self) -> u8 {
        match self {
            BreakerState::Closed => CLOSED,
            BreakerState::Open => OPEN,
            BreakerState::HalfOpen => HALF_OPEN,
        }
    }

    /// Inverse of [`code`](BreakerState::code); `None` for unknown codes
    /// (used when recovering persisted state).
    pub fn from_code(code: u8) -> Option<BreakerState> {
        match code {
            CLOSED => Some(BreakerState::Closed),
            OPEN => Some(BreakerState::Open),
            HALF_OPEN => Some(BreakerState::HalfOpen),
            _ => None,
        }
    }
}

/// What the breaker allows the current invocation to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerGate {
    /// Schedule normally.
    Normal,
    /// GPU quarantined: run everything at α = 0, touch nothing else.
    CpuOnly,
    /// Probe: profile through the GPU (skipping table reuse) so a clean
    /// observation can close the breaker.
    Probe,
}

/// The GPU circuit breaker (state machine in the [module docs](self)).
///
/// All state is atomic: many streams of an `Arc<SharedEas>` consult one
/// breaker concurrently. Races are benign — at worst two streams both run
/// the recovery probe.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    quarantine: u64,
    state: AtomicU8,
    consecutive: AtomicU32,
    quarantine_left: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given policy.
    pub fn new(policy: &FaultPolicy) -> CircuitBreaker {
        CircuitBreaker {
            threshold: policy.breaker_threshold.max(1),
            quarantine: policy.quarantine.max(1),
            state: AtomicU8::new(CLOSED),
            consecutive: AtomicU32::new(0),
            quarantine_left: AtomicU64::new(0),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            OPEN => BreakerState::Open,
            HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Whether the breaker is open (GPU quarantined).
    pub fn is_open(&self) -> bool {
        self.state.load(Ordering::Acquire) == OPEN
    }

    /// Consulted once per invocation, before any scheduling work.
    pub(crate) fn gate(&self) -> BreakerGate {
        match self.state.load(Ordering::Acquire) {
            CLOSED => BreakerGate::Normal,
            HALF_OPEN => BreakerGate::Probe,
            _ => {
                let before = self
                    .quarantine_left
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                        Some(v.saturating_sub(1))
                    })
                    .unwrap_or(0);
                if before <= 1 {
                    self.state.store(HALF_OPEN, Ordering::Release);
                    BreakerGate::Probe
                } else {
                    BreakerGate::CpuOnly
                }
            }
        }
    }

    /// Records a GPU-implicating fault; returns `true` if this fault
    /// tripped the breaker open (from closed or from a failed probe).
    pub(crate) fn record_gpu_fault(&self) -> bool {
        match self.state.load(Ordering::Acquire) {
            OPEN => false,
            HALF_OPEN => {
                self.trip();
                true
            }
            _ => {
                let seen = self.consecutive.fetch_add(1, Ordering::AcqRel) + 1;
                if seen >= self.threshold {
                    self.trip();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a clean GPU observation; returns `true` if it closed a
    /// half-open breaker (a recovery).
    pub(crate) fn record_clean_gpu(&self) -> bool {
        self.consecutive.store(0, Ordering::Release);
        let was_half_open = self.state.load(Ordering::Acquire) == HALF_OPEN;
        if was_half_open {
            self.state.store(CLOSED, Ordering::Release);
        }
        was_half_open
    }

    fn trip(&self) {
        self.consecutive.store(0, Ordering::Release);
        self.quarantine_left
            .store(self.quarantine, Ordering::Release);
        self.state.store(OPEN, Ordering::Release);
    }

    /// Forces the breaker into a recovered state (crash recovery): an
    /// `Open` restore starts a full quarantine period, exactly as if the
    /// trip had just happened.
    pub(crate) fn restore(&self, state: BreakerState) {
        self.consecutive.store(0, Ordering::Release);
        match state {
            BreakerState::Open => {
                self.quarantine_left
                    .store(self.quarantine, Ordering::Release);
                self.state.store(OPEN, Ordering::Release);
            }
            BreakerState::HalfOpen => self.state.store(HALF_OPEN, Ordering::Release),
            BreakerState::Closed => self.state.store(CLOSED, Ordering::Release),
        }
    }
}

impl Clone for CircuitBreaker {
    fn clone(&self) -> CircuitBreaker {
        CircuitBreaker {
            threshold: self.threshold,
            quarantine: self.quarantine,
            state: AtomicU8::new(self.state.load(Ordering::Acquire)),
            consecutive: AtomicU32::new(self.consecutive.load(Ordering::Acquire)),
            quarantine_left: AtomicU64::new(self.quarantine_left.load(Ordering::Acquire)),
        }
    }
}

/// Per-frontend fault-handling state: counters, the GPU breaker, and the
/// self-healing control loop's drift monitor and watchdog (DESIGN.md
/// §11).
#[derive(Debug, Clone)]
pub struct Health {
    pub(crate) stats: HealthStats,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) drift: DriftMonitor,
    pub(crate) watchdog: Watchdog,
}

impl Health {
    /// Fresh healthy state under the given policies.
    pub(crate) fn new(
        policy: &FaultPolicy,
        drift: DriftPolicy,
        watchdog: WatchdogPolicy,
    ) -> Health {
        Health {
            stats: HealthStats::default(),
            breaker: CircuitBreaker::new(policy),
            drift: DriftMonitor::new(drift),
            watchdog: Watchdog::new(watchdog),
        }
    }

    /// Snapshot of the counters, in the user-facing reporting shape.
    pub fn report(&self) -> HealthReport {
        self.stats.report()
    }

    /// Raw counter snapshot (plain integers, counter-named fields).
    pub fn snapshot(&self) -> HealthSnapshot {
        self.stats.snapshot()
    }

    /// The GPU circuit breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The drift monitor feeding the self-healing loop.
    pub fn drift(&self) -> &DriftMonitor {
        &self.drift
    }

    /// The watchdog bounding round/chunk durations.
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> FaultPolicy {
        FaultPolicy {
            max_retries: 3,
            breaker_threshold: 3,
            quarantine: 4,
        }
    }

    fn health() -> Health {
        Health::new(&policy(), DriftPolicy::default(), WatchdogPolicy::default())
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_faults() {
        let b = CircuitBreaker::new(&policy());
        assert!(!b.record_gpu_fault());
        assert!(!b.record_gpu_fault());
        // A clean observation resets the streak.
        assert!(!b.record_clean_gpu());
        assert!(!b.record_gpu_fault());
        assert!(!b.record_gpu_fault());
        assert!(b.record_gpu_fault());
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_breaker_quarantines_then_probes() {
        let b = CircuitBreaker::new(&policy());
        for _ in 0..3 {
            b.record_gpu_fault();
        }
        // quarantine = 4: three CPU-only invocations, the fourth probes.
        assert_eq!(b.gate(), BreakerGate::CpuOnly);
        assert_eq!(b.gate(), BreakerGate::CpuOnly);
        assert_eq!(b.gate(), BreakerGate::CpuOnly);
        assert_eq!(b.gate(), BreakerGate::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn clean_probe_closes_failed_probe_reopens() {
        let b = CircuitBreaker::new(&policy());
        for _ in 0..3 {
            b.record_gpu_fault();
        }
        for _ in 0..4 {
            b.gate();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe: straight back to open for a full quarantine.
        assert!(b.record_gpu_fault());
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..4 {
            b.gate();
        }
        // Clean probe: recovery.
        assert!(b.record_clean_gpu());
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.gate(), BreakerGate::Normal);
    }

    #[test]
    fn closed_breaker_gates_normal_without_side_effects() {
        let b = CircuitBreaker::new(&policy());
        for _ in 0..100 {
            assert_eq!(b.gate(), BreakerGate::Normal);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn health_report_roundtrips_counters() {
        let h = health();
        h.stats.note_accepted();
        h.stats.note_rejected();
        h.stats.note_rejected();
        h.stats.note_degraded();
        let r = h.report();
        assert_eq!(r.observations_accepted, 1);
        assert_eq!(r.observations_rejected, 2);
        assert_eq!(r.degraded_invocations, 1);
        assert!(!r.fault_free());
        assert!(HealthReport::default().fault_free());
        // Clone carries the counts.
        assert_eq!(h.clone().report(), r);
    }

    #[test]
    fn snapshot_and_report_agree() {
        let h = health();
        h.stats.note_accepted();
        h.stats.note_retry();
        h.stats.note_taint();
        let s = h.snapshot();
        assert_eq!(s.accepted, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.taints, 1);
        assert_eq!(s.rejected, 0);
        assert_eq!(HealthReport::from(s), h.report());
        // Stats rebuilt from a snapshot read back identically.
        assert_eq!(HealthStats::from(s).snapshot(), s);
    }

    #[test]
    fn admission_counters_roundtrip_and_stay_out_of_fault_free() {
        let h = health();
        h.stats.note_throttled();
        h.stats.note_request_shed();
        h.stats.note_request_shed();
        h.stats.note_request_queued();
        h.stats.note_quota_denial();
        h.stats.note_brownout_transition();
        let r = h.report();
        assert_eq!(r.throttled_invocations, 1);
        assert_eq!(r.requests_shed, 2);
        assert_eq!(r.requests_queued, 1);
        assert_eq!(r.quota_denials, 1);
        assert_eq!(r.brownout_transitions, 1);
        // Overload protection is adaptation, not a fault.
        assert!(r.fault_free());
        let s = h.snapshot();
        assert_eq!(HealthStats::from(s).snapshot(), s);
    }

    #[test]
    fn store_counters_stay_out_of_fault_free() {
        let r = HealthReport {
            store_io_errors: 9,
            store_degraded: 1,
            store_bytes: 4096,
            ..HealthReport::default()
        };
        assert!(
            r.fault_free(),
            "a failing disk reduces durability, not scheduling fidelity"
        );
    }

    #[test]
    fn breaker_state_codes_are_stable() {
        assert_eq!(BreakerState::Closed.code(), 0);
        assert_eq!(BreakerState::Open.code(), 1);
        assert_eq!(BreakerState::HalfOpen.code(), 2);
    }
}
