//! Online workload classification (paper §3.1, §5).
//!
//! Profiling observations are mapped to one of the **eight power
//! characterization categories**: {memory, compute} × {CPU short, long} ×
//! {GPU short, long}. The classifier uses only black-box measurements:
//!
//! * memory intensity = L3 misses / load-store instructions, threshold
//!   **0.33** (§5);
//! * short vs long = estimated execution time of the *remaining* iterations
//!   on each device, threshold **100 ms** (§2, §5).

use easched_runtime::Observation;

/// One of the eight characterization categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadClass {
    /// Memory-bound (miss/load ratio above threshold).
    pub memory_bound: bool,
    /// Remaining work finishes under the short/long threshold on the CPU.
    pub cpu_short: bool,
    /// Remaining work finishes under the short/long threshold on the GPU.
    pub gpu_short: bool,
}

impl WorkloadClass {
    /// Dense index in `0..8` (memory bit high, then CPU, then GPU), used to
    /// index the power model's curve table.
    ///
    /// ```
    /// use easched_core::WorkloadClass;
    /// let c = WorkloadClass { memory_bound: true, cpu_short: false, gpu_short: true };
    /// assert_eq!(c.index(), 0b101);
    /// assert_eq!(WorkloadClass::from_index(0b101), c);
    /// ```
    pub fn index(&self) -> usize {
        (usize::from(self.memory_bound) << 2)
            | (usize::from(self.cpu_short) << 1)
            | usize::from(self.gpu_short)
    }

    /// Inverse of [`index`](Self::index).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn from_index(i: usize) -> WorkloadClass {
        assert!(i < 8, "class index out of range");
        WorkloadClass {
            memory_bound: i & 0b100 != 0,
            cpu_short: i & 0b010 != 0,
            gpu_short: i & 0b001 != 0,
        }
    }

    /// All eight classes in index order.
    pub fn all() -> [WorkloadClass; 8] {
        std::array::from_fn(WorkloadClass::from_index)
    }

    /// Figure 5/6-style label, e.g. `"Memory, CPU Short, GPU Long"`.
    pub fn label(&self) -> String {
        format!(
            "{}, CPU {}, GPU {}",
            if self.memory_bound {
                "Memory"
            } else {
                "Compute"
            },
            if self.cpu_short { "Short" } else { "Long" },
            if self.gpu_short { "Short" } else { "Long" },
        )
    }
}

/// The classifier with its two thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classifier {
    /// L3-miss-per-load threshold above which a workload is memory-bound
    /// (paper: 0.33).
    pub memory_threshold: f64,
    /// Execution-time threshold below which a device run counts as short,
    /// seconds (paper: 100 ms).
    pub short_threshold: f64,
}

impl Default for Classifier {
    fn default() -> Self {
        Classifier {
            memory_threshold: 0.33,
            short_threshold: 0.100,
        }
    }
}

impl Classifier {
    /// Classifies from a profiling observation and the remaining iteration
    /// count.
    ///
    /// The device times are estimated as `n_remaining / rate` with the
    /// combined-mode rates from the observation; a device that showed no
    /// throughput is classified long (conservative: prefers the
    /// steadier-state power curve).
    ///
    /// # Examples
    ///
    /// ```
    /// use easched_core::Classifier;
    /// use easched_runtime::Observation;
    /// use easched_sim::CounterSnapshot;
    ///
    /// let obs = Observation {
    ///     cpu_items: 1000,
    ///     gpu_items: 2000,
    ///     cpu_time: 0.01,
    ///     gpu_time: 0.01,
    ///     counters: CounterSnapshot { instructions: 1e6, loads: 1e5, l3_misses: 5e4 },
    ///     ..Default::default()
    /// };
    /// let class = Classifier::default().classify(&obs, 10_000);
    /// assert!(class.memory_bound); // 0.5 misses per load
    /// assert!(class.cpu_short); // 10k items at 100k items/s = 0.1s... just at threshold
    /// ```
    pub fn classify(&self, obs: &Observation, n_remaining: u64) -> WorkloadClass {
        let memory_bound = obs.counters.miss_per_load() > self.memory_threshold;
        let est = |rate: f64| {
            if rate > 0.0 {
                n_remaining as f64 / rate
            } else {
                f64::INFINITY
            }
        };
        WorkloadClass {
            memory_bound,
            cpu_short: est(obs.cpu_rate()) <= self.short_threshold,
            gpu_short: est(obs.gpu_rate()) <= self.short_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use easched_sim::CounterSnapshot;

    fn obs(miss_per_load: f64, cpu_rate: f64, gpu_rate: f64) -> Observation {
        Observation {
            cpu_items: (cpu_rate * 0.01) as u64,
            gpu_items: (gpu_rate * 0.01) as u64,
            cpu_time: 0.01,
            gpu_time: 0.01,
            counters: CounterSnapshot {
                instructions: 1e6,
                loads: 1e5,
                l3_misses: 1e5 * miss_per_load,
            },
            ..Default::default()
        }
    }

    #[test]
    fn index_roundtrip() {
        for i in 0..8 {
            assert_eq!(WorkloadClass::from_index(i).index(), i);
        }
    }

    #[test]
    fn all_has_eight_distinct() {
        let all = WorkloadClass::all();
        let set: std::collections::HashSet<usize> = all.iter().map(|c| c.index()).collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn memory_threshold_boundary() {
        let c = Classifier::default();
        assert!(!c.classify(&obs(0.33, 1e6, 1e6), 1000).memory_bound);
        assert!(c.classify(&obs(0.34, 1e6, 1e6), 1000).memory_bound);
    }

    #[test]
    fn short_long_by_remaining_items() {
        let c = Classifier::default();
        // 1e6 items/s: 50k items → 50 ms (short); 500k → 0.5 s (long).
        let class = c.classify(&obs(0.0, 1e6, 1e5), 50_000);
        assert!(class.cpu_short);
        assert!(!class.gpu_short); // GPU at 1e5: 0.5 s
        let class = c.classify(&obs(0.0, 1e6, 1e5), 500_000);
        assert!(!class.cpu_short);
    }

    #[test]
    fn zero_rate_is_long() {
        let c = Classifier::default();
        let o = Observation {
            counters: CounterSnapshot::default(),
            ..Default::default()
        };
        let class = c.classify(&o, 100);
        assert!(!class.cpu_short);
        assert!(!class.gpu_short);
        assert!(!class.memory_bound, "no loads → compute-bound default");
    }

    #[test]
    fn labels_are_unique_and_descriptive() {
        let labels: std::collections::HashSet<String> =
            WorkloadClass::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 8);
        assert!(labels.iter().any(|l| l == "Memory, CPU Short, GPU Long"));
    }

    #[test]
    #[should_panic(expected = "class index out of range")]
    fn from_index_rejects_out_of_range() {
        WorkloadClass::from_index(8);
    }
}
