//! The five comparison schemes of the evaluation (paper §5) and the
//! machinery to score a workload under each.
//!
//! * **CPU** — multi-core CPU alone (fixed α = 0);
//! * **GPU** — GPU alone (fixed α = 1);
//! * **Oracle** — the best fixed α found by exhaustive search over
//!   {0, 0.1, …, 1.0}, re-running the whole workload per point (the paper's
//!   near-ideal baseline);
//! * **PERF** — "the workload distribution which yields the best execution
//!   time *by using both CPU and GPU simultaneously*" (§5): the fixed
//!   interior α ∈ {0.1, …, 0.9} minimizing execution time, with no energy
//!   awareness;
//! * **EAS** — the energy-aware scheduler.
//!
//! Evaluation is trace-driven: the workload executes functionally once to
//! record its invocation sizes (and verify its output), then each scheme
//! replays the trace on a fresh machine.

use crate::eas::{EasConfig, EasScheduler};
use crate::objective::Objective;
use crate::power_model::PowerModel;
use easched_kernels::{record_trace, InvocationTrace, Workload};
use easched_runtime::scheduler::FixedAlpha;
use easched_runtime::{replay_trace, RunMetrics, Scheduler};
use easched_sim::{Machine, Platform};

/// Results of one scheme on one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeResult {
    /// Run totals.
    pub metrics: RunMetrics,
    /// Objective value (lower is better).
    pub score: f64,
}

/// All five schemes on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadComparison {
    /// Table 1 abbreviation.
    pub abbrev: String,
    /// The metric being optimized.
    pub objective_name: String,
    /// CPU-alone result.
    pub cpu: SchemeResult,
    /// GPU-alone result.
    pub gpu: SchemeResult,
    /// Best-performance strategy result.
    pub perf: SchemeResult,
    /// Energy-aware scheduler result.
    pub eas: SchemeResult,
    /// Oracle result (best fixed α).
    pub oracle: SchemeResult,
    /// The α the Oracle chose.
    pub oracle_alpha: f64,
    /// The α EAS learned for this kernel.
    pub eas_alpha: Option<f64>,
}

impl WorkloadComparison {
    /// Efficiency of a scheme relative to Oracle, as the paper plots it:
    /// `oracle_score / scheme_score` (Oracle = 1.0, higher is better).
    pub fn efficiency(&self, scheme: SchemeResult) -> f64 {
        if scheme.score > 0.0 {
            self.oracle.score / scheme.score
        } else {
            0.0
        }
    }
}

/// The evaluation driver: a platform plus its characterized power model.
#[derive(Debug, Clone)]
pub struct Evaluator {
    platform: Platform,
    model: PowerModel,
    /// Machine noise seed (same for every scheme → fair comparison).
    pub seed: u64,
    /// Oracle sweep resolution (paper: 0.1 → 10 steps).
    pub oracle_steps: usize,
}

impl Evaluator {
    /// Creates an evaluator.
    pub fn new(platform: Platform, model: PowerModel) -> Evaluator {
        Evaluator {
            platform,
            model,
            seed: 0,
            oracle_steps: 10,
        }
    }

    /// The platform under evaluation.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Scores one scheduler on a recorded trace (fresh machine).
    pub fn score_trace<S: Scheduler>(
        &self,
        traits: &easched_sim::KernelTraits,
        trace: &InvocationTrace,
        scheduler: &mut S,
        objective: &Objective,
    ) -> SchemeResult {
        let mut machine = Machine::with_seed(self.platform.clone(), self.seed);
        let metrics = replay_trace(&mut machine, traits, 1, trace, scheduler);
        SchemeResult {
            metrics,
            score: objective.of_totals(metrics.energy_joules, metrics.time),
        }
    }

    /// Exhaustive Oracle search: best fixed α for the objective.
    pub fn oracle(
        &self,
        traits: &easched_sim::KernelTraits,
        trace: &InvocationTrace,
        objective: &Objective,
    ) -> (f64, SchemeResult) {
        self.best_fixed(traits, trace, objective, 0..=self.oracle_steps)
    }

    /// The PERF scheme: the fixed distribution with the best *execution
    /// time* that keeps both devices busy (interior grid points only), then
    /// scored under `objective`.
    pub fn perf_scheme(
        &self,
        traits: &easched_sim::KernelTraits,
        trace: &InvocationTrace,
        objective: &Objective,
    ) -> (f64, SchemeResult) {
        let (alpha, _) =
            self.best_fixed(traits, trace, &Objective::Time, 1..=self.oracle_steps - 1);
        let result = self.score_trace(traits, trace, &mut FixedAlpha::new(alpha), objective);
        (alpha, result)
    }

    fn best_fixed(
        &self,
        traits: &easched_sim::KernelTraits,
        trace: &InvocationTrace,
        objective: &Objective,
        grid: std::ops::RangeInclusive<usize>,
    ) -> (f64, SchemeResult) {
        let mut best: Option<(f64, SchemeResult)> = None;
        for i in grid {
            let alpha = i as f64 / self.oracle_steps as f64;
            let result = self.score_trace(traits, trace, &mut FixedAlpha::new(alpha), objective);
            if best.as_ref().is_none_or(|(_, b)| result.score < b.score) {
                best = Some((alpha, result));
            }
        }
        best.expect("fixed-alpha sweep is non-empty")
    }

    /// Runs the full five-scheme comparison for one workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload fails functional verification — a scheduling
    /// evaluation on top of wrong outputs would be meaningless.
    pub fn compare(&self, workload: &dyn Workload, objective: &Objective) -> WorkloadComparison {
        let (trace, verification) = record_trace(workload);
        assert!(
            verification.is_passed(),
            "workload {} failed verification: {verification:?}",
            workload.spec().abbrev
        );
        self.compare_trace(workload, &trace, objective)
    }

    /// Like [`compare`](Self::compare) with a pre-recorded trace (lets the
    /// harness reuse one functional run across objectives).
    pub fn compare_trace(
        &self,
        workload: &dyn Workload,
        trace: &InvocationTrace,
        objective: &Objective,
    ) -> WorkloadComparison {
        let traits = workload.traits_for(&self.platform);

        let cpu = self.score_trace(&traits, trace, &mut FixedAlpha::new(0.0), objective);
        let gpu = self.score_trace(&traits, trace, &mut FixedAlpha::new(1.0), objective);

        let (_, perf) = self.perf_scheme(&traits, trace, objective);

        let mut eas_sched =
            EasScheduler::new(self.model.clone(), EasConfig::new(objective.clone()));
        let eas = self.score_trace(&traits, trace, &mut eas_sched, objective);

        let (oracle_alpha, oracle) = self.oracle(&traits, trace, objective);

        WorkloadComparison {
            abbrev: workload.spec().abbrev.to_string(),
            objective_name: objective.name().to_string(),
            cpu,
            gpu,
            perf,
            eas,
            oracle,
            oracle_alpha,
            eas_alpha: eas_sched.learned_alpha(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizationConfig};
    use easched_kernels::suite;

    fn quiet_desktop() -> Platform {
        let mut p = Platform::haswell_desktop();
        p.pcu.measurement_noise = 0.0;
        p
    }

    fn evaluator() -> Evaluator {
        let platform = quiet_desktop();
        let model = characterize(
            &platform,
            &CharacterizationConfig {
                alpha_steps: 10,
                ..Default::default()
            },
        );
        Evaluator::new(platform, model)
    }

    #[test]
    fn oracle_at_least_as_good_as_every_scheme() {
        let ev = evaluator();
        let w = suite::blackscholes_small();
        for objective in [Objective::Energy, Objective::EnergyDelay] {
            let c = ev.compare(w.as_ref(), &objective);
            for (name, s) in [
                ("cpu", c.cpu),
                ("gpu", c.gpu),
                ("perf", c.perf),
                ("eas", c.eas),
            ] {
                assert!(
                    c.oracle.score <= s.score * 1.0001,
                    "{objective:?}: oracle {} vs {name} {}",
                    c.oracle.score,
                    s.score
                );
                let eff = c.efficiency(s);
                assert!(eff > 0.0 && eff <= 1.0001, "{name} efficiency {eff}");
            }
        }
    }

    #[test]
    fn comparison_carries_metadata() {
        let ev = evaluator();
        let w = suite::mandelbrot_small();
        let c = ev.compare(w.as_ref(), &Objective::EnergyDelay);
        assert_eq!(c.abbrev, "MB");
        assert_eq!(c.objective_name, "EDP");
        assert!((0.0..=1.0).contains(&c.oracle_alpha));
        assert!(c.cpu.metrics.time > 0.0);
        // CPU-alone scheme really is α=0: no GPU time anywhere... verified
        // indirectly: its run is slower or equal to oracle's.
        assert!(c.cpu.metrics.time >= c.oracle.metrics.time * 0.999);
    }

    #[test]
    fn scores_are_deterministic() {
        let ev = evaluator();
        let w = suite::blackscholes_small();
        let a = ev.compare(w.as_ref(), &Objective::Energy);
        let b = ev.compare(w.as_ref(), &Objective::Energy);
        assert_eq!(a, b);
    }
}
