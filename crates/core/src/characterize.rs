//! One-time black-box power characterization of a platform (paper §2).
//!
//! For each of the eight micro-benchmarks, the GPU offload ratio is swept
//! over a grid; at each point the micro-benchmark runs on a fresh machine
//! and **average package power is measured exactly as the paper measures
//! it**: two reads of the (wrapping) energy register divided by elapsed
//! time. A sixth-order polynomial is then fit per category (Figures 5–6).
//!
//! The sweep needs no knowledge of the PCU, the power tables, or the
//! bandwidth model — it drives the machine through the same black-box
//! surface the scheduler uses.

use crate::classify::WorkloadClass;
use crate::power_model::{PowerCurve, PowerModel};
use easched_kernels::microbench::{characterization_suite, MicroBenchmark};
use easched_num::polyfit;
use easched_sim::{EnergyCounter, Machine, PhasePlan, Platform};
use std::error::Error;
use std::fmt;

/// Error from a characterization attempt that cannot produce a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CharacterizeError {
    /// A category sweep could not be fit — too few points for the
    /// polynomial order, or degenerate measurements.
    DegenerateSweep {
        /// Label of the micro-benchmark whose sweep failed.
        label: String,
        /// What the fitting routine objected to.
        reason: String,
    },
}

impl fmt::Display for CharacterizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharacterizeError::DegenerateSweep { label, reason } => {
                write!(f, "sweep {label:?} is unfittable: {reason}")
            }
        }
    }
}

impl Error for CharacterizeError {}

/// Parameters of the characterization sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationConfig {
    /// Offload-ratio sweep points (grid over [0, 1]); the paper samples
    /// every 5–10 %.
    pub alpha_steps: usize,
    /// Polynomial order of the fit (paper: 6).
    pub poly_order: usize,
    /// Times each (benchmark, α) point is repeated; powers are averaged.
    pub repetitions: usize,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        CharacterizationConfig {
            alpha_steps: 20, // 5% increments: 21 sweep points
            poly_order: 6,
            repetitions: 1,
        }
    }
}

/// A single sweep point: measured average package power at one offload
/// ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// GPU offload ratio.
    pub alpha: f64,
    /// Measured average package power, watts.
    pub watts: f64,
    /// Run duration, seconds.
    pub seconds: f64,
}

/// The raw sweep for one micro-benchmark, kept for figure regeneration.
#[derive(Debug, Clone, PartialEq)]
pub struct CategorySweep {
    /// The class this sweep characterizes.
    pub class: WorkloadClass,
    /// Human-readable label.
    pub label: String,
    /// Measured points in α order.
    pub points: Vec<SweepPoint>,
}

/// Runs one micro-benchmark at one offload ratio on a fresh machine and
/// measures average package power through the energy register.
pub fn measure_point(
    platform: &Platform,
    micro: &MicroBenchmark,
    alpha: f64,
    seed: u64,
) -> SweepPoint {
    let mut machine = Machine::with_seed(platform.clone(), seed);
    let t0 = machine.now();
    let e0 = machine.read_energy_raw();
    machine.run_phase(
        micro.traits(),
        &PhasePlan::split(micro.items, alpha).with_seed(seed),
    );
    let seconds = machine.now() - t0;
    let joules = EnergyCounter::delta_joules(e0, machine.read_energy_raw());
    SweepPoint {
        alpha,
        watts: if seconds > 0.0 { joules / seconds } else { 0.0 },
        seconds,
    }
}

/// Sweeps one micro-benchmark over the α grid.
pub fn sweep_category(
    platform: &Platform,
    micro: &MicroBenchmark,
    config: &CharacterizationConfig,
) -> CategorySweep {
    let class = WorkloadClass {
        memory_bound: micro.memory_bound,
        cpu_short: micro.cpu_short,
        gpu_short: micro.gpu_short,
    };
    let mut points = Vec::with_capacity(config.alpha_steps + 1);
    for i in 0..=config.alpha_steps {
        let alpha = i as f64 / config.alpha_steps as f64;
        let mut watts = 0.0;
        let mut seconds = 0.0;
        for rep in 0..config.repetitions.max(1) {
            let p = measure_point(platform, micro, alpha, (i as u64) << 8 | rep as u64);
            watts += p.watts;
            seconds += p.seconds;
        }
        let reps = config.repetitions.max(1) as f64;
        points.push(SweepPoint {
            alpha,
            watts: watts / reps,
            seconds: seconds / reps,
        });
    }
    CategorySweep {
        class,
        label: micro.label(),
        points,
    }
}

/// Fits a [`PowerCurve`] to a sweep.
///
/// # Panics
///
/// Panics if the sweep has fewer points than the fit needs (configuration
/// error); use [`try_fit_curve_with_r2`] for a recoverable path.
pub fn fit_curve(sweep: &CategorySweep, poly_order: usize) -> PowerCurve {
    let (curve, _) = fit_curve_with_r2(sweep, poly_order);
    curve
}

/// Like [`fit_curve`], also returning the fit's R² (for the figure
/// harness's quality report).
///
/// # Panics
///
/// Panics on an unfittable sweep; use [`try_fit_curve_with_r2`] for a
/// recoverable path.
pub fn fit_curve_with_r2(sweep: &CategorySweep, poly_order: usize) -> (PowerCurve, f64) {
    try_fit_curve_with_r2(sweep, poly_order).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible core of [`fit_curve_with_r2`]: fits the sweep's power curve,
/// reporting a degenerate sweep as an error instead of panicking.
///
/// # Errors
///
/// [`CharacterizeError::DegenerateSweep`] when the sweep has fewer points
/// than `poly_order + 1` or the measurements cannot be fit.
pub fn try_fit_curve_with_r2(
    sweep: &CategorySweep,
    poly_order: usize,
) -> Result<(PowerCurve, f64), CharacterizeError> {
    let xs: Vec<f64> = sweep.points.iter().map(|p| p.alpha).collect();
    let ys: Vec<f64> = sweep.points.iter().map(|p| p.watts).collect();
    let fit = polyfit(&xs, &ys, poly_order).map_err(|e| CharacterizeError::DegenerateSweep {
        label: sweep.label.clone(),
        reason: e.to_string(),
    })?;
    let rmse = fit.rmse();
    let samples = fit.samples();
    let r2 = fit.r_squared();
    Ok((
        PowerCurve::new(sweep.class, fit.into_poly(), rmse, samples),
        r2,
    ))
}

/// Full black-box characterization: sweeps all eight micro-benchmarks and
/// fits one curve per class.
///
/// This is the one-time-per-platform step; the returned [`PowerModel`] is
/// reused for every workload on that platform.
///
/// # Examples
///
/// ```
/// use easched_core::{characterize, CharacterizationConfig};
/// use easched_sim::Platform;
///
/// let model = characterize(&Platform::haswell_desktop(), &CharacterizationConfig {
///     alpha_steps: 10,
///     ..Default::default()
/// });
/// assert_eq!(model.curves().len(), 8);
/// ```
///
/// # Panics
///
/// Panics on an unfittable sweep (a configuration with fewer than
/// `poly_order + 1` sweep points); use [`try_characterize`] for a
/// recoverable path.
pub fn characterize(platform: &Platform, config: &CharacterizationConfig) -> PowerModel {
    try_characterize(platform, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible core of [`characterize`]: reports a degenerate sweep as an
/// error instead of panicking.
///
/// # Errors
///
/// [`CharacterizeError::DegenerateSweep`] for the first category whose
/// sweep cannot be fit.
pub fn try_characterize(
    platform: &Platform,
    config: &CharacterizationConfig,
) -> Result<PowerModel, CharacterizeError> {
    Ok(try_characterize_with_sweeps(platform, config)?.0)
}

/// Characterization including the raw sweeps (for regenerating Figures
/// 5–6).
///
/// # Panics
///
/// Panics on an unfittable sweep; use [`try_characterize_with_sweeps`]
/// for a recoverable path.
pub fn characterize_with_sweeps(
    platform: &Platform,
    config: &CharacterizationConfig,
) -> (PowerModel, Vec<CategorySweep>) {
    try_characterize_with_sweeps(platform, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible core of [`characterize_with_sweeps`].
///
/// # Errors
///
/// [`CharacterizeError::DegenerateSweep`] for the first category whose
/// sweep cannot be fit.
pub fn try_characterize_with_sweeps(
    platform: &Platform,
    config: &CharacterizationConfig,
) -> Result<(PowerModel, Vec<CategorySweep>), CharacterizeError> {
    let sweeps: Vec<CategorySweep> = characterization_suite(platform)
        .iter()
        .map(|micro| sweep_category(platform, micro, config))
        .collect();
    let curves = sweeps
        .iter()
        .map(|s| Ok(try_fit_curve_with_r2(s, config.poly_order)?.0))
        .collect::<Result<Vec<_>, CharacterizeError>>()?;
    Ok((PowerModel::new(platform.name, curves), sweeps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use easched_kernels::microbench::MicroBenchmark;

    fn quiet(mut p: Platform) -> Platform {
        p.pcu.measurement_noise = 0.0;
        p
    }

    #[test]
    fn measure_point_endpoints_match_operating_points() {
        let p = quiet(Platform::haswell_desktop());
        // Long-running compute benchmark: steady-state powers dominate.
        let micro = MicroBenchmark::new(false, false, false);
        let cpu_alone = measure_point(&p, &micro, 0.0, 1);
        let gpu_alone = measure_point(&p, &micro, 1.0, 1);
        assert!(
            (cpu_alone.watts - 45.0).abs() < 2.0,
            "CPU alone: {}",
            cpu_alone.watts
        );
        assert!(
            (gpu_alone.watts - 30.0).abs() < 2.0,
            "GPU alone: {}",
            gpu_alone.watts
        );
    }

    #[test]
    fn memory_long_combined_draws_63w() {
        let p = quiet(Platform::haswell_desktop());
        let micro = MicroBenchmark::new(true, false, false);
        // Mid-sweep: both devices busy for a long stretch.
        let mid = measure_point(&p, &micro, 0.5, 1);
        assert!(
            mid.watts > 55.0 && mid.watts < 65.0,
            "combined memory: {}",
            mid.watts
        );
    }

    #[test]
    fn sweep_has_grid_points_in_order() {
        let p = quiet(Platform::haswell_desktop());
        let micro = MicroBenchmark::new(false, true, true);
        let sweep = sweep_category(
            &p,
            &micro,
            &CharacterizationConfig {
                alpha_steps: 10,
                ..Default::default()
            },
        );
        assert_eq!(sweep.points.len(), 11);
        assert_eq!(sweep.points[0].alpha, 0.0);
        assert_eq!(sweep.points[10].alpha, 1.0);
        assert!(sweep.points.iter().all(|pt| pt.watts > 0.0));
    }

    #[test]
    fn fit_interpolates_sweep_closely() {
        let p = quiet(Platform::haswell_desktop());
        let micro = MicroBenchmark::new(true, false, false);
        let config = CharacterizationConfig::default();
        let sweep = sweep_category(&p, &micro, &config);
        let curve = fit_curve(&sweep, 6);
        // Noise-free sweep: the fit should track within a couple of watts.
        for pt in &sweep.points {
            assert!(
                (curve.predict(pt.alpha) - pt.watts).abs() < 3.0,
                "alpha {}: fit {} vs measured {}",
                pt.alpha,
                curve.predict(pt.alpha),
                pt.watts
            );
        }
    }

    #[test]
    fn characterize_produces_distinct_memory_and_compute_levels() {
        let p = quiet(Platform::haswell_desktop());
        let model = characterize(
            &p,
            &CharacterizationConfig {
                alpha_steps: 10,
                ..Default::default()
            },
        );
        let comp = model.predict(
            WorkloadClass {
                memory_bound: false,
                cpu_short: false,
                gpu_short: false,
            },
            0.5,
        );
        let mem = model.predict(
            WorkloadClass {
                memory_bound: true,
                cpu_short: false,
                gpu_short: false,
            },
            0.5,
        );
        assert!(
            mem > comp + 3.0,
            "memory-bound combined power ({mem}) should exceed compute ({comp})"
        );
    }

    #[test]
    fn baytrail_memory_cheaper_than_compute() {
        // The paper's §2 surprise: on Bay Trail memory-bound work draws
        // LESS power than compute-bound.
        let p = quiet(Platform::baytrail_tablet());
        let model = characterize(
            &p,
            &CharacterizationConfig {
                alpha_steps: 10,
                ..Default::default()
            },
        );
        let long = |mb| WorkloadClass {
            memory_bound: mb,
            cpu_short: false,
            gpu_short: false,
        };
        assert!(model.predict(long(true), 0.5) < model.predict(long(false), 0.5));
    }

    #[test]
    fn degenerate_sweep_is_an_error_not_a_panic() {
        let p = quiet(Platform::haswell_desktop());
        // 3 sweep points cannot support a sixth-order fit (needs 7).
        let cfg = CharacterizationConfig {
            alpha_steps: 2,
            ..Default::default()
        };
        let micro = MicroBenchmark::new(false, false, false);
        let sweep = sweep_category(&p, &micro, &cfg);
        let err = try_fit_curve_with_r2(&sweep, cfg.poly_order).unwrap_err();
        let CharacterizeError::DegenerateSweep { label, reason } = &err;
        assert_eq!(*label, micro.label());
        assert!(!reason.is_empty());
        assert!(err.to_string().contains("unfittable"), "{err}");
        assert!(try_characterize(&p, &cfg).is_err());
        assert!(try_characterize_with_sweeps(&p, &cfg).is_err());
    }

    #[test]
    #[should_panic(expected = "unfittable")]
    fn infallible_wrapper_panics_with_the_error_message() {
        let p = quiet(Platform::haswell_desktop());
        characterize(
            &p,
            &CharacterizationConfig {
                alpha_steps: 2,
                ..Default::default()
            },
        );
    }

    #[test]
    fn try_characterize_matches_characterize() {
        let p = quiet(Platform::haswell_desktop());
        let cfg = CharacterizationConfig {
            alpha_steps: 8,
            ..Default::default()
        };
        assert_eq!(try_characterize(&p, &cfg).unwrap(), characterize(&p, &cfg));
    }

    #[test]
    fn characterization_deterministic() {
        let p = quiet(Platform::haswell_desktop());
        let cfg = CharacterizationConfig {
            alpha_steps: 8,
            ..Default::default()
        };
        assert_eq!(characterize(&p, &cfg), characterize(&p, &cfg));
    }
}
