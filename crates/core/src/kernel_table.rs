//! The global kernel table G (paper Fig 7, step 26) as a concurrently
//! readable, sharded structure — the *memory* layer of the scheduling
//! engine.
//!
//! The paper stores one learned offload ratio per kernel in a global table
//! keyed by the kernel's CPU function pointer. A single `HashMap` behind a
//! lock would serialize every scheduling decision once several workload
//! streams share the table, so entries are distributed over a fixed set of
//! shards, each behind its own `RwLock`:
//!
//! * **Reuse-path lookups** ([`lookup`](KernelTable::lookup),
//!   [`note_reuse`](KernelTable::note_reuse)) take a *read* lock on one
//!   shard only — concurrent readers of the same or different kernels
//!   never contend on a global lock, and the per-invocation counter is an
//!   atomic bumped under the read lock.
//! * **Sample-weighted accumulation** ([`accumulate`](KernelTable::accumulate))
//!   takes a *write* lock on the owning shard only, so learning about one
//!   kernel never blocks lookups of kernels in other shards.
//!
//! Shard choice is a multiplicative hash of the kernel id; the shard count
//! is fixed at construction so lookups are a mask, not a modulo.

use crate::eas::Accumulation;
use easched_runtime::KernelId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks a shard, recovering from poisoning: a tenant that panicked
/// mid-operation must not take the shared table down for every other
/// stream of an `Arc<SharedEas>`. Entries are plain values (no invariants
/// spanning statements), so a poisoned shard's data is still coherent.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks a shard, recovering from poisoning (see [`read_lock`]).
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Default shard count — comfortably above the core counts of the paper's
/// platforms (4-core Haswell, 4-core Bay Trail) and cheap enough that a
/// single-stream table wastes no measurable memory.
const DEFAULT_SHARDS: usize = 16;

/// An entry of G: the learned ratio, its sample weight, and how many times
/// the kernel has been invoked since first seen.
#[derive(Debug)]
struct AlphaEntry {
    alpha: f64,
    weight: f64,
    /// Bumped on the reuse path under a shard *read* lock, hence atomic.
    invocations_seen: AtomicU64,
    /// Set when the entry was learned during a faulty invocation (see
    /// [`KernelTable::taint`]); flipped under a shard *read* lock, hence
    /// atomic. Cleared by the next clean accumulation.
    tainted: AtomicBool,
}

impl Clone for AlphaEntry {
    fn clone(&self) -> AlphaEntry {
        AlphaEntry {
            alpha: self.alpha,
            weight: self.weight,
            invocations_seen: AtomicU64::new(self.invocations_seen.load(Ordering::Relaxed)),
            tainted: AtomicBool::new(self.tainted.load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of one kernel's learned state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaStat {
    /// The learned offload ratio.
    pub alpha: f64,
    /// Total sample weight folded into `alpha`.
    pub weight: f64,
    /// Invocations observed since the kernel was first seen.
    pub invocations_seen: u64,
}

/// Outcome of a reuse-path probe ([`KernelTable::note_reuse`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseProbe {
    /// The learned offload ratio.
    pub alpha: f64,
    /// The kernel's invocation count *after* this probe's increment.
    pub invocations_seen: u64,
    /// Whether the entry was learned from suspect observations and should
    /// be re-profiled rather than reused.
    pub tainted: bool,
}

/// The global table G: kernel id → learned offload ratio, sharded for
/// concurrent access.
///
/// # Examples
///
/// ```
/// use easched_core::{Accumulation, KernelTable};
///
/// let table = KernelTable::new();
/// table.accumulate(7, 1.0, 100.0, Accumulation::SampleWeighted);
/// table.accumulate(7, 0.0, 100.0, Accumulation::SampleWeighted);
/// assert_eq!(table.lookup(7), Some(0.5));
/// assert_eq!(table.lookup(8), None);
/// ```
#[derive(Debug)]
pub struct KernelTable {
    shards: Box<[RwLock<HashMap<KernelId, AlphaEntry>>]>,
    /// `shard_count - 1`; the count is a power of two so selection is a
    /// single mask.
    mask: u64,
    /// Cross-platform warm-start hints (fleet replication, DESIGN.md
    /// §15): kernel id → α the same kernel learned on *another*
    /// platform. Never served as truth — `lookup`/`note_reuse` ignore
    /// this map entirely — a prior only narrows the α search window
    /// while this platform profiles the kernel itself, and local
    /// learning ([`accumulate`](KernelTable::accumulate)) erases it.
    /// One lock for the whole map: priors are consulted once per
    /// *profiling* invocation, never on the reuse path.
    priors: RwLock<HashMap<KernelId, f64>>,
}

impl Default for KernelTable {
    fn default() -> KernelTable {
        KernelTable::new()
    }
}

impl Clone for KernelTable {
    fn clone(&self) -> KernelTable {
        let shards: Vec<RwLock<HashMap<KernelId, AlphaEntry>>> = self
            .shards
            .iter()
            .map(|s| RwLock::new(read_lock(s).clone()))
            .collect();
        KernelTable {
            shards: shards.into_boxed_slice(),
            mask: self.mask,
            priors: RwLock::new(read_lock(&self.priors).clone()),
        }
    }
}

impl PartialEq for KernelTable {
    fn eq(&self, other: &KernelTable) -> bool {
        self.snapshot() == other.snapshot()
    }
}

impl KernelTable {
    /// An empty table with the default shard count.
    pub fn new() -> KernelTable {
        KernelTable::with_shards(DEFAULT_SHARDS)
    }

    /// An empty table with at least `shards` shards (rounded up to a power
    /// of two).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> KernelTable {
        assert!(shards > 0, "need at least one shard");
        let n = shards.next_power_of_two();
        let shards: Vec<RwLock<HashMap<KernelId, AlphaEntry>>> =
            (0..n).map(|_| RwLock::new(HashMap::new())).collect();
        KernelTable {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
            priors: RwLock::new(HashMap::new()),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, kernel: KernelId) -> &RwLock<HashMap<KernelId, AlphaEntry>> {
        // Fibonacci hashing spreads consecutive kernel ids across shards.
        let h = kernel.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// The learned offload ratio for a kernel, if any. Takes one shard
    /// read lock; never blocks operations on other shards.
    pub fn lookup(&self, kernel: KernelId) -> Option<f64> {
        read_lock(self.shard(kernel)).get(&kernel).map(|e| e.alpha)
    }

    /// Full learned state for a kernel, if any.
    pub fn stat(&self, kernel: KernelId) -> Option<AlphaStat> {
        read_lock(self.shard(kernel))
            .get(&kernel)
            .map(|e| AlphaStat {
                alpha: e.alpha,
                weight: e.weight,
                invocations_seen: e.invocations_seen.load(Ordering::Relaxed),
            })
    }

    /// The reuse-path probe (Fig 7 steps 2–4): if the kernel is known,
    /// count this invocation and return the learned ratio. Read-locks one
    /// shard; the invocation counter is atomic, so concurrent streams
    /// reusing the same kernel proceed in parallel.
    pub fn note_reuse(&self, kernel: KernelId) -> Option<ReuseProbe> {
        read_lock(self.shard(kernel))
            .get(&kernel)
            .map(|e| ReuseProbe {
                alpha: e.alpha,
                invocations_seen: e.invocations_seen.fetch_add(1, Ordering::Relaxed) + 1,
                tainted: e.tainted.load(Ordering::Relaxed),
            })
    }

    /// Marks a kernel's entry as learned from suspect observations: the
    /// next reuse probe reports it tainted and the profile loop
    /// re-profiles instead of trusting the stored ratio. The next clean
    /// [`accumulate`](KernelTable::accumulate) clears the mark. No-op for
    /// unknown kernels. Takes only a shard *read* lock (the flag is
    /// atomic).
    pub fn taint(&self, kernel: KernelId) {
        if let Some(e) = read_lock(self.shard(kernel)).get(&kernel) {
            e.tainted.store(true, Ordering::Relaxed);
        }
    }

    /// Whether a kernel's entry is currently marked suspect.
    pub fn is_tainted(&self, kernel: KernelId) -> bool {
        read_lock(self.shard(kernel))
            .get(&kernel)
            .is_some_and(|e| e.tainted.load(Ordering::Relaxed))
    }

    /// Installs a cross-platform warm-start prior for a kernel the fleet
    /// has seen elsewhere (DESIGN.md §15). The prior is a *hint*, never
    /// truth: it does not create a table entry, never skips profiling,
    /// and only narrows the α window the
    /// [`DecisionEngine`](crate::DecisionEngine) searches while this
    /// platform profiles the kernel for itself. No-op once the kernel
    /// has locally learned state — a foreign ratio must not displace a
    /// measured one. `alpha` is clamped to [0, 1]; non-finite values are
    /// refused (a chaos-corrupted replica entry must not steer search).
    pub fn set_prior(&self, kernel: KernelId, alpha: f64) {
        if !alpha.is_finite() || self.stat(kernel).is_some() {
            return;
        }
        write_lock(&self.priors).insert(kernel, alpha.clamp(0.0, 1.0));
    }

    /// The warm-start prior for a kernel, if one is installed and the
    /// kernel has no locally learned state yet.
    pub fn prior(&self, kernel: KernelId) -> Option<f64> {
        read_lock(&self.priors).get(&kernel).copied()
    }

    /// Drops a kernel's warm-start prior (e.g. when the fleet replicates
    /// a taint for the entry it came from — a suspect ratio must not
    /// seed anyone's search window).
    pub fn clear_prior(&self, kernel: KernelId) {
        write_lock(&self.priors).remove(&kernel);
    }

    /// Number of installed warm-start priors.
    pub fn prior_count(&self) -> usize {
        read_lock(&self.priors).len()
    }

    /// Folds a newly computed α into the table (Fig 7 step 26).
    /// Write-locks the owning shard only. Local learning supersedes any
    /// cross-platform warm-start prior for the kernel.
    pub fn accumulate(&self, kernel: KernelId, alpha: f64, weight: f64, mode: Accumulation) {
        write_lock(&self.priors).remove(&kernel);
        let mut shard = write_lock(self.shard(kernel));
        let entry = shard.entry(kernel).or_insert(AlphaEntry {
            alpha,
            weight: 0.0,
            invocations_seen: AtomicU64::new(0),
            tainted: AtomicBool::new(false),
        });
        // Fresh learning supersedes suspicion from earlier faulty rounds.
        entry.tainted.store(false, Ordering::Relaxed);
        match mode {
            Accumulation::SampleWeighted => {
                let total = entry.weight + weight;
                if total > 0.0 {
                    entry.alpha = (entry.alpha * entry.weight + alpha * weight) / total;
                    entry.weight = total;
                }
            }
            Accumulation::LastValue => {
                entry.alpha = alpha;
                entry.weight = weight;
            }
        }
    }

    /// Installs a kernel's learned state verbatim (used when loading a
    /// persisted table).
    pub fn insert(&self, kernel: KernelId, stat: AlphaStat) {
        let mut shard = write_lock(self.shard(kernel));
        shard.insert(
            kernel,
            AlphaEntry {
                alpha: stat.alpha,
                weight: stat.weight,
                invocations_seen: AtomicU64::new(stat.invocations_seen),
                tainted: AtomicBool::new(false),
            },
        );
    }

    /// Number of kernels with learned state.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_lock(s).len()).sum()
    }

    /// Whether no kernel has learned state yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all learned state.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            write_lock(shard).clear();
        }
    }

    /// A consistent-per-shard copy of the whole table, sorted by kernel id
    /// (deterministic — used by persistence and diagnostics).
    pub fn snapshot(&self) -> Vec<(KernelId, AlphaStat)> {
        let mut out: Vec<(KernelId, AlphaStat)> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let shard = read_lock(shard);
            out.extend(shard.iter().map(|(&k, e)| {
                (
                    k,
                    AlphaStat {
                        alpha: e.alpha,
                        weight: e.weight,
                        invocations_seen: e.invocations_seen.load(Ordering::Relaxed),
                    },
                )
            }));
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Like [`snapshot`](KernelTable::snapshot) but carrying each entry's
    /// taint flag — used by crash-safe persistence, which must restore
    /// quarantine state after recovery (suspicion is runtime state, so the
    /// plain snapshot deliberately omits it).
    pub fn snapshot_with_taint(&self) -> Vec<(KernelId, AlphaStat, bool)> {
        let mut out: Vec<(KernelId, AlphaStat, bool)> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let shard = read_lock(shard);
            out.extend(shard.iter().map(|(&k, e)| {
                (
                    k,
                    AlphaStat {
                        alpha: e.alpha,
                        weight: e.weight,
                        invocations_seen: e.invocations_seen.load(Ordering::Relaxed),
                    },
                    e.tainted.load(Ordering::Relaxed),
                )
            }));
        }
        out.sort_unstable_by_key(|&(k, _, _)| k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_has_no_entries() {
        let t = KernelTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(1), None);
        assert_eq!(t.note_reuse(1), None);
        assert_eq!(t.stat(1), None);
    }

    #[test]
    fn sample_weighted_accumulation_matches_paper() {
        let t = KernelTable::new();
        t.accumulate(5, 1.0, 100.0, Accumulation::SampleWeighted);
        t.accumulate(5, 0.0, 100.0, Accumulation::SampleWeighted);
        assert!((t.lookup(5).unwrap() - 0.5).abs() < 1e-9);
        let s = t.stat(5).unwrap();
        assert_eq!(s.weight, 200.0);
    }

    #[test]
    fn last_value_mode_overwrites() {
        let t = KernelTable::new();
        t.accumulate(5, 0.2, 10.0, Accumulation::LastValue);
        t.accumulate(5, 0.9, 1.0, Accumulation::LastValue);
        assert_eq!(t.lookup(5), Some(0.9));
        assert_eq!(t.stat(5).unwrap().weight, 1.0);
    }

    #[test]
    fn note_reuse_counts_invocations() {
        let t = KernelTable::new();
        t.accumulate(3, 0.4, 50.0, Accumulation::SampleWeighted);
        assert_eq!(t.note_reuse(3).unwrap().invocations_seen, 1);
        assert_eq!(t.note_reuse(3).unwrap().invocations_seen, 2);
        assert_eq!(t.stat(3).unwrap().invocations_seen, 2);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let t = KernelTable::with_shards(4);
        for k in [9u64, 2, 700, 44] {
            t.accumulate(k, 0.5, 1.0, Accumulation::SampleWeighted);
        }
        let snap = t.snapshot();
        let keys: Vec<u64> = snap.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![2, 9, 44, 700]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn clone_is_deep() {
        let t = KernelTable::new();
        t.accumulate(1, 0.5, 10.0, Accumulation::SampleWeighted);
        let c = t.clone();
        t.accumulate(1, 1.0, 1e6, Accumulation::SampleWeighted);
        assert_eq!(c.lookup(1), Some(0.5));
        assert_eq!(c, c.clone());
        assert_ne!(c.snapshot(), t.snapshot());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(KernelTable::with_shards(5).shard_count(), 8);
        assert_eq!(KernelTable::with_shards(16).shard_count(), 16);
        assert_eq!(KernelTable::with_shards(1).shard_count(), 1);
    }

    #[test]
    fn taint_flags_entries_until_next_accumulation() {
        let t = KernelTable::new();
        // Tainting an unknown kernel is a no-op.
        t.taint(9);
        assert!(!t.is_tainted(9));

        t.accumulate(9, 0.5, 10.0, Accumulation::SampleWeighted);
        assert!(!t.is_tainted(9));
        t.taint(9);
        assert!(t.is_tainted(9));
        assert!(t.note_reuse(9).unwrap().tainted);

        // A fresh (clean) accumulation rehabilitates the entry.
        t.accumulate(9, 0.6, 10.0, Accumulation::SampleWeighted);
        assert!(!t.is_tainted(9));
        assert!(!t.note_reuse(9).unwrap().tainted);
    }

    #[test]
    fn taint_survives_clone_but_not_snapshot_roundtrip() {
        let t = KernelTable::new();
        t.accumulate(2, 0.3, 5.0, Accumulation::SampleWeighted);
        t.taint(2);
        assert!(t.clone().is_tainted(2));
        // insert() (the persistence load path) starts entries untainted:
        // suspicion is runtime state, not learned state.
        let loaded = KernelTable::new();
        for (k, stat) in t.snapshot() {
            loaded.insert(k, stat);
        }
        assert!(!loaded.is_tainted(2));
    }

    #[test]
    fn snapshot_with_taint_carries_the_flag() {
        let t = KernelTable::new();
        t.accumulate(2, 0.3, 5.0, Accumulation::SampleWeighted);
        t.accumulate(9, 0.7, 5.0, Accumulation::SampleWeighted);
        t.taint(9);
        let snap = t.snapshot_with_taint();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, 2);
        assert!(!snap[0].2);
        assert_eq!(snap[1].0, 9);
        assert!(snap[1].2);
        assert_eq!(snap[1].1, t.stat(9).unwrap());
    }

    #[test]
    fn priors_are_hints_not_truth() {
        let t = KernelTable::new();
        t.set_prior(4, 0.8);
        assert_eq!(t.prior(4), Some(0.8));
        assert_eq!(t.prior_count(), 1);
        // A prior is invisible to the reuse and lookup paths.
        assert_eq!(t.lookup(4), None);
        assert_eq!(t.note_reuse(4), None);
        assert!(t.is_empty());
        // Out-of-range priors clamp; corrupt ones are refused.
        t.set_prior(5, 1.5);
        assert_eq!(t.prior(5), Some(1.0));
        t.set_prior(6, f64::NAN);
        assert_eq!(t.prior(6), None);
    }

    #[test]
    fn local_learning_supersedes_priors() {
        let t = KernelTable::new();
        t.set_prior(4, 0.8);
        t.accumulate(4, 0.3, 10.0, Accumulation::SampleWeighted);
        assert_eq!(t.prior(4), None, "accumulate erases the prior");
        // And a learned kernel refuses new priors outright.
        t.set_prior(4, 0.9);
        assert_eq!(t.prior(4), None);
        assert_eq!(t.lookup(4), Some(0.3));
        // clear_prior drops an installed hint (taint replication path).
        t.set_prior(7, 0.6);
        t.clear_prior(7);
        assert_eq!(t.prior(7), None);
    }

    #[test]
    fn priors_survive_clone() {
        let t = KernelTable::new();
        t.set_prior(3, 0.4);
        let c = t.clone();
        assert_eq!(c.prior(3), Some(0.4));
        t.clear_prior(3);
        assert_eq!(c.prior(3), Some(0.4), "clone is deep");
    }

    #[test]
    fn thread_panicking_mid_write_leaves_table_usable() {
        let t = KernelTable::with_shards(1);
        t.accumulate(1, 0.5, 10.0, Accumulation::SampleWeighted);

        // A tenant dies while holding the single shard's write lock,
        // poisoning it.
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = t.shards[0].write().unwrap();
                panic!("tenant dies mid-write");
            })
            .join()
        });
        assert!(result.is_err(), "the tenant must have panicked");
        assert!(t.shards[0].is_poisoned(), "the shard must be poisoned");

        // Every operation still works for the surviving streams.
        assert_eq!(t.lookup(1), Some(0.5));
        assert_eq!(t.note_reuse(1).unwrap().alpha, 0.5);
        t.accumulate(1, 0.5, 10.0, Accumulation::SampleWeighted);
        assert_eq!(t.stat(1).unwrap().weight, 20.0);
        t.taint(1);
        assert!(t.is_tainted(1));
        t.insert(
            7,
            AlphaStat {
                alpha: 0.25,
                weight: 1.0,
                invocations_seen: 0,
            },
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.clone().lookup(7), Some(0.25));
        assert_eq!(t.snapshot().len(), 2);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_accumulation_loses_no_weight() {
        let t = KernelTable::new();
        let threads = 8;
        let per_thread = 1000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        t.accumulate(42, 0.5, 1.0, Accumulation::SampleWeighted);
                    }
                });
            }
        });
        let stat = t.stat(42).unwrap();
        assert_eq!(stat.weight, (threads * per_thread) as f64);
        assert!((stat.alpha - 0.5).abs() < 1e-12);
    }
}
