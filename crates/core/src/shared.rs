//! The concurrent EAS frontend: one learned kernel table shared by N
//! workload streams.
//!
//! [`EasScheduler`](crate::EasScheduler) is exclusive — its `&mut self`
//! [`Scheduler`](easched_runtime::Scheduler) API means one workload stream
//! per scheduler, so two runtimes each learn their own table G from
//! scratch. [`SharedEas`] wires the *same* layers (pure
//! [`DecisionEngine`] policy, sharded [`KernelTable`] memory) behind the
//! `&self` [`ConcurrentScheduler`] API: wrap it in an `Arc`, hand a
//! [`handle()`](SharedEasExt::handle) to each stream, and every stream
//! both benefits from and contributes to one global table — the paper's
//! "global table G" made literal for multi-programmed workloads.
//!
//! The reuse path (a known kernel arriving again) takes only a shard read
//! lock plus one atomic increment, so concurrent streams re-invoking
//! learned kernels scale with reader parallelism; see
//! `crates/bench/benches/decision.rs` for the contended-lookup numbers.

use crate::eas::{decision_log_csv, Decision, EasConfig, EasScheduler};
use crate::engine::DecisionEngine;
use crate::health::{merge_store_health, Health, HealthReport};
use crate::journal::{Recovered, StoreError, TableStore};
use crate::kernel_table::KernelTable;
use crate::power_model::PowerModel;
use crate::profile_loop;
use easched_runtime::vfs::{StdFs, Vfs};
use easched_runtime::{
    Backend, Clock, ConcurrentScheduler, InvocationCtx, KernelId, Shared, WallClock,
};
use easched_telemetry::TelemetrySink;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The energy-aware scheduler with interior synchronization: the same
/// Figure 7 policy as [`EasScheduler`], drivable through `&self` from any
/// number of threads sharing one `Arc`.
///
/// # Examples
///
/// ```
/// use easched_core::{characterize, CharacterizationConfig, EasConfig, EasRuntime,
///                    Objective, SharedEas};
/// use easched_kernels::suite;
/// use easched_sim::Platform;
/// use std::sync::Arc;
///
/// let platform = Platform::haswell_desktop();
/// let model = characterize(&platform, &CharacterizationConfig::default());
/// let eas = SharedEas::new(model, EasConfig::new(Objective::EnergyDelay));
///
/// // Each stream gets its own runtime; all learn into one table.
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         let eas = Arc::clone(&eas);
///         s.spawn(move || {
///             let mut rt = EasRuntime::with_shared(Platform::haswell_desktop(), eas);
///             assert!(rt.run(suite::blackscholes_small().as_ref()).verification.is_passed());
///         });
///     }
/// });
/// assert!(!eas.table().is_empty());
/// ```
#[derive(Debug)]
pub struct SharedEas {
    engine: DecisionEngine,
    table: KernelTable,
    health: Health,
    name: String,
    decisions: AtomicU64,
    log: Mutex<Vec<Decision>>,
    telemetry: Option<Arc<dyn TelemetrySink>>,
    store: Option<Arc<TableStore>>,
    clock: Arc<dyn Clock>,
}

impl SharedEas {
    /// Creates a shareable scheduler from a platform's characterized power
    /// model, ready to wrap in an `Arc`.
    ///
    /// # Panics
    ///
    /// Panics if `config.profile_fraction` is outside (0, 1], exactly as
    /// [`EasScheduler::new`] does.
    pub fn new(model: PowerModel, config: EasConfig) -> Arc<SharedEas> {
        SharedEas::build(model, config, None)
    }

    /// Like [`SharedEas::new`] but with a telemetry sink attached from the
    /// start: every stream's invocations emit
    /// [`DecisionRecord`](easched_telemetry::DecisionRecord)s into the one
    /// sink, interleaved in completion order (DESIGN.md §10).
    pub fn with_telemetry(
        model: PowerModel,
        config: EasConfig,
        sink: Arc<dyn TelemetrySink>,
    ) -> Arc<SharedEas> {
        SharedEas::build(model, config, Some(sink))
    }

    /// Like [`SharedEas::new`], but with crash-safe persistence rooted at
    /// `dir` (see [`EasScheduler::with_persistence`]): every stream's
    /// table mutations are journaled, and the recovered table — taint and
    /// breaker state included — seeds the shared scheduler.
    pub fn with_persistence(
        model: PowerModel,
        config: EasConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Arc<SharedEas>, StoreError> {
        SharedEas::build_persistent(model, config, dir, None, Arc::new(StdFs))
    }

    /// [`SharedEas::with_persistence`] with an explicit [`Vfs`], so
    /// storage-chaos runs can inject I/O faults into the journal without
    /// touching the scheduling path (DESIGN.md §16).
    pub fn with_persistence_vfs(
        model: PowerModel,
        config: EasConfig,
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Arc<SharedEas>, StoreError> {
        SharedEas::build_persistent(model, config, dir, None, vfs)
    }

    /// [`SharedEas::with_persistence`] plus a telemetry sink attached from
    /// the start — crash-safe learning *and* per-invocation
    /// [`DecisionRecord`](easched_telemetry::DecisionRecord)s.
    pub fn with_telemetry_and_persistence(
        model: PowerModel,
        config: EasConfig,
        dir: impl AsRef<Path>,
        sink: Arc<dyn TelemetrySink>,
    ) -> Result<Arc<SharedEas>, StoreError> {
        SharedEas::build_persistent(model, config, dir, Some(sink), Arc::new(StdFs))
    }

    /// [`SharedEas::with_telemetry_and_persistence`] with an explicit
    /// [`Vfs`] — the full chaos wiring: journaled learning, typed
    /// `StorageFault` control events on the sink, injected I/O faults.
    pub fn with_telemetry_persistence_vfs(
        model: PowerModel,
        config: EasConfig,
        dir: impl AsRef<Path>,
        sink: Arc<dyn TelemetrySink>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Arc<SharedEas>, StoreError> {
        SharedEas::build_persistent(model, config, dir, Some(sink), vfs)
    }

    fn build_persistent(
        model: PowerModel,
        config: EasConfig,
        dir: impl AsRef<Path>,
        telemetry: Option<Arc<dyn TelemetrySink>>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Arc<SharedEas>, StoreError> {
        let (store, recovered) = TableStore::open_with(dir, vfs)?;
        let name = format!("EAS-shared({})", config.objective.name());
        let health = Health::new(&config.fault, config.drift, config.watchdog);
        let Recovered { table, breaker, .. } = recovered;
        health.breaker.restore(breaker);
        Ok(Arc::new(SharedEas {
            engine: DecisionEngine::new(model, config),
            table,
            health,
            name,
            decisions: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            telemetry,
            store: Some(Arc::new(store)),
            clock: Arc::new(WallClock),
        }))
    }

    fn build(
        model: PowerModel,
        config: EasConfig,
        telemetry: Option<Arc<dyn TelemetrySink>>,
    ) -> Arc<SharedEas> {
        let name = format!("EAS-shared({})", config.objective.name());
        let health = Health::new(&config.fault, config.drift, config.watchdog);
        Arc::new(SharedEas {
            engine: DecisionEngine::new(model, config),
            table: KernelTable::new(),
            health,
            name,
            decisions: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            telemetry,
            store: None,
            clock: Arc::new(WallClock),
        })
    }

    /// The persistence store, if this scheduler was built with one.
    pub fn store(&self) -> Option<&Arc<TableStore>> {
        self.store.as_ref()
    }

    /// Forces a snapshot + journal compaction now. No-op without a store.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        match &self.store {
            Some(store) => store.checkpoint(&self.table, self.health.breaker.state()),
            None => Ok(()),
        }
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&Arc<dyn TelemetrySink>> {
        self.telemetry.as_ref()
    }

    /// The learned offload ratio for a kernel, if any.
    pub fn learned_alpha(&self, kernel: KernelId) -> Option<f64> {
        self.table.lookup(kernel)
    }

    /// Number of α decisions made so far across all streams.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// A copy of every α decision made so far. Decisions from one stream
    /// stay in that stream's order; interleaving across streams follows
    /// lock-acquisition order.
    pub fn decision_log(&self) -> Vec<Decision> {
        // Recover from poisoning: a stream that panicked mid-push leaves a
        // fully written Vec (push is not observable half-done here), and
        // one dead tenant must not take down the other streams.
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Serializes the decision log as CSV (same format as
    /// [`EasScheduler::decision_log_csv`]).
    pub fn decision_log_csv(&self) -> String {
        decision_log_csv(&self.decision_log())
    }

    /// The underlying decision engine (policy layer).
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The shared kernel table G (memory layer).
    pub fn table(&self) -> &KernelTable {
        &self.table
    }

    /// Fault-pipeline telemetry aggregated across all streams (see
    /// [`HealthReport`]). All zeros on a healthy platform.
    pub fn health(&self) -> HealthReport {
        let mut report = self.health.report();
        if let Some(store) = &self.store {
            merge_store_health(&mut report, store.health());
        }
        report
    }

    /// The fault-handling state shared by all streams (breaker inspection
    /// for diagnostics).
    pub fn health_state(&self) -> &Health {
        &self.health
    }
}

impl ConcurrentScheduler for SharedEas {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule_shared(&self, kernel: KernelId, backend: &mut dyn Backend) {
        self.schedule_shared_ctx(kernel, backend, InvocationCtx::default());
    }

    fn schedule_shared_ctx(&self, kernel: KernelId, backend: &mut dyn Backend, ctx: InvocationCtx) {
        profile_loop::schedule_invocation(
            &self.engine,
            &self.table,
            &self.health,
            kernel,
            backend,
            |d| {
                self.decisions.fetch_add(1, Ordering::Relaxed);
                self.log
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(d);
            },
            self.telemetry.as_deref(),
            self.store.as_deref(),
            self.clock.as_ref(),
            ctx,
        );
    }
}

/// `Arc<SharedEas>` conveniences.
pub trait SharedEasExt {
    /// A cheap per-stream handle implementing the exclusive
    /// [`Scheduler`](easched_runtime::Scheduler) trait, so existing
    /// drivers ([`EasRuntime`](crate::EasRuntime), harnesses, traces) can
    /// run against the shared table unchanged.
    fn handle(&self) -> Shared<SharedEas>;
}

impl SharedEasExt for Arc<SharedEas> {
    fn handle(&self) -> Shared<SharedEas> {
        Shared::new(Arc::clone(self))
    }
}

impl EasScheduler {
    /// Converts an exclusive scheduler into a shareable one, carrying the
    /// already-learned table (and decision history) across. Useful for
    /// warming a table single-threaded, then serving it to N streams.
    pub fn into_shared(self) -> Arc<SharedEas> {
        let name = format!("EAS-shared({})", self.engine().config().objective.name());
        let decisions = self.decisions();
        let log = self.decision_log().to_vec();
        let (engine, table, health, telemetry, store, clock) = self.into_parts();
        Arc::new(SharedEas {
            engine,
            table,
            health,
            name,
            decisions: AtomicU64::new(decisions),
            log: Mutex::new(log),
            telemetry,
            store,
            clock,
        })
    }
}

// Whole point of the type; fail the build if a field ever loses it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedEas>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass;
    use crate::objective::Objective;
    use crate::power_model::PowerCurve;
    use easched_num::Polynomial;
    use easched_runtime::backend::test_support::FakeBackend;
    use easched_runtime::Scheduler;

    fn flat_model(watts: f64) -> PowerModel {
        let curves = WorkloadClass::all()
            .into_iter()
            .map(|c| PowerCurve::new(c, Polynomial::constant(watts), 0.0, 11))
            .collect();
        PowerModel::new("flat", curves)
    }

    #[test]
    fn shared_matches_exclusive_single_stream() {
        let cfg = EasConfig::new(Objective::Time);
        let mut exclusive = EasScheduler::new(flat_model(50.0), cfg.clone());
        let shared = SharedEas::new(flat_model(50.0), cfg);

        let mut b1 = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        exclusive.schedule(7, &mut b1);
        let mut b2 = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        shared.handle().schedule(7, &mut b2);

        assert_eq!(b1.log, b2.log, "identical backend traffic");
        assert_eq!(exclusive.learned_alpha(7), shared.learned_alpha(7));
        assert_eq!(exclusive.decisions(), shared.decisions());
        assert_eq!(exclusive.decision_log(), &shared.decision_log()[..]);
        assert_eq!(exclusive.decision_log_csv(), shared.decision_log_csv());
    }

    #[test]
    fn into_shared_carries_learned_state() {
        let mut eas = EasScheduler::new(flat_model(50.0), EasConfig::new(Objective::Time));
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(7, &mut b);
        let alpha = eas.learned_alpha(7);
        let decisions = eas.decisions();

        let shared = eas.into_shared();
        assert_eq!(shared.learned_alpha(7), alpha);
        assert_eq!(shared.decisions(), decisions);
        assert_eq!(
            easched_runtime::ConcurrentScheduler::name(&*shared),
            "EAS-shared(time)"
        );

        // The carried table is reused, not re-profiled.
        let mut b2 = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        shared.handle().schedule(7, &mut b2);
        assert_eq!(b2.log.len(), 1, "{:?}", b2.log);
    }

    #[test]
    fn handle_is_cheap_and_named() {
        let shared = SharedEas::new(flat_model(50.0), EasConfig::new(Objective::Energy));
        let h = shared.handle();
        assert_eq!(Scheduler::name(&h), "EAS-shared(energy)");
        let h2 = h.clone();
        assert_eq!(Scheduler::name(&h2), "EAS-shared(energy)");
    }
}
