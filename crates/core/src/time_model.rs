//! The analytical execution-time model T(α) — paper Equations 1–4.
//!
//! Given the combined-mode throughputs R_C and R_G measured by online
//! profiling, the model predicts total execution time for any GPU offload
//! ratio α: a combined phase where both devices run (Eq. 1), then a
//! single-device tail for the leftover iterations (Eqs. 3–4). The
//! performance-optimal ratio α_PERF = R_G/(R_C+R_G) (Eq. 2) makes both
//! devices finish simultaneously.

/// The T(α) model for one kernel, parameterized by measured throughputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeModel {
    /// Combined-mode CPU throughput R_C, items/second.
    pub r_c: f64,
    /// Combined-mode GPU throughput R_G, items/second.
    pub r_g: f64,
}

impl TimeModel {
    /// Creates a model from measured rates. Non-finite or negative rates
    /// are clamped to zero (a device that showed no throughput).
    pub fn new(r_c: f64, r_g: f64) -> TimeModel {
        let clean = |r: f64| if r.is_finite() && r > 0.0 { r } else { 0.0 };
        TimeModel {
            r_c: clean(r_c),
            r_g: clean(r_g),
        }
    }

    /// Equation 2: the offload ratio at which both devices finish together
    /// (the performance-optimal split). 0 if only the CPU works, 1 if only
    /// the GPU works; 0 when neither does (degenerate, caller handles).
    ///
    /// ```
    /// use easched_core::TimeModel;
    /// let m = TimeModel::new(1.0e6, 3.0e6);
    /// assert!((m.alpha_perf() - 0.75).abs() < 1e-12);
    /// ```
    pub fn alpha_perf(&self) -> f64 {
        let total = self.r_c + self.r_g;
        if total > 0.0 {
            self.r_g / total
        } else {
            0.0
        }
    }

    /// Sanitizes a caller-supplied ratio: out-of-range values clamp to
    /// [0, 1] and NaN becomes 0 (all-CPU, the conservative split). A bad
    /// α here means a bug upstream, so debug builds still assert — but a
    /// release deployment mid-fault-storm degrades instead of dying
    /// (DESIGN.md §9).
    fn clamp_alpha(alpha: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        if alpha.is_nan() {
            0.0
        } else {
            alpha.clamp(0.0, 1.0)
        }
    }

    /// Equation 1: time both devices spend in combined mode at ratio
    /// `alpha` over `n` iterations.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `alpha` is outside [0, 1]; release builds
    /// clamp it.
    pub fn combined_time(&self, alpha: f64, n: u64) -> f64 {
        let alpha = Self::clamp_alpha(alpha);
        let n = n as f64;
        let t_cpu = if self.r_c > 0.0 {
            (1.0 - alpha) * n / self.r_c
        } else if alpha == 1.0 {
            0.0
        } else {
            f64::INFINITY
        };
        let t_gpu = if self.r_g > 0.0 {
            alpha * n / self.r_g
        } else if alpha == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        t_cpu.min(t_gpu)
    }

    /// Equation 4: predicted total time to process `n` iterations at ratio
    /// `alpha`. Returns `f64::INFINITY` when the assigned work cannot
    /// complete (e.g. α < 1 with a dead CPU).
    ///
    /// ```
    /// use easched_core::TimeModel;
    /// let m = TimeModel::new(1.0e6, 1.0e6);
    /// // Perfect split of 1M items on two 1M-items/s devices: 0.5 s.
    /// assert!((m.total_time(0.5, 1_000_000) - 0.5).abs() < 1e-9);
    /// // All on one device: 1 s.
    /// assert!((m.total_time(1.0, 1_000_000) - 1.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Debug builds panic if `alpha` is outside [0, 1]; release builds
    /// clamp it.
    pub fn total_time(&self, alpha: f64, n: u64) -> f64 {
        let alpha = Self::clamp_alpha(alpha);
        let nf = n as f64;
        if nf == 0.0 {
            return 0.0;
        }
        // Degenerate devices.
        if self.r_c == 0.0 && self.r_g == 0.0 {
            return f64::INFINITY;
        }
        if self.r_c == 0.0 {
            return if alpha < 1.0 {
                f64::INFINITY
            } else {
                nf / self.r_g
            };
        }
        if self.r_g == 0.0 {
            return if alpha > 0.0 {
                f64::INFINITY
            } else {
                nf / self.r_c
            };
        }

        let t_cg = self.combined_time(alpha, n);
        // Equation 3: iterations left for the single-device tail.
        let n_rem = (nf - t_cg * (self.r_c + self.r_g)).max(0.0);
        // Equation 4: the tail runs on whichever device still has work.
        let tail_rate = if alpha >= self.alpha_perf() {
            self.r_g
        } else {
            self.r_c
        };
        t_cg + n_rem / tail_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_perf_balances() {
        let m = TimeModel::new(2.0, 6.0);
        assert!((m.alpha_perf() - 0.75).abs() < 1e-12);
        // At α_perf both devices finish together: combined time equals
        // total time.
        let a = m.alpha_perf();
        assert!((m.combined_time(a, 800) - m.total_time(a, 800)).abs() < 1e-9);
    }

    #[test]
    fn total_time_minimized_at_alpha_perf() {
        let m = TimeModel::new(1.0e6, 2.5e6);
        let a_perf = m.alpha_perf();
        let t_perf = m.total_time(a_perf, 1_000_000);
        for i in 0..=20 {
            let a = i as f64 / 20.0;
            assert!(
                m.total_time(a, 1_000_000) >= t_perf - 1e-9,
                "T({a}) below T(alpha_perf)"
            );
        }
    }

    #[test]
    fn endpoints_are_single_device_times() {
        let m = TimeModel::new(1000.0, 4000.0);
        assert!((m.total_time(0.0, 10_000) - 10.0).abs() < 1e-9);
        assert!((m.total_time(1.0, 10_000) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cpu_heavy_side_tail_on_cpu() {
        let m = TimeModel::new(1000.0, 1000.0);
        // α=0.25: GPU finishes its 2500 in 2.5 s, CPU has 7500: total 7.5 s.
        assert!((m.total_time(0.25, 10_000) - 7.5).abs() < 1e-9);
        // Combined phase = 2.5 s.
        assert!((m.combined_time(0.25, 10_000) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn dead_devices() {
        let dead = TimeModel::new(0.0, 0.0);
        assert_eq!(dead.total_time(0.5, 10), f64::INFINITY);
        let cpu_only = TimeModel::new(100.0, 0.0);
        assert_eq!(cpu_only.total_time(0.5, 10), f64::INFINITY);
        assert!((cpu_only.total_time(0.0, 1000) - 10.0).abs() < 1e-9);
        assert_eq!(cpu_only.alpha_perf(), 0.0);
        let gpu_only = TimeModel::new(0.0, 100.0);
        assert!((gpu_only.total_time(1.0, 1000) - 10.0).abs() < 1e-9);
        assert_eq!(gpu_only.alpha_perf(), 1.0);
    }

    #[test]
    fn new_sanitizes_rates() {
        let m = TimeModel::new(f64::NAN, -5.0);
        assert_eq!(m.r_c, 0.0);
        assert_eq!(m.r_g, 0.0);
    }

    #[test]
    fn zero_items_zero_time() {
        let m = TimeModel::new(100.0, 100.0);
        assert_eq!(m.total_time(0.7, 0), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn rejects_bad_alpha_in_debug() {
        TimeModel::new(1.0, 1.0).total_time(-0.1, 10);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn clamps_bad_alpha_in_release() {
        let m = TimeModel::new(1000.0, 1000.0);
        assert_eq!(m.total_time(-0.1, 10_000), m.total_time(0.0, 10_000));
        assert_eq!(m.total_time(1.7, 10_000), m.total_time(1.0, 10_000));
        assert_eq!(m.total_time(f64::NAN, 10_000), m.total_time(0.0, 10_000));
        assert_eq!(m.combined_time(2.0, 10_000), m.combined_time(1.0, 10_000));
    }
}
