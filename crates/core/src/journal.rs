//! Crash-safe kernel-table persistence, version 3: an append-only
//! write-ahead journal of table mutations plus periodic atomic
//! snapshot+compaction (DESIGN.md §11).
//!
//! Versions 1 and 2 persisted the table as one whole-file write
//! ([`persist`](crate::persist)) — fine for explicit save points, useless
//! against a `kill -9`: everything learned since the last save dies with
//! the process. Version 3 journals every mutation as it happens, so a
//! restart recovers the table — including taint and circuit-breaker
//! state — to within the single invocation that was in flight.
//!
//! # On-disk layout
//!
//! A store directory holds two files:
//!
//! ```text
//! table.snap      — latest snapshot (atomic rename target)
//! table.journal   — mutations since that snapshot (append-only)
//! ```
//!
//! The snapshot is the v2 text format extended with generation, breaker,
//! and taint state, under the same trailing-checksum envelope:
//!
//! ```text
//! easched-kernel-table v3
//! generation 4
//! breaker 0
//! kernel 7 alpha 6.5e-1 weight 5e4 seen 12 tainted 0
//! checksum 41c09f22e6b7d530
//! ```
//!
//! The journal is line-oriented; every line — header included — carries
//! its own FNV-1a digest so each record validates independently:
//!
//! ```text
//! easched-table-journal v1 gen 4 crc 9f0c21d55ab3e847
//! put 7 alpha 6.5e-1 weight 5e4 seen 12 tainted 0 crc 1c22b06f9d4e7a35
//! taint 7 crc e5b91f20c6a4d713
//! breaker 1 crc 07d4f8a2c91b63e5
//! ```
//!
//! `put` records carry the kernel's *absolute* state (not a delta), so
//! replay is idempotent and a lost record costs only that one update.
//!
//! # Recovery
//!
//! [`TableStore::open`] loads the snapshot (v1/v2 files are accepted for
//! migration: generation 0, breaker closed, untainted), then replays the
//! journal **only if** its header generation matches the snapshot's — a
//! stale journal (crash between snapshot rename and journal reset) is
//! ignored, exactly right because the snapshot already contains its
//! mutations. Replay stops at the first line that fails its digest or
//! parse: a torn tail (the crash landed mid-`write`) or flipped bits
//! forfeit the suffix from that point, never the whole table, and the
//! file is truncated back to the valid prefix so appends resume cleanly.
//! Recovery never panics, whatever the bytes.
//!
//! # Durability
//!
//! Appends are plain `write` syscalls — completed writes survive process
//! death (`kill -9`), which is the failure mode this store defends
//! against. `fsync` happens only at snapshot+compaction, so a *power
//! loss* may cost the journal suffix since the last checkpoint; that
//! trade keeps the per-invocation overhead to one small write. The
//! checkpoint itself is made power-loss-durable end to end: the snapshot
//! is fsynced before the rename, and the **parent directory** is fsynced
//! after the rename and again after the journal reset — without the
//! directory syncs, a power loss after the rename could resurrect the
//! *old* snapshot beside the *new*-generation journal, a pair recovery
//! rejects as [`StoreError::GenerationAhead`]. Append failures never
//! panic the scheduling path — they increment
//! [`write_errors`](TableStore::write_errors) and scheduling continues
//! unpersisted.

use crate::health::BreakerState;
use crate::kernel_table::{AlphaStat, KernelTable};
use crate::persist::{
    self, fnv1a64, seal, verify_sealed, ModelParseError, TABLE_HEADER_V1, TABLE_HEADER_V2,
};
use easched_runtime::KernelId;
use std::error::Error;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Snapshot file name inside a store directory.
const SNAPSHOT_FILE: &str = "table.snap";
/// Journal file name inside a store directory.
const JOURNAL_FILE: &str = "table.journal";
/// Header of the v3 snapshot format.
const TABLE_HEADER_V3: &str = "easched-kernel-table v3";
/// Magic prefix of the journal header line.
const JOURNAL_MAGIC: &str = "easched-table-journal v1";
/// Default journal appends between automatic snapshot+compactions.
const DEFAULT_COMPACT_EVERY: u64 = 256;

/// Error opening or checkpointing a [`TableStore`].
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The snapshot file exists but is malformed or corrupt. Unlike a
    /// torn journal tail this is *not* recoverable silently: the snapshot
    /// is written atomically, so damage means corruption at rest and the
    /// caller must decide.
    Snapshot(ModelParseError),
    /// The journal's header generation is *ahead* of the snapshot's —
    /// the snapshot was deleted or replaced with an older one. Replaying
    /// would resurrect a table missing its base state.
    GenerationAhead {
        /// Generation the journal claims.
        journal: u64,
        /// Generation the snapshot holds.
        snapshot: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Snapshot(e) => write!(f, "snapshot: {e}"),
            StoreError::GenerationAhead { journal, snapshot } => write!(
                f,
                "journal generation {journal} is ahead of snapshot generation {snapshot}"
            ),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Snapshot(e) => Some(e),
            StoreError::GenerationAhead { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// What [`TableStore::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// The kernel table, taint state included.
    pub table: KernelTable,
    /// The circuit-breaker state at the last recorded transition.
    pub breaker: BreakerState,
    /// Snapshot generation the store resumed from.
    pub generation: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed: u64,
    /// Journal lines discarded as torn or corrupt (suffix from the first
    /// invalid line).
    pub discarded: u64,
}

/// Journal-side representation of one mutation.
enum JournalRecord {
    Put {
        kernel: KernelId,
        stat: AlphaStat,
        tainted: bool,
    },
    Taint(KernelId),
    Breaker(BreakerState),
}

/// Mutable store state behind the mutex: the append handle plus the
/// bookkeeping compaction needs.
#[derive(Debug)]
struct StoreInner {
    file: Option<File>,
    generation: u64,
    appends: u64,
    last_breaker: u8,
}

/// The crash-safe store: journal appends on the scheduling path, atomic
/// snapshot+compaction at checkpoints (format and recovery rules in the
/// [module docs](self)).
///
/// All recording methods take `&self` and never panic or return errors —
/// persistence is best-effort on the hot path (failures are counted, see
/// [`write_errors`](TableStore::write_errors)); only [`open`](TableStore::open)
/// and [`checkpoint`](TableStore::checkpoint) surface [`StoreError`].
#[derive(Debug)]
pub struct TableStore {
    dir: PathBuf,
    inner: Mutex<StoreInner>,
    compact_every: u64,
    write_errors: AtomicU64,
}

/// Locks the inner state, recovering from poisoning: a panicked tenant
/// must not end persistence for every other stream.
fn lock(inner: &Mutex<StoreInner>) -> MutexGuard<'_, StoreInner> {
    inner.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One journal line: the record body followed by its own digest.
fn sealed_line(body: &str) -> String {
    format!("{body} crc {:016x}\n", fnv1a64(body.as_bytes()))
}

/// Splits a journal line into its body if (and only if) the trailing
/// digest matches.
fn verified_body(line: &str) -> Option<&str> {
    let (body, hex) = line.rsplit_once(" crc ")?;
    let stored = u64::from_str_radix(hex.trim(), 16).ok()?;
    (hex.trim().len() == 16 && fnv1a64(body.as_bytes()) == stored).then_some(body)
}

impl TableStore {
    /// Opens (creating if absent) the store rooted at `dir` and recovers
    /// the persisted table: snapshot, then journal replay, per the
    /// [module docs](self).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on I/O failure, a corrupt snapshot, or a journal
    /// generation ahead of the snapshot's. A torn or corrupt journal
    /// *tail* is not an error — the suffix is discarded and counted in
    /// [`Recovered::discarded`].
    pub fn open(dir: impl AsRef<Path>) -> Result<(TableStore, Recovered), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let journal_path = dir.join(JOURNAL_FILE);

        let (table, mut breaker, generation) = match fs::read(&snap_path) {
            Ok(bytes) => parse_snapshot(&String::from_utf8_lossy(&bytes))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                (KernelTable::new(), BreakerState::Closed, 0)
            }
            Err(e) => return Err(StoreError::Io(e)),
        };

        let mut replayed = 0u64;
        let mut discarded = 0u64;
        let mut resume_at: Option<u64> = None;
        match fs::read(&journal_path) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let scan = scan_journal(&text);
                match scan.gen {
                    Some(g) if g == generation => {
                        for record in scan.records {
                            match record {
                                JournalRecord::Put {
                                    kernel,
                                    stat,
                                    tainted,
                                } => {
                                    table.insert(kernel, stat);
                                    if tainted {
                                        table.taint(kernel);
                                    }
                                }
                                JournalRecord::Taint(kernel) => table.taint(kernel),
                                JournalRecord::Breaker(state) => breaker = state,
                            }
                            replayed += 1;
                        }
                        discarded = scan.discarded;
                        resume_at = Some(scan.valid_len as u64);
                    }
                    Some(g) if g > generation => {
                        return Err(StoreError::GenerationAhead {
                            journal: g,
                            snapshot: generation,
                        });
                    }
                    // Stale (pre-snapshot) or unreadable header: the
                    // snapshot supersedes it; start a fresh journal.
                    _ => {}
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(e)),
        }

        let file = match resume_at {
            Some(len) => {
                let file = OpenOptions::new().write(true).open(&journal_path)?;
                // Drop the torn tail so appends extend a valid prefix.
                file.set_len(len)?;
                let mut file = file;
                file.seek_to_end()?;
                file
            }
            None => {
                let mut file = File::create(&journal_path)?;
                file.write_all(
                    sealed_line(&format!("{JOURNAL_MAGIC} gen {generation}")).as_bytes(),
                )?;
                file
            }
        };

        let store = TableStore {
            dir,
            inner: Mutex::new(StoreInner {
                file: Some(file),
                generation,
                appends: 0,
                last_breaker: breaker.code(),
            }),
            compact_every: DEFAULT_COMPACT_EVERY,
            write_errors: AtomicU64::new(0),
        };
        let recovered = Recovered {
            table,
            breaker,
            generation,
            replayed,
            discarded,
        };
        Ok((store, recovered))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journal appends between automatic snapshot+compactions.
    pub fn compact_every(&self) -> u64 {
        self.compact_every
    }

    /// Adjusts the auto-compaction threshold (values below 1 are clamped
    /// to 1). Call before sharing the store across threads.
    pub fn set_compact_every(&mut self, every: u64) {
        self.compact_every = every.max(1);
    }

    /// Append or checkpoint failures swallowed on the scheduling path
    /// (persistence is best-effort; scheduling never blocks on disk).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Current journal generation.
    pub fn generation(&self) -> u64 {
        lock(&self.inner).generation
    }

    /// Journals the current state of one kernel's table entry (called
    /// after every accumulation). Triggers an automatic
    /// snapshot+compaction once
    /// [`compact_every`](TableStore::compact_every) appends accumulate.
    pub fn record_entry(&self, table: &KernelTable, kernel: KernelId) {
        let Some(stat) = table.stat(kernel) else {
            return;
        };
        let tainted = table.is_tainted(kernel);
        let mut inner = lock(&self.inner);
        self.append(
            &mut inner,
            &format!(
                "put {kernel} alpha {:e} weight {:e} seen {} tainted {}",
                stat.alpha,
                stat.weight,
                stat.invocations_seen,
                u8::from(tainted)
            ),
        );
        inner.appends += 1;
        if inner.appends >= self.compact_every {
            let breaker =
                BreakerState::from_code(inner.last_breaker).unwrap_or(BreakerState::Closed);
            if self.compact_locked(&mut inner, table, breaker).is_err() {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                // Avoid retrying compaction on every subsequent append.
                inner.appends = 0;
            }
        }
    }

    /// Journals a taint mark for a kernel.
    pub fn record_taint(&self, kernel: KernelId) {
        let mut inner = lock(&self.inner);
        self.append(&mut inner, &format!("taint {kernel}"));
    }

    /// Journals a circuit-breaker transition; no-op when the state
    /// matches the last recorded one, so hot paths may call this
    /// unconditionally.
    pub fn record_breaker(&self, state: BreakerState) {
        let mut inner = lock(&self.inner);
        if inner.last_breaker == state.code() {
            return;
        }
        inner.last_breaker = state.code();
        self.append(&mut inner, &format!("breaker {}", state.code()));
    }

    /// Writes a fresh snapshot atomically (write-temp, `fsync`, rename)
    /// and resets the journal to the new generation.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the previous snapshot remains intact (the
    /// rename is the commit point).
    pub fn checkpoint(&self, table: &KernelTable, breaker: BreakerState) -> Result<(), StoreError> {
        let mut inner = lock(&self.inner);
        inner.last_breaker = breaker.code();
        self.compact_locked(&mut inner, table, breaker)
    }

    /// Best-effort sealed append; failures are counted, never raised.
    fn append(&self, inner: &mut StoreInner, body: &str) {
        let line = sealed_line(body);
        let ok = inner
            .file
            .as_mut()
            .map(|f| f.write_all(line.as_bytes()).is_ok())
            .unwrap_or(false);
        if !ok {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn compact_locked(
        &self,
        inner: &mut StoreInner,
        table: &KernelTable,
        breaker: BreakerState,
    ) -> Result<(), StoreError> {
        let generation = inner.generation + 1;
        let text = snapshot_to_text(table, breaker, generation);
        let tmp = self.dir.join("table.snap.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        // The commit point: a crash before this rename leaves the old
        // snapshot + full journal; after it, the journal is stale (its
        // generation lags) and recovery ignores it.
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // A rename is durable only once its *directory* is synced: without
        // this fsync, a power loss after the rename could resurrect the
        // old snapshot beside the new-generation journal written below —
        // a pair recovery refuses with `GenerationAhead` (the journal
        // claims a base the snapshot no longer holds).
        sync_dir(&self.dir)?;
        let mut file = File::create(self.dir.join(JOURNAL_FILE))?;
        file.write_all(sealed_line(&format!("{JOURNAL_MAGIC} gen {generation}")).as_bytes())?;
        file.sync_all()?;
        // Same reasoning for the journal reset: the first compaction
        // *creates* the directory entry, and its durability needs the
        // directory synced too.
        sync_dir(&self.dir)?;
        inner.file = Some(file);
        inner.generation = generation;
        inner.appends = 0;
        Ok(())
    }
}

/// Fsyncs a directory handle so renames and file creations inside it
/// survive power loss (POSIX makes *file* fsync say nothing about the
/// directory entry). Filesystems that cannot sync a directory handle
/// (some network and FUSE mounts return `EINVAL`/`ENOTSUP`) degrade to
/// best-effort: the metadata operations already happened, and an error
/// here must not fail a checkpoint those mounts could never make durable
/// anyway.
fn sync_dir(dir: &Path) -> io::Result<()> {
    let handle = File::open(dir)?;
    match handle.sync_all() {
        Ok(()) => Ok(()),
        Err(e) if e.raw_os_error() == Some(22) => Ok(()), // EINVAL
        Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
        Err(e) => Err(e),
    }
}

/// Seek-to-end helper so a resumed journal appends after the valid
/// prefix (plain `OpenOptions::append` cannot be combined with the
/// `set_len` truncation above on all platforms).
trait SeekToEnd {
    fn seek_to_end(&mut self) -> io::Result<()>;
}

impl SeekToEnd for File {
    fn seek_to_end(&mut self) -> io::Result<()> {
        use std::io::Seek;
        self.seek(io::SeekFrom::End(0)).map(|_| ())
    }
}

/// Serializes the v3 snapshot text (sorted kernel lines under the
/// checksum envelope).
fn snapshot_to_text(table: &KernelTable, breaker: BreakerState, generation: u64) -> String {
    let mut out = String::new();
    out.push_str(TABLE_HEADER_V3);
    out.push('\n');
    out.push_str(&format!("generation {generation}\n"));
    out.push_str(&format!("breaker {}\n", breaker.code()));
    for (kernel, stat, tainted) in table.snapshot_with_taint() {
        out.push_str(&format!(
            "kernel {} alpha {:e} weight {:e} seen {} tainted {}\n",
            kernel,
            stat.alpha,
            stat.weight,
            stat.invocations_seen,
            u8::from(tainted)
        ));
    }
    seal(out)
}

/// Parses a snapshot file of any supported version; v1/v2 load with
/// generation 0, a closed breaker, and no taint state (those formats
/// never carried it).
fn parse_snapshot(text: &str) -> Result<(KernelTable, BreakerState, u64), StoreError> {
    let header = text.lines().next().unwrap_or("").trim();
    if header == TABLE_HEADER_V1 || header == TABLE_HEADER_V2 {
        let table = persist::table_from_text(text).map_err(StoreError::Snapshot)?;
        return Ok((table, BreakerState::Closed, 0));
    }
    let body = verify_sealed(text, TABLE_HEADER_V3).map_err(StoreError::Snapshot)?;
    let table = KernelTable::new();
    let mut breaker = BreakerState::Closed;
    let mut generation = 0u64;
    let mut lines = body.lines().enumerate();
    lines.next(); // header, validated by the envelope
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |message: String| {
            StoreError::Snapshot(ModelParseError::BadLine {
                line: line_no,
                message,
            })
        };
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("generation") => {
                generation = tokens
                    .next()
                    .ok_or_else(|| bad("missing generation".into()))?
                    .parse()
                    .map_err(|e| bad(format!("generation: {e}")))?;
            }
            Some("breaker") => {
                let code: u8 = tokens
                    .next()
                    .ok_or_else(|| bad("missing breaker code".into()))?
                    .parse()
                    .map_err(|e| bad(format!("breaker code: {e}")))?;
                breaker = BreakerState::from_code(code)
                    .ok_or_else(|| bad(format!("unknown breaker code {code}")))?;
            }
            Some("kernel") => {
                let (kernel, stat, tainted) = parse_entry_fields(&mut tokens).map_err(bad)?;
                if table.stat(kernel).is_some() {
                    return Err(bad(format!("kernel {kernel} listed twice")));
                }
                table.insert(kernel, stat);
                if tainted {
                    table.taint(kernel);
                }
            }
            other => return Err(bad(format!("unknown record {other:?}"))),
        }
    }
    Ok((table, breaker, generation))
}

/// Parses `<id> alpha <a> weight <w> seen <n> tainted <0|1>` — the field
/// list shared by snapshot `kernel` lines and journal `put` records.
fn parse_entry_fields<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<(KernelId, AlphaStat, bool), String> {
    let kernel: KernelId = tokens
        .next()
        .ok_or("missing kernel id")?
        .parse()
        .map_err(|e| format!("kernel id: {e}"))?;
    let keyword = |tokens: &mut dyn Iterator<Item = &'a str>, want: &str| match tokens.next() {
        Some(t) if t == want => Ok(()),
        other => Err(format!("expected {want:?}, found {other:?}")),
    };
    keyword(tokens, "alpha")?;
    let alpha: f64 = tokens
        .next()
        .ok_or("missing alpha")?
        .parse()
        .map_err(|e| format!("alpha: {e}"))?;
    if !(0.0..=1.0).contains(&alpha) {
        return Err(format!("alpha {alpha} out of [0, 1]"));
    }
    keyword(tokens, "weight")?;
    let weight: f64 = tokens
        .next()
        .ok_or("missing weight")?
        .parse()
        .map_err(|e| format!("weight: {e}"))?;
    if !weight.is_finite() || weight < 0.0 {
        return Err(format!("weight {weight} not a finite non-negative value"));
    }
    keyword(tokens, "seen")?;
    let invocations_seen: u64 = tokens
        .next()
        .ok_or("missing seen count")?
        .parse()
        .map_err(|e| format!("seen count: {e}"))?;
    keyword(tokens, "tainted")?;
    let tainted = match tokens.next() {
        Some("0") => false,
        Some("1") => true,
        other => return Err(format!("tainted flag: found {other:?}")),
    };
    if tokens.next().is_some() {
        return Err("trailing tokens after tainted flag".into());
    }
    Ok((
        kernel,
        AlphaStat {
            alpha,
            weight,
            invocations_seen,
        },
        tainted,
    ))
}

/// Result of scanning a journal file: the records of the valid prefix
/// and where that prefix ends.
struct JournalScan {
    /// Header generation, if the header line validated.
    gen: Option<u64>,
    records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header + intact records).
    valid_len: usize,
    /// Lines abandoned after the first invalid one.
    discarded: u64,
}

/// Walks the journal line by line, stopping at the first line that is
/// torn (no trailing newline), fails its digest, or fails to parse.
fn scan_journal(text: &str) -> JournalScan {
    let mut scan = JournalScan {
        gen: None,
        records: Vec::new(),
        valid_len: 0,
        discarded: 0,
    };
    let mut offset = 0usize;
    let mut lines = text.split_inclusive('\n');
    for line in &mut lines {
        let intact = line.ends_with('\n');
        let parsed = intact
            .then(|| verified_body(line.trim_end_matches('\n')))
            .flatten()
            .and_then(|body| {
                if scan.gen.is_none() {
                    let gen = body
                        .strip_prefix(JOURNAL_MAGIC)?
                        .trim()
                        .strip_prefix("gen ")?
                        .trim()
                        .parse()
                        .ok()?;
                    scan.gen = Some(gen);
                    Some(())
                } else {
                    scan.records.push(parse_record(body)?);
                    Some(())
                }
            });
        if parsed.is_none() {
            scan.discarded += 1;
            break;
        }
        offset += line.len();
    }
    scan.discarded += lines.count() as u64;
    scan.valid_len = offset;
    scan
}

/// Parses one verified journal record body.
fn parse_record(body: &str) -> Option<JournalRecord> {
    let mut tokens = body.split_whitespace();
    match tokens.next()? {
        "put" => {
            let (kernel, stat, tainted) = parse_entry_fields(&mut tokens).ok()?;
            Some(JournalRecord::Put {
                kernel,
                stat,
                tainted,
            })
        }
        "taint" => {
            let kernel = tokens.next()?.parse().ok()?;
            tokens
                .next()
                .is_none()
                .then_some(JournalRecord::Taint(kernel))
        }
        "breaker" => {
            let code: u8 = tokens.next()?.parse().ok()?;
            let state = BreakerState::from_code(code)?;
            tokens
                .next()
                .is_none()
                .then_some(JournalRecord::Breaker(state))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eas::Accumulation;
    use std::sync::atomic::AtomicU32;

    /// A unique, self-cleaning store directory per test.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "easched_store_{}_{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn learned_table() -> KernelTable {
        let t = KernelTable::new();
        t.accumulate(7, 2.0 / 3.0, 50_000.0, Accumulation::SampleWeighted);
        t.accumulate(1, 0.0, 17.0, Accumulation::SampleWeighted);
        t.accumulate(900, 1.0, 1e9, Accumulation::SampleWeighted);
        t.note_reuse(7);
        t.taint(900);
        t
    }

    #[test]
    fn fresh_store_starts_empty() {
        let dir = TempDir::new();
        let (store, recovered) = TableStore::open(dir.path()).unwrap();
        assert!(recovered.table.is_empty());
        assert_eq!(recovered.breaker, BreakerState::Closed);
        assert_eq!(recovered.generation, 0);
        assert_eq!(recovered.replayed, 0);
        assert_eq!(store.write_errors(), 0);
    }

    #[test]
    fn journal_replay_recovers_entries_taint_and_breaker() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            for (k, _, _) in table.snapshot_with_taint() {
                store.record_entry(&table, k);
            }
            store.record_taint(7);
            store.record_breaker(BreakerState::Open);
            // kill -9: the store is dropped without a checkpoint.
        }
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.table.snapshot(), table.snapshot());
        assert!(recovered.table.is_tainted(900), "taint from put record");
        assert!(recovered.table.is_tainted(7), "taint record replayed");
        assert_eq!(recovered.breaker, BreakerState::Open);
        assert_eq!(recovered.replayed, 5);
        assert_eq!(recovered.discarded, 0);
    }

    #[test]
    fn checkpoint_compacts_and_survives_reopen() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            for (k, _, _) in table.snapshot_with_taint() {
                store.record_entry(&table, k);
            }
            store.checkpoint(&table, BreakerState::HalfOpen).unwrap();
            assert_eq!(store.generation(), 1);
        }
        let journal = fs::read_to_string(dir.path().join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal.lines().count(), 1, "journal reset to header only");
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.table.snapshot(), table.snapshot());
        assert!(recovered.table.is_tainted(900));
        assert_eq!(recovered.breaker, BreakerState::HalfOpen);
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.replayed, 0);
    }

    #[test]
    fn auto_compaction_fires_at_threshold() {
        let dir = TempDir::new();
        let table = learned_table();
        let (mut store, _) = TableStore::open(dir.path()).unwrap();
        store.set_compact_every(4);
        for _ in 0..4 {
            store.record_entry(&table, 7);
        }
        assert_eq!(store.generation(), 1, "4th append compacted");
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.table.lookup(7), table.lookup(7));
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.record_entry(&table, 7);
            store.record_entry(&table, 1);
        }
        let path = dir.path().join(JOURNAL_FILE);
        let full = fs::read(&path).unwrap();
        // Tear mid-way through the final record.
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (store, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.replayed, 1);
        assert_eq!(recovered.discarded, 1);
        assert_eq!(recovered.table.lookup(7), table.lookup(7));
        assert_eq!(recovered.table.lookup(1), None, "torn record lost");
        // Appends after recovery extend the truncated prefix cleanly.
        store.record_entry(&recovered.table, 7);
        drop(store);
        let (_, again) = TableStore::open(dir.path()).unwrap();
        assert_eq!(again.replayed, 2);
        assert_eq!(again.discarded, 0);
    }

    #[test]
    fn corrupt_line_forfeits_suffix_only() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.record_entry(&table, 7);
            store.record_entry(&table, 1);
            store.record_entry(&table, 900);
        }
        let path = dir.path().join(JOURNAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit in the *second* record (line 3 of the file).
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        bytes[line_starts[2] + 4] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.replayed, 1, "only the intact prefix replays");
        assert_eq!(recovered.discarded, 2, "flipped line and everything after");
        assert_eq!(recovered.table.lookup(7), table.lookup(7));
    }

    #[test]
    fn stale_journal_is_ignored_after_snapshot() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.record_entry(&table, 7);
            store.checkpoint(&table, BreakerState::Closed).unwrap();
        }
        // Simulate the crash window: restore a pre-checkpoint journal
        // (generation 0) next to the generation-1 snapshot.
        let path = dir.path().join(JOURNAL_FILE);
        let mut text = sealed_line(&format!("{JOURNAL_MAGIC} gen 0"));
        text.push_str(&sealed_line("put 5 alpha 5e-1 weight 1e0 seen 0 tainted 0"));
        fs::write(&path, text).unwrap();
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.replayed, 0, "stale journal ignored");
        assert_eq!(
            recovered.table.lookup(5),
            None,
            "its mutations are already in the snapshot lineage"
        );
        assert_eq!(recovered.table.snapshot(), table.snapshot());
    }

    #[test]
    fn journal_ahead_of_snapshot_is_refused() {
        let dir = TempDir::new();
        let path = dir.path().join(JOURNAL_FILE);
        fs::write(&path, sealed_line(&format!("{JOURNAL_MAGIC} gen 3"))).unwrap();
        let err = TableStore::open(dir.path()).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::GenerationAhead {
                    journal: 3,
                    snapshot: 0
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("ahead"));
    }

    #[test]
    fn v2_snapshot_migrates() {
        let dir = TempDir::new();
        let table = learned_table();
        fs::write(
            dir.path().join(SNAPSHOT_FILE),
            persist::table_to_text(&table),
        )
        .unwrap();
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.table.snapshot(), table.snapshot());
        assert_eq!(recovered.generation, 0);
        assert_eq!(recovered.breaker, BreakerState::Closed);
        assert!(
            !recovered.table.is_tainted(900),
            "v2 carried no taint state"
        );
    }

    #[test]
    fn corrupt_snapshot_is_fatal() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.checkpoint(&table, BreakerState::Closed).unwrap();
        }
        let path = dir.path().join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let err = TableStore::open(dir.path()).unwrap_err();
        assert!(matches!(err, StoreError::Snapshot(_)), "{err}");
    }

    #[test]
    fn breaker_transitions_deduplicate() {
        let dir = TempDir::new();
        let (store, _) = TableStore::open(dir.path()).unwrap();
        store.record_breaker(BreakerState::Closed); // already the default
        store.record_breaker(BreakerState::Open);
        store.record_breaker(BreakerState::Open);
        store.record_breaker(BreakerState::Closed);
        drop(store);
        let text = fs::read_to_string(dir.path().join(JOURNAL_FILE)).unwrap();
        assert_eq!(
            text.lines().filter(|l| l.starts_with("breaker")).count(),
            2,
            "{text}"
        );
    }

    #[test]
    fn snapshot_text_is_stable_and_checksummed() {
        let text = snapshot_to_text(&learned_table(), BreakerState::Open, 7);
        assert!(text.starts_with("easched-kernel-table v3\ngeneration 7\nbreaker 1\n"));
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("checksum "), "{last}");
        let (table, breaker, generation) = parse_snapshot(&text).unwrap();
        assert_eq!(table.snapshot(), learned_table().snapshot());
        assert!(table.is_tainted(900));
        assert_eq!(breaker, BreakerState::Open);
        assert_eq!(generation, 7);
    }
}
