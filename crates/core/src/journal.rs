//! Crash-safe kernel-table persistence, version 3: an append-only
//! write-ahead journal of table mutations plus periodic atomic
//! snapshot+compaction (DESIGN.md §11).
//!
//! Versions 1 and 2 persisted the table as one whole-file write
//! ([`persist`](crate::persist)) — fine for explicit save points, useless
//! against a `kill -9`: everything learned since the last save dies with
//! the process. Version 3 journals every mutation as it happens, so a
//! restart recovers the table — including taint and circuit-breaker
//! state — to within the single invocation that was in flight.
//!
//! # On-disk layout
//!
//! A store directory holds two files:
//!
//! ```text
//! table.snap      — latest snapshot (atomic rename target)
//! table.journal   — mutations since that snapshot (append-only)
//! ```
//!
//! The snapshot is the v2 text format extended with generation, breaker,
//! and taint state, under the same trailing-checksum envelope:
//!
//! ```text
//! easched-kernel-table v3
//! generation 4
//! breaker 0
//! kernel 7 alpha 6.5e-1 weight 5e4 seen 12 tainted 0
//! checksum 41c09f22e6b7d530
//! ```
//!
//! The journal is line-oriented; every line — header included — carries
//! its own FNV-1a digest so each record validates independently:
//!
//! ```text
//! easched-table-journal v1 gen 4 crc 9f0c21d55ab3e847
//! put 7 alpha 6.5e-1 weight 5e4 seen 12 tainted 0 crc 1c22b06f9d4e7a35
//! taint 7 crc e5b91f20c6a4d713
//! breaker 1 crc 07d4f8a2c91b63e5
//! ```
//!
//! `put` records carry the kernel's *absolute* state (not a delta), so
//! replay is idempotent and a lost record costs only that one update.
//!
//! # Recovery
//!
//! [`TableStore::open`] loads the snapshot (v1/v2 files are accepted for
//! migration: generation 0, breaker closed, untainted), then replays the
//! journal **only if** its header generation matches the snapshot's — a
//! stale journal (crash between snapshot rename and journal reset) is
//! ignored, exactly right because the snapshot already contains its
//! mutations. Replay stops at the first line that fails its digest or
//! parse: a torn tail (the crash landed mid-`write`) or flipped bits
//! forfeit the suffix from that point, never the whole table, and the
//! file is truncated back to the valid prefix so appends resume cleanly.
//! Recovery never panics, whatever the bytes.
//!
//! # Durability
//!
//! Appends are plain `write` syscalls — completed writes survive process
//! death (`kill -9`), which is the failure mode this store defends
//! against. `fsync` happens only at snapshot+compaction, so a *power
//! loss* may cost the journal suffix since the last checkpoint; that
//! trade keeps the per-invocation overhead to one small write. The
//! checkpoint itself is made power-loss-durable end to end: the snapshot
//! is fsynced before the rename, and the **parent directory** is fsynced
//! after the rename and again after the journal reset — without the
//! directory syncs, a power loss after the rename could resurrect the
//! *old* snapshot beside the *new*-generation journal, a pair recovery
//! rejects as [`StoreError::GenerationAhead`].
//!
//! # Live I/O faults (DESIGN.md §16)
//!
//! All disk access goes through the [`Vfs`] seam, so the same code runs
//! against the real filesystem ([`StdFs`](easched_runtime::StdFs)) or a
//! deterministic fault injector ([`ChaosFs`](easched_runtime::ChaosFs)).
//! Failures on the scheduling path never panic and never block a
//! decision; they follow three rules:
//!
//! * **Poisoning** — after a failed write or fsync the open handle is
//!   never trusted again (the fsyncgate lesson: a second fsync on the
//!   same descriptor can silently report success over lost data). The
//!   store reopens the journal, rescans the sealed prefix from disk,
//!   truncates the tail, and resumes there.
//! * **ENOSPC → emergency compaction** — a full disk triggers an
//!   immediate snapshot+compaction (the snapshot is smaller than
//!   snapshot + journal, and carries the very mutation that failed).
//! * **Degrade-to-memory** — when the disk stays broken, the store
//!   trips into [`StoreMode::Degraded`]: mutations land in a bounded
//!   in-RAM buffer, counters and typed [`StorageEvent`]s surface the
//!   state, and every [`compact_every`](TableStore::compact_every)
//!   appends (or any explicit checkpoint) the store probes the disk
//!   with a compaction; success **re-arms** durability. Buffered lines
//!   are superseded by that snapshot, never replayed on top of it.

use crate::guard::FaultKind;
use crate::health::BreakerState;
use crate::kernel_table::{AlphaStat, KernelTable};
use crate::persist::{
    self, fnv1a64, seal, verify_sealed, ModelParseError, TABLE_HEADER_V1, TABLE_HEADER_V2,
};
use easched_runtime::vfs::{StdFs, Vfs, VfsFile};
use easched_runtime::KernelId;
use std::error::Error;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Snapshot file name inside a store directory.
const SNAPSHOT_FILE: &str = "table.snap";
/// Journal file name inside a store directory.
const JOURNAL_FILE: &str = "table.journal";
/// Header of the v3 snapshot format.
const TABLE_HEADER_V3: &str = "easched-kernel-table v3";
/// Magic prefix of the journal header line.
const JOURNAL_MAGIC: &str = "easched-table-journal v1";
/// Default journal appends between automatic snapshot+compactions.
const DEFAULT_COMPACT_EVERY: u64 = 256;
/// Bound on in-RAM journal lines held while degraded; beyond it the
/// oldest line is dropped (puts are absolute, so newest state wins).
const MAX_BUFFERED_LINES: usize = 1024;
/// Bound on queued [`StorageEvent`]s between telemetry drains.
const MAX_EVENTS: usize = 64;

/// Error opening or checkpointing a [`TableStore`].
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The snapshot file exists but is malformed or corrupt. Unlike a
    /// torn journal tail this is *not* recoverable silently: the snapshot
    /// is written atomically, so damage means corruption at rest and the
    /// caller must decide.
    Snapshot(ModelParseError),
    /// The journal's header generation is *ahead* of the snapshot's —
    /// the snapshot was deleted or replaced with an older one. Replaying
    /// would resurrect a table missing its base state.
    GenerationAhead {
        /// Generation the journal claims.
        journal: u64,
        /// Generation the snapshot holds.
        snapshot: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Snapshot(e) => write!(f, "snapshot: {e}"),
            StoreError::GenerationAhead { journal, snapshot } => write!(
                f,
                "journal generation {journal} is ahead of snapshot generation {snapshot}"
            ),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Snapshot(e) => Some(e),
            StoreError::GenerationAhead { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// What [`TableStore::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovered {
    /// The kernel table, taint state included.
    pub table: KernelTable,
    /// The circuit-breaker state at the last recorded transition.
    pub breaker: BreakerState,
    /// Snapshot generation the store resumed from.
    pub generation: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed: u64,
    /// Journal lines discarded as torn or corrupt (suffix from the first
    /// invalid line).
    pub discarded: u64,
}

/// Journal-side representation of one mutation.
enum JournalRecord {
    Put {
        kernel: KernelId,
        stat: AlphaStat,
        tainted: bool,
    },
    Taint(KernelId),
    Breaker(BreakerState),
}

/// Durability mode of a [`TableStore`] (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// The journal handle is live; mutations hit disk.
    Durable,
    /// The disk is broken: mutations buffer in RAM (bounded) and every
    /// compaction interval the store probes for recovery.
    Degraded,
}

/// One storage fault absorbed by the store, queued for telemetry (the
/// profile loop drains these into [`ControlEvent`]s; they never enter
/// the record ring, so recorded runs stay byte-identical).
///
/// [`ControlEvent`]: easched_telemetry::ControlEvent
#[derive(Debug, Clone)]
pub struct StorageEvent {
    /// What failed (always one of the `FaultKind::Storage*` variants).
    pub kind: FaultKind,
    /// Human-readable context: operation and OS error.
    pub detail: String,
}

/// Counter snapshot of a store's storage health, merged into
/// [`HealthReport`](crate::HealthReport) by the scheduler frontends.
/// None of these affect `fault_free()` — a broken disk degrades
/// durability, not scheduling fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreHealth {
    /// I/O operations that failed (append, snapshot, fsync, resync).
    pub io_errors: u64,
    /// Bytes successfully written (journal lines + snapshots).
    pub bytes_written: u64,
    /// Whether the store is currently in degrade-to-memory mode.
    pub degraded: bool,
    /// Durable→degraded transitions over the store's lifetime.
    pub degraded_transitions: u64,
    /// Degraded→durable recoveries (successful re-arm compactions).
    pub rearms: u64,
    /// Journal lines currently buffered in RAM (degraded mode only).
    pub buffered: u64,
    /// Buffered lines dropped at the RAM bound.
    pub buffered_dropped: u64,
    /// The filesystem rejected directory fsync as unsupported
    /// (tolerated, noted once: renames can't be made power-loss-durable
    /// on this mount).
    pub dir_sync_unsupported: bool,
}

/// What one append attempt did, so entry recording can route ENOSPC
/// into emergency compaction (the one call site holding the table).
enum AppendOutcome {
    /// The line is on disk.
    Written,
    /// The line went to the RAM buffer (store degraded).
    Buffered,
    /// The disk is full and the line is not yet safe anywhere; the
    /// caller must compact or degrade.
    DiskFull,
}

/// Mutable store state behind the mutex: the append handle plus the
/// bookkeeping compaction and degradation need.
#[derive(Debug)]
struct StoreInner {
    file: Option<Box<dyn VfsFile>>,
    generation: u64,
    appends: u64,
    last_breaker: u8,
    mode: StoreMode,
    buffered: Vec<String>,
    buffered_dropped: u64,
    /// Open could not *read* the journal: the recovered table may be
    /// missing records that still exist on disk. Compaction must merge
    /// (or refuse) before resetting the journal, else the loss becomes
    /// durable.
    recovery_partial: bool,
}

/// The crash-safe store: journal appends on the scheduling path, atomic
/// snapshot+compaction at checkpoints (format and recovery rules in the
/// [module docs](self)).
///
/// All recording methods take `&self` and never panic or return errors —
/// persistence is best-effort on the hot path (failures are counted, see
/// [`write_errors`](TableStore::write_errors)); only [`open`](TableStore::open)
/// and [`checkpoint`](TableStore::checkpoint) surface [`StoreError`].
#[derive(Debug)]
pub struct TableStore {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    inner: Mutex<StoreInner>,
    compact_every: u64,
    write_errors: AtomicU64,
    io_errors: AtomicU64,
    bytes_written: AtomicU64,
    degraded_transitions: AtomicU64,
    rearms: AtomicU64,
    dir_sync_unsupported: AtomicBool,
    events: Mutex<Vec<StorageEvent>>,
    events_pending: AtomicBool,
}

/// Locks the inner state, recovering from poisoning: a panicked tenant
/// must not end persistence for every other stream.
fn lock(inner: &Mutex<StoreInner>) -> MutexGuard<'_, StoreInner> {
    inner.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One journal line: the record body followed by its own digest.
fn sealed_line(body: &str) -> String {
    format!("{body} crc {:016x}\n", fnv1a64(body.as_bytes()))
}

/// Splits a journal line into its body if (and only if) the trailing
/// digest matches.
fn verified_body(line: &str) -> Option<&str> {
    let (body, hex) = line.rsplit_once(" crc ")?;
    let stored = u64::from_str_radix(hex.trim(), 16).ok()?;
    (hex.trim().len() == 16 && fnv1a64(body.as_bytes()) == stored).then_some(body)
}

impl TableStore {
    /// Opens (creating if absent) the store rooted at `dir` and recovers
    /// the persisted table: snapshot, then journal replay, per the
    /// [module docs](self).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on a corrupt snapshot, a snapshot-read I/O
    /// failure, or a journal generation ahead of the snapshot's. A torn
    /// or corrupt journal *tail* is not an error — the suffix is
    /// discarded and counted in [`Recovered::discarded`]. Journal-side
    /// *write* failures during open are not errors either: the store
    /// opens in [`StoreMode::Degraded`] and probes its way back.
    pub fn open(dir: impl AsRef<Path>) -> Result<(TableStore, Recovered), StoreError> {
        TableStore::open_with(dir, Arc::new(StdFs))
    }

    /// [`open`](TableStore::open) with an explicit [`Vfs`] — the seam
    /// chaos tests and `--chaos-fs` runs thread a fault injector
    /// through.
    pub fn open_with(
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(TableStore, Recovered), StoreError> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;
        let snap_path = dir.join(SNAPSHOT_FILE);
        let journal_path = dir.join(JOURNAL_FILE);

        let (table, mut breaker, generation) = match vfs.read(&snap_path) {
            Ok(bytes) => parse_snapshot(&String::from_utf8_lossy(&bytes))?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                (KernelTable::new(), BreakerState::Closed, 0)
            }
            Err(e) => return Err(StoreError::Io(e)),
        };

        let mut replayed = 0u64;
        let mut discarded = 0u64;
        let mut resume_at: Option<u64> = None;
        let mut open_faults: Vec<StorageEvent> = Vec::new();
        let mut journal_readable = true;
        match vfs.read(&journal_path) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let scan = scan_journal(&text);
                match scan.gen {
                    Some(g) if g == generation => {
                        for record in scan.records {
                            match record {
                                JournalRecord::Put {
                                    kernel,
                                    stat,
                                    tainted,
                                } => {
                                    table.insert(kernel, stat);
                                    if tainted {
                                        table.taint(kernel);
                                    }
                                }
                                JournalRecord::Taint(kernel) => table.taint(kernel),
                                JournalRecord::Breaker(state) => breaker = state,
                            }
                            replayed += 1;
                        }
                        discarded = scan.discarded;
                        resume_at = Some(scan.valid_len as u64);
                    }
                    Some(g) if g > generation => {
                        return Err(StoreError::GenerationAhead {
                            journal: g,
                            snapshot: generation,
                        });
                    }
                    // Stale (pre-snapshot) or unreadable header: the
                    // snapshot supersedes it; start a fresh journal.
                    _ => {}
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                // The journal exists but won't read back. Failing open
                // would take the scheduler down for a durability-only
                // problem: open degraded on the snapshot alone instead,
                // leaving the journal bytes untouched for forensics.
                journal_readable = false;
                open_faults.push(StorageEvent {
                    kind: FaultKind::StorageWrite,
                    detail: format!("journal read at open: {e}"),
                });
            }
        }

        let mut mode = StoreMode::Durable;
        let file = if journal_readable {
            let attempt: io::Result<Box<dyn VfsFile>> = match resume_at {
                Some(len) => (|| {
                    let mut file = vfs.open_write(&journal_path)?;
                    // Drop the torn tail so appends extend a valid prefix.
                    file.set_len(len)?;
                    file.seek_end()?;
                    Ok(file)
                })(),
                None => (|| {
                    let mut file = vfs.create(&journal_path)?;
                    file.write_all(
                        sealed_line(&format!("{JOURNAL_MAGIC} gen {generation}")).as_bytes(),
                    )?;
                    Ok(file)
                })(),
            };
            match attempt {
                Ok(file) => Some(file),
                Err(e) => {
                    open_faults.push(StorageEvent {
                        kind: FaultKind::StorageWrite,
                        detail: format!("journal open: {e}"),
                    });
                    mode = StoreMode::Degraded;
                    None
                }
            }
        } else {
            mode = StoreMode::Degraded;
            None
        };

        let store = TableStore {
            dir,
            vfs,
            inner: Mutex::new(StoreInner {
                file,
                generation,
                appends: 0,
                last_breaker: breaker.code(),
                mode,
                buffered: Vec::new(),
                buffered_dropped: 0,
                recovery_partial: !journal_readable,
            }),
            compact_every: DEFAULT_COMPACT_EVERY,
            write_errors: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            degraded_transitions: AtomicU64::new(0),
            rearms: AtomicU64::new(0),
            dir_sync_unsupported: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            events_pending: AtomicBool::new(false),
        };
        for event in open_faults {
            store.note_fault(event.kind, event.detail);
        }
        if mode == StoreMode::Degraded {
            store.degraded_transitions.fetch_add(1, Ordering::Relaxed);
            store.note_event(
                FaultKind::StorageDegraded,
                "opened in degrade-to-memory mode".into(),
            );
        }
        let recovered = Recovered {
            table,
            breaker,
            generation,
            replayed,
            discarded,
        };
        Ok((store, recovered))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journal appends between automatic snapshot+compactions.
    pub fn compact_every(&self) -> u64 {
        self.compact_every
    }

    /// Adjusts the auto-compaction threshold (values below 1 are clamped
    /// to 1). Call before sharing the store across threads.
    pub fn set_compact_every(&mut self, every: u64) {
        self.compact_every = every.max(1);
    }

    /// Append or checkpoint failures absorbed on the scheduling path
    /// (persistence is best-effort; scheduling never blocks on disk).
    /// Superseded by the richer [`health`](TableStore::health) but kept
    /// as the stable quick check.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Current journal generation.
    pub fn generation(&self) -> u64 {
        lock(&self.inner).generation
    }

    /// Whether the store is currently in degrade-to-memory mode.
    pub fn is_degraded(&self) -> bool {
        lock(&self.inner).mode == StoreMode::Degraded
    }

    /// Snapshot of the store's storage-health counters.
    pub fn health(&self) -> StoreHealth {
        let inner = lock(&self.inner);
        StoreHealth {
            io_errors: self.io_errors.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            degraded: inner.mode == StoreMode::Degraded,
            degraded_transitions: self.degraded_transitions.load(Ordering::Relaxed),
            rearms: self.rearms.load(Ordering::Relaxed),
            buffered: inner.buffered.len() as u64,
            buffered_dropped: inner.buffered_dropped,
            dir_sync_unsupported: self.dir_sync_unsupported.load(Ordering::Relaxed),
        }
    }

    /// Whether [`take_events`](TableStore::take_events) has anything to
    /// drain — one atomic load, safe on the hot path.
    pub fn has_events(&self) -> bool {
        self.events_pending.load(Ordering::Acquire)
    }

    /// Drains the queued storage events (bounded at [`MAX_EVENTS`];
    /// overflow drops the newest, counters never lie).
    pub fn take_events(&self) -> Vec<StorageEvent> {
        if !self.events_pending.swap(false, Ordering::AcqRel) {
            return Vec::new();
        }
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Journals the current state of one kernel's table entry (called
    /// after every accumulation). Triggers an automatic
    /// snapshot+compaction once
    /// [`compact_every`](TableStore::compact_every) appends accumulate.
    pub fn record_entry(&self, table: &KernelTable, kernel: KernelId) {
        let Some(stat) = table.stat(kernel) else {
            return;
        };
        let tainted = table.is_tainted(kernel);
        let body = format!(
            "put {kernel} alpha {:e} weight {:e} seen {} tainted {}",
            stat.alpha,
            stat.weight,
            stat.invocations_seen,
            u8::from(tainted)
        );
        let mut inner = lock(&self.inner);
        if let AppendOutcome::DiskFull = self.append(&mut inner, &body) {
            // ENOSPC with the table in hand: an emergency
            // snapshot+compaction both frees space (snapshot replaces
            // snapshot + journal) and carries this very mutation.
            let breaker =
                BreakerState::from_code(inner.last_breaker).unwrap_or(BreakerState::Closed);
            if self.compact_locked(&mut inner, table, breaker).is_err() {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                self.degrade(
                    &mut inner,
                    Some(sealed_line(&body)),
                    "ENOSPC and emergency compaction failed",
                );
            }
            return;
        }
        inner.appends += 1;
        if inner.appends >= self.compact_every {
            let breaker =
                BreakerState::from_code(inner.last_breaker).unwrap_or(BreakerState::Closed);
            // In durable mode this is routine compaction; in degraded
            // mode it doubles as the re-arm probe (DESIGN.md §16).
            let ok = self.compact_locked(&mut inner, table, breaker).is_ok();
            self.rearm_after(&mut inner, ok);
            if !ok {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                // Avoid retrying compaction on every subsequent append.
                inner.appends = 0;
            }
        }
    }

    /// Journals a taint mark for a kernel.
    pub fn record_taint(&self, kernel: KernelId) {
        let mut inner = lock(&self.inner);
        let body = format!("taint {kernel}");
        if let AppendOutcome::DiskFull = self.append(&mut inner, &body) {
            // No table in hand, so no emergency compaction here: buffer
            // the line and let the next entry append or checkpoint probe
            // the disk.
            self.degrade(
                &mut inner,
                Some(sealed_line(&body)),
                "ENOSPC outside the entry path",
            );
        }
    }

    /// Journals a circuit-breaker transition; no-op when the state
    /// matches the last recorded one, so hot paths may call this
    /// unconditionally.
    pub fn record_breaker(&self, state: BreakerState) {
        let mut inner = lock(&self.inner);
        if inner.last_breaker == state.code() {
            return;
        }
        inner.last_breaker = state.code();
        let body = format!("breaker {}", state.code());
        if let AppendOutcome::DiskFull = self.append(&mut inner, &body) {
            self.degrade(
                &mut inner,
                Some(sealed_line(&body)),
                "ENOSPC outside the entry path",
            );
        }
    }

    /// Writes a fresh snapshot atomically (write-temp, `fsync`, rename)
    /// and resets the journal to the new generation. While degraded,
    /// a successful checkpoint is exactly the re-arm probe: it restores
    /// durability and clears the RAM buffer (superseded by the
    /// snapshot).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the previous snapshot remains intact (the
    /// rename is the commit point).
    pub fn checkpoint(&self, table: &KernelTable, breaker: BreakerState) -> Result<(), StoreError> {
        let mut inner = lock(&self.inner);
        inner.last_breaker = breaker.code();
        let result = self.compact_locked(&mut inner, table, breaker);
        self.rearm_after(&mut inner, result.is_ok());
        result
    }

    /// Best-effort sealed append; failures are absorbed (counted, typed,
    /// degraded), never raised — except ENOSPC, which is returned so the
    /// entry path can compact.
    fn append(&self, inner: &mut StoreInner, body: &str) -> AppendOutcome {
        let line = sealed_line(body);
        if inner.mode == StoreMode::Degraded {
            self.buffer_line(inner, line);
            return AppendOutcome::Buffered;
        }
        let Some(file) = inner.file.as_mut() else {
            self.degrade(inner, Some(line), "append with no journal handle");
            return AppendOutcome::Buffered;
        };
        match file.write_all(line.as_bytes()) {
            Ok(()) => {
                self.bytes_written
                    .fetch_add(line.len() as u64, Ordering::Relaxed);
                AppendOutcome::Written
            }
            Err(e) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                let disk_full = e.raw_os_error() == Some(28) // ENOSPC
                    || e.kind() == io::ErrorKind::StorageFull;
                self.note_fault(FaultKind::StorageWrite, format!("journal append: {e}"));
                if disk_full {
                    AppendOutcome::DiskFull
                } else {
                    // EIO or a short write: the handle may have torn
                    // bytes on disk. Poison it, rescan the sealed prefix
                    // from disk, and land the line on the fresh handle.
                    if self.resync_handle(inner) {
                        self.append_resynced(inner, line)
                    } else {
                        self.degrade(inner, Some(line), "journal handle lost after write error");
                        AppendOutcome::Buffered
                    }
                }
            }
        }
    }

    /// One append on a freshly resynced handle. No further retries: a
    /// second failure immediately degrades.
    fn append_resynced(&self, inner: &mut StoreInner, line: String) -> AppendOutcome {
        let Some(file) = inner.file.as_mut() else {
            self.degrade(inner, Some(line), "resync produced no handle");
            return AppendOutcome::Buffered;
        };
        match file.write_all(line.as_bytes()) {
            Ok(()) => {
                self.bytes_written
                    .fetch_add(line.len() as u64, Ordering::Relaxed);
                AppendOutcome::Written
            }
            Err(e) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                self.note_fault(FaultKind::StorageWrite, format!("append after resync: {e}"));
                self.degrade(inner, Some(line), "append failed twice");
                AppendOutcome::Buffered
            }
        }
    }

    /// Queues a typed storage event without counting an I/O error
    /// (degradation transitions and tolerated conditions).
    fn note_event(&self, kind: FaultKind, detail: String) {
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() < MAX_EVENTS {
            events.push(StorageEvent { kind, detail });
        }
        self.events_pending.store(true, Ordering::Release);
    }

    /// Counts an I/O error and queues its typed event.
    fn note_fault(&self, kind: FaultKind, detail: String) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        self.note_event(kind, detail);
    }

    /// Trips the store into degrade-to-memory mode (idempotent) and
    /// buffers the line that had nowhere safe to go.
    fn degrade(&self, inner: &mut StoreInner, line: Option<String>, why: &str) {
        if inner.mode != StoreMode::Degraded {
            inner.mode = StoreMode::Degraded;
            inner.file = None;
            self.degraded_transitions.fetch_add(1, Ordering::Relaxed);
            self.note_event(
                FaultKind::StorageDegraded,
                format!("degrade-to-memory: {why}"),
            );
        }
        if let Some(line) = line {
            self.buffer_line(inner, line);
        }
    }

    /// Restores durability after a successful compaction while degraded.
    /// Buffered lines are *dropped*, not flushed: they predate the
    /// snapshot that just committed, and replaying absolute `put`s on
    /// top of it at recovery would regress newer state.
    fn rearm_after(&self, inner: &mut StoreInner, compacted: bool) {
        if compacted && inner.mode == StoreMode::Degraded {
            inner.mode = StoreMode::Durable;
            inner.buffered.clear();
            self.rearms.fetch_add(1, Ordering::Relaxed);
            self.note_event(
                FaultKind::StorageDegraded,
                "durability re-armed after compaction".into(),
            );
        }
    }

    /// Bounded RAM buffering while degraded: at the cap the *oldest*
    /// line drops (puts carry absolute state, so newest wins).
    fn buffer_line(&self, inner: &mut StoreInner, line: String) {
        if inner.buffered.len() >= MAX_BUFFERED_LINES {
            inner.buffered.remove(0);
            inner.buffered_dropped += 1;
        }
        inner.buffered.push(line);
    }

    /// Re-derives a clean journal handle after a poisoned write or
    /// fsync: re-reads the snapshot generation and the journal's sealed
    /// prefix *from disk*, truncates the tail, and resumes there. Never
    /// retries on the old descriptor (fsyncgate). Returns `false` when
    /// the disk refuses — the caller degrades.
    fn resync_handle(&self, inner: &mut StoreInner) -> bool {
        inner.file = None;
        let journal_path = self.dir.join(JOURNAL_FILE);
        let attempt = (|| -> io::Result<(Box<dyn VfsFile>, u64)> {
            let snap_gen = match self.vfs.read(&self.dir.join(SNAPSHOT_FILE)) {
                Ok(bytes) => parse_snapshot(&String::from_utf8_lossy(&bytes))
                    .map(|(_, _, generation)| generation)
                    .map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {e}"))
                    })?,
                Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
                Err(e) => return Err(e),
            };
            let resume = match self.vfs.read(&journal_path) {
                Ok(bytes) => {
                    let text = String::from_utf8_lossy(&bytes);
                    let scan = scan_journal(&text);
                    (scan.gen == Some(snap_gen)).then_some(scan.valid_len as u64)
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => None,
                Err(e) => return Err(e),
            };
            let file = match resume {
                Some(len) => {
                    let mut file = self.vfs.open_write(&journal_path)?;
                    file.set_len(len)?;
                    file.seek_end()?;
                    file
                }
                None => {
                    let mut file = self.vfs.create(&journal_path)?;
                    file.write_all(
                        sealed_line(&format!("{JOURNAL_MAGIC} gen {snap_gen}")).as_bytes(),
                    )?;
                    file
                }
            };
            Ok((file, snap_gen))
        })();
        match attempt {
            Ok((file, generation)) => {
                inner.file = Some(file);
                inner.generation = generation;
                true
            }
            Err(e) => {
                self.note_fault(FaultKind::StorageWrite, format!("journal resync: {e}"));
                false
            }
        }
    }

    /// Directory fsync with the §16 classification: unsupported mounts
    /// are tolerated (noted once — they could never make renames
    /// power-loss-durable anyway); real failures propagate so the
    /// checkpoint reports honestly.
    /// When open could not *read* the journal, records the caller's
    /// table never saw may still be sitting on disk — and compaction is
    /// about to reset that file. Recover them first: puts land only for
    /// kernels the live table does not hold (the journal's values
    /// predate this life, so a fresh in-memory value always wins),
    /// taints always re-apply (quarantine is the safe direction). If
    /// the journal *still* will not read, the compaction is refused:
    /// returning `Err` leaves the previous snapshot + journal intact
    /// and loadable, which beats durably committing silent loss.
    fn merge_unread_journal(
        &self,
        inner: &mut StoreInner,
        table: &KernelTable,
    ) -> Result<(), StoreError> {
        match self.vfs.read(&self.dir.join(JOURNAL_FILE)) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let scan = scan_journal(&text);
                if scan.gen == Some(inner.generation) {
                    for record in scan.records {
                        match record {
                            JournalRecord::Put {
                                kernel,
                                stat,
                                tainted,
                            } => {
                                if table.stat(kernel).is_none() {
                                    table.insert(kernel, stat);
                                    if tainted {
                                        table.taint(kernel);
                                    }
                                }
                            }
                            JournalRecord::Taint(kernel) => table.taint(kernel),
                            JournalRecord::Breaker(_) => {}
                        }
                    }
                }
                inner.recovery_partial = false;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                inner.recovery_partial = false;
                Ok(())
            }
            Err(e) => {
                self.note_fault(
                    FaultKind::StorageWrite,
                    format!("compaction refused, unread journal still unreadable: {e}"),
                );
                Err(StoreError::Io(e))
            }
        }
    }

    fn sync_dir_counted(&self) -> io::Result<()> {
        match classify_dir_sync(self.vfs.sync_dir(&self.dir)) {
            DirSyncOutcome::Synced => Ok(()),
            DirSyncOutcome::Unsupported => {
                if !self.dir_sync_unsupported.swap(true, Ordering::Relaxed) {
                    self.note_event(
                        FaultKind::StorageSync,
                        "directory fsync unsupported on this filesystem (tolerated)".into(),
                    );
                }
                Ok(())
            }
            DirSyncOutcome::Failed(e) => Err(e),
        }
    }

    fn compact_locked(
        &self,
        inner: &mut StoreInner,
        table: &KernelTable,
        breaker: BreakerState,
    ) -> Result<(), StoreError> {
        if inner.recovery_partial {
            self.merge_unread_journal(inner, table)?;
        }
        let generation = inner.generation + 1;
        let text = snapshot_to_text(table, breaker, generation);
        let tmp = self.dir.join("table.snap.tmp");
        // Once the rename commits, the *old* journal is stale (its
        // generation lags the snapshot) and the live handle must not be
        // reused; track where the failure landed.
        let mut renamed = false;
        let mut step = "write snapshot temp";
        let result = (|| -> io::Result<Box<dyn VfsFile>> {
            {
                let mut f = self.vfs.create(&tmp)?;
                step = "fill snapshot temp";
                f.write_all(text.as_bytes())?;
                step = "fsync snapshot temp";
                f.sync_all()?;
            }
            // The commit point: a crash before this rename leaves the old
            // snapshot + full journal; after it, the journal is stale (its
            // generation lags) and recovery ignores it.
            step = "rename snapshot";
            self.vfs.rename(&tmp, &self.dir.join(SNAPSHOT_FILE))?;
            renamed = true;
            // A rename is durable only once its *directory* is synced:
            // without this fsync, a power loss after the rename could
            // resurrect the old snapshot beside the new-generation journal
            // written below — a pair recovery refuses with
            // `GenerationAhead` (the journal claims a base the snapshot no
            // longer holds).
            step = "fsync directory";
            self.sync_dir_counted()?;
            step = "reset journal";
            let mut file = self.vfs.create(&self.dir.join(JOURNAL_FILE))?;
            step = "write journal header";
            file.write_all(sealed_line(&format!("{JOURNAL_MAGIC} gen {generation}")).as_bytes())?;
            step = "fsync journal";
            file.sync_all()?;
            // Same reasoning for the journal reset: the first compaction
            // *creates* the directory entry, and its durability needs the
            // directory synced too.
            step = "fsync directory after reset";
            self.sync_dir_counted()?;
            Ok(file)
        })();
        match result {
            Ok(file) => {
                self.bytes_written
                    .fetch_add(text.len() as u64, Ordering::Relaxed);
                inner.file = Some(file);
                inner.generation = generation;
                inner.appends = 0;
                Ok(())
            }
            Err(e) => {
                let kind = if step.contains("fsync") {
                    FaultKind::StorageSync
                } else {
                    FaultKind::StorageWrite
                };
                self.note_fault(kind, format!("compaction, {step}: {e}"));
                if renamed {
                    // The snapshot committed but something after it
                    // failed: the old handle now points at a stale (or
                    // truncated) journal. Poison it and re-derive from
                    // the new on-disk state; if even that fails, degrade.
                    if !self.resync_handle(inner) {
                        self.degrade(inner, None, "journal lost after snapshot commit");
                    } else {
                        inner.appends = 0;
                    }
                }
                Err(StoreError::Io(e))
            }
        }
    }
}

/// Classification of a directory-fsync result: some mounts (network
/// filesystems, FUSE) cannot sync a directory handle at all and report
/// `EINVAL`/`ENOTSUP` — a capability gap, not a failing disk. POSIX
/// makes *file* fsync say nothing about the directory entry, so on such
/// mounts renames are simply never power-loss-durable and the store
/// tolerates (but notes) it. Everything else is a real error.
#[derive(Debug)]
enum DirSyncOutcome {
    /// The directory entry is durable.
    Synced,
    /// This filesystem cannot fsync directories (tolerated, noted once).
    Unsupported,
    /// A real sync failure — propagated to the caller.
    Failed(io::Error),
}

fn classify_dir_sync(result: io::Result<()>) -> DirSyncOutcome {
    match result {
        Ok(()) => DirSyncOutcome::Synced,
        Err(e) if e.raw_os_error() == Some(22) => DirSyncOutcome::Unsupported, // EINVAL
        Err(e) if e.raw_os_error() == Some(95) => DirSyncOutcome::Unsupported, // ENOTSUP
        Err(e) if e.kind() == io::ErrorKind::Unsupported => DirSyncOutcome::Unsupported,
        Err(e) => DirSyncOutcome::Failed(e),
    }
}

/// Serializes the v3 snapshot text (sorted kernel lines under the
/// checksum envelope).
fn snapshot_to_text(table: &KernelTable, breaker: BreakerState, generation: u64) -> String {
    let mut out = String::new();
    out.push_str(TABLE_HEADER_V3);
    out.push('\n');
    out.push_str(&format!("generation {generation}\n"));
    out.push_str(&format!("breaker {}\n", breaker.code()));
    for (kernel, stat, tainted) in table.snapshot_with_taint() {
        out.push_str(&format!(
            "kernel {} alpha {:e} weight {:e} seen {} tainted {}\n",
            kernel,
            stat.alpha,
            stat.weight,
            stat.invocations_seen,
            u8::from(tainted)
        ));
    }
    seal(out)
}

/// Parses a snapshot file of any supported version; v1/v2 load with
/// generation 0, a closed breaker, and no taint state (those formats
/// never carried it).
fn parse_snapshot(text: &str) -> Result<(KernelTable, BreakerState, u64), StoreError> {
    let header = text.lines().next().unwrap_or("").trim();
    if header == TABLE_HEADER_V1 || header == TABLE_HEADER_V2 {
        let table = persist::table_from_text(text).map_err(StoreError::Snapshot)?;
        return Ok((table, BreakerState::Closed, 0));
    }
    let body = verify_sealed(text, TABLE_HEADER_V3).map_err(StoreError::Snapshot)?;
    let table = KernelTable::new();
    let mut breaker = BreakerState::Closed;
    let mut generation = 0u64;
    let mut lines = body.lines().enumerate();
    lines.next(); // header, validated by the envelope
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |message: String| {
            StoreError::Snapshot(ModelParseError::BadLine {
                line: line_no,
                message,
            })
        };
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("generation") => {
                generation = tokens
                    .next()
                    .ok_or_else(|| bad("missing generation".into()))?
                    .parse()
                    .map_err(|e| bad(format!("generation: {e}")))?;
            }
            Some("breaker") => {
                let code: u8 = tokens
                    .next()
                    .ok_or_else(|| bad("missing breaker code".into()))?
                    .parse()
                    .map_err(|e| bad(format!("breaker code: {e}")))?;
                breaker = BreakerState::from_code(code)
                    .ok_or_else(|| bad(format!("unknown breaker code {code}")))?;
            }
            Some("kernel") => {
                let (kernel, stat, tainted) = parse_entry_fields(&mut tokens).map_err(bad)?;
                if table.stat(kernel).is_some() {
                    return Err(bad(format!("kernel {kernel} listed twice")));
                }
                table.insert(kernel, stat);
                if tainted {
                    table.taint(kernel);
                }
            }
            other => return Err(bad(format!("unknown record {other:?}"))),
        }
    }
    Ok((table, breaker, generation))
}

/// Parses `<id> alpha <a> weight <w> seen <n> tainted <0|1>` — the field
/// list shared by snapshot `kernel` lines and journal `put` records.
fn parse_entry_fields<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<(KernelId, AlphaStat, bool), String> {
    let kernel: KernelId = tokens
        .next()
        .ok_or("missing kernel id")?
        .parse()
        .map_err(|e| format!("kernel id: {e}"))?;
    let keyword = |tokens: &mut dyn Iterator<Item = &'a str>, want: &str| match tokens.next() {
        Some(t) if t == want => Ok(()),
        other => Err(format!("expected {want:?}, found {other:?}")),
    };
    keyword(tokens, "alpha")?;
    let alpha: f64 = tokens
        .next()
        .ok_or("missing alpha")?
        .parse()
        .map_err(|e| format!("alpha: {e}"))?;
    if !(0.0..=1.0).contains(&alpha) {
        return Err(format!("alpha {alpha} out of [0, 1]"));
    }
    keyword(tokens, "weight")?;
    let weight: f64 = tokens
        .next()
        .ok_or("missing weight")?
        .parse()
        .map_err(|e| format!("weight: {e}"))?;
    if !weight.is_finite() || weight < 0.0 {
        return Err(format!("weight {weight} not a finite non-negative value"));
    }
    keyword(tokens, "seen")?;
    let invocations_seen: u64 = tokens
        .next()
        .ok_or("missing seen count")?
        .parse()
        .map_err(|e| format!("seen count: {e}"))?;
    keyword(tokens, "tainted")?;
    let tainted = match tokens.next() {
        Some("0") => false,
        Some("1") => true,
        other => return Err(format!("tainted flag: found {other:?}")),
    };
    if tokens.next().is_some() {
        return Err("trailing tokens after tainted flag".into());
    }
    Ok((
        kernel,
        AlphaStat {
            alpha,
            weight,
            invocations_seen,
        },
        tainted,
    ))
}

/// Result of scanning a journal file: the records of the valid prefix
/// and where that prefix ends.
struct JournalScan {
    /// Header generation, if the header line validated.
    gen: Option<u64>,
    records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (header + intact records).
    valid_len: usize,
    /// Lines abandoned after the first invalid one.
    discarded: u64,
}

/// Walks the journal line by line, stopping at the first line that is
/// torn (no trailing newline), fails its digest, or fails to parse.
fn scan_journal(text: &str) -> JournalScan {
    let mut scan = JournalScan {
        gen: None,
        records: Vec::new(),
        valid_len: 0,
        discarded: 0,
    };
    let mut offset = 0usize;
    let mut lines = text.split_inclusive('\n');
    for line in &mut lines {
        let intact = line.ends_with('\n');
        let parsed = intact
            .then(|| verified_body(line.trim_end_matches('\n')))
            .flatten()
            .and_then(|body| {
                if scan.gen.is_none() {
                    let gen = body
                        .strip_prefix(JOURNAL_MAGIC)?
                        .trim()
                        .strip_prefix("gen ")?
                        .trim()
                        .parse()
                        .ok()?;
                    scan.gen = Some(gen);
                    Some(())
                } else {
                    scan.records.push(parse_record(body)?);
                    Some(())
                }
            });
        if parsed.is_none() {
            scan.discarded += 1;
            break;
        }
        offset += line.len();
    }
    scan.discarded += lines.count() as u64;
    scan.valid_len = offset;
    scan
}

/// Parses one verified journal record body.
fn parse_record(body: &str) -> Option<JournalRecord> {
    let mut tokens = body.split_whitespace();
    match tokens.next()? {
        "put" => {
            let (kernel, stat, tainted) = parse_entry_fields(&mut tokens).ok()?;
            Some(JournalRecord::Put {
                kernel,
                stat,
                tainted,
            })
        }
        "taint" => {
            let kernel = tokens.next()?.parse().ok()?;
            tokens
                .next()
                .is_none()
                .then_some(JournalRecord::Taint(kernel))
        }
        "breaker" => {
            let code: u8 = tokens.next()?.parse().ok()?;
            let state = BreakerState::from_code(code)?;
            tokens
                .next()
                .is_none()
                .then_some(JournalRecord::Breaker(state))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eas::Accumulation;
    use easched_runtime::vfs::{ChaosFs, ChaosFsPlan, StorageFault};
    use easched_runtime::TickClock;
    use std::fs;
    use std::sync::atomic::AtomicU32;

    /// A unique, self-cleaning store directory per test.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "easched_store_{}_{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn learned_table() -> KernelTable {
        let t = KernelTable::new();
        t.accumulate(7, 2.0 / 3.0, 50_000.0, Accumulation::SampleWeighted);
        t.accumulate(1, 0.0, 17.0, Accumulation::SampleWeighted);
        t.accumulate(900, 1.0, 1e9, Accumulation::SampleWeighted);
        t.note_reuse(7);
        t.taint(900);
        t
    }

    #[test]
    fn fresh_store_starts_empty() {
        let dir = TempDir::new();
        let (store, recovered) = TableStore::open(dir.path()).unwrap();
        assert!(recovered.table.is_empty());
        assert_eq!(recovered.breaker, BreakerState::Closed);
        assert_eq!(recovered.generation, 0);
        assert_eq!(recovered.replayed, 0);
        assert_eq!(store.write_errors(), 0);
    }

    #[test]
    fn journal_replay_recovers_entries_taint_and_breaker() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            for (k, _, _) in table.snapshot_with_taint() {
                store.record_entry(&table, k);
            }
            store.record_taint(7);
            store.record_breaker(BreakerState::Open);
            // kill -9: the store is dropped without a checkpoint.
        }
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.table.snapshot(), table.snapshot());
        assert!(recovered.table.is_tainted(900), "taint from put record");
        assert!(recovered.table.is_tainted(7), "taint record replayed");
        assert_eq!(recovered.breaker, BreakerState::Open);
        assert_eq!(recovered.replayed, 5);
        assert_eq!(recovered.discarded, 0);
    }

    #[test]
    fn checkpoint_compacts_and_survives_reopen() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            for (k, _, _) in table.snapshot_with_taint() {
                store.record_entry(&table, k);
            }
            store.checkpoint(&table, BreakerState::HalfOpen).unwrap();
            assert_eq!(store.generation(), 1);
        }
        let journal = fs::read_to_string(dir.path().join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal.lines().count(), 1, "journal reset to header only");
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.table.snapshot(), table.snapshot());
        assert!(recovered.table.is_tainted(900));
        assert_eq!(recovered.breaker, BreakerState::HalfOpen);
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.replayed, 0);
    }

    #[test]
    fn auto_compaction_fires_at_threshold() {
        let dir = TempDir::new();
        let table = learned_table();
        let (mut store, _) = TableStore::open(dir.path()).unwrap();
        store.set_compact_every(4);
        for _ in 0..4 {
            store.record_entry(&table, 7);
        }
        assert_eq!(store.generation(), 1, "4th append compacted");
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.table.lookup(7), table.lookup(7));
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.record_entry(&table, 7);
            store.record_entry(&table, 1);
        }
        let path = dir.path().join(JOURNAL_FILE);
        let full = fs::read(&path).unwrap();
        // Tear mid-way through the final record.
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        let (store, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.replayed, 1);
        assert_eq!(recovered.discarded, 1);
        assert_eq!(recovered.table.lookup(7), table.lookup(7));
        assert_eq!(recovered.table.lookup(1), None, "torn record lost");
        // Appends after recovery extend the truncated prefix cleanly.
        store.record_entry(&recovered.table, 7);
        drop(store);
        let (_, again) = TableStore::open(dir.path()).unwrap();
        assert_eq!(again.replayed, 2);
        assert_eq!(again.discarded, 0);
    }

    #[test]
    fn corrupt_line_forfeits_suffix_only() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.record_entry(&table, 7);
            store.record_entry(&table, 1);
            store.record_entry(&table, 900);
        }
        let path = dir.path().join(JOURNAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one bit in the *second* record (line 3 of the file).
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        bytes[line_starts[2] + 4] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.replayed, 1, "only the intact prefix replays");
        assert_eq!(recovered.discarded, 2, "flipped line and everything after");
        assert_eq!(recovered.table.lookup(7), table.lookup(7));
    }

    #[test]
    fn stale_journal_is_ignored_after_snapshot() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.record_entry(&table, 7);
            store.checkpoint(&table, BreakerState::Closed).unwrap();
        }
        // Simulate the crash window: restore a pre-checkpoint journal
        // (generation 0) next to the generation-1 snapshot.
        let path = dir.path().join(JOURNAL_FILE);
        let mut text = sealed_line(&format!("{JOURNAL_MAGIC} gen 0"));
        text.push_str(&sealed_line("put 5 alpha 5e-1 weight 1e0 seen 0 tainted 0"));
        fs::write(&path, text).unwrap();
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(recovered.replayed, 0, "stale journal ignored");
        assert_eq!(
            recovered.table.lookup(5),
            None,
            "its mutations are already in the snapshot lineage"
        );
        assert_eq!(recovered.table.snapshot(), table.snapshot());
    }

    #[test]
    fn journal_ahead_of_snapshot_is_refused() {
        let dir = TempDir::new();
        let path = dir.path().join(JOURNAL_FILE);
        fs::write(&path, sealed_line(&format!("{JOURNAL_MAGIC} gen 3"))).unwrap();
        let err = TableStore::open(dir.path()).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::GenerationAhead {
                    journal: 3,
                    snapshot: 0
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("ahead"));
    }

    #[test]
    fn v2_snapshot_migrates() {
        let dir = TempDir::new();
        let table = learned_table();
        fs::write(
            dir.path().join(SNAPSHOT_FILE),
            persist::table_to_text(&table),
        )
        .unwrap();
        let (_, recovered) = TableStore::open(dir.path()).unwrap();
        assert_eq!(recovered.table.snapshot(), table.snapshot());
        assert_eq!(recovered.generation, 0);
        assert_eq!(recovered.breaker, BreakerState::Closed);
        assert!(
            !recovered.table.is_tainted(900),
            "v2 carried no taint state"
        );
    }

    #[test]
    fn corrupt_snapshot_is_fatal() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.checkpoint(&table, BreakerState::Closed).unwrap();
        }
        let path = dir.path().join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let err = TableStore::open(dir.path()).unwrap_err();
        assert!(matches!(err, StoreError::Snapshot(_)), "{err}");
    }

    #[test]
    fn breaker_transitions_deduplicate() {
        let dir = TempDir::new();
        let (store, _) = TableStore::open(dir.path()).unwrap();
        store.record_breaker(BreakerState::Closed); // already the default
        store.record_breaker(BreakerState::Open);
        store.record_breaker(BreakerState::Open);
        store.record_breaker(BreakerState::Closed);
        drop(store);
        let text = fs::read_to_string(dir.path().join(JOURNAL_FILE)).unwrap();
        assert_eq!(
            text.lines().filter(|l| l.starts_with("breaker")).count(),
            2,
            "{text}"
        );
    }

    #[test]
    fn snapshot_text_is_stable_and_checksummed() {
        let text = snapshot_to_text(&learned_table(), BreakerState::Open, 7);
        assert!(text.starts_with("easched-kernel-table v3\ngeneration 7\nbreaker 1\n"));
        let last = text.lines().last().unwrap();
        assert!(last.starts_with("checksum "), "{last}");
        let (table, breaker, generation) = parse_snapshot(&text).unwrap();
        assert_eq!(table.snapshot(), learned_table().snapshot());
        assert!(table.is_tainted(900));
        assert_eq!(breaker, BreakerState::Open);
        assert_eq!(generation, 7);
    }

    /// A chaos store over `dir` with the given plan (seed fixed: the
    /// schedules below pin exact operation indices).
    fn chaos_store(dir: &Path, plan: ChaosFsPlan) -> (TableStore, Recovered, ChaosFs) {
        let vfs = ChaosFs::new(42, plan, Arc::new(TickClock::new()));
        let (store, recovered) =
            TableStore::open_with(dir, Arc::new(vfs.clone())).expect("open never fails on writes");
        (store, recovered, vfs)
    }

    #[test]
    fn classify_dir_sync_distinguishes_unsupported_from_failure() {
        assert!(matches!(classify_dir_sync(Ok(())), DirSyncOutcome::Synced));
        // EINVAL, ENOTSUP, and ErrorKind::Unsupported are capability
        // gaps: tolerated.
        for err in [
            io::Error::from_raw_os_error(22),
            io::Error::from_raw_os_error(95),
            io::Error::new(io::ErrorKind::Unsupported, "no dir fsync here"),
        ] {
            assert!(
                matches!(classify_dir_sync(Err(err)), DirSyncOutcome::Unsupported),
                "capability gap must be tolerated"
            );
        }
        // A real EIO propagates.
        let DirSyncOutcome::Failed(e) = classify_dir_sync(Err(io::Error::from_raw_os_error(5)))
        else {
            panic!("EIO is a real failure");
        };
        assert_eq!(e.raw_os_error(), Some(5));
    }

    #[test]
    fn dir_sync_unsupported_is_tolerated_and_noted_once() {
        let dir = TempDir::new();
        let plan = ChaosFsPlan {
            dir_sync_unsupported: true,
            ..ChaosFsPlan::default()
        };
        let (store, _, _) = chaos_store(dir.path(), plan);
        let table = learned_table();
        store
            .checkpoint(&table, BreakerState::Closed)
            .expect("tolerated");
        store
            .checkpoint(&table, BreakerState::Closed)
            .expect("tolerated");
        let health = store.health();
        assert!(health.dir_sync_unsupported);
        assert_eq!(health.io_errors, 0, "a capability gap is not an I/O error");
        let syncs = store
            .take_events()
            .into_iter()
            .filter(|e| e.kind == FaultKind::StorageSync)
            .count();
        assert_eq!(syncs, 1, "noted once across four dir syncs");
    }

    #[test]
    fn every_fsync_point_in_a_checkpoint_propagates_failure() {
        // Open consumes ops 0..=3 on a fresh dir (2 reads, create,
        // header write); a checkpoint spans the 9 ops after it. Schedule
        // an fsync failure at each op: exactly the four sync points
        // (snapshot fsync, dir fsync, journal fsync, dir fsync again)
        // must fail the checkpoint — syncs are never silently absorbed.
        let mut failures = 0;
        for op in 4..13 {
            let dir = TempDir::new();
            let (store, _, _) =
                chaos_store(dir.path(), ChaosFsPlan::at(op, StorageFault::FsyncFail));
            if store
                .checkpoint(&learned_table(), BreakerState::Closed)
                .is_err()
            {
                failures += 1;
            }
            // Whatever happened, the store must still be usable and the
            // on-disk state loadable.
            store.record_entry(&learned_table(), 7);
            let (_, recovered) = TableStore::open(dir.path()).expect("loadable");
            assert_eq!(recovered.table.lookup(7), learned_table().lookup(7));
        }
        assert_eq!(failures, 4, "one per fsync point, no more, no less");
    }

    #[test]
    fn enospc_on_append_triggers_emergency_compaction() {
        let dir = TempDir::new();
        let table = learned_table();
        // Op 4 is the first journal append after a fresh open.
        let (store, _, _) = chaos_store(dir.path(), ChaosFsPlan::at(4, StorageFault::Enospc));
        store.record_entry(&table, 7);
        assert!(!store.is_degraded(), "compaction freed the disk");
        assert_eq!(store.generation(), 1, "emergency snapshot committed");
        assert!(store.health().io_errors >= 1);
        let (_, recovered) = TableStore::open(dir.path()).expect("loadable");
        assert_eq!(
            recovered.table.lookup(7),
            table.lookup(7),
            "the failed mutation rode the emergency snapshot"
        );
    }

    #[test]
    fn persistent_enospc_degrades_then_checkpoint_rearms() {
        let dir = TempDir::new();
        let table = learned_table();
        // Append fails with ENOSPC *and* the emergency compaction's
        // temp-file create fails right after: degrade-to-memory.
        let plan = ChaosFsPlan {
            schedule: vec![(4, StorageFault::Enospc), (5, StorageFault::Enospc)],
            ..ChaosFsPlan::default()
        };
        let (store, _, _) = chaos_store(dir.path(), plan);
        store.record_entry(&table, 7);
        assert!(store.is_degraded());
        store.record_entry(&table, 1);
        // As in the profile loop, the table is tainted alongside the
        // journal record — the re-arm snapshot carries it even though
        // the buffered line is superseded.
        table.taint(7);
        store.record_taint(7);
        let health = store.health();
        assert_eq!(health.degraded_transitions, 1);
        assert_eq!(health.buffered, 3, "mutations buffer in RAM while degraded");
        // The disk "clears" (the schedule is exhausted): an explicit
        // checkpoint is the re-arm probe.
        store
            .checkpoint(&table, BreakerState::Closed)
            .expect("re-arm");
        let health = store.health();
        assert!(!health.degraded);
        assert_eq!(health.rearms, 1);
        assert_eq!(health.buffered, 0, "superseded by the snapshot");
        store.record_entry(&table, 900);
        let (_, recovered) = TableStore::open(dir.path()).expect("loadable");
        assert_eq!(recovered.table.snapshot(), table.snapshot());
        assert!(recovered.table.is_tainted(7), "taint survived via snapshot");
    }

    #[test]
    fn short_write_poisons_handle_and_resyncs_to_sealed_prefix() {
        let dir = TempDir::new();
        let table = learned_table();
        let (store, _, _) = chaos_store(dir.path(), ChaosFsPlan::at(4, StorageFault::ShortWrite));
        store.record_entry(&table, 7); // torn on disk, then resynced + relanded
        store.record_entry(&table, 1);
        assert!(!store.is_degraded());
        assert_eq!(store.health().io_errors, 1);
        drop(store);
        let (_, recovered) = TableStore::open(dir.path()).expect("loadable");
        assert_eq!(recovered.discarded, 0, "the torn bytes were truncated away");
        assert_eq!(recovered.replayed, 2);
        assert_eq!(recovered.table.lookup(7), table.lookup(7));
        assert_eq!(recovered.table.lookup(1), table.lookup(1));
    }

    #[test]
    fn unreadable_journal_opens_degraded_not_fatal() {
        let dir = TempDir::new();
        let table = learned_table();
        {
            let (store, _) = TableStore::open(dir.path()).unwrap();
            store.checkpoint(&table, BreakerState::Closed).unwrap();
        }
        // Snapshot read (op 0) is fine; journal read (op 1) EIOs.
        let (store, recovered, _) = chaos_store(dir.path(), ChaosFsPlan::at(1, StorageFault::Eio));
        assert!(store.is_degraded(), "journal unreadable: degraded open");
        assert_eq!(
            recovered.table.snapshot(),
            table.snapshot(),
            "the snapshot alone still recovers the table"
        );
        // And the store can still re-arm once the disk behaves.
        store
            .checkpoint(&table, BreakerState::Closed)
            .expect("re-arm");
        assert!(!store.is_degraded());
    }

    #[test]
    fn storage_events_drain_once_and_are_typed() {
        let dir = TempDir::new();
        let (store, _, _) = chaos_store(dir.path(), ChaosFsPlan::at(4, StorageFault::Enospc));
        assert!(!store.has_events());
        store.record_entry(&learned_table(), 7);
        assert!(store.has_events());
        let events = store.take_events();
        assert!(events.iter().any(|e| e.kind == FaultKind::StorageWrite));
        assert!(!store.has_events());
        assert!(store.take_events().is_empty(), "drained");
    }
}
