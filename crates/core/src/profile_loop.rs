//! The per-invocation Figure 7 control flow, shared by the exclusive
//! ([`EasScheduler`](crate::EasScheduler)) and concurrent
//! ([`SharedEas`](crate::SharedEas)) frontends.
//!
//! This is the *observation-driven* loop: reuse a learned ratio from the
//! kernel table when one exists (steps 2–4), run tiny invocations CPU-only
//! (steps 6–10), otherwise repeat online profiling and re-decide α each
//! round (steps 11–22), then run the remainder at the decided ratio and
//! fold it into G with sample weighting (steps 23–26). The loop itself
//! owns no state — it reads the engine (policy), reads/writes the table
//! (memory), drives the backend (observation), and reports every decision
//! through a callback so each frontend can keep its own log.
//!
//! # Fault handling (DESIGN.md §9)
//!
//! Every profiling observation is vetted by the engine's
//! [`ObservationGuard`](crate::ObservationGuard) before it can influence a
//! decision. A rejected round is retried with a *backed-off* GPU chunk
//! (halved per consecutive rejection) up to
//! [`FaultPolicy::max_retries`](crate::FaultPolicy); past the budget the
//! invocation *degrades*: it runs its remainder at the last trusted α (or
//! CPU-only if none) and learns nothing. GPU-implicating faults also feed
//! the [`CircuitBreaker`](crate::CircuitBreaker): once it trips, whole
//! invocations are gated to CPU-only until the quarantine is served and a
//! probe invocation finds the GPU healthy again. Any invocation that saw a
//! fault taints the kernel's table entry, forcing a re-profile on the next
//! reuse. On a healthy platform none of these paths activate and the loop
//! is behavior-identical to the unguarded original.

use crate::eas::Decision;
use crate::engine::DecisionEngine;
use crate::health::{BreakerGate, Health};
use crate::kernel_table::KernelTable;
use easched_runtime::{Backend, KernelId};

/// Executes one kernel invocation under the EAS policy.
///
/// `on_decision` fires once per profiling-round α decision, in order —
/// frontends use it to maintain their decision logs and counters.
pub(crate) fn schedule_invocation(
    engine: &DecisionEngine,
    table: &KernelTable,
    health: &Health,
    kernel: KernelId,
    backend: &mut dyn Backend,
    mut on_decision: impl FnMut(Decision),
) {
    let n = backend.remaining();
    if n == 0 {
        return;
    }
    let profile_size = backend.gpu_profile_size();
    let config = engine.config();

    // §9 gate: with the breaker open the GPU is quarantined — run the
    // whole invocation CPU-only and learn nothing (a ratio learned during
    // an outage would poison the table for the healthy future). A `Probe`
    // gate falls through to profiling but skips table reuse, so the GPU is
    // actually exercised and a clean observation can close the breaker.
    let probing = match health.breaker.gate() {
        BreakerGate::Normal => false,
        BreakerGate::Probe => {
            health.stats.note_probe();
            true
        }
        BreakerGate::CpuOnly => {
            health.stats.note_quarantined();
            backend.run_split(0.0);
            return;
        }
    };

    // Steps 2–4: reuse the learned ratio for known kernels (unless a
    // periodic re-profile is due, or the entry is tainted by an earlier
    // faulty invocation). The small-N guard of steps 6–8 still applies on
    // this path: an invocation too small to fill the GPU runs on the CPU
    // regardless of the learned ratio — offloading a sub-occupancy sliver
    // would waste both time and energy (this is the reason the guard
    // exists, and it matters for cascade-style kernels like FD whose
    // invocation sizes swing by orders of magnitude).
    if !probing {
        if let Some(probe) = table.note_reuse(kernel) {
            let due_reprofile = (probe.tainted
                || config
                    .reprofile_every
                    .is_some_and(|k| probe.invocations_seen % k == 0))
                && n >= profile_size;
            if !due_reprofile {
                let alpha = if n < profile_size { 0.0 } else { probe.alpha };
                backend.run_split(alpha);
                return;
            }
            // Fall through to a fresh profiling pass that re-accumulates.
        }
    }

    // Steps 6–10: tiny invocations cannot fill the GPU — CPU alone.
    if n < profile_size {
        backend.run_split(0.0);
        table.accumulate(kernel, 0.0, n as f64, config.accumulation);
        return;
    }

    // Steps 11–22: repeat profiling for `profile_fraction` of the
    // iterations, re-deciding α each round. Rejected rounds are retried
    // with a backed-off chunk; sustained rejection degrades the
    // invocation.
    let profile_until = ((n as f64) * (1.0 - config.profile_fraction)) as u64;
    let mut alpha = 0.0;
    let mut alpha_weight = 0.0;
    let mut streak = 0usize;
    let mut rejected_streak: u32 = 0;
    let mut faulty_rounds: u64 = 0;
    let mut gave_up = false;
    while backend.remaining() > profile_until.max(profile_size) {
        let before = backend.remaining();
        // Bounded backoff: each consecutive rejection halves the chunk so
        // a misbehaving device wastes geometrically less work per retry.
        let chunk = (profile_size >> rejected_streak.min(16)).max(1);
        let obs = backend.profile_step(chunk);
        let consumed = before - backend.remaining();
        if consumed == 0 {
            break; // safety: no progress (degenerate backend)
        }
        if let Err(fault) = engine.vet(&obs) {
            health.stats.note_rejected();
            faulty_rounds += 1;
            if fault.implicates_gpu() && health.breaker.record_gpu_fault() {
                health.stats.note_trip();
            }
            if health.breaker.is_open() || rejected_streak >= config.fault.max_retries {
                gave_up = true;
                break;
            }
            rejected_streak += 1;
            health.stats.note_retry();
            continue;
        }
        health.stats.note_accepted();
        if obs.gpu_items > 0 && health.breaker.record_clean_gpu() {
            health.stats.note_recovery();
        }
        rejected_streak = 0;
        let decision = engine.decide(kernel, &obs, backend.remaining());
        let decided = decision.alpha;
        on_decision(decision);
        streak = if (decided - alpha).abs() < 1e-9 && alpha_weight > 0.0 {
            streak + 1
        } else {
            1
        };
        alpha = decided;
        alpha_weight += consumed as f64;
        if config.profile_stable_rounds > 0 && streak >= config.profile_stable_rounds {
            break; // converged: stop profiling early
        }
    }

    if gave_up {
        // Degraded finish: trust the last clean decision if there was one
        // and the GPU is not implicated; otherwise fall back to CPU-only.
        health.stats.note_degraded();
        let fallback = if health.breaker.is_open() || alpha_weight <= 0.0 {
            0.0
        } else {
            alpha
        };
        if backend.remaining() > 0 {
            backend.run_split(fallback);
        }
        // Learn only what clean rounds support — and mark it suspect so
        // the next invocation re-profiles instead of reusing it.
        if alpha_weight > 0.0 && !health.breaker.is_open() {
            table.accumulate(kernel, fallback, alpha_weight, config.accumulation);
            table.taint(kernel);
            health.stats.note_taint();
        }
        return;
    }

    // Steps 23–25: run the remainder at the decided ratio.
    if backend.remaining() > 0 {
        backend.run_split(alpha);
    }
    // Step 26: sample-weighted accumulation into G.
    table.accumulate(
        kernel,
        alpha,
        alpha_weight.max(n as f64 * 0.5),
        config.accumulation,
    );
    if faulty_rounds > 0 {
        // Some rounds were rejected even though profiling finished: the
        // learned ratio rests on a suspect invocation — re-profile next
        // time rather than reuse it.
        table.taint(kernel);
        health.stats.note_taint();
    }
}
