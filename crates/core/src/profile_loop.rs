//! The per-invocation Figure 7 control flow, shared by the exclusive
//! ([`EasScheduler`](crate::EasScheduler)) and concurrent
//! ([`SharedEas`](crate::SharedEas)) frontends.
//!
//! This is the *observation-driven* loop: reuse a learned ratio from the
//! kernel table when one exists (steps 2–4), run tiny invocations CPU-only
//! (steps 6–10), otherwise repeat online profiling and re-decide α each
//! round (steps 11–22), then run the remainder at the decided ratio and
//! fold it into G with sample weighting (steps 23–26). The loop itself
//! owns no state — it reads the engine (policy), reads/writes the table
//! (memory), drives the backend (observation), and reports every decision
//! through a callback so each frontend can keep its own log.

use crate::eas::Decision;
use crate::engine::DecisionEngine;
use crate::kernel_table::KernelTable;
use easched_runtime::{Backend, KernelId};

/// Executes one kernel invocation under the EAS policy.
///
/// `on_decision` fires once per profiling-round α decision, in order —
/// frontends use it to maintain their decision logs and counters.
pub(crate) fn schedule_invocation(
    engine: &DecisionEngine,
    table: &KernelTable,
    kernel: KernelId,
    backend: &mut dyn Backend,
    mut on_decision: impl FnMut(Decision),
) {
    let n = backend.remaining();
    if n == 0 {
        return;
    }
    let profile_size = backend.gpu_profile_size();
    let config = engine.config();

    // Steps 2–4: reuse the learned ratio for known kernels (unless a
    // periodic re-profile is due). The small-N guard of steps 6–8 still
    // applies on this path: an invocation too small to fill the GPU runs
    // on the CPU regardless of the learned ratio — offloading a
    // sub-occupancy sliver would waste both time and energy (this is the
    // reason the guard exists, and it matters for cascade-style kernels
    // like FD whose invocation sizes swing by orders of magnitude).
    if let Some(probe) = table.note_reuse(kernel) {
        let due_reprofile = config
            .reprofile_every
            .is_some_and(|k| probe.invocations_seen % k == 0)
            && n >= profile_size;
        if !due_reprofile {
            let alpha = if n < profile_size { 0.0 } else { probe.alpha };
            backend.run_split(alpha);
            return;
        }
        // Fall through to a fresh profiling pass that re-accumulates.
    }

    // Steps 6–10: tiny invocations cannot fill the GPU — CPU alone.
    if n < profile_size {
        backend.run_split(0.0);
        table.accumulate(kernel, 0.0, n as f64, config.accumulation);
        return;
    }

    // Steps 11–22: repeat profiling for `profile_fraction` of the
    // iterations, re-deciding α each round.
    let profile_until = ((n as f64) * (1.0 - config.profile_fraction)) as u64;
    let mut alpha = 0.0;
    let mut alpha_weight = 0.0;
    let mut streak = 0usize;
    while backend.remaining() > profile_until.max(profile_size) {
        let before = backend.remaining();
        let obs = backend.profile_step(profile_size);
        let consumed = before - backend.remaining();
        if consumed == 0 {
            break; // safety: no progress (degenerate backend)
        }
        let decision = engine.decide(kernel, &obs, backend.remaining());
        let decided = decision.alpha;
        on_decision(decision);
        streak = if (decided - alpha).abs() < 1e-9 && alpha_weight > 0.0 {
            streak + 1
        } else {
            1
        };
        alpha = decided;
        alpha_weight += consumed as f64;
        if config.profile_stable_rounds > 0 && streak >= config.profile_stable_rounds {
            break; // converged: stop profiling early
        }
    }

    // Steps 23–25: run the remainder at the decided ratio.
    if backend.remaining() > 0 {
        backend.run_split(alpha);
    }
    // Step 26: sample-weighted accumulation into G.
    table.accumulate(
        kernel,
        alpha,
        alpha_weight.max(n as f64 * 0.5),
        config.accumulation,
    );
}
