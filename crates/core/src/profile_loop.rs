//! The per-invocation Figure 7 control flow, shared by the exclusive
//! ([`EasScheduler`](crate::EasScheduler)) and concurrent
//! ([`SharedEas`](crate::SharedEas)) frontends.
//!
//! This is the *observation-driven* loop: reuse a learned ratio from the
//! kernel table when one exists (steps 2–4), run tiny invocations CPU-only
//! (steps 6–10), otherwise repeat online profiling and re-decide α each
//! round (steps 11–22), then run the remainder at the decided ratio and
//! fold it into G with sample weighting (steps 23–26). The loop itself
//! owns no state — it reads the engine (policy), reads/writes the table
//! (memory), drives the backend (observation), and reports every decision
//! through a callback so each frontend can keep its own log.
//!
//! # Fault handling (DESIGN.md §9)
//!
//! Every profiling observation is vetted by the engine's
//! [`ObservationGuard`](crate::ObservationGuard) before it can influence a
//! decision. A rejected round is retried with a *backed-off* GPU chunk
//! (halved per consecutive rejection) up to
//! [`FaultPolicy::max_retries`](crate::FaultPolicy); past the budget the
//! invocation *degrades*: it runs its remainder at the last trusted α (or
//! CPU-only if none) and learns nothing. GPU-implicating faults also feed
//! the [`CircuitBreaker`](crate::CircuitBreaker): once it trips, whole
//! invocations are gated to CPU-only until the quarantine is served and a
//! probe invocation finds the GPU healthy again. Any invocation that saw a
//! fault taints the kernel's table entry, forcing a re-profile on the next
//! reuse. On a healthy platform none of these paths activate and the loop
//! is behavior-identical to the unguarded original.
//!
//! # Telemetry (DESIGN.md §10)
//!
//! With a [`TelemetrySink`] attached, the loop emits one
//! [`DecisionRecord`] per invocation: the backend is wrapped in an
//! [`InstrumentedBackend`] that totals what each phase observed, the
//! vet+decide path is wall-clock timed, and the exit path tags which
//! Figure 7 branch ran. With no sink (the default) none of that exists —
//! the backend is driven directly and the only residue is a handful of
//! dead local stores, keeping the disabled path behavior-identical
//! *and* cost-identical to the pre-telemetry loop.

use crate::eas::Decision;
use crate::engine::DecisionEngine;
use crate::guard::FaultKind;
use crate::health::{BreakerGate, Health};
use crate::journal::TableStore;
use crate::kernel_table::KernelTable;
use crate::selfheal::DriftAction;
use easched_runtime::telemetry::InstrumentedBackend;
use easched_runtime::{Backend, Clock, GpuPolicy, InvocationCtx, KernelId, Observation};
use easched_telemetry::{
    ControlEvent, DecisionRecord, InvocationPath, Span, SpanKind, TelemetrySink,
};

/// What `drive` learned about the invocation, for record construction.
struct InvocationSummary {
    path: InvocationPath,
    last: Option<Decision>,
    rounds: u32,
    fault_rounds: u32,
    last_fault: Option<FaultKind>,
    /// The α the remainder actually executed at.
    alpha: f64,
    decide_nanos: u64,
}

impl InvocationSummary {
    fn new(path: InvocationPath, alpha: f64) -> InvocationSummary {
        InvocationSummary {
            path,
            last: None,
            rounds: 0,
            fault_rounds: 0,
            last_fault: None,
            alpha,
            decide_nanos: 0,
        }
    }
}

/// Executes one kernel invocation under the EAS policy.
///
/// `on_decision` fires once per profiling-round α decision, in order —
/// frontends use it to maintain their decision logs and counters. With a
/// `sink`, one [`DecisionRecord`] is emitted after the invocation
/// completes; with `None` the loop runs the exact untelemetered path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn schedule_invocation(
    engine: &DecisionEngine,
    table: &KernelTable,
    health: &Health,
    kernel: KernelId,
    backend: &mut dyn Backend,
    mut on_decision: impl FnMut(Decision),
    sink: Option<&dyn TelemetrySink>,
    store: Option<&TableStore>,
    clock: &dyn Clock,
    ctx: InvocationCtx,
) {
    match sink {
        None => {
            drive(
                engine,
                table,
                health,
                kernel,
                backend,
                &mut on_decision,
                None,
                store,
                clock,
                ctx,
            );
        }
        Some(sink) => {
            let items = backend.remaining();
            let mut instrumented = InstrumentedBackend::new(backend);
            if let Some(summary) = drive(
                engine,
                table,
                health,
                kernel,
                &mut instrumented,
                &mut on_decision,
                Some(sink),
                store,
                clock,
                ctx,
            ) {
                let record = build_record(engine, health, kernel, items, &instrumented, summary);
                sink.record(&record);
                if sink.wants_spans() {
                    emit_invocation_spans(sink, kernel, ctx, &record, &instrumented);
                }
            }
        }
    }
    if let Some(store) = store {
        // Deduplicated inside the store: only actual transitions append.
        store.record_breaker(health.breaker.state());
        // Storage faults the store absorbed this invocation surface as
        // control events — never as decision records, so fault-free runs
        // and chaos runs record byte-identical rings (DESIGN.md §16).
        if store.has_events() {
            for ev in store.take_events() {
                emit(
                    sink,
                    &ControlEvent::StorageFault {
                        kind: ev.kind.code(),
                        degraded: store.is_degraded(),
                    },
                );
            }
        }
    }
}

/// Nanoseconds elapsed on `clock` since `started` (clamped at zero).
fn elapsed_nanos(clock: &dyn Clock, started: f64) -> u64 {
    ((clock.now() - started).max(0.0) * 1.0e9) as u64
}

/// Emits a control-loop event when a sink is attached (no-op otherwise).
fn emit(sink: Option<&dyn TelemetrySink>, event: &ControlEvent) {
    if let Some(sink) = sink {
        sink.control(event);
    }
}

/// The §11 post-split control hook, shared by every path that executed a
/// chunk: first the watchdog checks the chunk against its hard deadline —
/// an overrun taints the entry and feeds the breaker exactly like a hung
/// profiling round — then, when the split is drift-eligible (`drift`
/// carries the predicted EDP and item count), its realized EDP is folded
/// into the kernel's drift EWMA and the monitor's verdict is acted on:
/// a `Reprofile` taints the entry so the next invocation re-profiles, a
/// `Suppressed` only counts (the token bucket was empty). Implausible
/// observations are vetted out before they can steer the loop, so none
/// of the §9 fault signatures ever reach the drift monitor.
#[allow(clippy::too_many_arguments)]
fn after_split(
    engine: &DecisionEngine,
    table: &KernelTable,
    health: &Health,
    kernel: KernelId,
    sink: Option<&dyn TelemetrySink>,
    store: Option<&TableStore>,
    obs: &Observation,
    deadline: Option<f64>,
    drift: Option<(Option<f64>, u64)>,
) {
    if health
        .watchdog()
        .split_overrun_within(obs.elapsed, deadline)
    {
        health.stats.note_split_overrun();
        emit(
            sink,
            &ControlEvent::SplitOverrun {
                kernel,
                elapsed: obs.elapsed,
            },
        );
        // A chunk that busted its hard deadline implicates the GPU the
        // same way a hung profiling round does, and the learned ratio it
        // ran under is suspect — re-profile before the next reuse.
        if health.breaker.record_gpu_fault() {
            health.stats.note_trip();
        }
        table.taint(kernel);
        if let Some(store) = store {
            store.record_taint(kernel);
        }
        return;
    }
    let Some((predicted_edp, items)) = drift else {
        return;
    };
    if engine.vet(obs).is_err() {
        return; // §9 territory: faults must not steer the drift loop
    }
    let realized_edp = obs.energy_joules * obs.elapsed;
    let Some(outcome) = health
        .drift()
        .observe(kernel, predicted_edp, realized_edp, items)
    else {
        return;
    };
    emit(
        sink,
        &ControlEvent::Drift {
            kernel,
            ewma: outcome.ewma,
        },
    );
    match outcome.action {
        DriftAction::Observed => {}
        DriftAction::Reprofile => {
            // Adaptation, not a fault: the entry goes stale so the next
            // invocation re-profiles, but `fault_free()` stays true.
            health.stats.note_drift_reprofile();
            table.taint(kernel);
            if let Some(store) = store {
                store.record_taint(kernel);
            }
            emit(
                sink,
                &ControlEvent::Reprofile {
                    kernel,
                    ewma: outcome.ewma,
                },
            );
        }
        DriftAction::Suppressed => {
            health.stats.note_reprofile_suppressed();
            emit(sink, &ControlEvent::ReprofileSuppressed { kernel });
        }
    }
}

/// The Figure 7 control flow proper. Returns `None` for empty
/// invocations (nothing ran, nothing to record). The decide timer — read
/// from `clock`, wall by default, deterministic under record/replay —
/// runs only when a sink is attached (only the telemetry path pays for
/// it); `store`, when present, journals every table mutation so the
/// invocation's learning survives a crash (DESIGN.md §11).
#[allow(clippy::too_many_arguments)]
fn drive(
    engine: &DecisionEngine,
    table: &KernelTable,
    health: &Health,
    kernel: KernelId,
    backend: &mut dyn Backend,
    on_decision: &mut dyn FnMut(Decision),
    sink: Option<&dyn TelemetrySink>,
    store: Option<&TableStore>,
    clock: &dyn Clock,
    ctx: InvocationCtx,
) -> Option<InvocationSummary> {
    let timed = sink.is_some();
    let n = backend.remaining();
    if n == 0 {
        return None;
    }
    let profile_size = backend.gpu_profile_size();
    let config = engine.config();

    // Overload gate (DESIGN.md §13): an admission context that denies the
    // GPU outright runs the whole invocation CPU-only and learns nothing —
    // the same shape as a quarantined invocation, but driven by the
    // brownout ladder rather than the breaker, so the breaker's quarantine
    // countdown is not consumed and no probe is wasted on a request that
    // was never going to touch the GPU.
    if ctx.gpu == GpuPolicy::Deny {
        health.stats.note_throttled();
        backend.run_split(0.0);
        return Some(InvocationSummary::new(InvocationPath::Throttled, 0.0));
    }

    // §9 gate: with the breaker open the GPU is quarantined — run the
    // whole invocation CPU-only and learn nothing (a ratio learned during
    // an outage would poison the table for the healthy future). A `Probe`
    // gate falls through to profiling but skips table reuse, so the GPU is
    // actually exercised and a clean observation can close the breaker.
    let probing = match health.breaker.gate() {
        BreakerGate::Normal => false,
        BreakerGate::Probe => {
            health.stats.note_probe();
            true
        }
        BreakerGate::CpuOnly => {
            health.stats.note_quarantined();
            backend.run_split(0.0);
            return Some(InvocationSummary::new(InvocationPath::Quarantined, 0.0));
        }
    };

    // Steps 2–4: reuse the learned ratio for known kernels (unless a
    // periodic re-profile is due, or the entry is tainted by an earlier
    // faulty invocation). The small-N guard of steps 6–8 still applies on
    // this path: an invocation too small to fill the GPU runs on the CPU
    // regardless of the learned ratio — offloading a sub-occupancy sliver
    // would waste both time and energy (this is the reason the guard
    // exists, and it matters for cascade-style kernels like FD whose
    // invocation sizes swing by orders of magnitude).
    let mut reprofiling = false;
    if !probing {
        if let Some(probe) = table.note_reuse(kernel) {
            // DenyNew (brownout stage 1) suppresses a due re-profile: the
            // learned ratio is still served, but no *new* GPU profiling
            // work starts while the package is hot.
            let due_reprofile = (probe.tainted
                || config
                    .reprofile_every
                    .is_some_and(|k| probe.invocations_seen % k == 0))
                && n >= profile_size
                && ctx.gpu == GpuPolicy::Allow;
            if !due_reprofile {
                let alpha = if n < profile_size { 0.0 } else { probe.alpha };
                let obs = backend.run_split(alpha);
                // Reused ratios are exactly what the drift monitor guards:
                // no profiling round re-validated them this invocation.
                // Sub-occupancy slivers ran CPU-only regardless of the
                // learned ratio, so they carry no drift signal.
                let drift = (n >= profile_size).then_some((None, n));
                after_split(
                    engine,
                    table,
                    health,
                    kernel,
                    sink,
                    store,
                    &obs,
                    ctx.deadline,
                    drift,
                );
                return Some(InvocationSummary::new(InvocationPath::TableHit, alpha));
            }
            // Fall through to a fresh profiling pass that re-accumulates.
            reprofiling = true;
        }
    }

    // Steps 6–10: tiny invocations cannot fill the GPU — CPU alone.
    if n < profile_size {
        let obs = backend.run_split(0.0);
        table.accumulate(kernel, 0.0, n as f64, config.accumulation);
        if let Some(store) = store {
            store.record_entry(table, kernel);
        }
        // Watchdog only: a CPU-only sliver carries no drift signal, but a
        // hung chunk still has to be caught. Ordered after the accumulate
        // so an overrun's taint is not immediately cleared by it.
        after_split(
            engine,
            table,
            health,
            kernel,
            sink,
            store,
            &obs,
            ctx.deadline,
            None,
        );
        return Some(InvocationSummary::new(InvocationPath::SmallN, 0.0));
    }

    // DenyNew with nothing to reuse: profiling would be fresh GPU work,
    // which brownout stage 1 forbids — run CPU-only and learn nothing (a
    // ratio learned under a denied GPU would poison the table, exactly as
    // during a quarantine).
    if ctx.gpu != GpuPolicy::Allow {
        health.stats.note_throttled();
        backend.run_split(0.0);
        return Some(InvocationSummary::new(InvocationPath::Throttled, 0.0));
    }

    // Steps 11–22: repeat profiling for `profile_fraction` of the
    // iterations, re-deciding α each round. Rejected rounds are retried
    // with a backed-off chunk; sustained rejection degrades the
    // invocation.
    let profile_until = ((n as f64) * (1.0 - config.profile_fraction)) as u64;
    // Fleet warm start (DESIGN.md §15): a ratio the same kernel learned
    // on another platform narrows the α search window. Profiling still
    // runs in full — the prior is a hint, never truth — the minimizer
    // just searches near the foreign optimum at finer resolution. With
    // no fleet attached the map is empty and this path is byte-identical
    // to the unprimed loop.
    let prior = table.prior(kernel);
    let mut alpha = 0.0;
    let mut alpha_weight = 0.0;
    let mut streak = 0usize;
    let mut rejected_streak: u32 = 0;
    let mut faulty_rounds: u64 = 0;
    let mut gave_up = false;
    let mut rounds: u32 = 0;
    let mut last = None;
    let mut last_fault = None;
    let mut decide_nanos: u64 = 0;
    while backend.remaining() > profile_until.max(profile_size) {
        let before = backend.remaining();
        // Bounded backoff: each consecutive rejection halves the chunk so
        // a misbehaving device wastes geometrically less work per retry.
        let chunk = (profile_size >> rejected_streak.min(16)).max(1);
        let obs = backend.profile_step(chunk);
        let consumed = before - backend.remaining();
        if consumed == 0 {
            break; // safety: no progress (degenerate backend)
        }
        let started = timed.then(|| clock.now());
        // §11 watchdog: a profiling round that busted its hard deadline is
        // cancelled — typed as a fault so it rides the same rejection path
        // (backed-off retry, breaker escalation, degradation) as the §9
        // signatures, which the vet below would let through: a hung round
        // can report perfectly plausible rates.
        let vetted = if health
            .watchdog()
            .profile_overrun_within(obs.elapsed, ctx.deadline)
        {
            health.stats.note_watchdog_trip();
            emit(
                sink,
                &ControlEvent::ProfileDeadline {
                    kernel,
                    elapsed: obs.elapsed,
                },
            );
            Err(FaultKind::DeadlineExceeded)
        } else {
            engine.vet(&obs)
        };
        if let Err(fault) = vetted {
            if let Some(t) = started {
                decide_nanos += elapsed_nanos(clock, t);
            }
            last_fault = Some(fault);
            health.stats.note_rejected();
            faulty_rounds += 1;
            if fault.implicates_gpu() && health.breaker.record_gpu_fault() {
                health.stats.note_trip();
            }
            if health.breaker.is_open() || rejected_streak >= config.fault.max_retries {
                gave_up = true;
                break;
            }
            rejected_streak += 1;
            health.stats.note_retry();
            continue;
        }
        health.stats.note_accepted();
        if obs.gpu_items > 0 && health.breaker.record_clean_gpu() {
            health.stats.note_recovery();
        }
        rejected_streak = 0;
        let decision = engine.decide_with_prior(kernel, &obs, backend.remaining(), prior);
        if let Some(t) = started {
            decide_nanos += elapsed_nanos(clock, t);
        }
        rounds += 1;
        last = Some(decision);
        let decided = decision.alpha;
        on_decision(decision);
        streak = if (decided - alpha).abs() < 1e-9 && alpha_weight > 0.0 {
            streak + 1
        } else {
            1
        };
        alpha = decided;
        alpha_weight += consumed as f64;
        if config.profile_stable_rounds > 0 && streak >= config.profile_stable_rounds {
            break; // converged: stop profiling early
        }
    }

    if gave_up {
        // Degraded finish: trust the last clean decision if there was one
        // and the GPU is not implicated; otherwise fall back to CPU-only.
        health.stats.note_degraded();
        let fallback = if health.breaker.is_open() || alpha_weight <= 0.0 {
            0.0
        } else {
            alpha
        };
        if backend.remaining() > 0 {
            backend.run_split(fallback);
        }
        // Learn only what clean rounds support — and mark it suspect so
        // the next invocation re-profiles instead of reusing it.
        if alpha_weight > 0.0 && !health.breaker.is_open() {
            table.accumulate(kernel, fallback, alpha_weight, config.accumulation);
            table.taint(kernel);
            health.stats.note_taint();
            if let Some(store) = store {
                store.record_entry(table, kernel);
                store.record_taint(kernel);
            }
        }
        return Some(InvocationSummary {
            path: InvocationPath::Degraded,
            last,
            rounds,
            fault_rounds: faulty_rounds as u32,
            last_fault,
            alpha: fallback,
            decide_nanos,
        });
    }

    // Steps 23–25: run the remainder at the decided ratio.
    let split_obs = (backend.remaining() > 0).then(|| backend.run_split(alpha));
    // Step 26: sample-weighted accumulation into G.
    table.accumulate(
        kernel,
        alpha,
        alpha_weight.max(n as f64 * 0.5),
        config.accumulation,
    );
    if let Some(store) = store {
        store.record_entry(table, kernel);
    }
    if faulty_rounds > 0 {
        // Some rounds were rejected even though profiling finished: the
        // learned ratio rests on a suspect invocation — re-profile next
        // time rather than reuse it.
        table.taint(kernel);
        health.stats.note_taint();
        if let Some(store) = store {
            store.record_taint(kernel);
        }
    }
    if let Some(obs) = &split_obs {
        // A freshly profiled split has a model prediction to drift
        // against (P(α)·T(α)² — the same EDP form `figures telemetry`
        // reports); fold it only for clean invocations, ordered after the
        // accumulate so a drift taint survives it.
        let predicted_edp = last.filter(|_| faulty_rounds == 0).map(|d| {
            let p = engine.predict(&d);
            p.power * p.time * p.time
        });
        let items = obs.cpu_items + obs.gpu_items;
        let drift = predicted_edp.map(|edp| (Some(edp), items));
        after_split(
            engine,
            table,
            health,
            kernel,
            sink,
            store,
            obs,
            ctx.deadline,
            drift,
        );
    }
    let path = if probing {
        InvocationPath::Probe
    } else if reprofiling {
        InvocationPath::Reprofiled
    } else {
        InvocationPath::Profiled
    };
    Some(InvocationSummary {
        path,
        last,
        rounds,
        fault_rounds: faulty_rounds as u32,
        last_fault,
        alpha,
        decide_nanos,
    })
}

/// Emits the execution subtree of one invocation's trace: `decide` roots
/// the batch, with `cpu-phase` / `gpu-phase` children carrying the
/// instrumented per-phase totals and a zero-width `fold` closing it. The
/// batch uses batch-relative ids and starts; the sink rebases them onto
/// the trace's cursor, so multi-invocation requests chain their subtrees
/// end to end. A context without a trace (direct, untenanted calls)
/// allocates a fresh one from the sink's deterministic allocator.
///
/// Every duration is virtual (from the deterministic observation stream)
/// and carried bit-exact — a chaos-corrupted phase total rides through
/// as NaN rather than being sanitized away.
fn emit_invocation_spans(
    sink: &dyn TelemetrySink,
    kernel: KernelId,
    ctx: InvocationCtx,
    record: &DecisionRecord,
    backend: &InstrumentedBackend<'_>,
) {
    let trace = if ctx.trace != 0 {
        ctx.trace
    } else {
        sink.next_trace()
    };
    if trace == 0 {
        return; // sink advertises spans but has no trace allocator
    }
    let profile = backend.profile_totals();
    let split = backend.split_totals();
    let decide_dur = record.decide_nanos as f64 * 1e-9;
    let cpu_dur = profile.cpu_time + split.cpu_time;
    let gpu_dur = profile.gpu_time + split.gpu_time;
    let cpu_items = profile.cpu_items + split.cpu_items;
    let gpu_items = profile.gpu_items + split.gpu_items;
    let clamp = |d: f64| if d.is_finite() && d > 0.0 { d } else { 0.0 };
    let exec_end =
        decide_dur + clamp(cpu_dur).max(if gpu_items > 0 { clamp(gpu_dur) } else { 0.0 });
    let span = |id: u16, parent: u16, kind: SpanKind, start: f64, dur: f64, payload: f64| Span {
        seq: 0,   // assigned by the ring
        trace: 0, // rebased by the sink
        kernel,
        id,
        parent,
        kind,
        tenant: ctx.tenant,
        start,
        dur,
        payload,
    };
    let mut spans = Vec::with_capacity(4);
    spans.push(span(1, 0, SpanKind::Decide, 0.0, decide_dur, record.alpha));
    spans.push(span(
        2,
        1,
        SpanKind::CpuPhase,
        decide_dur,
        cpu_dur,
        cpu_items as f64,
    ));
    if gpu_items > 0 {
        spans.push(span(
            3,
            1,
            SpanKind::GpuPhase,
            decide_dur,
            gpu_dur,
            gpu_items as f64,
        ));
    }
    let fold_id = spans.len() as u16 + 1;
    spans.push(span(
        fold_id,
        1,
        SpanKind::Fold,
        exec_end,
        0.0,
        record.alpha,
    ));
    sink.span_batch(trace, &mut spans);
}

/// Assembles the per-invocation telemetry record: the summary's control
/// flow and decision context, the instrumented backend's per-phase
/// realized totals, the engine's model prediction at the executed α, and
/// the breaker's state after the invocation.
fn build_record(
    engine: &DecisionEngine,
    health: &Health,
    kernel: KernelId,
    items: u64,
    backend: &InstrumentedBackend<'_>,
    summary: InvocationSummary,
) -> DecisionRecord {
    // Predictions are only meaningful on paths whose final split executed
    // at the last decision's α (on a degraded path the fallback may
    // differ, so the comparison would be apples to oranges).
    let prediction = summary
        .last
        .filter(|_| summary.path.has_prediction())
        .map(|d| engine.predict(&d))
        .unwrap_or_default();
    let profile = backend.profile_totals();
    let split = backend.split_totals();
    DecisionRecord {
        seq: 0, // assigned by the sink
        kernel,
        path: summary.path,
        class: summary.last.map(|d| d.class.index() as u8),
        breaker: health.breaker().state().code(),
        last_fault: summary.last_fault.map(FaultKind::code),
        rounds: summary.rounds,
        fault_rounds: summary.fault_rounds,
        r_c: summary.last.map_or(0.0, |d| d.r_c),
        r_g: summary.last.map_or(0.0, |d| d.r_g),
        alpha: summary.alpha,
        predicted_power: prediction.power,
        predicted_time: prediction.time,
        predicted_objective: prediction.objective,
        profile_time: profile.elapsed,
        profile_energy: profile.energy_joules,
        split_time: split.elapsed,
        split_energy: split.energy_joules,
        items,
        decide_nanos: summary.decide_nanos,
    }
}
