//! The energy-aware scheduler — the paper's Figure 7 algorithm.
//!
//! Per kernel invocation:
//!
//! 1. If the kernel's offload ratio α is already in the global table G,
//!    reuse it (steps 2–4).
//! 2. If N is smaller than `GPU_PROFILE_SIZE`, run everything on the CPU
//!    (steps 6–10).
//! 3. Otherwise **repeat online profiling for half the iterations** (the
//!    size-based strategy from Kaleem et al.): each round offloads
//!    `GPU_PROFILE_SIZE` items to the GPU while CPU workers drain the pool,
//!    yielding combined-mode throughputs R_C, R_G and hardware counters;
//!    classify the workload, pick the matching power curve P(α), build
//!    T(α) from Equations 1–4, and grid-minimize the objective
//!    OBJ(P(α), T(α)) over α ∈ {0, 0.1, …, 1} (steps 13–22).
//! 4. Run the remaining iterations at the chosen α (steps 23–25) and fold α
//!    into G with sample-weighted accumulation (step 26).
//!
//! The policy observes nothing but times, the energy register, and two
//! hardware counters — black-box end to end.
//!
//! Since the layering refactor this module is a thin *composition*: the
//! pure per-observation policy lives in [`DecisionEngine`], the global
//! table G in [`KernelTable`](crate::KernelTable), and the Figure 7
//! control flow in `profile_loop`. [`EasScheduler`] wires them behind the
//! classic exclusive `&mut self` [`Scheduler`] API;
//! [`SharedEas`](crate::SharedEas) wires the same layers behind an
//! `Arc`-shared concurrent API.

use crate::classify::{Classifier, WorkloadClass};
use crate::engine::DecisionEngine;
use crate::health::{merge_store_health, FaultPolicy, Health, HealthReport};
use crate::journal::{Recovered, StoreError, TableStore};
use crate::kernel_table::KernelTable;
use crate::objective::Objective;
use crate::power_model::PowerModel;
use crate::profile_loop;
use crate::seed::RunSeed;
use crate::selfheal::{DriftPolicy, WatchdogPolicy};
use easched_runtime::vfs::{StdFs, Vfs};
use easched_runtime::{Backend, Clock, InvocationCtx, KernelId, Scheduler, WallClock};
use easched_telemetry::TelemetrySink;
use std::path::Path;
use std::sync::Arc;

/// How the objective is minimized over the offload ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlphaSearch {
    /// The paper's method: evaluate the objective at `steps + 1` grid
    /// points over [0, 1] (paper: 10 → 0.1 increments).
    Grid(usize),
    /// Continuous golden-section search to the given bracket tolerance —
    /// a future-work-style refinement; OBJ(P(α), T(α)) is unimodal for the
    /// built-in objectives, so this converges to the same optimum with
    /// fewer evaluations at high precision (ablation §5.2).
    GoldenSection {
        /// Final bracket width.
        tol: f64,
    },
}

/// EAS configuration.
#[derive(Debug, Clone)]
pub struct EasConfig {
    /// The energy metric to minimize.
    pub objective: Objective,
    /// Minimization strategy over α.
    pub alpha_search: AlphaSearch,
    /// Fraction of a first-seen invocation spent in repeated profiling
    /// (paper: 1/2, the size-based strategy).
    pub profile_fraction: f64,
    /// Classifier thresholds.
    pub classifier: Classifier,
    /// How profiling-round α decisions fold into the kernel table G.
    pub accumulation: Accumulation,
    /// Stop the repeated-profiling loop early once this many *consecutive*
    /// rounds decide the same α (the estimate has converged); the N/2 bound
    /// still caps the loop. This keeps the paper's near-zero-overhead claim
    /// honest on single-invocation kernels, where profiling to N/2 at
    /// combined-mode power would otherwise cost measurable energy.
    pub profile_stable_rounds: usize,
    /// Re-profile a known kernel every `k`-th invocation instead of blindly
    /// reusing G — the paper's "for workloads where the same kernel behaves
    /// differently over time, we repeat profiling step since our online
    /// profiling has low overhead" (§3.1). Re-profiled ratios fold into G
    /// with sample weighting, averaging out per-invocation noise on
    /// irregular kernels. `None` disables (pure Figure 7 reuse).
    pub reprofile_every: Option<u64>,
    /// Fault-handling policy: retry budget for rejected profiling rounds
    /// and the GPU circuit breaker's trip/quarantine parameters (see
    /// [`FaultPolicy`]).
    pub fault: FaultPolicy,
    /// Drift-response policy: when sustained predicted-vs-realized EDP
    /// drift re-profiles a kernel (see [`DriftPolicy`]; DESIGN.md §11).
    pub drift: DriftPolicy,
    /// Watchdog deadlines on profiling rounds and chunk executions (see
    /// [`WatchdogPolicy`]).
    pub watchdog: WatchdogPolicy,
    /// The run's root seed: every stochastic input of a run built from
    /// this config (chaos plans, sim backends, workload generation)
    /// should derive from it by name (see [`RunSeed`]). Recorded in a
    /// `RunLog`'s header, and part of the config fingerprint a replay
    /// checks.
    pub seed: RunSeed,
}

impl EasConfig {
    /// The paper's configuration for a given objective.
    pub fn new(objective: Objective) -> EasConfig {
        EasConfig {
            objective,
            alpha_search: AlphaSearch::Grid(10),
            profile_fraction: 0.5,
            classifier: Classifier::default(),
            accumulation: Accumulation::SampleWeighted,
            profile_stable_rounds: 3,
            reprofile_every: Some(32),
            fault: FaultPolicy::default(),
            drift: DriftPolicy::default(),
            watchdog: WatchdogPolicy::default(),
            seed: RunSeed::default(),
        }
    }

    /// The same configuration with a different root seed (builder style).
    pub fn with_seed(mut self, seed: RunSeed) -> EasConfig {
        self.seed = seed;
        self
    }

    /// The same configuration with a different watchdog policy (builder
    /// style) — e.g. [`WatchdogPolicy::with_deadlines`] to tighten the
    /// 60 s / 600 s defaults for latency-sensitive deployments.
    pub fn with_watchdog(mut self, watchdog: WatchdogPolicy) -> EasConfig {
        self.watchdog = watchdog;
        self
    }
}

/// Strategy for folding newly computed offload ratios into the kernel
/// table G.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accumulation {
    /// The paper's choice: weight each α by the number of iterations it was
    /// computed from (the sample-weighted technique from Kaleem et al.).
    SampleWeighted,
    /// Keep only the most recent α (ablation baseline).
    LastValue,
}

/// One recorded α decision (the paper's Fig 7 steps 15–20), for
/// observability and the harness's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The kernel the decision was made for.
    pub kernel: KernelId,
    /// Measured combined-mode CPU throughput, items/s.
    pub r_c: f64,
    /// Measured combined-mode GPU throughput, items/s.
    pub r_g: f64,
    /// The workload class the observation mapped to.
    pub class: WorkloadClass,
    /// Iterations remaining when the decision was made.
    pub n_remaining: u64,
    /// The chosen offload ratio.
    pub alpha: f64,
}

/// Serializes a decision log as CSV (shared by the exclusive and
/// concurrent frontends).
pub(crate) fn decision_log_csv(log: &[Decision]) -> String {
    let mut out = String::from("kernel,r_c,r_g,class,n_remaining,alpha\n");
    for d in log {
        out.push_str(&format!(
            "{},{:.3},{:.3},{},{},{:.3}\n",
            d.kernel,
            d.r_c,
            d.r_g,
            d.class.index(),
            d.n_remaining,
            d.alpha
        ));
    }
    out
}

/// The scheduler's layers, decomposed: policy, memory, health, telemetry,
/// and persistence — what [`EasScheduler::into_parts`] hands to
/// [`into_shared`](EasScheduler::into_shared).
pub(crate) type SchedulerParts = (
    DecisionEngine,
    KernelTable,
    Health,
    Option<Arc<dyn TelemetrySink>>,
    Option<Arc<TableStore>>,
    Arc<dyn Clock>,
);

/// The energy-aware scheduler. One instance per platform; carries the
/// kernel table G across invocations and workloads.
///
/// This is the exclusive (`&mut self`) frontend over the layered engine:
/// a [`DecisionEngine`] (policy) plus a [`KernelTable`] (memory) plus a
/// local decision log. For N concurrent workload streams sharing one
/// learned table, use [`SharedEas`](crate::SharedEas) instead.
#[derive(Debug, Clone)]
pub struct EasScheduler {
    engine: DecisionEngine,
    table: KernelTable,
    health: Health,
    name: String,
    /// Total decision-making invocations, for diagnostics.
    decisions: u64,
    log: Vec<Decision>,
    current_kernel: KernelId,
    telemetry: Option<Arc<dyn TelemetrySink>>,
    store: Option<Arc<TableStore>>,
    clock: Arc<dyn Clock>,
}

impl EasScheduler {
    /// Creates the scheduler from a platform's characterized power model.
    ///
    /// # Panics
    ///
    /// Panics if `config.profile_fraction` is outside (0, 1] — a zero
    /// fraction would silently disable profiling and degenerate every
    /// first-seen kernel to CPU-only execution.
    pub fn new(model: PowerModel, config: EasConfig) -> EasScheduler {
        let name = format!("EAS({})", config.objective.name());
        let health = Health::new(&config.fault, config.drift, config.watchdog);
        EasScheduler {
            engine: DecisionEngine::new(model, config),
            table: KernelTable::new(),
            health,
            name,
            decisions: 0,
            log: Vec::new(),
            current_kernel: 0,
            telemetry: None,
            store: None,
            clock: Arc::new(WallClock),
        }
    }

    /// Like [`new`](EasScheduler::new), but with crash-safe persistence
    /// rooted at `dir`: the kernel table — including taint and breaker
    /// state — is recovered from the store's snapshot + journal, and every
    /// subsequent table mutation is journaled so a `kill -9` at any point
    /// loses at most the invocation in flight (DESIGN.md §11).
    pub fn with_persistence(
        model: PowerModel,
        config: EasConfig,
        dir: impl AsRef<Path>,
    ) -> Result<EasScheduler, StoreError> {
        EasScheduler::with_persistence_vfs(model, config, dir, Arc::new(StdFs))
    }

    /// [`with_persistence`](EasScheduler::with_persistence) with an
    /// explicit [`Vfs`], so storage-chaos runs can inject I/O faults
    /// into the journal without touching the scheduling path
    /// (DESIGN.md §16).
    pub fn with_persistence_vfs(
        model: PowerModel,
        config: EasConfig,
        dir: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<EasScheduler, StoreError> {
        let (store, recovered) = TableStore::open_with(dir, vfs)?;
        let mut s = EasScheduler::new(model, config);
        let Recovered { table, breaker, .. } = recovered;
        s.table = table;
        s.health.breaker.restore(breaker);
        s.store = Some(Arc::new(store));
        Ok(s)
    }

    /// The persistence store, if this scheduler was built with one.
    pub fn store(&self) -> Option<&Arc<TableStore>> {
        self.store.as_ref()
    }

    /// Forces a snapshot + journal compaction now (also happens
    /// automatically every
    /// [`compact_every`](TableStore::compact_every) journal appends).
    /// No-op without a store.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        match &self.store {
            Some(store) => store.checkpoint(&self.table, self.health.breaker.state()),
            None => Ok(()),
        }
    }

    /// Attaches a telemetry sink: every subsequent invocation emits one
    /// [`DecisionRecord`](easched_telemetry::DecisionRecord) describing
    /// which Figure 7 path ran, what the model predicted, and what the
    /// platform realized (DESIGN.md §10). Pass `None` to detach; with no
    /// sink the scheduling path is identical to the untelemetered one.
    pub fn set_telemetry(&mut self, sink: Option<Arc<dyn TelemetrySink>>) {
        self.telemetry = sink;
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&Arc<dyn TelemetrySink>> {
        self.telemetry.as_ref()
    }

    /// Replaces the scheduler's time source. The clock only times the
    /// vet+decide path for telemetry (`DecisionRecord::decide_nanos`), so
    /// with a deterministic clock — e.g.
    /// [`TickClock`](easched_runtime::TickClock) — a simulated run's
    /// telemetry stream is bit-reproducible; record/replay installs one
    /// on both sides. Defaults to [`WallClock`].
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// The scheduler's time source.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// An *online* performance-oriented variant: the same profiling
    /// machinery minimizing pure execution time, which lands on
    /// α_PERF = R_G/(R_C+R_G) (Eq. 2). The paper's PERF comparison scheme
    /// is an offline best-time fixed split
    /// ([`Evaluator::perf_scheme`](crate::Evaluator::perf_scheme)); this
    /// online variant is used by the ablation study.
    pub fn perf_online(model: PowerModel) -> EasScheduler {
        let mut s = EasScheduler::new(model, EasConfig::new(Objective::Time));
        s.name = "PERF-online".into();
        s
    }

    /// The learned offload ratio for a kernel, if any.
    pub fn learned_alpha(&self, kernel: KernelId) -> Option<f64> {
        self.table.lookup(kernel)
    }

    /// Number of α decisions made so far (profiling rounds across all
    /// invocations).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Every α decision made so far, in order.
    pub fn decision_log(&self) -> &[Decision] {
        &self.log
    }

    /// The underlying decision engine (policy layer).
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The kernel table G (memory layer).
    pub fn table(&self) -> &KernelTable {
        &self.table
    }

    /// Fault-pipeline telemetry: guard rejections, retries, degraded
    /// invocations, circuit-breaker activity (see
    /// [`HealthReport`]). All zeros on a healthy platform.
    pub fn health(&self) -> HealthReport {
        let mut report = self.health.report();
        if let Some(store) = &self.store {
            merge_store_health(&mut report, store.health());
        }
        report
    }

    /// The fault-handling state (breaker inspection for diagnostics).
    pub fn health_state(&self) -> &Health {
        &self.health
    }

    /// Decomposes the scheduler into its policy, memory, health, and
    /// telemetry layers (consumed by
    /// [`into_shared`](EasScheduler::into_shared)).
    pub(crate) fn into_parts(self) -> SchedulerParts {
        (
            self.engine,
            self.table,
            self.health,
            self.telemetry,
            self.store,
            self.clock,
        )
    }

    /// Serializes the decision log as CSV (for the harness and post-hoc
    /// analysis).
    ///
    /// ```
    /// # use easched_core::{EasConfig, EasScheduler, Objective, PowerModel, PowerCurve, WorkloadClass};
    /// # use easched_num::Polynomial;
    /// # let curves = WorkloadClass::all().into_iter()
    /// #     .map(|c| PowerCurve::new(c, Polynomial::constant(50.0), 0.0, 11)).collect();
    /// # let model = PowerModel::new("x", curves);
    /// let eas = EasScheduler::new(model, EasConfig::new(Objective::Energy));
    /// assert!(eas.decision_log_csv().starts_with("kernel,r_c,r_g,"));
    /// ```
    pub fn decision_log_csv(&self) -> String {
        decision_log_csv(&self.log)
    }

    /// Sample-weighted accumulation of a newly computed α (step 26; the
    /// technique from Kaleem et al.).
    #[cfg(test)]
    fn accumulate(&mut self, kernel: KernelId, alpha: f64, weight: f64) {
        self.table
            .accumulate(kernel, alpha, weight, self.engine.config().accumulation);
    }

    /// One α decision from a profiling observation (Fig 7 steps 15–20):
    /// derive R_C/R_G, classify, pick the power curve, and grid-minimize the
    /// objective over the remaining iterations. Public so the overhead
    /// benchmark can time the paper's "1–2 µs" decision path directly.
    pub fn decide_alpha(&mut self, obs: &easched_runtime::Observation, n_remaining: u64) -> f64 {
        self.decisions += 1;
        let decision = self.engine.decide(self.current_kernel, obs, n_remaining);
        self.log.push(decision);
        decision.alpha
    }
}

impl EasScheduler {
    /// [`Scheduler::schedule`] under an explicit admission context: the
    /// ctx's GPU policy gates offloading (brownout throttling) and its
    /// deadline budget composes with the watchdog's own deadlines. The
    /// default ctx runs the exact context-free path, so single-tenant
    /// callers lose nothing by never touching this.
    pub fn schedule_with(
        &mut self,
        kernel: KernelId,
        backend: &mut dyn Backend,
        ctx: InvocationCtx,
    ) {
        self.current_kernel = kernel;
        let (engine, table, health) = (&self.engine, &self.table, &self.health);
        let (decisions, log) = (&mut self.decisions, &mut self.log);
        profile_loop::schedule_invocation(
            engine,
            table,
            health,
            kernel,
            backend,
            |d| {
                *decisions += 1;
                log.push(d);
            },
            self.telemetry.as_deref(),
            self.store.as_deref(),
            self.clock.as_ref(),
            ctx,
        );
    }
}

impl Scheduler for EasScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn schedule(&mut self, kernel: KernelId, backend: &mut dyn Backend) {
        self.schedule_with(kernel, backend, InvocationCtx::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass;
    use crate::power_model::PowerCurve;
    use easched_num::Polynomial;
    use easched_runtime::backend::test_support::FakeBackend;

    /// A flat power model: every class draws `watts` at any α, except that
    /// CPU-heavier mixes can be made pricier via `slope` (power =
    /// watts − slope·α).
    fn linear_model(watts: f64, slope: f64) -> PowerModel {
        let curves = WorkloadClass::all()
            .into_iter()
            .map(|c| PowerCurve::new(c, Polynomial::new(vec![watts, -slope]), 0.0, 11))
            .collect();
        PowerModel::new("fake", curves)
    }

    #[test]
    fn small_n_goes_cpu_only() {
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), EasConfig::new(Objective::Energy));
        let mut b = FakeBackend::new(100, 1000.0, 1000.0);
        eas.schedule(1, &mut b);
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.log, vec!["split(0.00)"]);
        assert_eq!(eas.learned_alpha(1), Some(0.0));
    }

    #[test]
    fn profiles_then_splits_first_invocation() {
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), EasConfig::new(Objective::Time));
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(7, &mut b);
        assert_eq!(b.remaining(), 0);
        assert!(
            b.log.iter().any(|l| l.starts_with("profile")),
            "{:?}",
            b.log
        );
        assert!(b.log.last().unwrap().starts_with("split"), "{:?}", b.log);
        // Time objective on a 1:2 machine → α_PERF ≈ 0.667, grid → 0.7.
        let a = eas.learned_alpha(7).unwrap();
        assert!((a - 0.7).abs() < 0.01, "alpha {a}");
    }

    #[test]
    fn reuses_learned_alpha_without_reprofiling() {
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), EasConfig::new(Objective::Time));
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(7, &mut b);
        let mut b2 = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(7, &mut b2);
        assert_eq!(b2.log.len(), 1, "second invocation reuses G: {:?}", b2.log);
        assert!(b2.log[0].starts_with("split"));
    }

    #[test]
    fn energy_objective_prefers_cheaper_device() {
        // Power falls steeply with α (P(0)=80 W, P(1)=20 W) while rates are
        // equal: energy minimization should pick a GPU-heavy split even
        // though it is slower than the balanced one (E(1)=20·T < E(0.5)=25·T).
        let mut eas =
            EasScheduler::new(linear_model(80.0, 60.0), EasConfig::new(Objective::Energy));
        let mut b = FakeBackend::new(100_000, 1.0e6, 1.0e6);
        eas.schedule(3, &mut b);
        let a = eas.learned_alpha(3).unwrap();
        assert!(a > 0.6, "energy objective should go GPU-heavy, got {a}");

        // Same machine, time objective: balanced split.
        let mut perf = EasScheduler::perf_online(linear_model(80.0, 60.0));
        let mut b = FakeBackend::new(100_000, 1.0e6, 1.0e6);
        perf.schedule(3, &mut b);
        let a = perf.learned_alpha(3).unwrap();
        assert!(
            (a - 0.5).abs() < 0.01,
            "PERF balances equal devices, got {a}"
        );
    }

    #[test]
    fn dead_gpu_routes_everything_to_cpu() {
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), EasConfig::new(Objective::Energy));
        let mut b = FakeBackend::new(100_000, 1.0e6, 1.0e6);
        // Simulate a dead GPU by zeroing the observed rate post-hoc: use a
        // backend with a GPU so slow it contributes nothing measurable.
        b.gpu_rate = 1e-9;
        eas.schedule(9, &mut b);
        assert_eq!(b.remaining(), 0);
        let a = eas.learned_alpha(9).unwrap();
        assert!(a < 0.05, "dead GPU → CPU alone, got {a}");
    }

    #[test]
    fn sample_weighted_accumulation_converges() {
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), EasConfig::new(Objective::Time));
        eas.accumulate(5, 1.0, 100.0);
        eas.accumulate(5, 0.0, 100.0);
        assert!((eas.learned_alpha(5).unwrap() - 0.5).abs() < 1e-9);
        eas.accumulate(5, 0.5, 200.0);
        assert!((eas.learned_alpha(5).unwrap() - 0.5).abs() < 1e-9);
        // Weighting matters: a heavy sample dominates.
        eas.accumulate(6, 0.0, 1.0);
        eas.accumulate(6, 1.0, 999.0);
        assert!(eas.learned_alpha(6).unwrap() > 0.99);
    }

    #[test]
    fn reprofile_every_triggers_new_profiling() {
        let mut cfg = EasConfig::new(Objective::Time);
        cfg.reprofile_every = Some(2);
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), cfg);
        let run = |eas: &mut EasScheduler| {
            let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
            eas.schedule(1, &mut b);
            b.log
        };
        run(&mut eas); // first: profiles
        let second = run(&mut eas); // seen=1: reuse
        assert_eq!(second.len(), 1);
        let third = run(&mut eas); // seen=2: re-profile
        assert!(third.len() > 1, "expected re-profiling: {third:?}");
    }

    #[test]
    fn empty_invocation_is_noop() {
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), EasConfig::new(Objective::Energy));
        let mut b = FakeBackend::new(0, 1.0e6, 1.0e6);
        eas.schedule(1, &mut b);
        assert!(b.log.is_empty());
        assert_eq!(eas.learned_alpha(1), None);
    }

    #[test]
    fn decisions_counted() {
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), EasConfig::new(Objective::Time));
        assert_eq!(eas.decisions(), 0);
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(1, &mut b);
        assert!(eas.decisions() > 0);
    }

    #[test]
    fn cloned_scheduler_forks_the_table() {
        let mut eas = EasScheduler::new(linear_model(50.0, 0.0), EasConfig::new(Objective::Time));
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(7, &mut b);
        let fork = eas.clone();
        let mut b2 = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(8, &mut b2);
        assert!(eas.learned_alpha(8).is_some());
        assert_eq!(fork.learned_alpha(8), None, "clone must be independent");
        assert_eq!(fork.learned_alpha(7), eas.learned_alpha(7));
    }
}
