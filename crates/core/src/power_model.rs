//! The per-platform power model: eight fitted power characterization
//! functions P(α), one per workload class (paper §2, Figures 5–6).

use crate::classify::WorkloadClass;
use easched_num::Polynomial;
use std::fmt;

/// One fitted power characterization function: average package power as a
/// sixth-order (by default) polynomial in the GPU offload ratio α ∈ [0, 1].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCurve {
    class: WorkloadClass,
    poly: Polynomial,
    rmse: f64,
    samples: usize,
}

impl PowerCurve {
    /// Creates a curve from a fitted polynomial and fit diagnostics.
    pub fn new(class: WorkloadClass, poly: Polynomial, rmse: f64, samples: usize) -> PowerCurve {
        PowerCurve {
            class,
            poly,
            rmse,
            samples,
        }
    }

    /// The class this curve characterizes.
    pub fn class(&self) -> WorkloadClass {
        self.class
    }

    /// The fitted polynomial.
    pub fn poly(&self) -> &Polynomial {
        &self.poly
    }

    /// Root-mean-square fit residual, watts.
    pub fn rmse(&self) -> f64 {
        self.rmse
    }

    /// Number of sweep points the fit used.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Predicted average package power at offload ratio `alpha`, clamped to
    /// be non-negative (a sixth-order fit can dip below zero outside its
    /// support).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside [0, 1].
    pub fn predict(&self, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        self.poly.eval(alpha).max(0.0)
    }
}

impl fmt::Display for PowerCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: y = {}", self.class.label(), self.poly)
    }
}

/// The complete black-box power model of one platform: one [`PowerCurve`]
/// per workload class.
///
/// This is the artifact the one-time characterization step produces; the
/// scheduler carries it across all workloads on that platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    platform_name: String,
    curves: Vec<PowerCurve>,
}

impl PowerModel {
    /// Assembles a model from exactly eight curves (one per class, any
    /// order).
    ///
    /// # Panics
    ///
    /// Panics unless exactly one curve per class is supplied.
    pub fn new(platform_name: impl Into<String>, mut curves: Vec<PowerCurve>) -> PowerModel {
        assert_eq!(curves.len(), 8, "need one curve per class");
        curves.sort_by_key(|c| c.class().index());
        for (i, c) in curves.iter().enumerate() {
            assert_eq!(c.class().index(), i, "duplicate or missing class");
        }
        PowerModel {
            platform_name: platform_name.into(),
            curves,
        }
    }

    /// The platform this model characterizes.
    pub fn platform_name(&self) -> &str {
        &self.platform_name
    }

    /// The curve for a class.
    pub fn curve(&self, class: WorkloadClass) -> &PowerCurve {
        &self.curves[class.index()]
    }

    /// All eight curves in class-index order.
    pub fn curves(&self) -> &[PowerCurve] {
        &self.curves
    }

    /// Predicted package power for `class` at offload ratio `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside [0, 1].
    pub fn predict(&self, class: WorkloadClass, alpha: f64) -> f64 {
        self.curve(class).predict(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(class: WorkloadClass, level: f64) -> PowerCurve {
        PowerCurve::new(class, Polynomial::constant(level), 0.0, 11)
    }

    fn model() -> PowerModel {
        let curves = WorkloadClass::all()
            .into_iter()
            .map(|c| flat(c, 10.0 + c.index() as f64))
            .collect();
        PowerModel::new("test", curves)
    }

    #[test]
    fn lookup_by_class() {
        let m = model();
        for c in WorkloadClass::all() {
            assert_eq!(m.predict(c, 0.5), 10.0 + c.index() as f64);
        }
    }

    #[test]
    fn curves_sorted_regardless_of_input_order() {
        let mut curves: Vec<PowerCurve> = WorkloadClass::all()
            .into_iter()
            .map(|c| flat(c, c.index() as f64))
            .collect();
        curves.reverse();
        let m = PowerModel::new("test", curves);
        for (i, c) in m.curves().iter().enumerate() {
            assert_eq!(c.class().index(), i);
        }
    }

    #[test]
    fn predict_clamps_negative() {
        let c = PowerCurve::new(
            WorkloadClass::from_index(0),
            Polynomial::new(vec![1.0, -10.0]), // negative past α=0.1
            0.0,
            11,
        );
        assert_eq!(c.predict(0.5), 0.0);
        assert!(c.predict(0.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "need one curve per class")]
    fn rejects_wrong_count() {
        PowerModel::new("x", vec![flat(WorkloadClass::from_index(0), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate or missing class")]
    fn rejects_duplicate_class() {
        let c0 = WorkloadClass::from_index(0);
        let curves = (0..8).map(|_| flat(c0, 1.0)).collect();
        PowerModel::new("x", curves);
    }

    #[test]
    fn display_includes_label_and_poly() {
        let c = flat(WorkloadClass::from_index(5), 42.0);
        let s = c.to_string();
        assert!(s.contains("Memory"));
        assert!(s.contains("42"));
    }
}
