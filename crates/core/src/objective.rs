//! Energy-related objective functions.
//!
//! The paper's scheduler optimizes "any user-defined energy-related metric
//! that can be expressed as a function of power consumption and program
//! execution time" (§1, contribution 2). [`Objective`] captures exactly
//! that: given predicted average package power `P(α)` and execution time
//! `T(α)`, it produces the scalar to minimize.

use std::fmt;
use std::sync::Arc;

/// An energy-related metric expressed as `f(power, time)`.
#[derive(Clone)]
pub enum Objective {
    /// Total energy `E = P·T` (battery-life metric).
    Energy,
    /// Energy-delay product `EDP = P·T²` (the paper's headline metric).
    EnergyDelay,
    /// Energy-delay-squared `ED²P = P·T³` (HPC metric, §1).
    EnergyDelaySquared,
    /// Pure execution time `T` — the PERF comparison scheme falls out of
    /// the same machinery with this objective.
    Time,
    /// Any user-defined combination of power and time.
    Custom {
        /// Display name of the metric.
        name: &'static str,
        /// `f(power_watts, time_seconds) -> score` (lower is better).
        f: Arc<dyn Fn(f64, f64) -> f64 + Send + Sync>,
    },
}

impl Objective {
    /// Evaluates the metric for average power `watts` over `seconds`.
    /// Lower is better.
    ///
    /// # Examples
    ///
    /// ```
    /// use easched_core::Objective;
    /// assert_eq!(Objective::Energy.evaluate(10.0, 2.0), 20.0);
    /// assert_eq!(Objective::EnergyDelay.evaluate(10.0, 2.0), 40.0);
    /// assert_eq!(Objective::EnergyDelaySquared.evaluate(10.0, 2.0), 80.0);
    /// assert_eq!(Objective::Time.evaluate(10.0, 2.0), 2.0);
    /// ```
    pub fn evaluate(&self, watts: f64, seconds: f64) -> f64 {
        match self {
            Objective::Energy => watts * seconds,
            Objective::EnergyDelay => watts * seconds * seconds,
            Objective::EnergyDelaySquared => watts * seconds * seconds * seconds,
            Objective::Time => seconds,
            Objective::Custom { f, .. } => f(watts, seconds),
        }
    }

    /// Evaluates the metric from whole-run totals (energy in joules, time
    /// in seconds) — used to score completed runs and the Oracle sweep.
    ///
    /// ```
    /// use easched_core::Objective;
    /// // 20 J over 2 s: EDP = E·T = 40.
    /// assert_eq!(Objective::EnergyDelay.of_totals(20.0, 2.0), 40.0);
    /// ```
    pub fn of_totals(&self, energy_joules: f64, seconds: f64) -> f64 {
        let watts = if seconds > 0.0 {
            energy_joules / seconds
        } else {
            0.0
        };
        self.evaluate(watts, seconds)
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Energy => "energy",
            Objective::EnergyDelay => "EDP",
            Objective::EnergyDelaySquared => "ED2P",
            Objective::Time => "time",
            Objective::Custom { name, .. } => name,
        }
    }
}

impl fmt::Debug for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Objective({})", self.name())
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl PartialEq for Objective {
    /// Two objectives are equal if they are the same named variant; custom
    /// objectives compare by name.
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_formulas() {
        let (p, t) = (55.0, 3.0);
        assert_eq!(Objective::Energy.evaluate(p, t), 165.0);
        assert_eq!(Objective::EnergyDelay.evaluate(p, t), 495.0);
        assert_eq!(Objective::EnergyDelaySquared.evaluate(p, t), 1485.0);
        assert_eq!(Objective::Time.evaluate(p, t), 3.0);
    }

    #[test]
    fn custom_objective() {
        let o = Objective::Custom {
            name: "sqrt-energy",
            f: Arc::new(|p, t| (p * t).sqrt()),
        };
        assert_eq!(o.evaluate(4.0, 4.0), 4.0);
        assert_eq!(o.name(), "sqrt-energy");
    }

    #[test]
    fn of_totals_converts() {
        // 100 J in 4 s = 25 W; EDP = 25·16 = 400 = E·T.
        assert_eq!(Objective::EnergyDelay.of_totals(100.0, 4.0), 400.0);
        assert_eq!(Objective::Energy.of_totals(100.0, 4.0), 100.0);
        assert_eq!(Objective::Energy.of_totals(100.0, 0.0), 0.0);
    }

    #[test]
    fn equality_by_name() {
        assert_eq!(Objective::Energy, Objective::Energy);
        assert_ne!(Objective::Energy, Objective::Time);
    }

    #[test]
    fn debug_and_display_nonempty() {
        assert_eq!(format!("{:?}", Objective::EnergyDelay), "Objective(EDP)");
        assert_eq!(Objective::Energy.to_string(), "energy");
    }
}
