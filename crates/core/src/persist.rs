//! Power-model and kernel-table persistence.
//!
//! The characterization step is "computed once for each processor"
//! (abstract): on a real deployment the fitted model is saved and reloaded
//! on every subsequent run. The format is a small line-oriented text file —
//! stable, diffable, and dependency-free:
//!
//! ```text
//! easched-power-model v2
//! platform haswell-desktop
//! curve 0 rmse 0.169 samples 21 coeffs 32.55 -0.95 ...
//! ... (8 curve lines, class-index order)
//! checksum 8d3f2a915c04be71
//! ```
//!
//! The learned kernel table G persists the same way
//! ([`table_to_text`]/[`table_from_text`]), so a long-running deployment
//! can warm-start its offload ratios instead of re-profiling every kernel
//! after a restart:
//!
//! ```text
//! easched-kernel-table v2
//! kernel 7 alpha 6.5e-1 weight 5e4 seen 12
//! ... (one line per kernel, id order)
//! checksum 41c09f22e6b7d530
//! ```
//!
//! # Integrity (DESIGN.md §9)
//!
//! Version 2 appends a trailing `checksum` line: an FNV-1a 64-bit digest
//! over every byte that precedes it. A model or table file truncated by a
//! crashed writer or corrupted at rest fails
//! [`ModelParseError::MissingChecksum`] /
//! [`ModelParseError::ChecksumMismatch`] instead of silently warm-starting
//! the scheduler with damaged ratios — loading never panics. Version-1
//! files (no checksum) are still accepted for migration.

use crate::classify::WorkloadClass;
use crate::kernel_table::{AlphaStat, KernelTable};
use crate::power_model::{PowerCurve, PowerModel};
use easched_num::Polynomial;
use easched_runtime::vfs::Vfs;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Format header of the legacy (checksum-less) version 1.
const HEADER_V1: &str = "easched-power-model v1";
/// Format header of version 2 (trailing FNV-1a checksum line).
const HEADER_V2: &str = "easched-power-model v2";

/// Error parsing a persisted power model.
#[derive(Debug)]
pub enum ModelParseError {
    /// Missing or unknown header line.
    BadHeader(String),
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The file did not contain exactly one curve per class.
    WrongCurveCount(usize),
    /// A version-2 file whose trailing `checksum` line is absent or
    /// unreadable — typically a write truncated by a crash.
    MissingChecksum,
    /// A version-2 file whose bytes do not hash to the recorded checksum —
    /// corruption at rest, or a hand edit without updating the digest.
    ChecksumMismatch {
        /// Digest computed over the file contents.
        computed: u64,
        /// Digest the file claims.
        stored: u64,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelParseError::BadHeader(h) => write!(f, "unrecognized header {h:?}"),
            ModelParseError::BadLine { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ModelParseError::WrongCurveCount(n) => {
                write!(f, "expected 8 curves, found {n}")
            }
            ModelParseError::MissingChecksum => {
                write!(f, "v2 file has no trailing checksum line (truncated?)")
            }
            ModelParseError::ChecksumMismatch { computed, stored } => write!(
                f,
                "checksum mismatch: contents hash to {computed:016x}, file says {stored:016x}"
            ),
            ModelParseError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl Error for ModelParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ModelParseError {
    fn from(e: io::Error) -> Self {
        ModelParseError::Io(e)
    }
}

/// FNV-1a, 64-bit. Not cryptographic — it guards against truncation and
/// bit rot, not adversaries — but the per-byte xor-then-multiply step is
/// injective, so any single corrupted byte changes the digest. Public
/// because the journal (§11), the run-seed derivation, and the
/// record/replay log (`easched-replay`, §12) all seal with the same hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends the v2 trailing checksum line over everything written so far.
pub(crate) fn seal(mut body: String) -> String {
    let digest = fnv1a64(body.as_bytes());
    body.push_str(&format!("checksum {digest:016x}\n"));
    body
}

/// Validates the envelope of a persisted file and returns the body the
/// record parser should read (header line included, checksum line
/// stripped).
///
/// A v1 header passes through unchecked (legacy files carry no digest); a
/// v2 header requires a well-formed trailing `checksum` line whose digest
/// matches every preceding byte; anything else is [`BadHeader`].
///
/// [`BadHeader`]: ModelParseError::BadHeader
pub(crate) fn verify_envelope<'a>(
    text: &'a str,
    header_v1: &str,
    header_v2: &str,
) -> Result<&'a str, ModelParseError> {
    let header = text.lines().next().unwrap_or("").trim();
    if header == header_v1 {
        return Ok(text);
    }
    verify_sealed(text, header_v2)
}

/// The checksum-required half of [`verify_envelope`]: accepts only files
/// whose first line is exactly `header` and whose trailing `checksum`
/// line digests every preceding byte (also used by the v3 journal
/// snapshot, which has no unchecked legacy form).
pub(crate) fn verify_sealed<'a>(text: &'a str, header: &str) -> Result<&'a str, ModelParseError> {
    let found = text.lines().next().unwrap_or("").trim();
    if found != header {
        return Err(ModelParseError::BadHeader(found.to_string()));
    }
    // The digest covers everything up to and including the newline that
    // precedes the checksum line, so take the *last* occurrence: any
    // spoofed earlier "checksum" text is just covered bytes.
    let at = text
        .rfind("\nchecksum ")
        .ok_or(ModelParseError::MissingChecksum)?;
    let covered = &text[..=at];
    let mut tokens = text[at + 1..].split_whitespace();
    tokens.next(); // the "checksum" keyword rfind just matched
    let stored = tokens
        .next()
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or(ModelParseError::MissingChecksum)?;
    if tokens.next().is_some() {
        // Records after the checksum line are not covered by the digest;
        // refuse rather than trust them.
        return Err(ModelParseError::MissingChecksum);
    }
    let computed = fnv1a64(covered.as_bytes());
    if computed != stored {
        return Err(ModelParseError::ChecksumMismatch { computed, stored });
    }
    Ok(covered)
}

/// Serializes a model to the v2 text format (trailing checksum line).
///
/// # Examples
///
/// ```
/// use easched_core::persist::{model_to_text, model_from_text};
/// use easched_core::{characterize, CharacterizationConfig};
/// use easched_sim::Platform;
///
/// let model = characterize(
///     &Platform::haswell_desktop(),
///     &CharacterizationConfig { alpha_steps: 10, ..Default::default() },
/// );
/// let text = model_to_text(&model);
/// let back = model_from_text(&text)?;
/// assert_eq!(back.platform_name(), model.platform_name());
/// # Ok::<(), easched_core::persist::ModelParseError>(())
/// ```
pub fn model_to_text(model: &PowerModel) -> String {
    let mut out = String::new();
    out.push_str(HEADER_V2);
    out.push('\n');
    out.push_str(&format!("platform {}\n", model.platform_name()));
    for curve in model.curves() {
        out.push_str(&format!(
            "curve {} rmse {:e} samples {} coeffs",
            curve.class().index(),
            curve.rmse(),
            curve.samples(),
        ));
        for c in curve.poly().coeffs() {
            // Full round-trip precision.
            out.push_str(&format!(" {c:e}"));
        }
        out.push('\n');
    }
    seal(out)
}

/// Parses the text format: v2 (checksum verified) or legacy v1.
///
/// # Errors
///
/// [`ModelParseError`] on malformed, truncated, or corrupted input.
/// Never panics, whatever the bytes.
pub fn model_from_text(text: &str) -> Result<PowerModel, ModelParseError> {
    let body = verify_envelope(text, HEADER_V1, HEADER_V2)?;
    let mut lines = body.lines().enumerate();
    lines.next(); // header, already validated by the envelope check
    let mut platform = String::new();
    let mut curves: Vec<PowerCurve> = Vec::new();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("platform") => {
                platform = tokens.collect::<Vec<_>>().join(" ");
                if platform.is_empty() {
                    return Err(ModelParseError::BadLine {
                        line: line_no,
                        message: "platform name missing".into(),
                    });
                }
            }
            Some("curve") => {
                curves.push(parse_curve(line_no, &mut tokens)?);
            }
            other => {
                return Err(ModelParseError::BadLine {
                    line: line_no,
                    message: format!("unknown record {other:?}"),
                });
            }
        }
    }
    if curves.len() != 8 {
        return Err(ModelParseError::WrongCurveCount(curves.len()));
    }
    // PowerModel::new validates one-curve-per-class; map its panic into a
    // parse error by checking first.
    let mut seen = [false; 8];
    for c in &curves {
        let i = c.class().index();
        if seen[i] {
            return Err(ModelParseError::WrongCurveCount(curves.len()));
        }
        seen[i] = true;
    }
    Ok(PowerModel::new(platform, curves))
}

fn parse_curve<'a>(
    line: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
) -> Result<PowerCurve, ModelParseError> {
    let bad = |message: String| ModelParseError::BadLine { line, message };
    let index: usize = tokens
        .next()
        .ok_or_else(|| bad("missing class index".into()))?
        .parse()
        .map_err(|e| bad(format!("class index: {e}")))?;
    if index >= 8 {
        return Err(bad(format!("class index {index} out of range")));
    }
    expect_keyword(line, tokens, "rmse")?;
    let rmse: f64 = tokens
        .next()
        .ok_or_else(|| bad("missing rmse".into()))?
        .parse()
        .map_err(|e| bad(format!("rmse: {e}")))?;
    expect_keyword(line, tokens, "samples")?;
    let samples: usize = tokens
        .next()
        .ok_or_else(|| bad("missing samples".into()))?
        .parse()
        .map_err(|e| bad(format!("samples: {e}")))?;
    expect_keyword(line, tokens, "coeffs")?;
    let coeffs: Result<Vec<f64>, _> = tokens.map(str::parse).collect();
    let coeffs = coeffs.map_err(|e| bad(format!("coefficient: {e}")))?;
    if coeffs.is_empty() {
        return Err(bad("curve has no coefficients".into()));
    }
    Ok(PowerCurve::new(
        WorkloadClass::from_index(index),
        Polynomial::new(coeffs),
        rmse,
        samples,
    ))
}

fn expect_keyword<'a>(
    line: usize,
    tokens: &mut impl Iterator<Item = &'a str>,
    keyword: &str,
) -> Result<(), ModelParseError> {
    match tokens.next() {
        Some(t) if t == keyword => Ok(()),
        other => Err(ModelParseError::BadLine {
            line,
            message: format!("expected {keyword:?}, found {other:?}"),
        }),
    }
}

/// Saves a model to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_model(model: &PowerModel, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, model_to_text(model))
}

/// [`save_model`] through an explicit [`Vfs`] (the storage-chaos seam).
///
/// # Errors
///
/// Propagates filesystem errors, injected or real.
pub fn save_model_with(
    vfs: &dyn Vfs,
    model: &PowerModel,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    vfs.write(path.as_ref(), model_to_text(model).as_bytes())
}

/// Loads a model from a file.
///
/// # Errors
///
/// [`ModelParseError`] on I/O or format problems.
pub fn load_model(path: impl AsRef<Path>) -> Result<PowerModel, ModelParseError> {
    model_from_text(&fs::read_to_string(path)?)
}

/// [`load_model`] through an explicit [`Vfs`].
///
/// # Errors
///
/// [`ModelParseError`] on I/O or format problems.
pub fn load_model_with(
    vfs: &dyn Vfs,
    path: impl AsRef<Path>,
) -> Result<PowerModel, ModelParseError> {
    let bytes = vfs.read(path.as_ref())?;
    model_from_text(&String::from_utf8_lossy(&bytes))
}

/// Format header of the legacy kernel-table format, version 1.
pub(crate) const TABLE_HEADER_V1: &str = "easched-kernel-table v1";
/// Format header of the kernel-table format, version 2 (checksummed).
pub(crate) const TABLE_HEADER_V2: &str = "easched-kernel-table v2";

/// Serializes a learned kernel table to the v2 text format. Lines are in
/// kernel-id order, so equal tables serialize identically.
///
/// # Examples
///
/// ```
/// use easched_core::persist::{table_from_text, table_to_text};
/// use easched_core::{Accumulation, KernelTable};
///
/// let table = KernelTable::new();
/// table.accumulate(7, 0.7, 50_000.0, Accumulation::SampleWeighted);
/// let back = table_from_text(&table_to_text(&table))?;
/// assert_eq!(back.lookup(7), Some(0.7));
/// # Ok::<(), easched_core::persist::ModelParseError>(())
/// ```
pub fn table_to_text(table: &KernelTable) -> String {
    let mut out = String::new();
    out.push_str(TABLE_HEADER_V2);
    out.push('\n');
    for (kernel, stat) in table.snapshot() {
        // Full round-trip precision on the floats.
        out.push_str(&format!(
            "kernel {} alpha {:e} weight {:e} seen {}\n",
            kernel, stat.alpha, stat.weight, stat.invocations_seen
        ));
    }
    seal(out)
}

/// Parses the kernel-table text format: v2 (checksum verified) or legacy
/// v1.
///
/// # Errors
///
/// [`ModelParseError`] on malformed, truncated, or corrupted input
/// (including a duplicated kernel id, which would silently drop learned
/// weight). Never panics, whatever the bytes.
pub fn table_from_text(text: &str) -> Result<KernelTable, ModelParseError> {
    let body = verify_envelope(text, TABLE_HEADER_V1, TABLE_HEADER_V2)?;
    let mut lines = body.lines().enumerate();
    lines.next(); // header, already validated by the envelope check
    let table = KernelTable::new();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |message: String| ModelParseError::BadLine {
            line: line_no,
            message,
        };
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("kernel") => {
                let kernel: u64 = tokens
                    .next()
                    .ok_or_else(|| bad("missing kernel id".into()))?
                    .parse()
                    .map_err(|e| bad(format!("kernel id: {e}")))?;
                expect_keyword(line_no, &mut tokens, "alpha")?;
                let alpha: f64 = tokens
                    .next()
                    .ok_or_else(|| bad("missing alpha".into()))?
                    .parse()
                    .map_err(|e| bad(format!("alpha: {e}")))?;
                if !(0.0..=1.0).contains(&alpha) {
                    return Err(bad(format!("alpha {alpha} out of [0, 1]")));
                }
                expect_keyword(line_no, &mut tokens, "weight")?;
                let weight: f64 = tokens
                    .next()
                    .ok_or_else(|| bad("missing weight".into()))?
                    .parse()
                    .map_err(|e| bad(format!("weight: {e}")))?;
                expect_keyword(line_no, &mut tokens, "seen")?;
                let invocations_seen: u64 = tokens
                    .next()
                    .ok_or_else(|| bad("missing seen count".into()))?
                    .parse()
                    .map_err(|e| bad(format!("seen count: {e}")))?;
                if table.stat(kernel).is_some() {
                    return Err(bad(format!("kernel {kernel} listed twice")));
                }
                table.insert(
                    kernel,
                    AlphaStat {
                        alpha,
                        weight,
                        invocations_seen,
                    },
                );
            }
            other => {
                return Err(bad(format!("unknown record {other:?}")));
            }
        }
    }
    Ok(table)
}

/// Saves a kernel table to a file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_table(table: &KernelTable, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, table_to_text(table))
}

/// [`save_table`] through an explicit [`Vfs`] (the storage-chaos seam).
///
/// # Errors
///
/// Propagates filesystem errors, injected or real.
pub fn save_table_with(
    vfs: &dyn Vfs,
    table: &KernelTable,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    vfs.write(path.as_ref(), table_to_text(table).as_bytes())
}

/// Loads a kernel table from a file.
///
/// # Errors
///
/// [`ModelParseError`] on I/O or format problems.
pub fn load_table(path: impl AsRef<Path>) -> Result<KernelTable, ModelParseError> {
    table_from_text(&fs::read_to_string(path)?)
}

/// [`load_table`] through an explicit [`Vfs`].
///
/// # Errors
///
/// [`ModelParseError`] on I/O or format problems.
pub fn load_table_with(
    vfs: &dyn Vfs,
    path: impl AsRef<Path>,
) -> Result<KernelTable, ModelParseError> {
    let bytes = vfs.read(path.as_ref())?;
    table_from_text(&String::from_utf8_lossy(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizationConfig};
    use easched_sim::Platform;

    fn sample_model() -> PowerModel {
        let mut p = Platform::haswell_desktop();
        p.pcu.measurement_noise = 0.0;
        characterize(
            &p,
            &CharacterizationConfig {
                alpha_steps: 10,
                ..Default::default()
            },
        )
    }

    #[test]
    fn roundtrip_is_lossless() {
        let model = sample_model();
        let back = model_from_text(&model_to_text(&model)).unwrap();
        assert_eq!(back.platform_name(), model.platform_name());
        for class in WorkloadClass::all() {
            for i in 0..=20 {
                let a = i as f64 / 20.0;
                assert_eq!(
                    back.predict(class, a),
                    model.predict(class, a),
                    "{class:?} α={a}"
                );
            }
            assert_eq!(back.curve(class).rmse(), model.curve(class).rmse());
            assert_eq!(back.curve(class).samples(), model.curve(class).samples());
        }
    }

    #[test]
    fn file_roundtrip() {
        let model = sample_model();
        let path = std::env::temp_dir().join(format!("easched_model_{}.txt", std::process::id()));
        save_model(&model, &path).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(back, model_from_text(&model_to_text(&model)).unwrap());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_bad_header() {
        let err = model_from_text("easched-power-model v99\n").unwrap_err();
        assert!(matches!(err, ModelParseError::BadHeader(_)));
        assert!(model_from_text("").is_err());
    }

    #[test]
    fn rejects_missing_curves() {
        let text = format!("{HEADER_V1}\nplatform x\ncurve 0 rmse 0.1 samples 3 coeffs 1.0 2.0\n");
        let err = model_from_text(&text).unwrap_err();
        assert!(matches!(err, ModelParseError::WrongCurveCount(1)));
    }

    #[test]
    fn rejects_duplicate_class() {
        let mut text = format!("{HEADER_V1}\nplatform x\n");
        for _ in 0..8 {
            text.push_str("curve 3 rmse 0.1 samples 3 coeffs 1.0\n");
        }
        let err = model_from_text(&text).unwrap_err();
        assert!(matches!(err, ModelParseError::WrongCurveCount(_)));
    }

    #[test]
    fn rejects_malformed_fields() {
        for bad in [
            "curve x rmse 0.1 samples 3 coeffs 1.0",
            "curve 9 rmse 0.1 samples 3 coeffs 1.0",
            "curve 0 rmse abc samples 3 coeffs 1.0",
            "curve 0 rmse 0.1 samples 3 coeffs",
            "curve 0 rmse 0.1 coeffs 1.0",
            "mystery 1 2 3",
        ] {
            let text = format!("{HEADER_V1}\nplatform x\n{bad}\n");
            let err = model_from_text(&text).unwrap_err();
            assert!(
                matches!(
                    err,
                    ModelParseError::BadLine { .. } | ModelParseError::WrongCurveCount(_)
                ),
                "{bad}: {err}"
            );
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let model = sample_model();
        let mut text = model_to_text(&model);
        // Editing the body invalidates the digest, so re-seal afterwards —
        // the well-behaved way to hand-annotate a v2 file.
        text.truncate(text.rfind("checksum").unwrap());
        text = text.replace("platform", "# leading comment\n\nplatform");
        assert!(model_from_text(&seal(text)).is_ok());
    }

    #[test]
    fn tampered_body_fails_checksum() {
        let text = model_to_text(&sample_model());
        // Flip one digit somewhere inside a coefficient.
        let pos = text.find("coeffs").unwrap() + 8;
        let mut bytes = text.into_bytes();
        bytes[pos] = if bytes[pos] == b'5' { b'6' } else { b'5' };
        let err = model_from_text(std::str::from_utf8(&bytes).unwrap()).unwrap_err();
        assert!(
            matches!(err, ModelParseError::ChecksumMismatch { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("checksum mismatch"));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let text = model_to_text(&sample_model());
        // A crashed writer loses the tail: the checksum line goes first.
        let cut = text.rfind("checksum").unwrap();
        let err = model_from_text(&text[..cut]).unwrap_err();
        assert!(matches!(err, ModelParseError::MissingChecksum), "{err}");
        // Mid-file truncation keeps a stale digest → mismatch.
        let mid = text.len() / 2;
        let cut_mid = format!("{}checksum 0123456789abcdef\n", &text[..mid]);
        assert!(model_from_text(&cut_mid).is_err());
    }

    #[test]
    fn records_after_checksum_are_rejected() {
        let mut text = table_to_text(&learned_table());
        text.push_str("kernel 2 alpha 0.5 weight 1 seen 0\n");
        let err = table_from_text(&text).unwrap_err();
        assert!(matches!(err, ModelParseError::MissingChecksum), "{err}");
    }

    #[test]
    fn legacy_v1_files_still_load() {
        // A v1 file is exactly the v2 body with the old header and no
        // checksum line.
        let v2 = model_to_text(&sample_model());
        let body_end = v2.rfind("checksum").unwrap();
        let v1 = v2[..body_end].replace(HEADER_V2, HEADER_V1);
        let back = model_from_text(&v1).unwrap();
        assert_eq!(back, model_from_text(&v2).unwrap());

        let t2 = table_to_text(&learned_table());
        let t1 = t2[..t2.rfind("checksum").unwrap()].replace(TABLE_HEADER_V2, TABLE_HEADER_V1);
        assert_eq!(
            table_from_text(&t1).unwrap().snapshot(),
            learned_table().snapshot()
        );
    }

    #[test]
    fn checksum_line_is_well_formed() {
        for text in [
            model_to_text(&sample_model()),
            table_to_text(&learned_table()),
            table_to_text(&KernelTable::new()),
        ] {
            let last = text.lines().last().unwrap();
            let hex = last.strip_prefix("checksum ").unwrap();
            assert_eq!(hex.len(), 16, "{last}");
            u64::from_str_radix(hex, 16).unwrap();
        }
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_model("/definitely/not/here.txt").unwrap_err();
        assert!(matches!(err, ModelParseError::Io(_)));
        use std::error::Error as _;
        assert!(err.source().is_some());
    }

    use crate::eas::Accumulation;
    use crate::kernel_table::{AlphaStat, KernelTable};

    fn learned_table() -> KernelTable {
        let t = KernelTable::new();
        // Awkward floats on purpose: accumulation quotients that don't
        // round-trip through short decimal forms.
        t.accumulate(7, 2.0 / 3.0, 50_000.0, Accumulation::SampleWeighted);
        t.accumulate(7, 0.1, 12_345.0, Accumulation::SampleWeighted);
        t.accumulate(1, 0.0, 17.0, Accumulation::SampleWeighted);
        t.accumulate(900, 1.0, 1e9, Accumulation::SampleWeighted);
        t.note_reuse(7);
        t.note_reuse(7);
        t.note_reuse(900);
        t
    }

    #[test]
    fn table_roundtrip_is_lossless() {
        let table = learned_table();
        let back = table_from_text(&table_to_text(&table)).unwrap();
        // Bit-identical α, weight, and invocation counts for every kernel.
        assert_eq!(back.snapshot(), table.snapshot());
        assert_eq!(back, table);
    }

    #[test]
    fn table_file_roundtrip() {
        let table = learned_table();
        let path = std::env::temp_dir().join(format!("easched_table_{}.txt", std::process::id()));
        save_table(&table, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.snapshot(), table.snapshot());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_table_roundtrips() {
        let back = table_from_text(&table_to_text(&KernelTable::new())).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn table_rejects_bad_input() {
        assert!(matches!(
            table_from_text("easched-kernel-table v99\n").unwrap_err(),
            ModelParseError::BadHeader(_)
        ));
        for bad in [
            "kernel x alpha 0.5 weight 1 seen 0",
            "kernel 1 alpha 1.5 weight 1 seen 0",
            "kernel 1 alpha 0.5 weight abc seen 0",
            "kernel 1 alpha 0.5 weight 1 seen -3",
            "kernel 1 alpha 0.5 weight 1",
            "kernel 1 weight 1 alpha 0.5 seen 0",
            "mystery 1 2 3",
            "kernel 1 alpha 0.5 weight 1 seen 0\nkernel 1 alpha 0.5 weight 1 seen 0",
        ] {
            let text = format!("{TABLE_HEADER_V1}\n{bad}\n");
            let err = table_from_text(&text).unwrap_err();
            assert!(
                matches!(err, ModelParseError::BadLine { .. }),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn table_comments_and_blank_lines_ignored() {
        let text = format!(
            "{TABLE_HEADER_V1}\n# warm-start state\n\nkernel 4 alpha 0.25 weight 10 seen 2\n"
        );
        let back = table_from_text(&text).unwrap();
        assert_eq!(back.lookup(4), Some(0.25));
        assert_eq!(
            back.stat(4).unwrap(),
            AlphaStat {
                alpha: 0.25,
                weight: 10.0,
                invocations_seen: 2
            }
        );
    }
}
