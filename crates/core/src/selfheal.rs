//! The self-healing control loop's sensing half: per-kernel drift
//! monitoring with hysteresis and a global reprofile budget, plus the
//! watchdog that bounds how long a profiling round or chunk execution may
//! run (DESIGN.md §11).
//!
//! The paper memoizes α per kernel forever (Fig 7, step 26) — correct on
//! a machine whose thermal envelope and co-runners never change, wrong
//! everywhere else. PR 3's drift study showed realized EDP wandering from
//! the model's prediction by up to ≈0.56 mean relative error in perfectly
//! fault-free runs; this module is what *acts* on that signal. Deadline-
//! aware GPU schedulers (Ilager et al.) and low-overhead heterogeneous
//! schedulers (Corbera et al.) both warn that adaptive re-decision eats
//! its own energy win unless it is bounded, so every reaction here is
//! guarded three ways:
//!
//! * **Hysteresis**: the EWMA must stay above the bound for
//!   [`breach_invocations`](DriftPolicy::breach_invocations) *consecutive*
//!   folds before anything happens, and after a reprofile the kernel is
//!   disarmed until its EWMA falls back below `bound · rearm_ratio`.
//! * **Per-kernel cooldown**: after a reprofile fires, that kernel cannot
//!   fire again for [`cooldown`](DriftPolicy::cooldown) observations.
//! * **Global token bucket**: reprofiles across *all* kernels drain a
//!   shared bucket that refills at [`bucket_refill`](DriftPolicy::bucket_refill)
//!   tokens per observation — a noisy workload cannot trigger a reprofile
//!   storm that serializes the pipeline on profiling.
//!
//! The monitor is deliberately black-box, like everything else in this
//! reproduction: it sees only predicted and realized energy-delay product,
//! never kernel internals.

use easched_runtime::KernelId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks a shard, recovering from poisoning (same policy as the
/// kernel table: entries are plain atomics, so a poisoned shard's data is
/// still coherent and one panicked tenant must not disable drift
/// monitoring for every other stream).
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks a shard, recovering from poisoning (see [`read_lock`]).
fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Shard count for the per-kernel state map — matches the kernel table's
/// default so the two structures contend comparably.
const SHARDS: usize = 16;

/// Tokens are stored in integer milli-tokens so the bucket can be a plain
/// atomic (no float CAS loops over bit patterns needed for refill math).
const MILLI: u64 = 1000;

/// Tuning for the [`DriftMonitor`]. The defaults are deliberately
/// conservative: with the PR 3 ceiling for *fault-free* mean drift at
/// 0.75, a bound of 2.0 only fires on sustained, several-fold
/// mispredictions — never on model noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// Master switch; `false` makes [`DriftMonitor::observe`] return
    /// `None` unconditionally (the fault-free fast path).
    pub enabled: bool,
    /// EWMA relative-error threshold above which an invocation counts as
    /// a breach.
    pub bound: f64,
    /// Consecutive breaching observations required before a reprofile is
    /// scheduled (the K of the issue).
    pub breach_invocations: u32,
    /// Weight of the newest sample when folding into the EWMA
    /// (`ewma ← w·sample + (1−w)·ewma`).
    pub ewma_weight: f64,
    /// Observations a kernel must sit out after triggering a reprofile
    /// before its breach counter may grow again.
    pub cooldown: u64,
    /// Hysteresis: once a reprofile fires, the kernel stays disarmed
    /// until its EWMA drops below `bound * rearm_ratio`.
    pub rearm_ratio: f64,
    /// Capacity of the global reprofile token bucket, in tokens.
    pub bucket_capacity: f64,
    /// Tokens added to the global bucket per drift observation.
    pub bucket_refill: f64,
}

impl Default for DriftPolicy {
    fn default() -> DriftPolicy {
        DriftPolicy {
            enabled: true,
            bound: 2.0,
            breach_invocations: 4,
            ewma_weight: 0.25,
            cooldown: 16,
            rearm_ratio: 0.5,
            bucket_capacity: 4.0,
            bucket_refill: 1.0 / 64.0,
        }
    }
}

impl DriftPolicy {
    /// A policy with drift response switched off entirely.
    pub fn disabled() -> DriftPolicy {
        DriftPolicy {
            enabled: false,
            ..DriftPolicy::default()
        }
    }
}

/// What the monitor decided after folding one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftAction {
    /// Sample folded; no threshold action.
    Observed,
    /// Sustained drift crossed the bound and a token was available: the
    /// caller should taint the kernel's entry so the next invocation
    /// re-profiles.
    Reprofile,
    /// Sustained drift crossed the bound but the global budget was
    /// exhausted; the breach counter was reset so the kernel re-earns
    /// its reprofile rather than firing the instant a token refills.
    Suppressed,
}

/// One drift observation's outcome: the EWMA after folding, and the
/// action the monitor took.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftOutcome {
    /// Per-kernel EWMA of relative EDP error after this sample.
    pub ewma: f64,
    /// What the monitor decided.
    pub action: DriftAction,
}

/// Per-kernel monitoring state. All fields are atomics flipped under a
/// shard *read* lock, so concurrent streams folding different kernels —
/// or even the same kernel — never take a write lock after the entry
/// exists.
#[derive(Debug)]
struct KernelDriftState {
    /// EWMA of relative EDP error, as f64 bits; NAN bits mean "no sample
    /// folded yet".
    ewma_bits: AtomicU64,
    /// Reference EDP per item² from the last prediction-carrying
    /// invocation, as f64 bits; NAN bits mean "no reference yet". Lets
    /// table-hit invocations (which carry no fresh prediction) still be
    /// judged against the model that learned their α.
    reference_bits: AtomicU64,
    /// Consecutive breaching observations.
    breaches: AtomicU32,
    /// Observations left before the kernel may breach again.
    cooldown_left: AtomicU64,
    /// Hysteresis latch: set when a reprofile fires, cleared when the
    /// EWMA falls below `bound * rearm_ratio`.
    disarmed: AtomicBool,
}

impl Default for KernelDriftState {
    fn default() -> KernelDriftState {
        KernelDriftState {
            ewma_bits: AtomicU64::new(f64::NAN.to_bits()),
            reference_bits: AtomicU64::new(f64::NAN.to_bits()),
            breaches: AtomicU32::new(0),
            cooldown_left: AtomicU64::new(0),
            disarmed: AtomicBool::new(false),
        }
    }
}

impl Clone for KernelDriftState {
    fn clone(&self) -> KernelDriftState {
        KernelDriftState {
            ewma_bits: AtomicU64::new(self.ewma_bits.load(Ordering::Relaxed)),
            reference_bits: AtomicU64::new(self.reference_bits.load(Ordering::Relaxed)),
            breaches: AtomicU32::new(self.breaches.load(Ordering::Relaxed)),
            cooldown_left: AtomicU64::new(self.cooldown_left.load(Ordering::Relaxed)),
            disarmed: AtomicBool::new(self.disarmed.load(Ordering::Relaxed)),
        }
    }
}

/// Folds predicted-vs-realized EDP into per-kernel EWMAs and decides when
/// sustained drift warrants re-profiling, under the triple guard described
/// in the module docs.
#[derive(Debug)]
pub struct DriftMonitor {
    policy: DriftPolicy,
    shards: Box<[RwLock<HashMap<KernelId, KernelDriftState>>]>,
    mask: u64,
    /// Global reprofile budget in milli-tokens.
    bucket_milli: AtomicU64,
}

impl Clone for DriftMonitor {
    fn clone(&self) -> DriftMonitor {
        let shards: Vec<RwLock<HashMap<KernelId, KernelDriftState>>> = self
            .shards
            .iter()
            .map(|s| RwLock::new(read_lock(s).clone()))
            .collect();
        DriftMonitor {
            policy: self.policy,
            shards: shards.into_boxed_slice(),
            mask: self.mask,
            bucket_milli: AtomicU64::new(self.bucket_milli.load(Ordering::Relaxed)),
        }
    }
}

impl Default for DriftMonitor {
    fn default() -> DriftMonitor {
        DriftMonitor::new(DriftPolicy::default())
    }
}

impl DriftMonitor {
    /// A monitor with the given policy; the token bucket starts full.
    pub fn new(policy: DriftPolicy) -> DriftMonitor {
        let n = SHARDS.next_power_of_two();
        let shards: Vec<RwLock<HashMap<KernelId, KernelDriftState>>> =
            (0..n).map(|_| RwLock::new(HashMap::new())).collect();
        DriftMonitor {
            policy,
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
            bucket_milli: AtomicU64::new(to_milli(policy.bucket_capacity)),
        }
    }

    /// The policy this monitor runs under.
    pub fn policy(&self) -> &DriftPolicy {
        &self.policy
    }

    fn shard(&self, kernel: KernelId) -> &RwLock<HashMap<KernelId, KernelDriftState>> {
        // Same Fibonacci hash as the kernel table.
        let h = kernel.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Current EWMA of relative EDP error for a kernel, if any sample has
    /// been folded.
    pub fn ewma(&self, kernel: KernelId) -> Option<f64> {
        let bits = read_lock(self.shard(kernel))
            .get(&kernel)?
            .ewma_bits
            .load(Ordering::Relaxed);
        let v = f64::from_bits(bits);
        v.is_finite().then_some(v)
    }

    /// Tokens currently in the global reprofile bucket.
    pub fn tokens(&self) -> f64 {
        self.bucket_milli.load(Ordering::Relaxed) as f64 / MILLI as f64
    }

    /// Folds one invocation's EDP into the kernel's EWMA and applies the
    /// breach/cooldown/budget machinery.
    ///
    /// `predicted_edp` is `Some` on invocations that carried a fresh model
    /// prediction (profiling finishes); those also refresh the kernel's
    /// per-item² EDP reference. Table hits pass `None` and are judged
    /// against the stored reference scaled by `items²` (EDP grows
    /// quadratically in problem size for a fixed split, so the reference
    /// must be normalized before it can score a different N).
    ///
    /// Returns `None` when the monitor is disabled, inputs are unusable,
    /// or a table hit arrives before any reference exists.
    pub fn observe(
        &self,
        kernel: KernelId,
        predicted_edp: Option<f64>,
        realized_edp: f64,
        items: u64,
    ) -> Option<DriftOutcome> {
        if !self.policy.enabled || !realized_edp.is_finite() || realized_edp <= 0.0 || items == 0 {
            return None;
        }
        self.refill();

        // Fast path: the entry almost always exists after the first
        // observation, so try under the read lock before escalating.
        if !read_lock(self.shard(kernel)).contains_key(&kernel) {
            write_lock(self.shard(kernel)).entry(kernel).or_default();
        }
        let shard = read_lock(self.shard(kernel));
        let state = shard.get(&kernel)?;

        let items_sq = (items as f64) * (items as f64);
        let expected = match predicted_edp {
            Some(p) if p.is_finite() && p > 0.0 => {
                // Prediction-carrying invocations also refresh the
                // reference that future table hits are scored against.
                state
                    .reference_bits
                    .store((realized_edp / items_sq).to_bits(), Ordering::Relaxed);
                p
            }
            Some(_) => return None,
            None => {
                let per_item_sq = f64::from_bits(state.reference_bits.load(Ordering::Relaxed));
                if !per_item_sq.is_finite() {
                    return None;
                }
                per_item_sq * items_sq
            }
        };

        let sample = relative_error(expected, realized_edp);
        let w = self.policy.ewma_weight;
        let prev = f64::from_bits(state.ewma_bits.load(Ordering::Relaxed));
        let ewma = if prev.is_finite() {
            w * sample + (1.0 - w) * prev
        } else {
            sample
        };
        state.ewma_bits.store(ewma.to_bits(), Ordering::Relaxed);

        // Cooldown: the kernel sits out; breaches cannot grow.
        let cooling = state
            .cooldown_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                (c > 0).then(|| c - 1)
            })
            .is_ok();
        if cooling {
            state.breaches.store(0, Ordering::Relaxed);
            return Some(DriftOutcome {
                ewma,
                action: DriftAction::Observed,
            });
        }

        // Hysteresis: after a reprofile the kernel stays disarmed until
        // its EWMA falls well below the bound again.
        if state.disarmed.load(Ordering::Relaxed) {
            if ewma < self.policy.bound * self.policy.rearm_ratio {
                state.disarmed.store(false, Ordering::Relaxed);
            }
            state.breaches.store(0, Ordering::Relaxed);
            return Some(DriftOutcome {
                ewma,
                action: DriftAction::Observed,
            });
        }

        if ewma <= self.policy.bound {
            state.breaches.store(0, Ordering::Relaxed);
            return Some(DriftOutcome {
                ewma,
                action: DriftAction::Observed,
            });
        }

        let breaches = state.breaches.fetch_add(1, Ordering::Relaxed) + 1;
        if breaches < self.policy.breach_invocations {
            return Some(DriftOutcome {
                ewma,
                action: DriftAction::Observed,
            });
        }

        state.breaches.store(0, Ordering::Relaxed);
        if self.take_token() {
            state.disarmed.store(true, Ordering::Relaxed);
            state
                .cooldown_left
                .store(self.policy.cooldown, Ordering::Relaxed);
            Some(DriftOutcome {
                ewma,
                action: DriftAction::Reprofile,
            })
        } else {
            Some(DriftOutcome {
                ewma,
                action: DriftAction::Suppressed,
            })
        }
    }

    /// Adds one observation's worth of refill to the bucket, capped at
    /// capacity.
    fn refill(&self) {
        let add = to_milli(self.policy.bucket_refill);
        let cap = to_milli(self.policy.bucket_capacity);
        let _ = self
            .bucket_milli
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                (b < cap).then(|| (b + add).min(cap))
            });
    }

    /// Takes one whole token if available.
    fn take_token(&self) -> bool {
        self.bucket_milli
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                (b >= MILLI).then(|| b - MILLI)
            })
            .is_ok()
    }
}

/// Converts whole tokens to the integer milli-token representation,
/// saturating at zero for non-finite or negative policy values.
fn to_milli(tokens: f64) -> u64 {
    if tokens.is_finite() && tokens > 0.0 {
        (tokens * MILLI as f64) as u64
    } else {
        0
    }
}

/// |predicted − realized| / |realized|, with non-finite or near-zero
/// denominators scored as zero drift (mirrors the telemetry crate's
/// drift analysis so offline and online numbers agree).
fn relative_error(predicted: f64, realized: f64) -> f64 {
    if realized.abs() < f64::EPSILON || !realized.is_finite() || !predicted.is_finite() {
        return 0.0;
    }
    ((predicted - realized) / realized).abs()
}

/// Tuning for the [`Watchdog`]. Both deadlines default far above the
/// chaos layer's `GPU_HANG_TIMEOUT` (10 s), so the watchdog never
/// interferes with the guard/breaker pipeline's existing handling of
/// recoverable hangs — it exists for the pathological case where a round
/// runs orders of magnitude past plausible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogPolicy {
    /// Master switch; `false` disables both deadlines.
    pub enabled: bool,
    /// Hard deadline on one GPU-proxy profiling round, seconds.
    pub profile_deadline: f64,
    /// Hard deadline on one chunk (split) execution, seconds.
    pub split_deadline: f64,
}

impl Default for WatchdogPolicy {
    fn default() -> WatchdogPolicy {
        WatchdogPolicy {
            enabled: true,
            profile_deadline: 60.0,
            split_deadline: 600.0,
        }
    }
}

impl WatchdogPolicy {
    /// A policy with both deadlines switched off.
    pub fn disabled() -> WatchdogPolicy {
        WatchdogPolicy {
            enabled: false,
            ..WatchdogPolicy::default()
        }
    }

    /// An enabled policy with explicit deadlines (seconds) — the
    /// previously hardcoded 60 s round / 600 s chunk values remain the
    /// [`Default`].
    ///
    /// # Panics
    ///
    /// Panics if either deadline is not positive.
    pub fn with_deadlines(profile_deadline: f64, split_deadline: f64) -> WatchdogPolicy {
        assert!(
            profile_deadline > 0.0 && split_deadline > 0.0,
            "watchdog deadlines must be positive"
        );
        WatchdogPolicy {
            enabled: true,
            profile_deadline,
            split_deadline,
        }
    }
}

/// Judges observed round/chunk durations against hard deadlines. The
/// backends in this reproduction are synchronous, so the watchdog cannot
/// preempt a running call — it *cancels* the round after the fact: the
/// observation is discarded as a typed fault
/// ([`FaultKind::DeadlineExceeded`](crate::FaultKind::DeadlineExceeded))
/// and escalation flows through the existing retry → degrade →
/// circuit-breaker pipeline instead of blocking the worker pool on an
/// answer that already proved untrustworthy.
#[derive(Debug, Clone, Default)]
pub struct Watchdog {
    policy: WatchdogPolicy,
}

impl Watchdog {
    /// A watchdog with the given deadlines.
    pub fn new(policy: WatchdogPolicy) -> Watchdog {
        Watchdog { policy }
    }

    /// The policy this watchdog runs under.
    pub fn policy(&self) -> &WatchdogPolicy {
        &self.policy
    }

    /// Whether a profiling round's elapsed time busts the deadline.
    ///
    /// Non-finite readings are *not* overruns: a NaN elapsed is a broken
    /// clock, not a hung GPU, and it must stay a sensor fault (§9
    /// `NonFinite`, retry-only) rather than feed the GPU-implicating
    /// breaker path (chaos_runtime pins this).
    pub fn profile_overrun(&self, elapsed: f64) -> bool {
        self.policy.enabled && elapsed.is_finite() && elapsed > self.policy.profile_deadline
    }

    /// Whether a chunk execution's elapsed time busts the deadline (same
    /// non-finite policy as [`profile_overrun`](Watchdog::profile_overrun)).
    pub fn split_overrun(&self, elapsed: f64) -> bool {
        self.policy.enabled && elapsed.is_finite() && elapsed > self.policy.split_deadline
    }

    /// [`profile_overrun`](Watchdog::profile_overrun) composed with an
    /// optional per-request deadline budget from the admission layer:
    /// the tighter of the two bounds wins. A budget applies even when
    /// the policy's own deadlines are disabled — a tenant's contract is
    /// not voided by a lax scheduler configuration. `None` is exactly
    /// the policy-only check (the single-tenant fast path).
    pub fn profile_overrun_within(&self, elapsed: f64, budget: Option<f64>) -> bool {
        self.overrun_within(elapsed, self.policy.profile_deadline, budget)
    }

    /// [`split_overrun`](Watchdog::split_overrun) composed with an
    /// optional per-request deadline budget (see
    /// [`profile_overrun_within`](Watchdog::profile_overrun_within)).
    pub fn split_overrun_within(&self, elapsed: f64, budget: Option<f64>) -> bool {
        self.overrun_within(elapsed, self.policy.split_deadline, budget)
    }

    fn overrun_within(&self, elapsed: f64, policy_deadline: f64, budget: Option<f64>) -> bool {
        if !elapsed.is_finite() {
            return false;
        }
        let policy_bound = self.policy.enabled.then_some(policy_deadline);
        let effective = match (policy_bound, budget) {
            (Some(p), Some(b)) => Some(p.min(b)),
            (Some(p), None) => Some(p),
            (None, b) => b,
        };
        effective.is_some_and(|bound| elapsed > bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_policy() -> DriftPolicy {
        DriftPolicy {
            enabled: true,
            bound: 1.0,
            breach_invocations: 3,
            ewma_weight: 1.0, // EWMA == latest sample: easy to reason about
            cooldown: 4,
            rearm_ratio: 0.5,
            bucket_capacity: 2.0,
            bucket_refill: 0.0,
        }
    }

    #[test]
    fn no_action_below_the_bound() {
        let m = DriftMonitor::new(tight_policy());
        for _ in 0..50 {
            let out = m.observe(1, Some(100.0), 150.0, 10).unwrap();
            assert_eq!(out.action, DriftAction::Observed);
            assert!((out.ewma - 0.5 / 1.5).abs() < 1e-12);
        }
        assert_eq!(m.tokens(), 2.0, "no token spent below the bound");
    }

    #[test]
    fn sustained_breach_triggers_reprofile_after_k() {
        let m = DriftMonitor::new(tight_policy());
        // Prediction 100, realized 25: relative error 3.0 > bound 1.0.
        for i in 1..=2 {
            let out = m.observe(1, Some(100.0), 25.0, 10).unwrap();
            assert_eq!(out.action, DriftAction::Observed, "breach {i} under K");
        }
        let out = m.observe(1, Some(100.0), 25.0, 10).unwrap();
        assert_eq!(out.action, DriftAction::Reprofile);
        assert_eq!(m.tokens(), 1.0);
    }

    #[test]
    fn single_spike_does_not_fire() {
        let m = DriftMonitor::new(tight_policy());
        m.observe(1, Some(100.0), 25.0, 10).unwrap();
        m.observe(1, Some(100.0), 25.0, 10).unwrap();
        // A clean sample between breaches resets the consecutive count.
        let out = m.observe(1, Some(100.0), 100.0, 10).unwrap();
        assert_eq!(out.action, DriftAction::Observed);
        for _ in 0..2 {
            m.observe(1, Some(100.0), 25.0, 10).unwrap();
        }
        let out = m.observe(1, Some(100.0), 25.0, 10).unwrap();
        assert_eq!(
            out.action,
            DriftAction::Reprofile,
            "counter restarted after the clean sample"
        );
    }

    #[test]
    fn cooldown_and_hysteresis_gate_refiring() {
        let m = DriftMonitor::new(tight_policy());
        for _ in 0..3 {
            m.observe(1, Some(100.0), 25.0, 10).unwrap();
        }
        // Fired once; stays quiet through the cooldown even under
        // continued breach.
        for _ in 0..4 {
            let out = m.observe(1, Some(100.0), 25.0, 10).unwrap();
            assert_eq!(out.action, DriftAction::Observed, "cooling down");
        }
        // Cooldown over but still disarmed: breaching samples do nothing.
        for _ in 0..6 {
            let out = m.observe(1, Some(100.0), 25.0, 10).unwrap();
            assert_eq!(out.action, DriftAction::Observed, "disarmed");
        }
        // Drop below bound*rearm_ratio to re-arm, then breach again.
        m.observe(1, Some(100.0), 100.0, 10).unwrap();
        for _ in 0..2 {
            m.observe(1, Some(100.0), 25.0, 10).unwrap();
        }
        let out = m.observe(1, Some(100.0), 25.0, 10).unwrap();
        assert_eq!(
            out.action,
            DriftAction::Reprofile,
            "re-armed after recovery"
        );
    }

    #[test]
    fn empty_bucket_suppresses_and_refill_restores() {
        let mut p = tight_policy();
        p.bucket_capacity = 1.0;
        p.cooldown = 0;
        p.rearm_ratio = 10.0; // re-arm immediately (ewma always < 10·bound)
        let m = DriftMonitor::new(p);
        for _ in 0..3 {
            m.observe(1, Some(100.0), 25.0, 10).unwrap();
        }
        assert_eq!(m.tokens(), 0.0);
        for _ in 0..2 {
            m.observe(2, Some(100.0), 25.0, 10).unwrap();
        }
        let out = m.observe(2, Some(100.0), 25.0, 10).unwrap();
        assert_eq!(
            out.action,
            DriftAction::Suppressed,
            "kernel 2's reprofile starved by kernel 1"
        );
        // With refill enabled, the budget recovers and the next sustained
        // breach fires.
        let m = DriftMonitor::new(DriftPolicy {
            bucket_refill: 0.5,
            ..p
        });
        for _ in 0..3 {
            m.observe(1, Some(100.0), 25.0, 10).unwrap();
        }
        for _ in 0..2 {
            m.observe(2, Some(100.0), 25.0, 10).unwrap();
        }
        assert_eq!(
            m.observe(2, Some(100.0), 25.0, 10).unwrap().action,
            DriftAction::Reprofile,
            "refill restored the budget"
        );
    }

    #[test]
    fn table_hits_scored_against_scaled_reference() {
        let m = DriftMonitor::new(tight_policy());
        // No reference yet: table hits are unscorable.
        assert_eq!(m.observe(1, None, 50.0, 10), None);
        // A prediction-carrying invocation sets reference = 400/100 = 4
        // per item².
        m.observe(1, Some(400.0), 400.0, 10).unwrap();
        // Table hit at N=20: expected 4·400 = 1600. Realized matches.
        let out = m.observe(1, None, 1600.0, 20).unwrap();
        assert!((out.ewma - 0.0).abs() < 1e-12);
        // Realized collapses to a quarter of expected: error 3.0.
        let out = m.observe(1, None, 400.0, 20).unwrap();
        assert!((out.ewma - 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_monitor_and_bad_inputs_return_none() {
        let m = DriftMonitor::new(DriftPolicy::disabled());
        assert_eq!(m.observe(1, Some(100.0), 25.0, 10), None);
        let m = DriftMonitor::new(tight_policy());
        assert_eq!(m.observe(1, Some(100.0), f64::NAN, 10), None);
        assert_eq!(m.observe(1, Some(100.0), -1.0, 10), None);
        assert_eq!(m.observe(1, Some(100.0), 25.0, 0), None);
        assert_eq!(m.observe(1, Some(f64::INFINITY), 25.0, 10), None);
        assert_eq!(m.ewma(1), None, "rejected inputs fold nothing");
    }

    #[test]
    fn clone_is_deep() {
        let m = DriftMonitor::new(tight_policy());
        m.observe(1, Some(100.0), 25.0, 10).unwrap();
        let c = m.clone();
        m.observe(1, Some(100.0), 100.0, 10).unwrap();
        assert!((c.ewma(1).unwrap() - 3.0).abs() < 1e-12);
        assert!((m.ewma(1).unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn watchdog_deadlines() {
        let w = Watchdog::new(WatchdogPolicy {
            enabled: true,
            profile_deadline: 1.0,
            split_deadline: 10.0,
        });
        assert!(!w.profile_overrun(0.5));
        assert!(w.profile_overrun(1.5));
        assert!(!w.split_overrun(5.0));
        assert!(w.split_overrun(11.0));
        // Non-finite elapsed is a broken sensor, not a hang: vetting's
        // NonFinite (retry-only) territory, never the breaker's.
        assert!(!w.profile_overrun(f64::NAN));
        assert!(!w.split_overrun(f64::INFINITY));
        let off = Watchdog::new(WatchdogPolicy::disabled());
        assert!(!off.profile_overrun(f64::INFINITY));
        assert!(!off.split_overrun(f64::INFINITY));
    }

    #[test]
    fn watchdog_budget_composes_with_policy_deadlines() {
        let w = Watchdog::new(WatchdogPolicy::with_deadlines(1.0, 10.0));
        // No budget: exactly the policy-only check.
        assert_eq!(w.profile_overrun_within(0.5, None), w.profile_overrun(0.5));
        assert_eq!(w.profile_overrun_within(1.5, None), w.profile_overrun(1.5));
        assert_eq!(w.split_overrun_within(11.0, None), w.split_overrun(11.0));
        // A tighter budget wins over the policy deadline...
        assert!(w.profile_overrun_within(0.5, Some(0.2)));
        assert!(w.split_overrun_within(5.0, Some(1.0)));
        // ...a looser one is inert.
        assert!(!w.profile_overrun_within(0.5, Some(100.0)));
        assert!(w.profile_overrun_within(1.5, Some(100.0)));
        // Non-finite elapsed stays a broken-sensor non-event.
        assert!(!w.profile_overrun_within(f64::NAN, Some(0.1)));
        // A budget binds even with the policy disabled: the tenant's
        // contract outranks a lax scheduler configuration.
        let off = Watchdog::new(WatchdogPolicy::disabled());
        assert!(off.profile_overrun_within(2.0, Some(1.0)));
        assert!(!off.profile_overrun_within(0.5, Some(1.0)));
        assert!(!off.split_overrun_within(f64::INFINITY, None));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn watchdog_with_deadlines_rejects_nonpositive() {
        let _ = WatchdogPolicy::with_deadlines(0.0, 10.0);
    }

    #[test]
    fn default_deadlines_sit_above_the_chaos_hang_timeout() {
        // The chaos layer clamps a recoverable GpuHang at 10 s; the
        // watchdog must not preempt the guard/breaker pipeline for those.
        let w = Watchdog::default();
        assert!(!w.profile_overrun(10.0));
        assert!(!w.split_overrun(10.0));
    }
}
