//! The stateless decision engine — the *policy* layer of the scheduling
//! engine.
//!
//! [`DecisionEngine`] turns one profiling [`Observation`] into one
//! [`Decision`](crate::Decision) (Fig 7 steps 15–20): derive the
//! combined-mode throughputs R_C/R_G, classify the workload, pick the
//! matching power curve P(α), build the analytical time model T(α)
//! (Eqs. 1–4), and minimize OBJ(P(α), T(α)) over α. It holds only
//! immutable configuration and the characterized power model — no kernel
//! table, no log, no counters — so one engine is freely shared across
//! threads (`Send + Sync`) and a decision never takes a lock.

use crate::classify::WorkloadClass;
use crate::eas::{AlphaSearch, Decision, EasConfig};
use crate::guard::{FaultKind, ObservationGuard};
use crate::power_model::PowerModel;
use crate::time_model::TimeModel;
use easched_num::{golden_section_min, grid_min};
use easched_runtime::{KernelId, Observation};

/// Half-width of the α window a cross-platform warm-start prior narrows
/// the search to (fleet replication, DESIGN.md §15). Wide enough that a
/// mediocre prior still contains the neighborhood of this platform's own
/// optimum — per-device energy behavior differs, so a ratio tuned on one
/// part is only a *hint* elsewhere — and profiling always runs in full,
/// so a bad prior costs search resolution for a few rounds, never a
/// wrong table entry.
pub const PRIOR_WINDOW: f64 = 0.25;

/// The pure per-observation decision procedure: configuration + power
/// model, nothing mutable.
///
/// # Examples
///
/// ```
/// use easched_core::{DecisionEngine, EasConfig, Objective, PowerCurve, PowerModel, WorkloadClass};
/// use easched_num::Polynomial;
/// use easched_runtime::Observation;
///
/// let curves = WorkloadClass::all().into_iter()
///     .map(|c| PowerCurve::new(c, Polynomial::constant(50.0), 0.0, 11)).collect();
/// let engine = DecisionEngine::new(
///     PowerModel::new("flat", curves),
///     EasConfig::new(Objective::Time),
/// );
/// let obs = Observation {
///     elapsed: 0.001,
///     cpu_items: 1_000,
///     gpu_items: 2_000,
///     cpu_time: 0.001,
///     gpu_time: 0.001,
///     energy_joules: 0.05,
///     ..Default::default()
/// };
/// // Time objective on a 1:2 machine → α_PERF ≈ 0.667, grid → 0.7.
/// let d = engine.decide(7, &obs, 500_000);
/// assert!((d.alpha - 0.7).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionEngine {
    config: EasConfig,
    model: PowerModel,
    guard: ObservationGuard,
}

impl DecisionEngine {
    /// Creates the engine from a platform's characterized power model.
    ///
    /// # Panics
    ///
    /// Panics if `config.profile_fraction` is outside (0, 1] — a zero
    /// fraction would silently disable profiling and degenerate every
    /// first-seen kernel to CPU-only execution.
    pub fn new(model: PowerModel, config: EasConfig) -> DecisionEngine {
        assert!(
            config.profile_fraction > 0.0 && config.profile_fraction <= 1.0,
            "profile_fraction must be in (0, 1]"
        );
        let guard = ObservationGuard::from_model(&model);
        DecisionEngine {
            config,
            model,
            guard,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EasConfig {
        &self.config
    }

    /// The characterized power model the engine decides against.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The observation guard (plausibility bounds derived from the model).
    pub fn guard(&self) -> &ObservationGuard {
        &self.guard
    }

    /// Validates an observation before it may influence a decision:
    /// `Ok(())` if plausible, or the [`FaultKind`] no healthy platform
    /// could have produced.
    pub fn vet(&self, obs: &Observation) -> Result<(), FaultKind> {
        self.guard.vet(obs)
    }

    /// One α decision from a profiling observation (Fig 7 steps 15–20).
    /// Pure: same observation in, same decision out; no interior state.
    pub fn decide(&self, kernel: KernelId, obs: &Observation, n_remaining: u64) -> Decision {
        self.decide_with_prior(kernel, obs, n_remaining, None)
    }

    /// [`decide`](DecisionEngine::decide) with an optional cross-platform
    /// warm-start prior: `Some(p)` narrows the α search to
    /// `[p − PRIOR_WINDOW, p + PRIOR_WINDOW] ∩ [0, 1]` — same step
    /// count, finer resolution near the foreign optimum. `None` is
    /// byte-identical to the unprimed path, so single-node runs are
    /// unaffected by the fleet plumbing.
    pub fn decide_with_prior(
        &self,
        kernel: KernelId,
        obs: &Observation,
        n_remaining: u64,
        prior: Option<f64>,
    ) -> Decision {
        let r_c = obs.cpu_rate();
        let r_g = obs.gpu_rate();
        let class = self.config.classifier.classify(obs, n_remaining);
        let decision = |alpha: f64| Decision {
            kernel,
            r_c,
            r_g,
            class,
            n_remaining,
            alpha,
        };
        // Degenerate devices: all work to the live one, prior or not.
        if r_g <= 0.0 {
            return decision(0.0);
        }
        if r_c <= 0.0 {
            return decision(1.0);
        }
        let window = match prior {
            Some(p) if p.is_finite() => {
                let p = p.clamp(0.0, 1.0);
                ((p - PRIOR_WINDOW).max(0.0), (p + PRIOR_WINDOW).min(1.0))
            }
            _ => (0.0, 1.0),
        };
        decision(self.minimize(class, r_c, r_g, n_remaining, window))
    }

    /// The model outputs backing a decision: re-evaluates P(α), T(α), and
    /// OBJ at the decision's chosen α — the numbers the minimizer compared
    /// when it picked that α. Telemetry pins these against realized time
    /// and energy for model-drift detection; the scheduling path itself
    /// never calls this.
    pub fn predict(&self, decision: &Decision) -> Prediction {
        let power = self.model.curve(decision.class).predict(decision.alpha);
        let time = TimeModel::new(decision.r_c, decision.r_g)
            .total_time(decision.alpha, decision.n_remaining);
        Prediction {
            power,
            time,
            objective: self.config.objective.evaluate(power, time),
        }
    }

    /// Grid- or golden-section-minimizes OBJ(P(α), T(α)) over
    /// α ∈ [lo, hi] (the full [0, 1] unless a warm-start prior narrowed
    /// the window).
    fn minimize(
        &self,
        class: WorkloadClass,
        r_c: f64,
        r_g: f64,
        n_remaining: u64,
        (lo, hi): (f64, f64),
    ) -> f64 {
        let curve = self.model.curve(class);
        let tm = TimeModel::new(r_c, r_g);
        let objective = &self.config.objective;
        let score = |alpha: f64| {
            let t = tm.total_time(alpha, n_remaining);
            if !t.is_finite() {
                return f64::INFINITY;
            }
            objective.evaluate(curve.predict(alpha), t)
        };
        match self.config.alpha_search {
            AlphaSearch::Grid(steps) => grid_min(lo, hi, steps.max(1), score).x,
            AlphaSearch::GoldenSection { tol } => {
                // Golden section finds interior optima; compare against the
                // endpoints explicitly since boundary optima are common.
                let (x, v) = golden_section_min(lo, hi, tol.max(1e-6), score);
                let mut best = (x, v);
                for endpoint in [lo, hi] {
                    let v = score(endpoint);
                    if v < best.1 {
                        best = (endpoint, v);
                    }
                }
                best.0
            }
        }
    }
}

/// What the model expected of a decision: the predicted package power
/// P(α), remainder time T(α), and objective value at the chosen α.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Prediction {
    /// Predicted package power at the chosen α, watts.
    pub power: f64,
    /// Predicted remainder execution time at the chosen α, seconds.
    pub time: f64,
    /// OBJ(P(α), T(α)) — the value the minimizer selected.
    pub objective: f64,
}

// The engine is shared across threads by design; fail the build if a field
// ever loses thread safety.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DecisionEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use crate::power_model::PowerCurve;
    use easched_num::Polynomial;

    fn flat_model(watts: f64) -> PowerModel {
        let curves = WorkloadClass::all()
            .into_iter()
            .map(|c| PowerCurve::new(c, Polynomial::constant(watts), 0.0, 11))
            .collect();
        PowerModel::new("flat", curves)
    }

    fn obs(cpu_items: u64, gpu_items: u64) -> Observation {
        Observation {
            elapsed: 0.001,
            cpu_items,
            gpu_items,
            cpu_time: 0.001,
            gpu_time: 0.001,
            energy_joules: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn decide_is_pure() {
        let engine = DecisionEngine::new(flat_model(50.0), EasConfig::new(Objective::EnergyDelay));
        let o = obs(1_000, 2_000);
        let a = engine.decide(1, &o, 100_000);
        let b = engine.decide(1, &o, 100_000);
        assert_eq!(a, b);
        assert_eq!(a.kernel, 1);
    }

    #[test]
    fn dead_devices_get_nothing() {
        let engine = DecisionEngine::new(flat_model(50.0), EasConfig::new(Objective::Energy));
        assert_eq!(engine.decide(1, &obs(1_000, 0), 1_000).alpha, 0.0);
        assert_eq!(engine.decide(1, &obs(0, 1_000), 1_000).alpha, 1.0);
    }

    #[test]
    fn predict_reevaluates_the_decided_point() {
        let engine = DecisionEngine::new(flat_model(50.0), EasConfig::new(Objective::EnergyDelay));
        let d = engine.decide(1, &obs(1_000, 2_000), 100_000);
        let p = engine.predict(&d);
        assert_eq!(p.power, 50.0);
        assert!(p.time > 0.0 && p.time.is_finite());
        let expected = engine.config().objective.evaluate(p.power, p.time);
        assert!((p.objective - expected).abs() < 1e-12);
        // The minimizer chose d.alpha: no grid point predicts lower.
        for k in 0..=10u32 {
            let alt = Decision {
                alpha: f64::from(k) / 10.0,
                ..d
            };
            assert!(engine.predict(&alt).objective >= p.objective - 1e-12);
        }
    }

    #[test]
    fn no_prior_is_byte_identical_to_decide() {
        let engine = DecisionEngine::new(flat_model(50.0), EasConfig::new(Objective::EnergyDelay));
        let o = obs(1_000, 2_000);
        let plain = engine.decide(1, &o, 100_000);
        let primed = engine.decide_with_prior(1, &o, 100_000, None);
        assert_eq!(plain, primed);
        // Non-finite priors are ignored, not applied.
        let nan = engine.decide_with_prior(1, &o, 100_000, Some(f64::NAN));
        assert_eq!(plain, nan);
    }

    #[test]
    fn prior_narrows_the_search_window_but_never_skips_it() {
        // Time objective on a 1:2 machine: the unprimed optimum is ≈2/3.
        let engine = DecisionEngine::new(flat_model(50.0), EasConfig::new(Objective::Time));
        let o = obs(1_000, 2_000);
        let plain = engine.decide(1, &o, 500_000);
        // A prior near the true optimum refines toward it within the
        // window (grid resolution is finer over the narrowed span).
        let near = engine.decide_with_prior(1, &o, 500_000, Some(0.7));
        assert!((near.alpha - 2.0 / 3.0).abs() <= (plain.alpha - 2.0 / 3.0).abs() + 1e-12);
        assert!(near.alpha >= 0.7 - PRIOR_WINDOW - 1e-12);
        assert!(near.alpha <= 0.7 + PRIOR_WINDOW + 1e-12);
        // A hostile prior clamps to the window edge nearest the optimum —
        // bounded damage, and the next accumulation re-profiles anyway.
        let far = engine.decide_with_prior(1, &o, 500_000, Some(0.0));
        assert!((far.alpha - PRIOR_WINDOW).abs() < 1e-9);
        // Out-of-range priors clamp into [0, 1] first.
        let hi = engine.decide_with_prior(1, &o, 500_000, Some(7.0));
        assert!(hi.alpha >= 1.0 - PRIOR_WINDOW - 1e-12);
    }

    #[test]
    fn prior_keeps_degenerate_device_rules() {
        let engine = DecisionEngine::new(flat_model(50.0), EasConfig::new(Objective::Energy));
        assert_eq!(
            engine
                .decide_with_prior(1, &obs(1_000, 0), 1_000, Some(0.9))
                .alpha,
            0.0
        );
        assert_eq!(
            engine
                .decide_with_prior(1, &obs(0, 1_000), 1_000, Some(0.1))
                .alpha,
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "profile_fraction must be in (0, 1]")]
    fn rejects_zero_profile_fraction() {
        let mut cfg = EasConfig::new(Objective::Energy);
        cfg.profile_fraction = 0.0;
        DecisionEngine::new(flat_model(50.0), cfg);
    }
}
