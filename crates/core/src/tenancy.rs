//! The multi-tenant overload frontend: admission control, backpressure,
//! and brownout degradation in front of a shared scheduler (DESIGN.md
//! §13).
//!
//! [`TenantFrontend`] composes the deterministic
//! [`AdmissionController`](easched_runtime::AdmissionController) — per-
//! tenant bounded queues, weighted fair-share draining, quota windows,
//! and the three-rung brownout ladder — with an [`Arc<SharedEas>`]: every
//! request that survives admission executes through the shared table
//! under an [`InvocationCtx`] derived from the current brownout rung and
//! the tenant's deadline budget. Admission outcomes are folded into the
//! scheduler's [`HealthReport`](crate::HealthReport) counters and, when a
//! telemetry sink is attached, emitted as
//! [`ControlEvent`](easched_telemetry::ControlEvent)s so Prometheus
//! exposure carries per-tenant shed/queue/quota series.
//!
//! The frontend adds nothing to the single-tenant fast path: a
//! [`SharedEas`] driven directly (no frontend) never constructs a
//! non-default ctx and takes the exact pre-tenancy code path.

use crate::shared::SharedEas;
use easched_runtime::{
    AdmissionConfig, AdmissionController, AdmissionOutcome, Backend, BrownoutLevel,
    ConcurrentScheduler, InvocationCtx, KernelId, TenantRegistry, TenantStats,
};
use easched_telemetry::{ControlEvent, SloEvent, SloTracker, Span, SpanKind};
use std::sync::{Arc, Mutex, PoisonError};

/// One request handed out by
/// [`drain_detailed`](TenantFrontend::drain_detailed): the admission
/// detail plus the causal trace allocated for it (0 when span tracing is
/// off). Build its execution context with
/// [`ctx_for_request`](TenantFrontend::ctx_for_request) so the
/// scheduler's spans land on the same trace as the admission subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmittedRequest {
    /// Owning tenant's registry index.
    pub tenant: usize,
    /// Ticket assigned at offer time.
    pub ticket: u64,
    /// Full ticks the request queued between offer and drain.
    pub waited_ticks: u64,
    /// Causal trace id, or 0 when tracing is disabled.
    pub trace: u64,
}

/// A multi-tenant admission frontend over one shared scheduler.
///
/// All admission state sits behind one mutex — admission is a few integer
/// operations per request, orders of magnitude cheaper than the kernel
/// executions it gates, so contention here is never the bottleneck.
/// Kernel execution itself ([`schedule`](TenantFrontend::schedule)) runs
/// *outside* the lock: streams still scale with the shared table's
/// reader parallelism.
#[derive(Debug)]
pub struct TenantFrontend {
    shared: Arc<SharedEas>,
    admission: Mutex<AdmissionController>,
    slo: Option<Arc<SloTracker>>,
}

impl TenantFrontend {
    /// A frontend over `shared` admitting the given tenants.
    pub fn new(
        shared: Arc<SharedEas>,
        registry: TenantRegistry,
        cfg: AdmissionConfig,
    ) -> TenantFrontend {
        TenantFrontend {
            shared,
            admission: Mutex::new(AdmissionController::new(registry, cfg)),
            slo: None,
        }
    }

    /// Attaches an SLO burn-rate tracker (builder form): offers, drains,
    /// and [`observe_request_edp`](Self::observe_request_edp) feed it,
    /// and fired alerts are echoed as
    /// [`ControlEvent::SloBreach`](easched_telemetry::ControlEvent)
    /// control events.
    pub fn with_slo(mut self, slo: Arc<SloTracker>) -> TenantFrontend {
        self.slo = Some(slo);
        self
    }

    /// The attached SLO tracker, if any.
    pub fn slo(&self) -> Option<&Arc<SloTracker>> {
        self.slo.as_ref()
    }

    /// The scheduler behind this frontend.
    pub fn shared(&self) -> &Arc<SharedEas> {
        &self.shared
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AdmissionController> {
        // Admission state stays consistent under poisoning: every mutation
        // completes before the lock drops, and one panicked tenant thread
        // must not deny service to the rest.
        self.admission
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn emit(&self, event: ControlEvent) {
        if let Some(sink) = self.shared.telemetry() {
            sink.control(&event);
        }
    }

    /// Echoes a fired SLO alert into the control-event stream. The full
    /// event (burn rates, exemplar offset) stays queryable on the
    /// tracker; the control event is the metrics-exposure hook.
    fn fire(&self, event: Option<SloEvent>) {
        if let Some(e) = event {
            self.emit(ControlEvent::SloBreach {
                tenant: e.tenant,
                signal: e.kind.code(),
            });
        }
    }

    /// The current `RunLog` offset of the attached sink (0 without a
    /// recording sink) — the exemplar SLO events carry.
    fn log_offset(&self) -> u64 {
        self.shared.telemetry().map_or(0, |s| s.offset())
    }

    /// Offers one request for `tenant`, returning the typed admission
    /// outcome — never an unbounded enqueue. Sheds, queues, and quota
    /// denials are counted in the scheduler's health report and emitted
    /// as control events (overload protection is adaptation, not a
    /// fault: `fault_free()` is undisturbed).
    pub fn offer(&self, tenant: usize) -> AdmissionOutcome {
        let (outcome, quota_denied, tick) = {
            let mut adm = self.lock();
            let before = adm.tenant_stats(tenant).quota_denials;
            let outcome = adm.offer(tenant);
            (
                outcome,
                adm.tenant_stats(tenant).quota_denials > before,
                adm.tick(),
            )
        };
        if let Some(slo) = &self.slo {
            let shed = matches!(outcome, AdmissionOutcome::Shed { .. });
            self.fire(slo.observe_shed(tenant as u64, shed, tick as f64, self.log_offset()));
        }
        let stats = &self.shared.health_state().stats;
        match outcome {
            AdmissionOutcome::Admit { .. } => {}
            AdmissionOutcome::Queue { .. } => {
                stats.note_request_queued();
                self.emit(ControlEvent::RequestQueued {
                    tenant: tenant as u64,
                });
            }
            AdmissionOutcome::Shed { .. } => {
                if quota_denied {
                    stats.note_quota_denial();
                    self.emit(ControlEvent::QuotaDenied {
                        tenant: tenant as u64,
                    });
                }
                stats.note_request_shed();
                self.emit(ControlEvent::RequestShed {
                    tenant: tenant as u64,
                });
            }
        }
        outcome
    }

    /// Pops up to `slots` queued requests in weighted fair-share order;
    /// each entry is `(tenant, ticket)`.
    pub fn drain(&self, slots: usize) -> Vec<(usize, u64)> {
        self.drain_detailed(slots)
            .into_iter()
            .map(|r| (r.tenant, r.ticket))
            .collect()
    }

    /// [`drain`](Self::drain) with the observability plane attached: each
    /// drained request reports its queue wait, gets a causal trace
    /// allocated (when the sink traces spans) with its admission subtree
    /// — `admit` rooting a `queue-wait` child — already published, and
    /// feeds the queue-wait SLO signal.
    pub fn drain_detailed(&self, slots: usize) -> Vec<AdmittedRequest> {
        let (drained, tick) = {
            let mut adm = self.lock();
            let drained = adm.drain_detailed(slots);
            (drained, adm.tick())
        };
        if drained.is_empty() {
            return Vec::new();
        }
        let sink = self.shared.telemetry();
        let tracing = sink.as_ref().is_some_and(|s| s.wants_spans());
        let offset = self.log_offset();
        drained
            .into_iter()
            .map(|d| {
                let mut trace = 0;
                if tracing {
                    let sink = sink.expect("tracing implies a sink");
                    trace = sink.next_trace();
                    if trace != 0 {
                        let wait = d.waited_ticks as f64;
                        let mut spans = [
                            Span {
                                id: 1,
                                kind: SpanKind::Admit,
                                tenant: d.tenant as u16,
                                dur: wait,
                                payload: d.ticket as f64,
                                ..Span::default()
                            },
                            Span {
                                id: 2,
                                parent: 1,
                                kind: SpanKind::QueueWait,
                                tenant: d.tenant as u16,
                                dur: wait,
                                payload: d.waited_ticks as f64,
                                ..Span::default()
                            },
                        ];
                        sink.span_batch(trace, &mut spans);
                    }
                }
                if let Some(slo) = &self.slo {
                    self.fire(slo.observe_queue_wait(
                        d.tenant as u64,
                        d.waited_ticks as f64,
                        tick as f64,
                        offset,
                    ));
                }
                AdmittedRequest {
                    tenant: d.tenant,
                    ticket: d.ticket,
                    waited_ticks: d.waited_ticks,
                    trace,
                }
            })
            .collect()
    }

    /// Feeds one executed request's predicted and realized EDP into the
    /// SLO engine (the scheduler-visible pair, so record and replay feed
    /// identical streams). No-op without a tracker.
    pub fn observe_request_edp(&self, tenant: usize, predicted: f64, realized: f64) {
        if let Some(slo) = &self.slo {
            let tick = self.lock().tick();
            self.fire(slo.observe_edp(
                tenant as u64,
                predicted,
                realized,
                tick as f64,
                self.log_offset(),
            ));
        }
    }

    /// Debits `gpu_seconds` of GPU-proxy time against the tenant's quota
    /// window and fair-share debt, after its request executed.
    pub fn complete(&self, tenant: usize, gpu_seconds: f64) {
        self.lock().complete(tenant, gpu_seconds);
    }

    /// Feeds one simulated package-power sample to the brownout ladder.
    /// A rung change is counted and emitted; requests flushed by a
    /// shed-load entry are counted as sheds.
    pub fn observe_power(&self, watts: f64) -> Option<(BrownoutLevel, BrownoutLevel)> {
        let transition = self.lock().observe_power(watts);
        let (from, to, flushed) = transition?;
        let stats = &self.shared.health_state().stats;
        stats.note_brownout_transition();
        self.emit(ControlEvent::Brownout { level: to.code() });
        for _ in 0..flushed {
            stats.note_request_shed();
        }
        Some((from, to))
    }

    /// Advances the admission clock one tick (quota windows and shed
    /// retry horizons are measured in ticks).
    pub fn advance_tick(&self) {
        self.lock().advance_tick();
    }

    /// The invocation context a drained request for `tenant` must execute
    /// under right now: the brownout rung's GPU policy plus the tenant's
    /// deadline budget.
    pub fn ctx_for(&self, tenant: usize) -> InvocationCtx {
        self.lock().ctx_for(tenant)
    }

    /// [`ctx_for`](Self::ctx_for) bound to a drained request's trace, so
    /// the execution subtree lands on the same trace as its admission
    /// spans.
    pub fn ctx_for_request(&self, req: &AdmittedRequest) -> InvocationCtx {
        let mut ctx = self.ctx_for(req.tenant);
        ctx.trace = req.trace;
        ctx
    }

    /// The ladder's current rung.
    pub fn level(&self) -> BrownoutLevel {
        self.lock().level()
    }

    /// The ladder's smoothed package-power estimate, watts (`None`
    /// before the first sample).
    pub fn power_ewma(&self) -> Option<f64> {
        self.lock().power_ewma()
    }

    /// The worst relative fair-share deficit across eligible tenants
    /// (the ci gate asserts ≤ 5 % under the overload storm).
    pub fn fair_share_deficit(&self) -> f64 {
        self.lock().fair_share_deficit()
    }

    /// Whether every queue respects its tenant's bound (an invariant —
    /// `false` is a bug).
    pub fn queues_bounded(&self) -> bool {
        self.lock().queues_bounded()
    }

    /// A tenant's admission counters.
    pub fn tenant_stats(&self, tenant: usize) -> TenantStats {
        self.lock().tenant_stats(tenant)
    }

    /// Executes one admitted request through the shared scheduler under
    /// the tenant's current context. The admission lock is *not* held
    /// during execution.
    pub fn schedule(&self, tenant: usize, kernel: KernelId, backend: &mut dyn Backend) {
        let ctx = self.ctx_for(tenant);
        self.shared.schedule_shared_ctx(kernel, backend, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass;
    use crate::eas::EasConfig;
    use crate::objective::Objective;
    use crate::power_model::{PowerCurve, PowerModel};
    use easched_num::Polynomial;
    use easched_runtime::backend::test_support::FakeBackend;
    use easched_runtime::TenantSpec;
    use easched_telemetry::{RingSink, SloKind};

    fn flat_model(watts: f64) -> PowerModel {
        let curves = WorkloadClass::all()
            .into_iter()
            .map(|c| PowerCurve::new(c, Polynomial::constant(watts), 0.0, 11))
            .collect();
        PowerModel::new("flat", curves)
    }

    fn frontend(sink: Option<Arc<RingSink>>) -> TenantFrontend {
        let cfg = EasConfig::new(Objective::Time);
        let shared = match sink {
            Some(s) => SharedEas::with_telemetry(flat_model(50.0), cfg, s),
            None => SharedEas::new(flat_model(50.0), cfg),
        };
        let registry = TenantRegistry::new(vec![
            TenantSpec::new("a", 1.0).with_queue_cap(2),
            TenantSpec::new("b", 3.0).with_queue_cap(2),
        ]);
        TenantFrontend::new(shared, registry, AdmissionConfig::default())
    }

    #[test]
    fn outcomes_feed_health_counters_not_fault_free() {
        let f = frontend(None);
        assert!(matches!(f.offer(0), AdmissionOutcome::Admit { .. }));
        assert!(matches!(f.offer(0), AdmissionOutcome::Queue { .. }));
        assert!(matches!(f.offer(0), AdmissionOutcome::Shed { .. }));
        let report = f.shared().health();
        assert_eq!(report.requests_queued, 1);
        assert_eq!(report.requests_shed, 1);
        assert_eq!(report.quota_denials, 0);
        assert!(report.fault_free(), "overload protection is not a fault");
    }

    #[test]
    fn control_events_reach_the_sink() {
        let sink = Arc::new(RingSink::default());
        let f = frontend(Some(Arc::clone(&sink)));
        for _ in 0..3 {
            f.offer(1);
        }
        assert_eq!(sink.metrics().requests_queued.get(), 1);
        assert_eq!(sink.metrics().requests_shed.get(), 1);
        assert_eq!(sink.metrics().tenant_sheds(), vec![(1, 1)]);
    }

    #[test]
    fn admitted_requests_execute_through_the_shared_table() {
        let f = frontend(None);
        assert!(matches!(f.offer(0), AdmissionOutcome::Admit { .. }));
        let drained = f.drain(4);
        assert_eq!(drained.len(), 1);
        let (tenant, _ticket) = drained[0];
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        f.schedule(tenant, 7, &mut b);
        f.complete(tenant, 0.5);
        assert!(f.shared().learned_alpha(7).is_some());
        assert!(f.queues_bounded());
        assert!(f.tenant_stats(0).gpu_seconds > 0.0);
    }

    #[test]
    fn drained_requests_carry_traces_and_publish_admission_spans() {
        let sink = Arc::new(RingSink::with_capacity(256).with_span_tracing(256, 0xFEED));
        let f = frontend(Some(Arc::clone(&sink)));
        assert!(matches!(f.offer(0), AdmissionOutcome::Admit { .. }));
        f.advance_tick();
        f.advance_tick();
        let drained = f.drain_detailed(4);
        assert_eq!(drained.len(), 1);
        let req = drained[0];
        assert_ne!(req.trace, 0, "tracing sink allocates a trace");
        assert_eq!(req.waited_ticks, 2);

        let spans = sink.span_snapshot();
        assert_eq!(spans.len(), 2, "admit + queue-wait");
        assert_eq!(spans[0].kind, SpanKind::Admit);
        assert_eq!(spans[1].kind, SpanKind::QueueWait);
        assert!(spans.iter().all(|s| s.trace == req.trace));
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[1].payload, 2.0, "waited ticks ride as payload");
        assert_eq!(spans[0].tenant, 0);

        // Executing under the request's ctx chains the decide subtree
        // onto the same trace, after the queue wait.
        let ctx = f.ctx_for_request(&req);
        assert_eq!(ctx.trace, req.trace);
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        f.shared().schedule_shared_ctx(7, &mut b, ctx);
        let spans = sink.span_snapshot();
        assert!(spans.len() > 2, "execution subtree published");
        assert!(spans.iter().all(|s| s.trace == req.trace));
        let decide = spans.iter().find(|s| s.kind == SpanKind::Decide).unwrap();
        assert!(decide.start >= 2.0, "execution starts after the queue wait");
        assert!(spans.iter().any(|s| s.kind == SpanKind::Fold));
        assert_eq!(decide.tenant, 0, "ctx tenant labels the execution spans");
    }

    #[test]
    fn untraced_sink_allocates_no_traces_and_no_spans() {
        let sink = Arc::new(RingSink::default());
        let f = frontend(Some(Arc::clone(&sink)));
        f.offer(0);
        let drained = f.drain_detailed(4);
        assert_eq!(drained[0].trace, 0);
        assert!(sink.span_sink().is_none());
    }

    #[test]
    fn sustained_sheds_fire_an_slo_breach_control_event() {
        let sink = Arc::new(RingSink::default());
        let slo = Arc::new(SloTracker::default());
        let f = {
            let cfg = EasConfig::new(Objective::Time);
            let slo_sink: Arc<RingSink> = Arc::clone(&sink);
            let shared = SharedEas::with_telemetry(flat_model(50.0), cfg, slo_sink);
            let registry = TenantRegistry::new(vec![TenantSpec::new("a", 1.0).with_queue_cap(1)]);
            TenantFrontend::new(shared, registry, AdmissionConfig::default())
                .with_slo(Arc::clone(&slo))
        };
        // Queue cap 1 and no drains: every offer past the first sheds.
        // 100 % shed rate burns 10× the 10 % budget in both windows.
        for _ in 0..64 {
            f.offer(0);
        }
        let events = slo.events();
        assert!(!events.is_empty(), "sustained sheds must fire");
        assert_eq!(events[0].kind, SloKind::ShedRate);
        assert_eq!(sink.metrics().slo_breaches.get(), events.len() as u64);
        assert_eq!(
            sink.metrics().tenant_slo_breaches(),
            vec![(0, events.len() as u64)]
        );
    }

    #[test]
    fn brownout_transition_is_counted_and_shapes_ctx() {
        let f = frontend(None);
        // Default budget 45 W, enter margin 1.0, streak 3: sustained
        // 90 W drives the ladder up one rung.
        assert!(f.observe_power(90.0).is_none());
        assert!(f.observe_power(90.0).is_none());
        let t = f.observe_power(90.0);
        assert_eq!(t, Some((BrownoutLevel::Normal, BrownoutLevel::DenyGpu)));
        assert_eq!(f.level(), BrownoutLevel::DenyGpu);
        assert_eq!(f.shared().health().brownout_transitions, 1);
        let ctx = f.ctx_for(0);
        assert_ne!(ctx, InvocationCtx::default());
    }
}
