//! The multi-tenant overload frontend: admission control, backpressure,
//! and brownout degradation in front of a shared scheduler (DESIGN.md
//! §13).
//!
//! [`TenantFrontend`] composes the deterministic
//! [`AdmissionController`](easched_runtime::AdmissionController) — per-
//! tenant bounded queues, weighted fair-share draining, quota windows,
//! and the three-rung brownout ladder — with an [`Arc<SharedEas>`]: every
//! request that survives admission executes through the shared table
//! under an [`InvocationCtx`] derived from the current brownout rung and
//! the tenant's deadline budget. Admission outcomes are folded into the
//! scheduler's [`HealthReport`](crate::HealthReport) counters and, when a
//! telemetry sink is attached, emitted as
//! [`ControlEvent`](easched_telemetry::ControlEvent)s so Prometheus
//! exposure carries per-tenant shed/queue/quota series.
//!
//! The frontend adds nothing to the single-tenant fast path: a
//! [`SharedEas`] driven directly (no frontend) never constructs a
//! non-default ctx and takes the exact pre-tenancy code path.

use crate::shared::SharedEas;
use easched_runtime::{
    AdmissionConfig, AdmissionController, AdmissionOutcome, Backend, BrownoutLevel,
    ConcurrentScheduler, InvocationCtx, KernelId, TenantRegistry, TenantStats,
};
use easched_telemetry::ControlEvent;
use std::sync::{Arc, Mutex, PoisonError};

/// A multi-tenant admission frontend over one shared scheduler.
///
/// All admission state sits behind one mutex — admission is a few integer
/// operations per request, orders of magnitude cheaper than the kernel
/// executions it gates, so contention here is never the bottleneck.
/// Kernel execution itself ([`schedule`](TenantFrontend::schedule)) runs
/// *outside* the lock: streams still scale with the shared table's
/// reader parallelism.
#[derive(Debug)]
pub struct TenantFrontend {
    shared: Arc<SharedEas>,
    admission: Mutex<AdmissionController>,
}

impl TenantFrontend {
    /// A frontend over `shared` admitting the given tenants.
    pub fn new(
        shared: Arc<SharedEas>,
        registry: TenantRegistry,
        cfg: AdmissionConfig,
    ) -> TenantFrontend {
        TenantFrontend {
            shared,
            admission: Mutex::new(AdmissionController::new(registry, cfg)),
        }
    }

    /// The scheduler behind this frontend.
    pub fn shared(&self) -> &Arc<SharedEas> {
        &self.shared
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AdmissionController> {
        // Admission state stays consistent under poisoning: every mutation
        // completes before the lock drops, and one panicked tenant thread
        // must not deny service to the rest.
        self.admission
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn emit(&self, event: ControlEvent) {
        if let Some(sink) = self.shared.telemetry() {
            sink.control(&event);
        }
    }

    /// Offers one request for `tenant`, returning the typed admission
    /// outcome — never an unbounded enqueue. Sheds, queues, and quota
    /// denials are counted in the scheduler's health report and emitted
    /// as control events (overload protection is adaptation, not a
    /// fault: `fault_free()` is undisturbed).
    pub fn offer(&self, tenant: usize) -> AdmissionOutcome {
        let (outcome, quota_denied) = {
            let mut adm = self.lock();
            let before = adm.tenant_stats(tenant).quota_denials;
            let outcome = adm.offer(tenant);
            (outcome, adm.tenant_stats(tenant).quota_denials > before)
        };
        let stats = &self.shared.health_state().stats;
        match outcome {
            AdmissionOutcome::Admit { .. } => {}
            AdmissionOutcome::Queue { .. } => {
                stats.note_request_queued();
                self.emit(ControlEvent::RequestQueued {
                    tenant: tenant as u64,
                });
            }
            AdmissionOutcome::Shed { .. } => {
                if quota_denied {
                    stats.note_quota_denial();
                    self.emit(ControlEvent::QuotaDenied {
                        tenant: tenant as u64,
                    });
                }
                stats.note_request_shed();
                self.emit(ControlEvent::RequestShed {
                    tenant: tenant as u64,
                });
            }
        }
        outcome
    }

    /// Pops up to `slots` queued requests in weighted fair-share order;
    /// each entry is `(tenant, ticket)`.
    pub fn drain(&self, slots: usize) -> Vec<(usize, u64)> {
        self.lock().drain(slots)
    }

    /// Debits `gpu_seconds` of GPU-proxy time against the tenant's quota
    /// window and fair-share debt, after its request executed.
    pub fn complete(&self, tenant: usize, gpu_seconds: f64) {
        self.lock().complete(tenant, gpu_seconds);
    }

    /// Feeds one simulated package-power sample to the brownout ladder.
    /// A rung change is counted and emitted; requests flushed by a
    /// shed-load entry are counted as sheds.
    pub fn observe_power(&self, watts: f64) -> Option<(BrownoutLevel, BrownoutLevel)> {
        let transition = self.lock().observe_power(watts);
        let (from, to, flushed) = transition?;
        let stats = &self.shared.health_state().stats;
        stats.note_brownout_transition();
        self.emit(ControlEvent::Brownout { level: to.code() });
        for _ in 0..flushed {
            stats.note_request_shed();
        }
        Some((from, to))
    }

    /// Advances the admission clock one tick (quota windows and shed
    /// retry horizons are measured in ticks).
    pub fn advance_tick(&self) {
        self.lock().advance_tick();
    }

    /// The invocation context a drained request for `tenant` must execute
    /// under right now: the brownout rung's GPU policy plus the tenant's
    /// deadline budget.
    pub fn ctx_for(&self, tenant: usize) -> InvocationCtx {
        self.lock().ctx_for(tenant)
    }

    /// The ladder's current rung.
    pub fn level(&self) -> BrownoutLevel {
        self.lock().level()
    }

    /// The ladder's smoothed package-power estimate, watts (`None`
    /// before the first sample).
    pub fn power_ewma(&self) -> Option<f64> {
        self.lock().power_ewma()
    }

    /// The worst relative fair-share deficit across eligible tenants
    /// (the ci gate asserts ≤ 5 % under the overload storm).
    pub fn fair_share_deficit(&self) -> f64 {
        self.lock().fair_share_deficit()
    }

    /// Whether every queue respects its tenant's bound (an invariant —
    /// `false` is a bug).
    pub fn queues_bounded(&self) -> bool {
        self.lock().queues_bounded()
    }

    /// A tenant's admission counters.
    pub fn tenant_stats(&self, tenant: usize) -> TenantStats {
        self.lock().tenant_stats(tenant)
    }

    /// Executes one admitted request through the shared scheduler under
    /// the tenant's current context. The admission lock is *not* held
    /// during execution.
    pub fn schedule(&self, tenant: usize, kernel: KernelId, backend: &mut dyn Backend) {
        let ctx = self.ctx_for(tenant);
        self.shared.schedule_shared_ctx(kernel, backend, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass;
    use crate::eas::EasConfig;
    use crate::objective::Objective;
    use crate::power_model::{PowerCurve, PowerModel};
    use easched_num::Polynomial;
    use easched_runtime::backend::test_support::FakeBackend;
    use easched_runtime::TenantSpec;
    use easched_telemetry::RingSink;

    fn flat_model(watts: f64) -> PowerModel {
        let curves = WorkloadClass::all()
            .into_iter()
            .map(|c| PowerCurve::new(c, Polynomial::constant(watts), 0.0, 11))
            .collect();
        PowerModel::new("flat", curves)
    }

    fn frontend(sink: Option<Arc<RingSink>>) -> TenantFrontend {
        let cfg = EasConfig::new(Objective::Time);
        let shared = match sink {
            Some(s) => SharedEas::with_telemetry(flat_model(50.0), cfg, s),
            None => SharedEas::new(flat_model(50.0), cfg),
        };
        let registry = TenantRegistry::new(vec![
            TenantSpec::new("a", 1.0).with_queue_cap(2),
            TenantSpec::new("b", 3.0).with_queue_cap(2),
        ]);
        TenantFrontend::new(shared, registry, AdmissionConfig::default())
    }

    #[test]
    fn outcomes_feed_health_counters_not_fault_free() {
        let f = frontend(None);
        assert!(matches!(f.offer(0), AdmissionOutcome::Admit { .. }));
        assert!(matches!(f.offer(0), AdmissionOutcome::Queue { .. }));
        assert!(matches!(f.offer(0), AdmissionOutcome::Shed { .. }));
        let report = f.shared().health();
        assert_eq!(report.requests_queued, 1);
        assert_eq!(report.requests_shed, 1);
        assert_eq!(report.quota_denials, 0);
        assert!(report.fault_free(), "overload protection is not a fault");
    }

    #[test]
    fn control_events_reach_the_sink() {
        let sink = Arc::new(RingSink::default());
        let f = frontend(Some(Arc::clone(&sink)));
        for _ in 0..3 {
            f.offer(1);
        }
        assert_eq!(sink.metrics().requests_queued.get(), 1);
        assert_eq!(sink.metrics().requests_shed.get(), 1);
        assert_eq!(sink.metrics().tenant_sheds(), vec![(1, 1)]);
    }

    #[test]
    fn admitted_requests_execute_through_the_shared_table() {
        let f = frontend(None);
        assert!(matches!(f.offer(0), AdmissionOutcome::Admit { .. }));
        let drained = f.drain(4);
        assert_eq!(drained.len(), 1);
        let (tenant, _ticket) = drained[0];
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        f.schedule(tenant, 7, &mut b);
        f.complete(tenant, 0.5);
        assert!(f.shared().learned_alpha(7).is_some());
        assert!(f.queues_bounded());
        assert!(f.tenant_stats(0).gpu_seconds > 0.0);
    }

    #[test]
    fn brownout_transition_is_counted_and_shapes_ctx() {
        let f = frontend(None);
        // Default budget 45 W, enter margin 1.0, streak 3: sustained
        // 90 W drives the ladder up one rung.
        assert!(f.observe_power(90.0).is_none());
        assert!(f.observe_power(90.0).is_none());
        let t = f.observe_power(90.0);
        assert_eq!(t, Some((BrownoutLevel::Normal, BrownoutLevel::DenyGpu)));
        assert_eq!(f.level(), BrownoutLevel::DenyGpu);
        assert_eq!(f.shared().health().brownout_transitions, 1);
        let ctx = f.ctx_for(0);
        assert_ne!(ctx, InvocationCtx::default());
    }
}
