//! Observation validation: classify each profiling [`Observation`] as
//! clean or as a typed fault before it can reach the decision engine.
//!
//! On real hardware every observable EAS consumes is flaky — the energy
//! MSR drops samples and wraps, PCM counters glitch, iGPU drivers hang —
//! and one absurd reading folded into the kernel table poisons every
//! future reuse of that entry. [`ObservationGuard`] sits between the
//! backend and [`DecisionEngine`](crate::DecisionEngine): it applies
//! plausibility bounds (partly derived from the characterized platform
//! model) and rejects readings that no healthy machine could produce,
//! labelling each rejection with a [`FaultKind`] so the profile loop can
//! react differently to a hung GPU than to a dropped energy sample.
//!
//! The bounds are deliberately generous: a noisy-but-real observation must
//! never be rejected, because the fault-free path has to stay
//! behavior-identical to an unguarded scheduler. Only physically
//! impossible readings (non-finite times, throughput beyond any device,
//! more L3 misses than loads, power far above the platform ceiling) are
//! classified as faults.

use crate::power_model::PowerModel;
use easched_runtime::Observation;
use std::fmt;

/// Throughput no integrated device can reach, items/second. Real rates in
/// the calibrated platforms top out far below 1e9; anything past this is a
/// corrupted counter, not a fast GPU.
const MAX_PLAUSIBLE_RATE: f64 = 1.0e15;

/// Multiple of the model's maximum predicted package power tolerated
/// before an energy reading counts as implausible. Covers transients,
/// measurement noise, and model error with room to spare.
const POWER_SLACK: f64 = 20.0;

/// Observation windows shorter than this (seconds) skip the energy checks:
/// the register's 2⁻¹⁶ J granularity makes tiny windows legitimately read
/// zero.
const MIN_ENERGY_WINDOW: f64 = 1.0e-6;

/// L3 misses per load beyond which the counters are corrupt (every miss
/// is a load, so the physical ceiling is 1; slack for rounding).
const MAX_MISS_PER_LOAD: f64 = 1.5;

/// Why an observation was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A time/energy/counter field is NaN, infinite, or negative.
    NonFinite,
    /// The GPU was busy but completed zero items: a hang/timeout.
    GpuSilent,
    /// CPU throughput beyond anything physical (corrupted counter).
    ImplausibleCpuRate,
    /// GPU throughput beyond anything physical (corrupted counter or
    /// phantom completions from a wedged driver).
    ImplausibleGpuRate,
    /// A busy window measured zero energy: the register dropped samples
    /// or read stuck.
    EnergyDropout,
    /// Implied package power far above the platform's ceiling: a spurious
    /// register wrap or torn read.
    EnergyImplausible,
    /// Hardware counters are internally inconsistent (more L3 misses than
    /// loads).
    CounterCorrupt,
    /// The watchdog cancelled the round: it ran past the hard deadline on
    /// a profiling observation (DESIGN.md §11). Never produced by
    /// [`ObservationGuard::vet`] itself — the profile loop synthesizes it
    /// when a round overruns — but it flows through the same rejection
    /// path: retry with a backed-off chunk, degrade past the budget.
    DeadlineExceeded,
    /// A journal or snapshot I/O operation failed (ENOSPC, EIO, short
    /// write) and was absorbed by the store (DESIGN.md §16). Like
    /// `DeadlineExceeded`, never produced by `vet` — the table store
    /// emits it — but it shares the typed-fault pipeline so telemetry
    /// sees one fault vocabulary.
    StorageWrite,
    /// A file or directory fsync failed; the handle was poisoned and
    /// re-derived from the on-disk sealed prefix (never retried).
    StorageSync,
    /// The store changed degradation state: entered degrade-to-memory
    /// after unrecoverable I/O failures, or re-armed durability after a
    /// successful compaction.
    StorageDegraded,
}

impl FaultKind {
    /// Whether this fault implicates the GPU itself (rather than a
    /// sensor): these drive the circuit breaker toward CPU-only
    /// degradation, while sensor faults only trigger retries.
    pub fn implicates_gpu(self) -> bool {
        matches!(
            self,
            FaultKind::GpuSilent | FaultKind::ImplausibleGpuRate | FaultKind::DeadlineExceeded
        )
    }

    /// Stable numeric code used in telemetry records and trace exports.
    pub fn code(self) -> u8 {
        match self {
            FaultKind::NonFinite => 0,
            FaultKind::GpuSilent => 1,
            FaultKind::ImplausibleCpuRate => 2,
            FaultKind::ImplausibleGpuRate => 3,
            FaultKind::EnergyDropout => 4,
            FaultKind::EnergyImplausible => 5,
            FaultKind::CounterCorrupt => 6,
            FaultKind::DeadlineExceeded => 7,
            FaultKind::StorageWrite => 8,
            FaultKind::StorageSync => 9,
            FaultKind::StorageDegraded => 10,
        }
    }

    /// Decodes a telemetry fault code; unknown codes map to `None`.
    pub fn from_code(code: u8) -> Option<FaultKind> {
        Some(match code {
            0 => FaultKind::NonFinite,
            1 => FaultKind::GpuSilent,
            2 => FaultKind::ImplausibleCpuRate,
            3 => FaultKind::ImplausibleGpuRate,
            4 => FaultKind::EnergyDropout,
            5 => FaultKind::EnergyImplausible,
            6 => FaultKind::CounterCorrupt,
            7 => FaultKind::DeadlineExceeded,
            8 => FaultKind::StorageWrite,
            9 => FaultKind::StorageSync,
            10 => FaultKind::StorageDegraded,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::NonFinite => "non-finite or negative field",
            FaultKind::GpuSilent => "GPU busy but silent (hang/timeout)",
            FaultKind::ImplausibleCpuRate => "implausible CPU throughput",
            FaultKind::ImplausibleGpuRate => "implausible GPU throughput",
            FaultKind::EnergyDropout => "energy register dropout",
            FaultKind::EnergyImplausible => "implausible package power",
            FaultKind::CounterCorrupt => "inconsistent hardware counters",
            FaultKind::DeadlineExceeded => "watchdog deadline exceeded",
            FaultKind::StorageWrite => "storage write failed",
            FaultKind::StorageSync => "storage fsync failed (handle poisoned)",
            FaultKind::StorageDegraded => "store degradation state changed",
        };
        f.write_str(s)
    }
}

/// Plausibility bounds for observations on one platform.
///
/// # Examples
///
/// ```
/// use easched_core::{ObservationGuard, FaultKind, PowerCurve, PowerModel, WorkloadClass};
/// use easched_num::Polynomial;
/// use easched_runtime::Observation;
///
/// let curves = WorkloadClass::all().into_iter()
///     .map(|c| PowerCurve::new(c, Polynomial::constant(50.0), 0.0, 11)).collect();
/// let guard = ObservationGuard::from_model(&PowerModel::new("flat", curves));
/// let mut obs = Observation {
///     elapsed: 0.001, cpu_items: 1_000, gpu_items: 2_000,
///     cpu_time: 0.001, gpu_time: 0.001, energy_joules: 0.05,
///     ..Default::default()
/// };
/// assert_eq!(guard.vet(&obs), Ok(()));
/// obs.energy_joules = 1.0e9; // a megawatt-scale reading
/// assert_eq!(guard.vet(&obs), Err(FaultKind::EnergyImplausible));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationGuard {
    max_rate: f64,
    power_ceiling: f64,
}

impl ObservationGuard {
    /// Derives bounds from a characterized power model: the power ceiling
    /// is the model's maximum prediction over every workload class and α,
    /// times a generous slack factor.
    pub fn from_model(model: &PowerModel) -> ObservationGuard {
        let mut max_watts: f64 = 1.0;
        for curve in model.curves() {
            for step in 0..=20 {
                let alpha = f64::from(step) / 20.0;
                let w = curve.predict(alpha);
                if w.is_finite() {
                    max_watts = max_watts.max(w);
                }
            }
        }
        ObservationGuard {
            max_rate: MAX_PLAUSIBLE_RATE,
            power_ceiling: max_watts * POWER_SLACK,
        }
    }

    /// The package-power ceiling (watts) above which a reading is
    /// rejected as [`FaultKind::EnergyImplausible`].
    pub fn power_ceiling(&self) -> f64 {
        self.power_ceiling
    }

    /// Classifies an observation: `Ok(())` if it is plausible, or the
    /// [`FaultKind`] describing why no healthy platform could have
    /// produced it.
    pub fn vet(&self, obs: &Observation) -> Result<(), FaultKind> {
        let times = [obs.elapsed, obs.cpu_time, obs.gpu_time];
        if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
            return Err(FaultKind::NonFinite);
        }
        let extras = [
            obs.energy_joules,
            obs.counters.instructions,
            obs.counters.loads,
            obs.counters.l3_misses,
        ];
        if extras.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(FaultKind::NonFinite);
        }
        // A busy GPU that completed nothing is a hang, not a slow device:
        // a slow device still reports its chunk done (late).
        if obs.gpu_time > 0.0 && obs.gpu_items == 0 {
            return Err(FaultKind::GpuSilent);
        }
        if obs.gpu_rate() > self.max_rate || (obs.gpu_items > 0 && obs.gpu_time == 0.0) {
            return Err(FaultKind::ImplausibleGpuRate);
        }
        if obs.cpu_rate() > self.max_rate || (obs.cpu_items > 0 && obs.cpu_time == 0.0) {
            return Err(FaultKind::ImplausibleCpuRate);
        }
        if obs.elapsed > MIN_ENERGY_WINDOW {
            if obs.energy_joules <= 0.0 {
                return Err(FaultKind::EnergyDropout);
            }
            if obs.energy_joules / obs.elapsed > self.power_ceiling {
                return Err(FaultKind::EnergyImplausible);
            }
        }
        if obs.counters.loads >= 0.0
            && obs.counters.l3_misses > obs.counters.loads * MAX_MISS_PER_LOAD + 10.0
        {
            return Err(FaultKind::CounterCorrupt);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::WorkloadClass;
    use crate::power_model::PowerCurve;
    use easched_num::Polynomial;
    use easched_sim::CounterSnapshot;

    fn guard() -> ObservationGuard {
        let curves = WorkloadClass::all()
            .into_iter()
            .map(|c| PowerCurve::new(c, Polynomial::constant(50.0), 0.0, 11))
            .collect();
        ObservationGuard::from_model(&PowerModel::new("flat", curves))
    }

    fn clean_obs() -> Observation {
        Observation {
            elapsed: 0.001,
            cpu_items: 1_000,
            gpu_items: 2_000,
            cpu_time: 0.001,
            gpu_time: 0.001,
            energy_joules: 0.05,
            counters: CounterSnapshot {
                instructions: 1.0e6,
                loads: 4.0e5,
                l3_misses: 1.0e5,
            },
        }
    }

    #[test]
    fn clean_observation_passes() {
        assert_eq!(guard().vet(&clean_obs()), Ok(()));
    }

    #[test]
    fn empty_observation_passes() {
        // run_split on an empty pool returns all-zero observations; they
        // carry no information but are not faults.
        assert_eq!(guard().vet(&Observation::default()), Ok(()));
    }

    #[test]
    fn nan_fields_rejected() {
        for mutate in [
            (|o: &mut Observation| o.elapsed = f64::NAN) as fn(&mut Observation),
            |o| o.cpu_time = f64::INFINITY,
            |o| o.gpu_time = -1.0,
            |o| o.energy_joules = f64::NAN,
            |o| o.counters.l3_misses = f64::NAN,
        ] {
            let mut o = clean_obs();
            mutate(&mut o);
            assert_eq!(guard().vet(&o), Err(FaultKind::NonFinite));
        }
    }

    #[test]
    fn hung_gpu_rejected_but_slow_gpu_accepted() {
        let mut hung = clean_obs();
        hung.gpu_items = 0;
        hung.gpu_time = 10.0;
        hung.elapsed = 10.0;
        assert_eq!(guard().vet(&hung), Err(FaultKind::GpuSilent));

        let mut slow = clean_obs();
        slow.gpu_items = 3; // pathologically slow, but alive
        slow.gpu_time = 7.0;
        slow.elapsed = 7.0;
        slow.energy_joules = 300.0;
        assert_eq!(guard().vet(&slow), Ok(()));
    }

    #[test]
    fn implausible_rates_rejected() {
        let mut o = clean_obs();
        o.gpu_items = 1 << 50;
        o.gpu_time = 1.0e-12;
        assert_eq!(guard().vet(&o), Err(FaultKind::ImplausibleGpuRate));

        let mut o = clean_obs();
        o.cpu_items = 1 << 50;
        o.cpu_time = 1.0e-12;
        assert_eq!(guard().vet(&o), Err(FaultKind::ImplausibleCpuRate));
    }

    #[test]
    fn energy_faults_classified() {
        let mut dropout = clean_obs();
        dropout.energy_joules = 0.0;
        assert_eq!(guard().vet(&dropout), Err(FaultKind::EnergyDropout));

        let mut wrap = clean_obs();
        wrap.energy_joules = 65_536.0;
        assert_eq!(guard().vet(&wrap), Err(FaultKind::EnergyImplausible));
    }

    #[test]
    fn tiny_windows_skip_energy_checks() {
        let mut o = clean_obs();
        o.elapsed = 1.0e-8;
        o.energy_joules = 0.0;
        assert_eq!(guard().vet(&o), Ok(()));
    }

    #[test]
    fn counter_corruption_rejected() {
        let mut o = clean_obs();
        o.counters.l3_misses = o.counters.loads * 1.0e6;
        assert_eq!(guard().vet(&o), Err(FaultKind::CounterCorrupt));
    }

    #[test]
    fn gpu_faults_implicate_gpu_sensor_faults_do_not() {
        assert!(FaultKind::GpuSilent.implicates_gpu());
        assert!(FaultKind::ImplausibleGpuRate.implicates_gpu());
        assert!(!FaultKind::EnergyDropout.implicates_gpu());
        assert!(!FaultKind::EnergyImplausible.implicates_gpu());
        assert!(!FaultKind::CounterCorrupt.implicates_gpu());
        assert!(!FaultKind::NonFinite.implicates_gpu());
        // A hung round is a GPU-side stall, not a sensor glitch.
        assert!(FaultKind::DeadlineExceeded.implicates_gpu());
        // Storage faults are disk-side: they must never push the breaker
        // toward CPU-only degradation.
        assert!(!FaultKind::StorageWrite.implicates_gpu());
        assert!(!FaultKind::StorageSync.implicates_gpu());
        assert!(!FaultKind::StorageDegraded.implicates_gpu());
    }

    #[test]
    fn fault_codes_roundtrip() {
        for code in 0..=10u8 {
            let kind = FaultKind::from_code(code).unwrap();
            assert_eq!(kind.code(), code);
            assert!(!kind.to_string().is_empty());
        }
        assert_eq!(FaultKind::from_code(11), None);
    }

    #[test]
    fn power_ceiling_scales_with_model() {
        assert!(guard().power_ceiling() >= 50.0 * 10.0);
    }
}
