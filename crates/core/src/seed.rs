//! The randomness seam: one root seed from which every stochastic input
//! of a run is derived.
//!
//! Before this module, the seeds steering a run were scattered: chaos
//! plans carried their own literals, sim backends were seeded per
//! invocation, workload generators baked constants into the suite. That
//! made a run reproducible only if every call site was tracked by hand.
//! [`RunSeed`] centralizes them: construct one per run, derive every
//! domain-specific seed from it by *name*, and recording the single root
//! (plus the derivation names, which are code, not data) pins the entire
//! stochastic behavior of the run. The record/replay layer
//! (`easched-replay`) writes the root and each derivation into the
//! `RunLog`, so a replayed run can re-derive — and verify — the exact
//! streams the recorded run used.
//!
//! Derivation is pure: FNV-1a over the domain name, mixed with the root
//! through a splitmix64-style avalanche (the same finalizer the chaos
//! injector uses for its counter-based fault stream). Same root + same
//! name → same seed, on every platform, in every ordering.

use crate::persist::fnv1a64;

/// The default root for runs that never chose one explicitly. A fixed,
/// arbitrary constant — *not* entropy — so even "unseeded" runs are
/// reproducible.
pub const DEFAULT_ROOT: u64 = 0x0EA5_C4ED_0C60_2016;

/// A run's root seed: the single value from which chaos plans, sim
/// backends, and workload generation derive their randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunSeed {
    root: u64,
}

impl Default for RunSeed {
    fn default() -> RunSeed {
        RunSeed::new(DEFAULT_ROOT)
    }
}

impl RunSeed {
    /// A run seed with the given recorded root.
    pub fn new(root: u64) -> RunSeed {
        RunSeed { root }
    }

    /// The root value (what a `RunLog` records).
    pub fn root(self) -> u64 {
        self.root
    }

    /// Derives the seed for a named domain, e.g. `"chaos"` or
    /// `"workload/BS"`. Deterministic in `(root, domain)` and
    /// order-independent: deriving domains in any order yields the same
    /// values.
    pub fn derive(self, domain: &str) -> u64 {
        mix(self.root ^ fnv1a64(domain.as_bytes()))
    }

    /// Derives the `index`-th seed of a named domain (for per-invocation
    /// or per-stream streams within one domain).
    pub fn derive_indexed(self, domain: &str, index: u64) -> u64 {
        mix(self.derive(domain) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// splitmix64-style finalizer (same avalanche the chaos injector's
/// counter-based fault stream uses).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivations_are_deterministic_and_domain_separated() {
        let s = RunSeed::new(7);
        assert_eq!(s.derive("chaos"), RunSeed::new(7).derive("chaos"));
        assert_ne!(s.derive("chaos"), s.derive("workload/BS"));
        assert_ne!(s.derive("chaos"), RunSeed::new(8).derive("chaos"));
    }

    #[test]
    fn indexed_derivations_form_distinct_streams() {
        let s = RunSeed::new(1009);
        let a: Vec<u64> = (0..8).map(|i| s.derive_indexed("stream", i)).collect();
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "collisions in {a:?}");
        assert_eq!(a[3], s.derive_indexed("stream", 3));
        // Index 0 is still mixed, not the bare domain seed.
        assert_ne!(a[0], s.derive("stream"));
    }

    #[test]
    fn default_root_is_fixed() {
        assert_eq!(RunSeed::default().root(), DEFAULT_ROOT);
        assert_eq!(
            RunSeed::default().derive("chaos"),
            RunSeed::new(DEFAULT_ROOT).derive("chaos")
        );
    }
}
