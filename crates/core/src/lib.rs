//! The energy-aware scheduler (EAS) — the primary contribution of
//! *"A Black-Box Approach to Energy-Aware Scheduling on Integrated CPU-GPU
//! Systems"* (CGO 2016).
//!
//! The pipeline:
//!
//! 1. **Characterize once per platform** ([`characterize()`]): sweep eight
//!    micro-benchmarks over GPU offload ratios, measure average package
//!    power through the energy register, fit a sixth-order polynomial per
//!    workload category → a [`PowerModel`].
//! 2. **Profile online per kernel** (inside [`EasScheduler`]): measure
//!    combined-mode device throughputs and hardware counters, classify the
//!    workload ([`Classifier`]) into one of eight categories.
//! 3. **Decide**: build the analytical time model T(α) ([`TimeModel`],
//!    Eqs. 1–4), combine with the category's power curve P(α), and
//!    grid-minimize the chosen [`Objective`] (energy, EDP, ED², or any
//!    custom f(P, T)).
//! 4. **Execute** the remaining iterations at the chosen ratio and remember
//!    it per kernel with sample-weighted accumulation.
//!
//! [`EasRuntime`] packages the whole flow; [`Evaluator`] reproduces the
//! paper's five-scheme comparison (CPU / GPU / PERF / EAS / Oracle).
//!
//! # Examples
//!
//! ```
//! use easched_core::{characterize, CharacterizationConfig, Evaluator, Objective};
//! use easched_kernels::suite;
//! use easched_sim::Platform;
//!
//! let platform = Platform::haswell_desktop();
//! let model = characterize(&platform, &CharacterizationConfig::default());
//! let ev = Evaluator::new(platform, model);
//! let c = ev.compare(suite::blackscholes_small().as_ref(), &Objective::EnergyDelay);
//! // The Oracle is the best fixed split; EAS should be close.
//! assert!(c.efficiency(c.eas) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod classify;
pub mod eas;
pub mod easruntime;
pub mod engine;
pub mod guard;
pub mod health;
pub mod journal;
pub mod kernel_table;
pub mod objective;
pub mod persist;
pub mod power_model;
mod profile_loop;
pub mod schemes;
pub mod seed;
pub mod selfheal;
pub mod shared;
pub mod tenancy;
pub mod time_model;

pub use characterize::{
    characterize, characterize_with_sweeps, fit_curve_with_r2, try_characterize,
    try_characterize_with_sweeps, try_fit_curve_with_r2, CategorySweep, CharacterizationConfig,
    CharacterizeError, SweepPoint,
};
pub use classify::{Classifier, WorkloadClass};
pub use eas::{Accumulation, AlphaSearch, Decision, EasConfig, EasScheduler};
pub use easruntime::{EasRuntime, RunOutcome};
pub use engine::{DecisionEngine, Prediction, PRIOR_WINDOW};
pub use guard::{FaultKind, ObservationGuard};
pub use health::{
    BreakerGate, BreakerState, CircuitBreaker, FaultPolicy, Health, HealthReport, HealthSnapshot,
};
pub use journal::{Recovered, StorageEvent, StoreError, StoreHealth, StoreMode, TableStore};
pub use kernel_table::{AlphaStat, KernelTable, ReuseProbe};
pub use objective::Objective;
pub use persist::{
    fnv1a64, load_model, load_model_with, load_table, load_table_with, model_from_text,
    model_to_text, save_model, save_model_with, save_table, save_table_with, table_from_text,
    table_to_text, ModelParseError,
};
pub use power_model::{PowerCurve, PowerModel};
pub use schemes::{Evaluator, SchemeResult, WorkloadComparison};
pub use seed::{RunSeed, DEFAULT_ROOT};
pub use selfheal::{
    DriftAction, DriftMonitor, DriftOutcome, DriftPolicy, Watchdog, WatchdogPolicy,
};
pub use shared::{SharedEas, SharedEasExt};
pub use tenancy::{AdmittedRequest, TenantFrontend};
pub use time_model::TimeModel;

/// The telemetry subsystem (re-exported `easched-telemetry` crate):
/// decision records, the lock-free ring sink, the metrics registry, trace
/// export, and model-drift analysis. See DESIGN.md §10.
pub use easched_telemetry as telemetry;
pub use easched_telemetry::{
    ControlEvent, DecisionRecord, InvocationPath, MetricsRegistry, NullSink, RingSink, SloConfig,
    SloEvent, SloTracker, Span, SpanKind, SpanSink, TelemetrySink,
};
