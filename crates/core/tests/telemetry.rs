//! Telemetry integration: every Figure 7 exit path emits a correctly
//! tagged [`DecisionRecord`], the disabled path stays behavior-identical,
//! and concurrent streams interleave safely into one sink (DESIGN.md §10).

use easched_core::{
    BreakerState, EasConfig, EasScheduler, InvocationPath, Objective, PowerCurve, PowerModel,
    RingSink, SharedEas, SharedEasExt, WorkloadClass,
};
use easched_num::Polynomial;
use easched_runtime::backend::test_support::FakeBackend;
use easched_runtime::chaos::{ChaosInjector, Fault, FaultPlan};
use easched_runtime::{Backend, Scheduler};
use std::collections::HashSet;
use std::sync::Arc;

fn flat_model(watts: f64) -> PowerModel {
    let curves = WorkloadClass::all()
        .into_iter()
        .map(|c| PowerCurve::new(c, Polynomial::constant(watts), 0.0, 11))
        .collect();
    PowerModel::new("flat", curves)
}

/// 100k items on a 1:2 machine: the Time objective's grid decision is
/// exactly α = 0.7.
fn fake() -> FakeBackend {
    FakeBackend::new(100_000, 1.0e6, 2.0e6)
}

fn instrumented(objective: Objective) -> (EasScheduler, Arc<RingSink>) {
    let sink = Arc::new(RingSink::with_capacity(1024));
    let mut eas = EasScheduler::new(flat_model(50.0), EasConfig::new(objective));
    eas.set_telemetry(Some(sink.clone()));
    (eas, sink)
}

#[test]
fn profiled_then_table_hit_records() {
    let (mut eas, sink) = instrumented(Objective::Time);
    let mut b = fake();
    eas.schedule(7, &mut b);
    let mut b2 = fake();
    eas.schedule(7, &mut b2);

    assert_eq!(sink.recorded(), 2);
    assert_eq!(sink.dropped(), 0);
    let records = sink.snapshot();
    assert_eq!(records.len(), 2);

    let first = &records[0];
    assert_eq!(first.path, InvocationPath::Profiled);
    assert_eq!(first.kernel, 7);
    assert_eq!(first.items, 100_000);
    assert!(first.rounds > 0, "{first:?}");
    assert!(first.class.is_some());
    assert_eq!(first.breaker, BreakerState::Closed.code());
    assert_eq!(first.last_fault, None);
    assert_eq!(first.fault_rounds, 0);
    assert!((first.alpha - 0.7).abs() < 1e-9, "{first:?}");
    // The last decision saw a 1:2 machine.
    assert!((first.r_g / first.r_c - 2.0).abs() < 0.01, "{first:?}");
    // Model predictions are pinned alongside realized observations.
    assert!(first.predicted_time > 0.0 && first.predicted_time.is_finite());
    assert_eq!(first.predicted_power, 50.0);
    assert!(first.predicted_objective > 0.0);
    assert!(first.profile_time > 0.0, "profiling phase observed");
    assert!(first.split_time > 0.0 && first.split_energy > 0.0);
    assert!(first.total_time() > first.split_time);
    assert!(first.decide_nanos > 0, "vet+decide path was timed");

    let second = &records[1];
    assert_eq!(second.path, InvocationPath::TableHit);
    assert!(second.seq > first.seq);
    assert_eq!(second.rounds, 0);
    assert_eq!(second.class, None, "no decision was made on a reuse");
    assert_eq!(second.predicted_time, 0.0, "no prediction on a reuse");
    assert!((second.alpha - 0.7).abs() < 1e-9);
    assert_eq!(second.profile_time, 0.0);
    assert!(second.split_time > 0.0);

    let m = sink.metrics();
    assert_eq!(m.invocations.get(), 2);
    assert_eq!(m.profiled.get(), 1);
    assert_eq!(m.table_hits.get(), 1);
    assert!((m.hit_rate() - 0.5).abs() < 1e-9);
    assert!(m.overhead_fraction() > 0.0);
}

#[test]
fn small_and_empty_invocations() {
    let (mut eas, sink) = instrumented(Objective::EnergyDelay);

    let mut small = FakeBackend::new(100, 1.0e6, 2.0e6);
    eas.schedule(1, &mut small);
    let mut empty = FakeBackend::new(0, 1.0e6, 2.0e6);
    eas.schedule(2, &mut empty);

    assert_eq!(sink.recorded(), 1, "empty invocations emit no record");
    let records = sink.snapshot();
    assert_eq!(records[0].path, InvocationPath::SmallN);
    assert_eq!(records[0].items, 100);
    assert_eq!(records[0].alpha, 0.0);
    assert_eq!(records[0].rounds, 0);
    assert_eq!(sink.metrics().small_n.get(), 1);
}

#[test]
fn outage_tags_degraded_quarantined_and_probe_paths() {
    // Same schedule as the chaos suite's persistent-outage test:
    // invocation 0 degrades after the retry budget, 1..=7 are gated
    // CPU-only by the open breaker, invocation 8 is the probe — still
    // dead, so it degrades again.
    let (mut eas, sink) = instrumented(Objective::Time);
    let mut injector = ChaosInjector::new(FaultPlan::GpuOutage {
        from: 0,
        until: u64::MAX,
    });
    for _ in 0..9 {
        let mut b = fake();
        let mut chaos = injector.wrap(&mut b);
        eas.schedule(7, &mut chaos);
    }

    let records = sink.snapshot();
    assert_eq!(records.len(), 9);
    assert_eq!(records[0].path, InvocationPath::Degraded);
    assert!(records[0].fault_rounds > 0, "{:?}", records[0]);
    assert!(records[0].last_fault.is_some());
    assert_eq!(records[0].alpha, 0.0, "degraded with no trusted decision");
    assert_eq!(records[0].breaker, BreakerState::Open.code());
    for r in &records[1..8] {
        assert_eq!(r.path, InvocationPath::Quarantined, "{r:?}");
        assert_eq!(r.alpha, 0.0);
        assert_eq!(r.rounds, 0);
        assert!(r.split_time > 0.0, "CPU-only remainder still ran");
    }
    assert_eq!(records[8].path, InvocationPath::Degraded, "dead probe");
    assert!(records[8].fault_rounds > 0);

    let m = sink.metrics();
    assert_eq!(m.degraded.get(), 2);
    assert_eq!(m.quarantined.get(), 7);
    // Record-granularity transitions: Closed→Open once; the probe's
    // HalfOpen excursion re-trips *within* invocation 8, so its
    // post-invocation state is Open again and no transition is visible.
    assert_eq!(m.breaker_transitions.get(), 1);
}

#[test]
fn recovered_probe_is_tagged_probe_with_prediction() {
    let (mut eas, sink) = instrumented(Objective::Time);
    let mut injector = ChaosInjector::new(FaultPlan::GpuOutage { from: 0, until: 4 });
    for _ in 0..9 {
        let mut b = fake();
        let mut chaos = injector.wrap(&mut b);
        eas.schedule(7, &mut chaos);
    }
    let records = sink.snapshot();
    assert_eq!(records.len(), 9);
    let probe = &records[8];
    assert_eq!(probe.path, InvocationPath::Probe, "{probe:?}");
    assert!(probe.rounds > 0);
    assert!(
        probe.predicted_time > 0.0,
        "probe decisions carry the model"
    );
    assert!((probe.alpha - 0.7).abs() < 1e-9, "probe relearns the ratio");
    assert_eq!(probe.breaker, BreakerState::Closed.code(), "probe healed");
    assert_eq!(sink.metrics().probes.get(), 1);
}

#[test]
fn tainted_entry_reprofile_is_tagged_reprofiled() {
    let (mut eas, sink) = instrumented(Objective::Time);
    let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::EnergyDropout)]));

    // Invocation 0: one rejected round → profiling completes but taints.
    let mut b0 = fake();
    let mut chaos = injector.wrap(&mut b0);
    eas.schedule(7, &mut chaos);
    // Invocation 1: the taint forces a re-profile instead of reuse.
    let mut b1 = fake();
    eas.schedule(7, &mut b1);

    let records = sink.snapshot();
    assert_eq!(records[0].path, InvocationPath::Profiled);
    assert_eq!(records[0].fault_rounds, 1, "{:?}", records[0]);
    assert!(records[0].last_fault.is_some());
    assert_eq!(
        records[1].path,
        InvocationPath::Reprofiled,
        "{:?}",
        records[1]
    );
    assert_eq!(records[1].fault_rounds, 0);
    assert_eq!(sink.metrics().reprofiled.get(), 1);
    assert_eq!(sink.metrics().fault_rounds.get(), 1);
}

#[test]
fn disabled_telemetry_is_behavior_identical() {
    let mut plain = EasScheduler::new(flat_model(50.0), EasConfig::new(Objective::Time));
    let (mut traced, sink) = instrumented(Objective::Time);

    for kernel in [7, 7, 8] {
        let mut a = fake();
        plain.schedule(kernel, &mut a);
        let mut b = fake();
        traced.schedule(kernel, &mut b);
        assert_eq!(a.log, b.log, "identical backend traffic for {kernel}");
    }
    assert_eq!(plain.learned_alpha(7), traced.learned_alpha(7));
    assert_eq!(plain.learned_alpha(8), traced.learned_alpha(8));
    assert_eq!(plain.decisions(), traced.decisions());
    assert_eq!(plain.decision_log(), traced.decision_log());
    assert_eq!(sink.recorded(), 3, "the sink saw every invocation");
}

#[test]
fn shared_streams_interleave_into_one_sink() {
    const STREAMS: usize = 4;
    const INVOCATIONS: usize = 8;
    let sink = Arc::new(RingSink::with_capacity(1024));
    let shared = SharedEas::with_telemetry(
        flat_model(50.0),
        EasConfig::new(Objective::Time),
        sink.clone(),
    );
    assert!(shared.telemetry().is_some());

    std::thread::scope(|s| {
        for stream in 0..STREAMS {
            let shared = Arc::clone(&shared);
            s.spawn(move || {
                let mut handle = shared.handle();
                for i in 0..INVOCATIONS {
                    let mut b = fake();
                    handle.schedule((stream * INVOCATIONS + i) as u64, &mut b);
                    assert_eq!(b.remaining(), 0);
                }
            });
        }
    });

    let total = (STREAMS * INVOCATIONS) as u64;
    assert_eq!(sink.recorded(), total);
    assert_eq!(sink.dropped(), 0);
    let records = sink.snapshot();
    assert_eq!(records.len(), total as usize);
    let seqs: HashSet<u64> = records.iter().map(|r| r.seq).collect();
    assert_eq!(seqs.len(), records.len(), "one unique seq per invocation");
    // Every kernel was first-seen on its own stream: all profiled.
    assert!(records
        .iter()
        .all(|r| r.path == InvocationPath::Profiled && (r.alpha - 0.7).abs() < 1e-9));
    assert_eq!(sink.metrics().invocations.get(), total);
    let expo = sink.metrics().expose();
    assert!(expo.contains("easched_invocations_total"), "{expo}");
}
