//! Crash-safety integration tests for the v3 table store (DESIGN.md §11):
//! the byte-offset crash-point harness, v1/v2 migration, property-based
//! torn-tail and bit-flip recovery, and a kill-9-equivalent round trip
//! through the scheduler frontend.

use easched_core::{
    characterize, AlphaStat, BreakerState, CharacterizationConfig, EasConfig, EasScheduler,
    KernelTable, Objective, PowerModel, TableStore,
};
use easched_runtime::backend::test_support::FakeBackend;
use easched_runtime::chaos::{ChaosInjector, Fault, FaultPlan};
use easched_runtime::Scheduler;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique scratch directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let path = std::env::temp_dir().join(format!(
            "easched_jrec_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn stat(alpha: f64, weight: f64, seen: u64) -> AlphaStat {
    AlphaStat {
        alpha,
        weight,
        invocations_seen: seen,
    }
}

/// Builds a store with a checkpointed base (kernels 1 and 2) and a known
/// five-record journal suffix, returning the on-disk snapshot and journal
/// bytes after the writer is gone.
fn seeded_store_files(dir: &TempDir) -> (Vec<u8>, Vec<u8>) {
    let (store, _) = TableStore::open(&dir.0).expect("fresh store");
    let table = KernelTable::new();
    table.insert(1, stat(0.1, 1.0e3, 1));
    store.record_entry(&table, 1);
    table.insert(2, stat(0.5, 2.0e3, 2));
    store.record_entry(&table, 2);
    store
        .checkpoint(&table, BreakerState::Closed)
        .expect("checkpoint");
    // Journal suffix, in order: put 3, taint 2, breaker open, put 1
    // (absolute update), breaker closed.
    table.insert(3, stat(0.3, 3.0e3, 3));
    store.record_entry(&table, 3);
    table.taint(2);
    store.record_taint(2);
    store.record_breaker(BreakerState::Open);
    table.insert(1, stat(0.9, 9.0e3, 4));
    store.record_entry(&table, 1);
    store.record_breaker(BreakerState::Closed);
    drop(store);
    let snap = fs::read(dir.0.join("table.snap")).expect("snapshot bytes");
    let journal = fs::read(dir.0.join("table.journal")).expect("journal bytes");
    (snap, journal)
}

/// Number of complete (newline-terminated) lines fully inside `len`
/// bytes of `journal`.
fn complete_lines(journal: &[u8], len: usize) -> usize {
    journal[..len].iter().filter(|&&b| b == b'\n').count()
}

#[test]
fn crash_point_harness_recovers_at_every_byte_offset() {
    let seed = TempDir::new("seed");
    let (snap, journal) = seeded_store_files(&seed);
    assert!(
        journal.len() > 100,
        "journal suspiciously small: {} bytes",
        journal.len()
    );

    for offset in 0..=journal.len() {
        let dir = TempDir::new("cut");
        fs::create_dir_all(&dir.0).unwrap();
        fs::write(dir.0.join("table.snap"), &snap).unwrap();
        fs::write(dir.0.join("table.journal"), &journal[..offset]).unwrap();

        let (store, rec) = TableStore::open(&dir.0)
            .unwrap_or_else(|e| panic!("offset {offset}: open failed: {e}"));

        // The journal's first line is its header; every complete line
        // before the cut must replay, everything after is forfeit.
        let lines = complete_lines(&journal, offset);
        let expected_replays = lines.saturating_sub(1) as u64;
        assert_eq!(
            rec.replayed, expected_replays,
            "offset {offset}: {lines} complete lines"
        );
        assert_eq!(rec.generation, 1, "offset {offset}");

        // The checkpointed base is inviolable at every offset.
        let s1 = rec.table.stat(1).expect("kernel 1 from snapshot");
        let s2 = rec.table.stat(2).expect("kernel 2 from snapshot");
        assert_eq!(s2.alpha, 0.5, "offset {offset}");

        // Replayed prefix semantics, record by record.
        let r = expected_replays;
        assert_eq!(rec.table.stat(3).is_some(), r >= 1, "offset {offset}");
        assert_eq!(rec.table.is_tainted(2), r >= 2, "offset {offset}");
        let expected_breaker = match r {
            0..=2 => BreakerState::Closed,
            3..=4 => BreakerState::Open,
            _ => BreakerState::Closed,
        };
        assert_eq!(rec.breaker, expected_breaker, "offset {offset}");
        assert_eq!(s1.alpha, if r >= 4 { 0.9 } else { 0.1 }, "offset {offset}");
        assert!(!rec.table.is_tainted(1), "offset {offset}");

        // Recovery is idempotent: the torn suffix was truncated away, so
        // a second open replays exactly the same prefix.
        drop(store);
        let (store, again) = TableStore::open(&dir.0)
            .unwrap_or_else(|e| panic!("offset {offset}: reopen failed: {e}"));
        assert_eq!(again.replayed, expected_replays, "offset {offset}: reopen");
        assert_eq!(again.discarded, 0, "offset {offset}: tail already clean");

        // And the store stays writable: append + checkpoint + reopen.
        if offset % 13 == 0 {
            again.table.insert(42, stat(0.42, 4.2e3, 1));
            store.record_entry(&again.table, 42);
            store
                .checkpoint(&again.table, again.breaker)
                .unwrap_or_else(|e| panic!("offset {offset}: checkpoint failed: {e}"));
            let (_, after) = TableStore::open(&dir.0).expect("post-checkpoint open");
            assert_eq!(after.generation, 2, "offset {offset}");
            assert_eq!(after.table.stat(42).map(|s| s.alpha), Some(0.42));
        }
    }
}

/// The crash window the checkpoint's directory fsync closes: a power
/// loss right after the snapshot rename (but before the rename's
/// directory entry hits disk) can resurrect the *old* snapshot beside
/// the *new*-generation journal. That pair is unrecoverable by design —
/// replaying a journal onto a base it never extended would fabricate
/// state — so `open` must refuse it loudly with `GenerationAhead`
/// rather than quietly resurrect a stale table. With `sync_dir` after
/// the rename (and after the journal reset) the window no longer exists
/// on a real power loss; this test pins both halves of the contract.
#[test]
fn resurrected_stale_snapshot_refuses_recovery_with_generation_ahead() {
    let dir = TempDir::new("dirsync");
    let (store, _) = TableStore::open(&dir.0).expect("fresh store");
    let table = KernelTable::new();
    table.insert(1, stat(0.1, 1.0e3, 1));
    store.record_entry(&table, 1);
    store
        .checkpoint(&table, BreakerState::Closed)
        .expect("first checkpoint");
    let stale_snapshot = fs::read(dir.0.join("table.snap")).expect("gen-1 snapshot");

    table.insert(2, stat(0.5, 2.0e3, 2));
    store.record_entry(&table, 2);
    store
        .checkpoint(&table, BreakerState::Closed)
        .expect("second checkpoint");
    drop(store);

    // Sanity: the durable (synced) pair reopens at the new generation.
    let (_, rec) = TableStore::open(&dir.0).expect("durable pair");
    assert_eq!(rec.generation, 2);
    assert!(rec.table.stat(2).is_some());

    // Simulate the pre-fsync power loss: the rename is undone (old
    // snapshot back in place) while the gen-2 journal survived.
    fs::write(dir.0.join("table.snap"), &stale_snapshot).unwrap();
    match TableStore::open(&dir.0) {
        Err(easched_core::StoreError::GenerationAhead { journal, snapshot }) => {
            assert_eq!(journal, 2);
            assert_eq!(snapshot, 1);
        }
        Ok(_) => panic!("stale snapshot + new journal must not open"),
        Err(e) => panic!("wrong error for resurrected snapshot: {e}"),
    }
}

/// Byte-offset harness over the *checkpoint* itself: whatever prefix of
/// the journal survives alongside either snapshot generation that could
/// legally be on disk (old before the rename's dir entry is durable, new
/// after), recovery either succeeds on a consistent pair or fails with
/// the typed generation error — never panics, never fabricates state.
#[test]
fn crash_point_harness_covers_the_rename_window() {
    let seed = TempDir::new("renwin");
    let (store, _) = TableStore::open(&seed.0).expect("fresh store");
    let table = KernelTable::new();
    table.insert(1, stat(0.1, 1.0e3, 1));
    store.record_entry(&table, 1);
    store
        .checkpoint(&table, BreakerState::Closed)
        .expect("checkpoint to gen 1");
    let old_snap = fs::read(seed.0.join("table.snap")).unwrap();
    table.insert(2, stat(0.7, 7.0e3, 3));
    store.record_entry(&table, 2);
    store
        .checkpoint(&table, BreakerState::Closed)
        .expect("checkpoint to gen 2");
    store.record_taint(1);
    drop(store);
    let new_snap = fs::read(seed.0.join("table.snap")).unwrap();
    let journal = fs::read(seed.0.join("table.journal")).unwrap();

    for (snap, expect_new) in [(&old_snap, false), (&new_snap, true)] {
        for offset in 0..=journal.len() {
            let dir = TempDir::new("renwinc");
            fs::create_dir_all(&dir.0).unwrap();
            fs::write(dir.0.join("table.snap"), snap).unwrap();
            fs::write(dir.0.join("table.journal"), &journal[..offset]).unwrap();
            match TableStore::open(&dir.0) {
                Ok((_, rec)) => {
                    if expect_new {
                        assert_eq!(rec.generation, 2, "offset {offset}");
                    } else {
                        // Old snapshot + a journal prefix too short to
                        // carry its gen-2 header: the journal is ignored
                        // and the gen-1 base stands alone.
                        assert_eq!(rec.generation, 1, "offset {offset}");
                        assert_eq!(rec.replayed, 0, "offset {offset}");
                    }
                }
                Err(easched_core::StoreError::GenerationAhead { journal, snapshot }) => {
                    assert!(!expect_new, "offset {offset}: durable pair must open");
                    assert_eq!((journal, snapshot), (2, 1), "offset {offset}");
                }
                Err(e) => panic!("offset {offset}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn v1_snapshot_migrates_and_reseals_as_v3() {
    let dir = TempDir::new("v1");
    fs::create_dir_all(&dir.0).unwrap();
    // The legacy v1 format: no checksum envelope, no taint, no breaker.
    fs::write(
        dir.0.join("table.snap"),
        "easched-kernel-table v1\nkernel 7 alpha 6.5e-1 weight 5e4 seen 12\n",
    )
    .unwrap();

    let (store, rec) = TableStore::open(&dir.0).expect("v1 migration");
    assert_eq!(rec.generation, 0);
    assert_eq!(rec.breaker, BreakerState::Closed);
    let s = rec.table.stat(7).expect("migrated kernel");
    assert_eq!(s.alpha, 0.65);
    assert_eq!(s.invocations_seen, 12);
    assert!(!rec.table.is_tainted(7));

    // The first checkpoint rewrites the snapshot in v3.
    rec.table.taint(7);
    store
        .checkpoint(&rec.table, BreakerState::HalfOpen)
        .expect("checkpoint");
    let text = fs::read_to_string(dir.0.join("table.snap")).unwrap();
    assert!(
        text.starts_with("easched-kernel-table v3"),
        "not resealed: {text}"
    );

    let (_, back) = TableStore::open(&dir.0).expect("v3 reopen");
    assert_eq!(back.generation, 1);
    assert_eq!(back.breaker, BreakerState::HalfOpen);
    assert!(
        back.table.is_tainted(7),
        "taint must survive the round trip"
    );
    assert_eq!(back.table.stat(7).map(|s| s.alpha), Some(0.65));
}

#[test]
fn v2_snapshot_migrates_through_the_public_text_format() {
    let dir = TempDir::new("v2");
    fs::create_dir_all(&dir.0).unwrap();
    let table = KernelTable::new();
    table.insert(11, stat(0.25, 1.5e4, 3));
    table.insert(12, stat(1.0, 2.0e4, 5));
    fs::write(
        dir.0.join("table.snap"),
        easched_core::persist::table_to_text(&table),
    )
    .unwrap();

    let (_, rec) = TableStore::open(&dir.0).expect("v2 migration");
    assert_eq!(rec.generation, 0);
    assert_eq!(rec.table.stat(11).map(|s| s.alpha), Some(0.25));
    assert_eq!(rec.table.stat(12).map(|s| s.invocations_seen), Some(5));
    assert!(!rec.table.is_tainted(11) && !rec.table.is_tainted(12));
}

fn desktop_model() -> PowerModel {
    characterize(
        &easched_sim::Platform::haswell_desktop(),
        &CharacterizationConfig {
            alpha_steps: 10,
            ..Default::default()
        },
    )
}

#[test]
fn kill_minus_nine_equivalent_restores_alpha_taint_and_breaker() {
    let dir = TempDir::new("kill9");
    let model = desktop_model();
    let config = EasConfig::new(Objective::Time);

    // Session 1: learn two kernels — one cleanly, one through a scripted
    // sensor fault so its entry ends tainted — then die without a
    // checkpoint (drop ≡ kill -9 for completed writes: nothing here
    // flushes or finalizes anything).
    let (alpha7, alpha9) = {
        let mut eas = EasScheduler::with_persistence(model.clone(), config.clone(), &dir.0)
            .expect("fresh persistent scheduler");
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        eas.schedule(7, &mut b);
        // Kernel 9's *last* invocation sees an energy dropout: profiling
        // still completes, so the entry is learned but tainted.
        let mut injector = ChaosInjector::new(FaultPlan::Scripted(vec![(0, Fault::EnergyDropout)]));
        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
        let mut chaos = injector.wrap(&mut b);
        eas.schedule(9, &mut chaos);
        assert!(eas.table().is_tainted(9), "fault must taint kernel 9");
        assert!(!eas.table().is_tainted(7));
        (
            eas.learned_alpha(7).expect("kernel 7 learned"),
            eas.learned_alpha(9).expect("kernel 9 learned"),
        )
    };

    // Session 2: a new scheduler on the same directory resumes with every
    // learned ratio and the quarantine/taint state intact.
    let eas = EasScheduler::with_persistence(model, config, &dir.0).expect("recovery");
    assert_eq!(eas.learned_alpha(7), Some(alpha7));
    assert_eq!(eas.learned_alpha(9), Some(alpha9));
    assert!(eas.table().is_tainted(9), "taint must survive kill -9");
    assert!(!eas.table().is_tainted(7));
    assert_eq!(eas.health_state().breaker().state(), BreakerState::Closed);
}

proptest! {
    /// Whatever byte length the crash left behind, recovery succeeds and
    /// yields only values some prefix of the journal actually recorded.
    #[test]
    fn torn_tails_never_break_recovery(cut in 0usize..400) {
        let seed = TempDir::new("ptorn");
        let (snap, journal) = seeded_store_files(&seed);
        let cut = cut.min(journal.len());

        let dir = TempDir::new("ptornc");
        fs::create_dir_all(&dir.0).unwrap();
        fs::write(dir.0.join("table.snap"), &snap).unwrap();
        fs::write(dir.0.join("table.journal"), &journal[..cut]).unwrap();

        let (_, rec) = TableStore::open(&dir.0).expect("torn tail must recover");
        prop_assert_eq!(rec.generation, 1);
        // Kernel 1 only ever held alpha 0.1 (snapshot) or 0.9 (journal).
        let a1 = rec.table.stat(1).expect("kernel 1").alpha;
        prop_assert!(a1 == 0.1 || a1 == 0.9);
        for (_, s, _) in rec.table.snapshot_with_taint() {
            prop_assert!((0.0..=1.0).contains(&s.alpha));
            prop_assert!(s.weight.is_finite() && s.weight >= 0.0);
        }
    }

    /// A flipped bit anywhere in the journal is detected by the per-line
    /// digest: recovery still succeeds and never surfaces a corrupted
    /// value — only states that were genuinely written.
    #[test]
    fn bit_flips_never_surface_corrupt_values(pos in 0usize..400, bit in 0u8..8) {
        let seed = TempDir::new("pflip");
        let (snap, mut journal) = seeded_store_files(&seed);
        let pos = pos.min(journal.len() - 1);
        journal[pos] ^= 1 << bit;

        let dir = TempDir::new("pflipc");
        fs::create_dir_all(&dir.0).unwrap();
        fs::write(dir.0.join("table.snap"), &snap).unwrap();
        fs::write(dir.0.join("table.journal"), &journal).unwrap();

        let (_, rec) = TableStore::open(&dir.0).expect("bit flip must recover");
        prop_assert_eq!(rec.generation, 1);
        let a1 = rec.table.stat(1).expect("kernel 1").alpha;
        prop_assert!(a1 == 0.1 || a1 == 0.9);
        if let Some(s3) = rec.table.stat(3) {
            prop_assert_eq!(s3.alpha, 0.3);
        }
        let a2 = rec.table.stat(2).expect("kernel 2").alpha;
        prop_assert_eq!(a2, 0.5);
    }
}
