//! Concurrency stress for the multi-tenant frontend: eight tenant
//! threads drive one `TenantFrontend` over one `Arc<SharedEas>`.
//! Admission accounting must stay consistent under races, queues must
//! respect their bounds, and kernel execution — which runs outside the
//! admission lock — must still converge the shared table exactly like
//! the tenancy-free stress test does.

use easched_core::{
    EasConfig, Objective, PowerCurve, PowerModel, SharedEas, TenantFrontend, WorkloadClass,
};
use easched_num::Polynomial;
use easched_runtime::backend::test_support::FakeBackend;
use easched_runtime::{AdmissionConfig, AdmissionOutcome, Backend, TenantRegistry, TenantSpec};
use std::sync::Arc;

const THREADS: usize = 8;
const ROUNDS: usize = 40;

fn flat_model(watts: f64) -> PowerModel {
    let curves = WorkloadClass::all()
        .into_iter()
        .map(|c| PowerCurve::new(c, Polynomial::constant(watts), 0.0, 11))
        .collect();
    PowerModel::new("flat", curves)
}

fn frontend() -> Arc<TenantFrontend> {
    let shared = SharedEas::new(flat_model(50.0), EasConfig::new(Objective::Time));
    let tenants = (0..THREADS)
        .map(|t| TenantSpec::new(format!("t{t}"), 1.0).with_queue_cap(4))
        .collect();
    Arc::new(TenantFrontend::new(
        shared,
        TenantRegistry::new(tenants),
        AdmissionConfig::default(),
    ))
}

#[test]
fn eight_tenant_threads_keep_admission_consistent() {
    let frontend = frontend();
    std::thread::scope(|s| {
        for tenant in 0..THREADS {
            let frontend = Arc::clone(&frontend);
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    let outcome = frontend.offer(tenant);
                    assert!(
                        matches!(
                            outcome,
                            AdmissionOutcome::Admit { .. }
                                | AdmissionOutcome::Queue { .. }
                                | AdmissionOutcome::Shed { .. }
                        ),
                        "offers always resolve to a typed outcome"
                    );
                    // Each thread drains one slot and executes whatever
                    // tenant's request it won — execution happens outside
                    // the admission lock, on the shared table.
                    for (winner, _ticket) in frontend.drain(1) {
                        let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
                        frontend.schedule(winner, 7, &mut b);
                        assert_eq!(b.remaining(), 0, "request must drain its backend");
                        frontend.complete(winner, 0.005);
                    }
                }
            });
        }
    });

    assert!(frontend.queues_bounded(), "caps hold under racing offers");
    let mut executed = 0.0;
    for t in 0..THREADS {
        let st = frontend.tenant_stats(t);
        assert_eq!(
            st.offered,
            st.admitted + st.queued + st.shed,
            "tenant {t}: every offer is admitted, queued, or shed"
        );
        assert_eq!(st.offered, ROUNDS as u64);
        executed += st.gpu_seconds;
    }
    assert!(executed > 0.0, "some requests must have executed");

    // The shared table saw only real executions: a single learned alpha,
    // exactly as the tenancy-free path would produce it.
    assert!(frontend.shared().learned_alpha(7).is_some());
}
