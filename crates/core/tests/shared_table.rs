//! Stress tests for the shared kernel table: N workload streams driving
//! one `Arc<SharedEas>` must converge to a single learned α, lose no
//! accumulated weight, and reuse each other's profiling work.

use easched_core::{
    Accumulation, EasConfig, EasRuntime, EasScheduler, Objective, PowerCurve, PowerModel,
    SharedEas, SharedEasExt, WorkloadClass,
};
use easched_kernels::suite;
use easched_num::Polynomial;
use easched_runtime::backend::test_support::FakeBackend;
use easched_runtime::{Backend, Scheduler};
use easched_sim::Platform;
use std::sync::Arc;

const THREADS: usize = 8;

fn flat_model(watts: f64) -> PowerModel {
    let curves = WorkloadClass::all()
        .into_iter()
        .map(|c| PowerCurve::new(c, Polynomial::constant(watts), 0.0, 11))
        .collect();
    PowerModel::new("flat", curves)
}

fn config() -> EasConfig {
    let mut cfg = EasConfig::new(Objective::Time);
    // Keep the accumulation count analyzable: only first-seen profiling
    // passes write to the table, reuse never does.
    cfg.reprofile_every = None;
    cfg
}

/// Eight threads hammer the same kernel through one shared table. Every
/// stream must drain its backend, and the table must end with exactly the
/// α a single-threaded run learns: profiling passes are deterministic on
/// the fake backend, so every accumulated sample carries the same α and
/// the sample-weighted mean is that α bit-for-bit. The final weight must
/// be a whole number of per-pass contributions — between 1 (first writer
/// won every race) and 8 (all streams profiled before any table hit).
#[test]
fn eight_streams_converge_to_one_alpha() {
    // Single-threaded reference: one profiling pass's α and weight.
    let mut reference = EasScheduler::new(flat_model(50.0), config());
    let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
    reference.schedule(7, &mut b);
    let ref_alpha = reference.learned_alpha(7).unwrap();
    let per_pass_weight = reference.table().stat(7).unwrap().weight;
    assert!(per_pass_weight > 0.0);

    let shared = SharedEas::new(flat_model(50.0), config());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let shared = Arc::clone(&shared);
            s.spawn(move || {
                let mut handle = shared.handle();
                for _ in 0..50 {
                    let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
                    handle.schedule(7, &mut b);
                    assert_eq!(b.remaining(), 0, "stream must drain its invocation");
                }
            });
        }
    });

    let stat = shared.table().stat(7).unwrap();
    assert_eq!(
        stat.alpha, ref_alpha,
        "all samples carry the same α, so the weighted mean is exact"
    );
    // Weight is the sum of the contributions that actually accumulated:
    // an integral number of identical profiling passes, at least one and
    // at most one per stream.
    let passes = stat.weight / per_pass_weight;
    assert!(
        (passes - passes.round()).abs() < 1e-9,
        "weight {} is not a whole number of {}-weight passes",
        stat.weight,
        per_pass_weight
    );
    let passes = passes.round() as usize;
    assert!(
        (1..=THREADS).contains(&passes),
        "expected 1..={THREADS} profiling passes, got {passes}"
    );
    // Reuse-path bookkeeping: every non-profiling invocation was counted.
    assert_eq!(
        stat.invocations_seen as usize + passes,
        THREADS * 50,
        "every invocation either profiled or was counted as reuse"
    );
}

/// Concurrent sample-weighted accumulation through the shared handle loses
/// no weight: the final weight is exactly the sum of all contributions.
#[test]
fn accumulated_weight_is_sum_of_contributions() {
    let shared = SharedEas::new(flat_model(50.0), config());
    let per_thread = 1_000u64;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let shared = Arc::clone(&shared);
            s.spawn(move || {
                let alpha = if t % 2 == 0 { 1.0 } else { 0.0 };
                for _ in 0..per_thread {
                    shared
                        .table()
                        .accumulate(42, alpha, 1.0, Accumulation::SampleWeighted);
                }
            });
        }
    });
    let stat = shared.table().stat(42).unwrap();
    assert_eq!(stat.weight, (THREADS as u64 * per_thread) as f64);
    // Half the weight at α=1, half at α=0 → weighted mean exactly 0.5.
    assert!((stat.alpha - 0.5).abs() < 1e-12, "alpha {}", stat.alpha);
}

/// The full stack: eight `EasRuntime`s (one simulated machine each) share
/// one scheduler. All workloads must verify, and sharing must not *add*
/// profiling work compared to eight isolated runtimes.
#[test]
fn eight_shared_runtimes_run_real_workloads() {
    let mut platform = Platform::haswell_desktop();
    platform.pcu.measurement_noise = 0.0;
    let model = easched_core::characterize(
        &platform,
        &easched_core::CharacterizationConfig {
            alpha_steps: 10,
            ..Default::default()
        },
    );

    // Isolated baseline: decisions one stream needs on its own.
    let mut solo = EasRuntime::new(
        platform.clone(),
        model.clone(),
        EasConfig::new(Objective::EnergyDelay),
    );
    solo.run(suite::mandelbrot_small().as_ref());
    let solo_decisions = solo.scheduler().decisions();

    let shared = SharedEas::new(model, EasConfig::new(Objective::EnergyDelay));
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let shared = Arc::clone(&shared);
            let platform = platform.clone();
            s.spawn(move || {
                let mut rt = EasRuntime::with_shared(platform, shared);
                let out = rt.run(suite::mandelbrot_small().as_ref());
                assert!(out.verification.is_passed());
            });
        }
    });

    let kernel = easched_runtime::kernel_id_of(suite::mandelbrot_small().as_ref());
    assert!(shared.learned_alpha(kernel).is_some());
    assert!(
        shared.decisions() <= solo_decisions * THREADS as u64,
        "sharing must not add profiling work: {} > {} × {THREADS}",
        shared.decisions(),
        solo_decisions
    );
}
