//! Storage chaos harness (DESIGN.md §16): an injected fault at *every*
//! operation index of a scripted store workload, for every fault class,
//! must never panic, never corrupt recoverable state, and never stop a
//! later clean-disk life from appending and checkpointing again. A
//! second suite drives the full scheduler frontend through a write-fault
//! storm and asserts decisions keep full fidelity (`fault_free()` stays
//! true — a broken disk degrades durability, not scheduling). The
//! property test is the checkpoint half: a fault at any point during
//! snapshot write / fsync / rename leaves the previous snapshot and
//! journal fully loadable.

use easched_core::{
    characterize, AlphaStat, BreakerState, CharacterizationConfig, EasConfig, EasScheduler,
    KernelTable, Objective, TableStore,
};
use easched_runtime::backend::test_support::FakeBackend;
use easched_runtime::vfs::{ChaosFs, ChaosFsPlan, StorageFault, Vfs};
use easched_runtime::{Scheduler, TickClock};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A unique scratch directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let path = std::env::temp_dir().join(format!(
            "easched_schaos_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn stat(alpha: f64, weight: f64, seen: u64) -> AlphaStat {
    AlphaStat {
        alpha,
        weight,
        invocations_seen: seen,
    }
}

fn chaos(plan: ChaosFsPlan) -> ChaosFs {
    ChaosFs::new(0xC4A05, plan, Arc::new(TickClock::new()))
}

/// Every fault class the store's write path can meet. `Latency` is
/// excluded on purpose: it never fails an operation, so it cannot
/// change recoverable state.
const FAULTS: [StorageFault; 4] = [
    StorageFault::Enospc,
    StorageFault::Eio,
    StorageFault::ShortWrite,
    StorageFault::FsyncFail,
];

/// The scripted store workload: open, two entries, a checkpoint, a
/// taint, a breaker flip, a third entry, a final checkpoint. Exercises
/// every public mutation the scheduler's hot path uses. Must never
/// panic, whatever the vfs injects; checkpoints may honestly `Err`.
///
/// Returns `None` when open itself met an injected honest error (a
/// faulted snapshot read) — nothing further to script in that life.
fn scripted_workload(dir: &Path, vfs: Arc<dyn Vfs>) -> Option<(bool, bool)> {
    let (store, _) = TableStore::open_with(dir, vfs).ok()?;
    let table = KernelTable::new();
    table.insert(1, stat(0.25, 1.0e3, 3));
    store.record_entry(&table, 1);
    table.insert(2, stat(0.75, 2.0e3, 5));
    store.record_entry(&table, 2);
    let ck1 = store.checkpoint(&table, BreakerState::Closed).is_ok();
    table.taint(2);
    store.record_taint(2);
    store.record_breaker(BreakerState::Open);
    table.insert(3, stat(0.5, 3.0e3, 1));
    store.record_entry(&table, 3);
    let ck2 = store.checkpoint(&table, BreakerState::Open).is_ok();
    Some((ck1, ck2))
}

/// Asserts a recovered table holds only values the script actually
/// wrote — a faulted life may lose a suffix, never invent or corrupt.
fn assert_recovered_consistent(rec: &easched_core::Recovered, context: &str) {
    for (kernel, s, _) in rec.table.snapshot_with_taint() {
        assert!(
            s.alpha.is_finite() && (0.0..=1.0).contains(&s.alpha),
            "{context}: kernel {kernel} alpha {} out of range",
            s.alpha
        );
        assert!(
            s.weight.is_finite() && s.weight > 0.0,
            "{context}: kernel {kernel} weight {} corrupt",
            s.weight
        );
        let expected = match kernel {
            1 => stat(0.25, 1.0e3, 3),
            2 => stat(0.75, 2.0e3, 5),
            3 => stat(0.5, 3.0e3, 1),
            4 => stat(0.4, 4.0e3, 2),
            other => panic!("{context}: recovered kernel {other} was never written"),
        };
        assert_eq!(
            (s.alpha, s.weight, s.invocations_seen),
            (expected.alpha, expected.weight, expected.invocations_seen),
            "{context}: kernel {kernel} value drifted"
        );
    }
}

/// The tentpole: sweep one injected fault across *every* operation
/// index of the scripted workload, for every fault class. Each (op,
/// fault) life must (a) not panic, (b) leave state a plain `StdFs`
/// reopen recovers clean, and (c) not poison the *next* clean-disk
/// life: appends and a checkpoint must re-arm durability.
#[test]
fn every_fault_point_recovers_and_rearms() {
    // First, count the workload's clean-run operation footprint so the
    // sweep provably covers every index (plus slack for the extra ops
    // fault-recovery paths themselves perform).
    let probe = TempDir::new("probe");
    let fs_probe = chaos(ChaosFsPlan::default());
    let clean = scripted_workload(&probe.0, Arc::new(fs_probe.clone()));
    assert_eq!(clean, Some((true, true)), "zero-rate plan must be clean");
    let total_ops = fs_probe.op_count();
    assert!(
        total_ops > 10,
        "scripted workload too small: {total_ops} ops"
    );

    for fault in FAULTS {
        for op in 0..total_ops + 4 {
            let context = format!("fault {fault:?} at op {op}");
            let dir = TempDir::new("sweep");

            // Life 1: the faulted run. Any outcome but a panic is legal.
            let outcome = scripted_workload(&dir.0, Arc::new(chaos(ChaosFsPlan::at(op, fault))));

            // Whatever happened, a plain reopen must recover something
            // consistent (possibly empty — the fault may have killed
            // the very first create).
            let (_, rec) = TableStore::open(&dir.0)
                .unwrap_or_else(|e| panic!("{context}: StdFs reopen failed: {e}"));
            assert_recovered_consistent(&rec, &context);
            if outcome == Some((true, true)) {
                // Both checkpoints succeeded: the final snapshot is the
                // full table, nothing may be missing.
                assert_eq!(
                    rec.table.snapshot_with_taint().len(),
                    3,
                    "{context}: clean checkpoints must persist all three kernels"
                );
                assert!(rec.table.is_tainted(2), "{context}: taint lost");
            }
            drop(rec);

            // Life 2: the disk is healthy again. The store must append
            // and checkpoint — degradation never outlives the fault.
            let (store, rec) = TableStore::open(&dir.0)
                .unwrap_or_else(|e| panic!("{context}: clean reopen failed: {e}"));
            let table = rec.table;
            table.insert(4, stat(0.4, 4.0e3, 2));
            store.record_entry(&table, 4);
            store
                .checkpoint(&table, BreakerState::Closed)
                .unwrap_or_else(|e| panic!("{context}: clean-disk checkpoint failed: {e}"));
            assert!(
                !store.is_degraded(),
                "{context}: still degraded on a healthy disk"
            );
            drop(store);

            let (_, rec) = TableStore::open(&dir.0).expect("final reopen");
            assert_eq!(
                rec.table.stat(4).map(|s| s.invocations_seen),
                Some(2),
                "{context}: post-fault append lost"
            );
            assert_recovered_consistent(&rec, &context);
        }
    }
}

/// The storm: high write-side fault rates while the full scheduler
/// frontend profiles and decides. Decisions must match a chaos-free
/// run bit-for-bit, `fault_free()` must stay true, and the absorbed
/// faults must be visible in the store-health counters — not the
/// scheduler fault plane.
#[test]
fn scheduler_decides_at_full_fidelity_through_a_write_fault_storm() {
    let model = characterize(
        &easched_sim::Platform::haswell_desktop(),
        &CharacterizationConfig {
            alpha_steps: 10,
            ..Default::default()
        },
    );
    let config = EasConfig::new(Objective::Time);

    // Reference life: same workload on a quiet disk.
    let quiet = TempDir::new("quiet");
    let mut reference = EasScheduler::with_persistence(model.clone(), config.clone(), &quiet.0)
        .expect("quiet open");
    let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
    reference.schedule(7, &mut b);
    let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
    reference.schedule(9, &mut b);

    // Storm life: 400‰ ENOSPC, 200‰ torn writes and fsync failures.
    let dir = TempDir::new("storm");
    let fs = chaos(ChaosFsPlan::storm(400));
    let mut eas = EasScheduler::with_persistence_vfs(model, config, &dir.0, Arc::new(fs.clone()))
        .expect("storm open (storm plans never fault reads)");
    let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
    eas.schedule(7, &mut b);
    let mut b = FakeBackend::new(100_000, 1.0e6, 2.0e6);
    eas.schedule(9, &mut b);

    assert_eq!(
        eas.learned_alpha(7),
        reference.learned_alpha(7),
        "storm must not change what the scheduler learns"
    );
    assert_eq!(eas.learned_alpha(9), reference.learned_alpha(9));

    let health = eas.health();
    assert!(
        health.fault_free(),
        "storage faults must not trip the scheduler fault plane: {health:?}"
    );
    assert!(
        fs.faults_injected() > 0,
        "storm at 400\u{2030} injected nothing — the seam is not being exercised"
    );
    assert_eq!(
        health.store_io_errors,
        eas.store().expect("persistent").health().io_errors,
        "report must carry the store's own counter"
    );
    assert!(
        health.store_io_errors > 0,
        "absorbed faults must be visible in store health"
    );

    // The faulted store still recovers everything that reached disk —
    // and once the weather clears, a checkpoint makes it all durable.
    let store = eas.store().expect("persistent").clone();
    let table = eas.table();
    while store.checkpoint(table, BreakerState::Closed).is_err() {
        // Each retry advances the fault stream; the storm is 400‰, so
        // this terminates fast.
    }
    drop(eas);
    let (_, rec) = TableStore::open(&dir.0).expect("post-storm recovery");
    assert!(
        rec.table.stat(7).is_some(),
        "kernel 7 must survive the storm once checkpointed"
    );
    assert!(rec.table.stat(9).is_some());
}

/// Degrade-to-memory endurance: a disk that is *permanently* broken
/// (every write-side op faults) must leave the scheduler deciding and
/// the process alive for an arbitrarily long run, with buffering
/// bounded.
#[test]
fn permanently_broken_disk_never_panics_and_bounds_buffering() {
    let dir = TempDir::new("deaddisk");
    // Seed a valid store first so open has a snapshot to read.
    {
        let (store, _) = TableStore::open(&dir.0).expect("seed");
        let table = KernelTable::new();
        table.insert(1, stat(0.25, 1.0e3, 3));
        store.record_entry(&table, 1);
        store
            .checkpoint(&table, BreakerState::Closed)
            .expect("seed ckpt");
    }
    let plan = ChaosFsPlan {
        enospc_per_mille: 1000,
        short_write_per_mille: 0,
        fsync_fail_per_mille: 1000,
        ..ChaosFsPlan::default()
    };
    let (store, rec) = TableStore::open_with(&dir.0, Arc::new(chaos(plan)))
        .expect("open degrades, never errors, on write-side faults");
    let table = rec.table;
    for i in 0..5_000u64 {
        table.insert(100 + i, stat(0.5, 1.0e3, 1));
        store.record_entry(&table, 100 + i);
    }
    assert!(
        store.is_degraded(),
        "an all-faults disk must degrade the store"
    );
    let health = store.health();
    assert!(health.io_errors > 0);
    assert!(
        health.buffered <= 1024,
        "RAM buffering must stay bounded: {} lines held",
        health.buffered
    );
    assert!(
        health.buffered_dropped > 0,
        "5000 appends through a 1024-line buffer must have dropped"
    );
    // The seeded durable state is untouched by the whole ordeal.
    drop(store);
    let (_, rec) = TableStore::open(&dir.0).expect("reopen");
    assert_eq!(rec.table.stat(1).map(|s| s.alpha), Some(0.25));
}

proptest! {
    /// Satellite 3: a fault injected at *any* operation index during a
    /// checkpoint (snapshot create, write, fsync, rename, dir sync,
    /// journal reset) leaves the previous snapshot + journal fully
    /// loadable — the old state or the new state, never neither, never
    /// a blend with invented values.
    #[test]
    fn checkpoint_fault_leaves_previous_state_loadable(
        op in 0u64..32,
        which in 0usize..4,
    ) {
        let fault = FAULTS[which];
        let dir = TempDir::new("pckpt");

        // Durable baseline: snapshot generation 1 holding kernels 1+2,
        // then a journal suffix adding kernel 3 and tainting kernel 2.
        {
            let (store, _) = TableStore::open(&dir.0).expect("seed open");
            let table = KernelTable::new();
            table.insert(1, stat(0.1, 1.0e3, 1));
            store.record_entry(&table, 1);
            table.insert(2, stat(0.5, 2.0e3, 2));
            store.record_entry(&table, 2);
            store.checkpoint(&table, BreakerState::Closed).expect("seed ckpt");
            table.insert(3, stat(0.3, 3.0e3, 3));
            store.record_entry(&table, 3);
            table.taint(2);
            store.record_taint(2);
        }

        // Faulted life: reopen through the chaos lens and checkpoint.
        // The open's reads land before `op` draws may fire on them —
        // storm-free `at` plans only fire at exactly one index, so any
        // op of the open+checkpoint sequence can be the victim.
        if let Ok((store, rec)) =
            TableStore::open_with(&dir.0, Arc::new(chaos(ChaosFsPlan::at(op, fault))))
        {
            let _ = store.checkpoint(&rec.table, BreakerState::Closed);
        }

        // The store must load: old state or new, both carry all three
        // kernels and the taint (the seed checkpoint preceded nothing
        // that could lose them).
        let (_, rec) = TableStore::open(&dir.0).expect("previous state must stay loadable");
        prop_assert_eq!(rec.table.stat(1).map(|s| s.alpha), Some(0.1));
        prop_assert_eq!(rec.table.stat(2).map(|s| s.alpha), Some(0.5));
        prop_assert_eq!(rec.table.stat(3).map(|s| s.alpha), Some(0.3));
        prop_assert!(rec.table.is_tainted(2), "taint must survive a faulted checkpoint");
        prop_assert!(!rec.table.is_tainted(1));
        prop_assert!(!rec.table.is_tainted(3));
    }
}
