//! Edge-case integration tests for the EAS scheduler against the simulated
//! machine.

use easched_core::{
    characterize, AlphaSearch, CharacterizationConfig, EasConfig, EasScheduler, Objective,
    PowerModel,
};
use easched_kernels::InvocationTrace;
use easched_runtime::replay_trace;
use easched_sim::{KernelTraits, Machine, Platform};
use std::sync::Arc;

fn model() -> (Platform, PowerModel) {
    let platform = Platform::haswell_desktop();
    let model = characterize(
        &platform,
        &CharacterizationConfig {
            alpha_steps: 10,
            ..Default::default()
        },
    );
    (platform, model)
}

fn traits() -> KernelTraits {
    KernelTraits::builder("edge")
        .cpu_rate(2.0e6)
        .gpu_rate(5.0e6)
        .memory_intensity(0.1)
        .build()
}

fn run_with(config: EasConfig) -> (f64, f64, Option<f64>) {
    let (platform, model) = model();
    let mut eas = EasScheduler::new(model, config);
    let mut machine = Machine::new(platform);
    let trace = InvocationTrace {
        sizes: vec![400_000; 3],
    };
    let m = replay_trace(&mut machine, &traits(), 1, &trace, &mut eas);
    (m.time, m.energy_joules, eas.learned_alpha(1))
}

#[test]
fn golden_section_agrees_with_grid() {
    let grid = run_with(EasConfig::new(Objective::EnergyDelay));
    let mut cfg = EasConfig::new(Objective::EnergyDelay);
    cfg.alpha_search = AlphaSearch::GoldenSection { tol: 1e-5 };
    let golden = run_with(cfg);
    let (a, b) = (grid.2.unwrap(), golden.2.unwrap());
    assert!(
        (a - b).abs() <= 0.1 + 1e-9,
        "grid α {a} vs golden α {b} should agree within one grid step"
    );
}

#[test]
fn custom_objective_drives_decisions() {
    // An extreme power-phobic metric should offload everything to the
    // cheaper GPU.
    let mut cfg = EasConfig::new(Objective::Custom {
        name: "P^4",
        f: Arc::new(|p, _t| p.powi(4)),
    });
    cfg.reprofile_every = None;
    let (_, _, alpha) = run_with(cfg);
    assert!(alpha.unwrap() > 0.85, "power-phobic α {alpha:?}");
}

#[test]
fn profile_everything_still_terminates() {
    let mut cfg = EasConfig::new(Objective::EnergyDelay);
    cfg.profile_fraction = 1.0;
    cfg.profile_stable_rounds = 0; // no early stop
    let (time, energy, alpha) = run_with(cfg);
    assert!(time > 0.0 && energy > 0.0);
    assert!(alpha.is_some());
}

#[test]
#[should_panic(expected = "profile_fraction must be in (0, 1]")]
fn zero_profile_fraction_rejected() {
    let (_, model) = model();
    let mut cfg = EasConfig::new(Objective::EnergyDelay);
    cfg.profile_fraction = 0.0;
    let _ = EasScheduler::new(model, cfg);
}

#[test]
fn extreme_classifier_thresholds_still_schedule() {
    for (mem, short) in [(0.0, 1e-9), (1.0, 1e9)] {
        let mut cfg = EasConfig::new(Objective::EnergyDelay);
        cfg.classifier = easched_core::Classifier {
            memory_threshold: mem,
            short_threshold: short,
        };
        let (time, ..) = run_with(cfg);
        assert!(time > 0.0);
    }
}

#[test]
fn single_item_invocations_all_cpu() {
    let (platform, model) = model();
    let mut eas = EasScheduler::new(model, EasConfig::new(Objective::EnergyDelay));
    let mut machine = Machine::new(platform);
    let trace = InvocationTrace { sizes: vec![1; 50] };
    let m = replay_trace(&mut machine, &traits(), 1, &trace, &mut eas);
    assert_eq!(m.items, 50);
    // All below GPU_PROFILE_SIZE → learned ratio stays 0.
    assert_eq!(eas.learned_alpha(1), Some(0.0));
}

#[test]
fn distinct_kernels_learn_distinct_ratios() {
    let (platform, model) = model();
    let mut eas = EasScheduler::new(model, EasConfig::new(Objective::EnergyDelay));
    let mut machine = Machine::new(platform);
    let gpu_friendly = KernelTraits::builder("g")
        .cpu_rate(1.0e6)
        .gpu_rate(8.0e6)
        .build();
    let cpu_friendly = KernelTraits::builder("c")
        .cpu_rate(8.0e6)
        .gpu_rate(1.0e6)
        .build();
    let trace = InvocationTrace {
        sizes: vec![400_000; 2],
    };
    replay_trace(&mut machine, &gpu_friendly, 1, &trace, &mut eas);
    replay_trace(&mut machine, &cpu_friendly, 2, &trace, &mut eas);
    let a1 = eas.learned_alpha(1).unwrap();
    let a2 = eas.learned_alpha(2).unwrap();
    assert!(a1 > 0.7, "gpu-friendly kernel α {a1}");
    assert!(a2 < 0.3, "cpu-friendly kernel α {a2}");
}

#[test]
fn ed2_objective_prefers_speed_over_energy() {
    // ED² weighs time harder than energy does, so its choice must run at
    // least as fast (here: hybrid beats the GPU-alone split energy picks).
    let mut cfg_e = EasConfig::new(Objective::Energy);
    cfg_e.reprofile_every = None;
    let (time_e, energy_e, _) = run_with(cfg_e);
    let mut cfg_ed2 = EasConfig::new(Objective::EnergyDelaySquared);
    cfg_ed2.reprofile_every = None;
    let (time_ed2, energy_ed2, _) = run_with(cfg_ed2);
    assert!(
        time_ed2 <= time_e * 1.02,
        "ED² time {time_ed2} vs energy-objective time {time_e}"
    );
    // And the energy objective must not burn more joules than ED²'s pick.
    assert!(
        energy_e <= energy_ed2 * 1.02,
        "energy {energy_e} vs ED² energy {energy_ed2}"
    );
}
