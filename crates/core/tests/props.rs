//! Property-based tests for the scheduler's analytical models.

use easched_core::{Classifier, Objective, TimeModel, WorkloadClass};
use easched_runtime::Observation;
use easched_sim::CounterSnapshot;
use proptest::prelude::*;

proptest! {
    /// T(α) is minimized at α_PERF (Equation 2 is the argmin of Equation 4).
    #[test]
    fn alpha_perf_minimizes_time(
        r_c in 1e3..1e8f64,
        r_g in 1e3..1e8f64,
        n in 1u64..10_000_000,
    ) {
        let m = TimeModel::new(r_c, r_g);
        let t_opt = m.total_time(m.alpha_perf(), n);
        for i in 0..=20 {
            let a = i as f64 / 20.0;
            prop_assert!(m.total_time(a, n) >= t_opt * (1.0 - 1e-12));
        }
    }

    /// The combined phase never exceeds the total (Eq 1 vs Eq 4) and both
    /// scale linearly in N.
    #[test]
    fn combined_phase_bounds_and_scaling(
        r_c in 1e3..1e8f64,
        r_g in 1e3..1e8f64,
        alpha_step in 0usize..=10,
        n in 1u64..1_000_000,
    ) {
        let alpha = alpha_step as f64 / 10.0;
        let m = TimeModel::new(r_c, r_g);
        prop_assert!(m.combined_time(alpha, n) <= m.total_time(alpha, n) + 1e-12);
        let t1 = m.total_time(alpha, n);
        let t2 = m.total_time(alpha, 2 * n);
        prop_assert!((t2 - 2.0 * t1).abs() < 1e-9 * (1.0 + t1.abs()) * 2e6);
    }

    /// Endpoint times equal single-device times.
    #[test]
    fn endpoints_are_solo_times(r_c in 1e3..1e8f64, r_g in 1e3..1e8f64, n in 1u64..1_000_000) {
        let m = TimeModel::new(r_c, r_g);
        prop_assert!((m.total_time(0.0, n) - n as f64 / r_c).abs() < 1e-6 * (n as f64 / r_c));
        prop_assert!((m.total_time(1.0, n) - n as f64 / r_g).abs() < 1e-6 * (n as f64 / r_g));
    }

    /// Objectives are positive, monotone in both power and time.
    #[test]
    fn objectives_monotone(p in 0.1..200.0f64, t in 0.001..100.0f64, dp in 0.1..10.0f64, dt in 0.001..10.0f64) {
        for obj in [Objective::Energy, Objective::EnergyDelay, Objective::EnergyDelaySquared] {
            let base = obj.evaluate(p, t);
            prop_assert!(base > 0.0);
            prop_assert!(obj.evaluate(p + dp, t) > base);
            prop_assert!(obj.evaluate(p, t + dt) > base);
        }
        prop_assert!((Objective::Time.evaluate(p, t) - t).abs() < 1e-12);
    }

    /// `of_totals` is consistent with `evaluate` at the implied power.
    #[test]
    fn of_totals_consistent(e in 0.1..1e5f64, t in 0.001..1e3f64) {
        for obj in [Objective::Energy, Objective::EnergyDelay, Objective::Time] {
            let via_totals = obj.of_totals(e, t);
            let via_power = obj.evaluate(e / t, t);
            prop_assert!((via_totals - via_power).abs() < 1e-9 * (1.0 + via_power.abs()));
        }
    }

    /// Class index roundtrips and classification respects its thresholds.
    #[test]
    fn classification_thresholds(
        miss_ratio in 0.0..1.0f64,
        cpu_rate in 1e3..1e8f64,
        gpu_rate in 1e3..1e8f64,
        n in 1u64..10_000_000,
    ) {
        let c = Classifier::default();
        let obs = Observation {
            cpu_items: (cpu_rate * 0.01) as u64,
            gpu_items: (gpu_rate * 0.01) as u64,
            cpu_time: 0.01,
            gpu_time: 0.01,
            counters: CounterSnapshot {
                instructions: 1e6,
                loads: 1e5,
                l3_misses: 1e5 * miss_ratio,
            },
            ..Default::default()
        };
        prop_assume!(obs.cpu_items > 0 && obs.gpu_items > 0);
        let class = c.classify(&obs, n);
        prop_assert_eq!(class.memory_bound, miss_ratio > c.memory_threshold);
        prop_assert_eq!(class.cpu_short, n as f64 / obs.cpu_rate() <= c.short_threshold);
        prop_assert_eq!(class.gpu_short, n as f64 / obs.gpu_rate() <= c.short_threshold);
        prop_assert_eq!(WorkloadClass::from_index(class.index()), class);
    }
}

mod persist_props {
    use easched_core::persist::{
        model_from_text, model_to_text, table_from_text, table_to_text, ModelParseError,
    };
    use easched_core::{Accumulation, KernelTable, PowerCurve, PowerModel, WorkloadClass};
    use easched_num::Polynomial;
    use proptest::prelude::*;

    fn sample_model() -> PowerModel {
        let curves: Vec<PowerCurve> = WorkloadClass::all()
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                PowerCurve::new(
                    c,
                    Polynomial::new(vec![30.0 + i as f64, -0.5, 2.25]),
                    0.1 * i as f64,
                    21,
                )
            })
            .collect();
        PowerModel::new("prop-platform", curves)
    }

    fn sample_table() -> KernelTable {
        let t = KernelTable::new();
        t.accumulate(3, 0.25, 1_000.0, Accumulation::SampleWeighted);
        t.accumulate(7, 2.0 / 3.0, 50_000.0, Accumulation::SampleWeighted);
        t.accumulate(900, 1.0, 1e9, Accumulation::SampleWeighted);
        t.note_reuse(7);
        t
    }

    /// Byte offset where the trailing checksum line starts (exclusive end
    /// of the digest-covered region).
    fn covered_len(text: &str) -> usize {
        text.rfind("\nchecksum ").unwrap() + 1
    }

    proptest! {
        /// Any well-formed model round-trips through the text format with
        /// bit-exact curve predictions.
        #[test]
        fn persistence_roundtrips_arbitrary_models(
            coeffs in prop::collection::vec(
                prop::collection::vec(-1e4..1e4f64, 1..8),
                8,
            ),
            rmses in prop::collection::vec(0.0..10.0f64, 8),
        ) {
            let curves: Vec<PowerCurve> = WorkloadClass::all()
                .into_iter()
                .zip(coeffs.iter().zip(&rmses))
                .map(|(class, (cs, &rmse))| {
                    PowerCurve::new(class, Polynomial::new(cs.clone()), rmse, 21)
                })
                .collect();
            let model = PowerModel::new("prop-platform", curves);
            let back = model_from_text(&model_to_text(&model)).unwrap();
            prop_assert_eq!(back.platform_name(), model.platform_name());
            for class in WorkloadClass::all() {
                prop_assert_eq!(
                    back.curve(class).poly().coeffs(),
                    model.curve(class).poly().coeffs()
                );
                for i in 0..=10 {
                    let a = i as f64 / 10.0;
                    prop_assert_eq!(back.predict(class, a), model.predict(class, a));
                }
            }
        }

        /// Truncating a file never panics: it either fails cleanly or (when
        /// the cut happens to land on a token boundary of the last line)
        /// still yields a structurally valid eight-curve model.
        #[test]
        fn truncated_files_never_panic(cut in 0usize..400) {
            let curves: Vec<PowerCurve> = WorkloadClass::all()
                .into_iter()
                .map(|c| PowerCurve::new(c, Polynomial::constant(42.0), 0.1, 21))
                .collect();
            let text = model_to_text(&PowerModel::new("p", curves));
            let truncated: String = text.chars().take(cut.min(text.len())).collect();
            match model_from_text(&truncated) {
                Ok(model) => prop_assert_eq!(model.curves().len(), 8),
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
            // Dropping a whole curve line must always fail.
            let missing_line: String = text.lines().take(9).collect::<Vec<_>>().join("\n");
            prop_assert!(model_from_text(&missing_line).is_err());
        }

        /// Flipping any low bit of any byte never panics the model parser,
        /// and a flip inside the digest-covered body is always rejected
        /// (the FNV-1a per-byte step is injective). A flip that still
        /// parses (e.g. whitespace churn on the checksum line itself) must
        /// yield the identical model.
        #[test]
        fn model_bit_flips_detected_or_harmless(pos in 0usize..4096, bit in 0u32..7) {
            let model = sample_model();
            let text = model_to_text(&model);
            prop_assume!(text.is_ascii());
            let pos = pos % text.len();
            let mut bytes = text.clone().into_bytes();
            bytes[pos] ^= 1 << bit; // low 7 bits: stays ASCII, stays UTF-8
            let mutated = String::from_utf8(bytes).unwrap();
            match model_from_text(&mutated) {
                Ok(back) => prop_assert_eq!(back, model),
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
            if pos < covered_len(&text) {
                prop_assert!(model_from_text(&mutated).is_err(), "body flip at {} accepted", pos);
            }
        }

        /// Same guarantee for the kernel table: arbitrary single-bit
        /// corruption is either rejected or provably harmless.
        #[test]
        fn table_bit_flips_detected_or_harmless(pos in 0usize..4096, bit in 0u32..7) {
            let table = sample_table();
            let text = table_to_text(&table);
            prop_assume!(text.is_ascii());
            let pos = pos % text.len();
            let mut bytes = text.clone().into_bytes();
            bytes[pos] ^= 1 << bit;
            let mutated = String::from_utf8(bytes).unwrap();
            match table_from_text(&mutated) {
                Ok(back) => prop_assert_eq!(back.snapshot(), table.snapshot()),
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
            if pos < covered_len(&text) {
                prop_assert!(table_from_text(&mutated).is_err(), "body flip at {} accepted", pos);
            }
        }

        /// Truncating a table file at any byte never panics; anything short
        /// of the full file either fails (usually [`ModelParseError::MissingChecksum`])
        /// or — only when the cut merely drops trailing whitespace — parses
        /// to the identical table.
        #[test]
        fn table_truncation_detected_or_harmless(cut in 0usize..4096) {
            let table = sample_table();
            let text = table_to_text(&table);
            let cut = cut % (text.len() + 1);
            match table_from_text(&text[..cut]) {
                Ok(back) => prop_assert_eq!(back.snapshot(), table.snapshot()),
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
            // Cutting into the digest-covered body can never parse.
            if cut < covered_len(&text) {
                prop_assert!(table_from_text(&text[..cut]).is_err());
            }
        }

        /// Reordering records without resealing is detected by the v2
        /// checksum; the same reorder in a legacy v1 file parses to the
        /// same table (records are order-independent).
        #[test]
        fn reordered_records_detected_in_v2_tolerated_in_v1(i in 0usize..3, j in 0usize..3) {
            let table = sample_table();
            let text = table_to_text(&table);
            let mut lines: Vec<&str> = text.lines().collect();
            // lines[0] is the header, last is the checksum; swap records.
            lines.swap(1 + i, 1 + j);
            let swapped = format!("{}\n", lines.join("\n"));
            if i == j {
                prop_assert!(table_from_text(&swapped).is_ok());
            } else {
                let mismatch = matches!(
                    table_from_text(&swapped),
                    Err(ModelParseError::ChecksumMismatch { .. })
                );
                prop_assert!(mismatch, "swap {} <-> {} not flagged", i, j);
            }
            // Legacy v1: no digest, so order legitimately does not matter.
            let mut v1_lines = lines.clone();
            v1_lines[0] = "easched-kernel-table v1";
            v1_lines.pop();
            let v1 = format!("{}\n", v1_lines.join("\n"));
            prop_assert_eq!(table_from_text(&v1).unwrap().snapshot(), table.snapshot());
        }
    }
}
