//! EAS driving the *real-thread* backend: the paper's runtime architecture
//! (work-stealing CPU pool + GPU proxy thread) scheduled by the actual
//! policy in wall-clock time. Timing assertions are deliberately loose —
//! this validates plumbing and functional coverage, not wall-clock
//! precision.

use easched_core::{characterize, CharacterizationConfig, EasConfig, EasScheduler, Objective};
use easched_runtime::{Backend, Scheduler, ThreadBackend, ThreadBackendConfig};
use easched_sim::{KernelTraits, Platform};
use std::sync::atomic::{AtomicU32, Ordering};

#[test]
fn eas_schedules_real_threads_end_to_end() {
    let platform = Platform::haswell_desktop();
    let model = characterize(
        &platform,
        &CharacterizationConfig {
            alpha_steps: 10,
            ..Default::default()
        },
    );
    let mut eas = EasScheduler::new(model, EasConfig::new(Objective::EnergyDelay));

    let n = 60_000u64;
    let hits: Vec<AtomicU32> = (0..n as usize).map(|_| AtomicU32::new(0)).collect();
    let process = |i: usize| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    };
    let traits = KernelTraits::builder("wall")
        .cpu_rate(5.0e5)
        .gpu_rate(1.0e6)
        .build();
    // Emulated GPU at 5M items/s wall-clock keeps the test under a second.
    let config = ThreadBackendConfig::new(2, 5.0e6);
    let mut backend = ThreadBackend::new(config, &platform, &traits, n, &process);
    eas.schedule(7, &mut backend);
    assert_eq!(backend.remaining(), 0, "EAS must consume the invocation");
    let _ = backend;

    assert!(
        hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
        "every item exactly once across CPU workers and GPU proxy"
    );
    assert!(eas.learned_alpha(7).is_some());
    assert!(
        !eas.decision_log().is_empty(),
        "profiling rounds were recorded"
    );

    // Second invocation reuses the learned ratio (no new decisions).
    let decisions = eas.decisions();
    let hits2: Vec<AtomicU32> = (0..n as usize).map(|_| AtomicU32::new(0)).collect();
    let process2 = |i: usize| {
        hits2[i].fetch_add(1, Ordering::Relaxed);
    };
    let mut backend = ThreadBackend::new(
        ThreadBackendConfig::new(2, 5.0e6),
        &platform,
        &traits,
        n,
        &process2,
    );
    eas.schedule(7, &mut backend);
    assert_eq!(backend.remaining(), 0);
    let _ = backend;
    assert_eq!(eas.decisions(), decisions, "table reuse path");
    assert!(hits2.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}
