//! All-pairs N-Body simulation (Table 1 "NB").
//!
//! Regular, compute-bound; the kernel (one timestep of force computation +
//! integration) is invoked once per step (101 in the paper). Table 1 marks
//! it *CPU Long / GPU Short*: the all-pairs force kernel is so GPU-friendly
//! that the same step crosses the 100 ms threshold on the CPU but not on the
//! GPU.
//!
//! Verification: total momentum is conserved by symmetric forces, and a full
//! serial reference of the first two steps must match bitwise.

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

const DT: f64 = 0.001;
const SOFTENING: f64 = 1e-3;

/// Double-buffered body state: positions, velocities, masses.
#[derive(Debug, Clone, PartialEq)]
struct Bodies {
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    mass: Vec<f64>,
}

impl Bodies {
    fn random(n: usize, seed: u64) -> Bodies {
        let mut rng = StdRng::seed_from_u64(seed);
        Bodies {
            pos: (0..n)
                .map(|_| {
                    [
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    ]
                })
                .collect(),
            vel: (0..n)
                .map(|_| {
                    [
                        rng.gen_range(-0.1..0.1),
                        rng.gen_range(-0.1..0.1),
                        rng.gen_range(-0.1..0.1),
                    ]
                })
                .collect(),
            mass: (0..n).map(|_| rng.gen_range(0.5..2.0)).collect(),
        }
    }

    fn momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for (v, &m) in self.vel.iter().zip(&self.mass) {
            for d in 0..3 {
                p[d] += v[d] * m;
            }
        }
        p
    }
}

/// Acceleration on body `i` from all others (softened gravity, G = 1).
#[allow(clippy::needless_range_loop)] // k indexes three parallel arrays
fn accel(bodies: &Bodies, i: usize) -> [f64; 3] {
    let pi = bodies.pos[i];
    let mut a = [0.0; 3];
    for j in 0..bodies.pos.len() {
        if j == i {
            continue;
        }
        let pj = bodies.pos[j];
        let d = [pj[0] - pi[0], pj[1] - pi[1], pj[2] - pi[2]];
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + SOFTENING;
        let inv_r3 = 1.0 / (r2 * r2.sqrt());
        let s = bodies.mass[j] * inv_r3;
        for k in 0..3 {
            a[k] += s * d[k];
        }
    }
    a
}

/// One serial leapfrog-Euler step (reference).
#[allow(clippy::needless_range_loop)] // k indexes parallel vel/pos arrays
fn serial_step(bodies: &Bodies) -> Bodies {
    let n = bodies.pos.len();
    let mut out = bodies.clone();
    for i in 0..n {
        let a = accel(bodies, i);
        for k in 0..3 {
            out.vel[i][k] = bodies.vel[i][k] + a[k] * DT;
            out.pos[i][k] = bodies.pos[i][k] + out.vel[i][k] * DT;
        }
    }
    out
}

/// The N-Body workload: `steps` timesteps over `n` bodies.
#[derive(Debug)]
pub struct NBody {
    initial: Bodies,
    steps: u32,
    profile: Profile,
}

impl NBody {
    /// Creates an `n`-body system advanced `steps` timesteps.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `steps == 0`.
    pub fn new(n: usize, steps: u32, seed: u64, profile: Profile) -> Self {
        assert!(n >= 2 && steps > 0, "need at least 2 bodies and 1 step");
        NBody {
            initial: Bodies::random(n, seed),
            steps,
            profile,
        }
    }

    /// Default calibration: GPU ≈ 15× CPU on the desktop (all-pairs forces
    /// are embarrassingly SIMD), putting the same step on opposite sides of
    /// the 100 ms short/long threshold.
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 7.5e3,
                gpu_rate: 1.1e5,
                mem_intensity: 0.05,
                access: AccessPattern::Streaming,
                working_set: 4096 * 56, // paper: 4096 bodies
                bus_fraction: 0.08,
                irregularity: 0.03,
                instr_per_item: 12_000.0,
                loads_per_item: 4_100.0,
            },
            tablet: Calib {
                cpu_rate: 3.5e3,
                gpu_rate: 9.0e3,
                mem_intensity: 0.05,
                access: AccessPattern::Streaming,
                working_set: 1024 * 56,
                bus_fraction: 0.08,
                irregularity: 0.03,
                instr_per_item: 3_000.0,
                loads_per_item: 1_025.0,
            },
        }
    }
}

impl Workload for NBody {
    fn input_description(&self) -> String {
        format!("{} bodies, {} steps", self.initial.pos.len(), self.steps)
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "N-Body",
            abbrev: "NB",
            regular: true,
            runs_on_tablet: true,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("NB", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.initial.pos.len();
        let mut current = self.initial.clone();
        let reference_after_two = serial_step(&serial_step(&self.initial));
        let p0 = self.initial.momentum();

        for step in 0..self.steps {
            // Next-state buffers written through atomics (one writer per item).
            let next_pos: Vec<[AtomicU64; 3]> = (0..n).map(|_| Default::default()).collect();
            let next_vel: Vec<[AtomicU64; 3]> = (0..n).map(|_| Default::default()).collect();
            {
                let cur = &current;
                invoker.invoke(n as u64, &|i| {
                    let a = accel(cur, i);
                    for k in 0..3 {
                        let v = cur.vel[i][k] + a[k] * DT;
                        let p = cur.pos[i][k] + v * DT;
                        next_vel[i][k].store(v.to_bits(), Ordering::Relaxed);
                        next_pos[i][k].store(p.to_bits(), Ordering::Relaxed);
                    }
                });
            }
            for i in 0..n {
                for k in 0..3 {
                    current.vel[i][k] = f64::from_bits(next_vel[i][k].load(Ordering::Relaxed));
                    current.pos[i][k] = f64::from_bits(next_pos[i][k].load(Ordering::Relaxed));
                }
            }
            if step == 1 && current != reference_after_two {
                return Verification::Failed("state after 2 steps differs from serial".into());
            }
        }

        // Softened symmetric forces conserve momentum up to roundoff.
        let p1 = current.momentum();
        let drift: f64 = (0..3).map(|k| (p1[k] - p0[k]).abs()).sum();
        let scale: f64 = (0..3).map(|k| p0[k].abs()).sum::<f64>().max(1.0);
        if drift / scale > 1e-6 {
            return Verification::Failed(format!("momentum drift {drift}"));
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn two_body_accelerations_opposite() {
        let b = Bodies {
            pos: vec![[0.0; 3], [1.0, 0.0, 0.0]],
            vel: vec![[0.0; 3]; 2],
            mass: vec![1.0, 1.0],
        };
        let a0 = accel(&b, 0);
        let a1 = accel(&b, 1);
        assert!(a0[0] > 0.0, "body 0 pulled toward body 1");
        assert!((a0[0] + a1[0]).abs() < 1e-12, "equal and opposite");
    }

    #[test]
    fn serial_step_conserves_momentum() {
        let b = Bodies::random(32, 5);
        let after = serial_step(&b);
        let p0 = b.momentum();
        let p1 = after.momentum();
        for k in 0..3 {
            assert!((p0[k] - p1[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn workload_verifies() {
        let w = NBody::new(48, 5, 1, NBody::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn trace_is_steps_by_bodies() {
        let w = NBody::new(16, 7, 2, NBody::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert_eq!(trace.invocations(), 7);
        assert!(trace.sizes.iter().all(|&s| s == 16));
    }

    #[test]
    fn desktop_cpu_long_gpu_short() {
        // 1024 items per invocation at the default rates: CPU > 100 ms,
        // GPU < 100 ms — the Table 1 L/S split.
        let w = NBody::new(1024, 101, 3, NBody::default_profile());
        let t = w.traits_for(&Platform::haswell_desktop());
        assert!(1024.0 / t.cpu_rate() > 0.1);
        assert!(1024.0 / t.gpu_rate() < 0.1);
    }

    #[test]
    #[should_panic(expected = "need at least 2 bodies")]
    fn rejects_single_body() {
        NBody::new(1, 1, 0, NBody::default_profile());
    }
}
