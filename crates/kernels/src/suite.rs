//! Standard benchmark instances at the evaluation scales.
//!
//! The `_desktop()` constructors build the twelve-benchmark suite the
//! figures harness runs on the Haswell platform; `_tablet()` builds the
//! seven tablet-runnable workloads at their (smaller) Table 1 inputs;
//! `_small()` variants are reduced-scale instances for tests and doc
//! examples. Inputs are scaled down from the paper's (we regenerate, not
//! redistribute, the datasets); the calibration profiles keep execution
//! *times* in the paper's regime — see `profiles`.

use crate::barnes_hut::BarnesHut;
use crate::blackscholes::BlackScholes;
use crate::face_detect::FaceDetect;
use crate::graphs::{Bfs, ConnectedComponents, ShortestPath};
use crate::mandelbrot::Mandelbrot;
use crate::matmul::MatMul;
use crate::nbody::NBody;
use crate::raytracer::RayTracer;
use crate::seismic::Seismic;
use crate::skiplist::SkipList;
use crate::workload::Workload;

/// The input-generation seeds baked into every suite constructor, named
/// and gathered in one place so nothing stochastic hides in a literal.
///
/// These seeds predate the runtime's recorded root seed
/// (`easched_core::RunSeed`) and deliberately stay *outside* it: suite
/// inputs are part of the benchmark definition — figure 9/10 byte-identity
/// depends on them never moving — whereas the root seed governs the
/// *run-varying* randomness (chaos plans, sim phase jitter). The
/// record/replay layer writes [`manifest`](seeds::manifest) entries into
/// every `RunLog` so a recorded run still names exactly which generation
/// seeds its inputs came from.
pub mod seeds {
    /// BarnesHut desktop body-cluster seed.
    pub const BARNES_HUT_DESKTOP: u64 = 0xB4;
    /// BFS desktop road-network seed.
    pub const BFS_DESKTOP: u64 = 0xBF5;
    /// Connected Components desktop road-network seed.
    pub const CC_DESKTOP: u64 = 0xCC;
    /// Face Detect desktop photo-synthesis seed.
    pub const FACE_DETECT_DESKTOP: u64 = 0xFD;
    /// SkipList desktop key/lookup seed.
    pub const SKIPLIST_DESKTOP: u64 = 0x51;
    /// Shortest Path desktop road-network seed.
    pub const SHORTEST_PATH_DESKTOP: u64 = 0x59;
    /// Blackscholes desktop portfolio seed.
    pub const BLACKSCHOLES_DESKTOP: u64 = 0xB5;
    /// Matrix Multiply desktop input seed.
    pub const MATMUL_DESKTOP: u64 = 0x33;
    /// N-Body desktop initial-conditions seed.
    pub const NBODY_DESKTOP: u64 = 0x3B;
    /// Ray Tracer desktop scene seed.
    pub const RAYTRACER_DESKTOP: u64 = 0x47;
    /// SkipList tablet key/lookup seed.
    pub const SKIPLIST_TABLET: u64 = 0x52;
    /// Blackscholes tablet portfolio seed.
    pub const BLACKSCHOLES_TABLET: u64 = 0xB6;
    /// Matrix Multiply tablet input seed.
    pub const MATMUL_TABLET: u64 = 0x34;
    /// N-Body tablet initial-conditions seed.
    pub const NBODY_TABLET: u64 = 0x3C;
    /// Ray Tracer tablet scene seed.
    pub const RAYTRACER_TABLET: u64 = 0x48;
    /// Blackscholes small-instance portfolio seed.
    pub const BLACKSCHOLES_SMALL: u64 = 0xB7;
    /// BFS small-instance road-network seed.
    pub const BFS_SMALL: u64 = 0xBF6;
    /// BarnesHut small-instance seed.
    pub const BARNES_HUT_SMALL: u64 = 1;
    /// Connected Components small-instance seed.
    pub const CC_SMALL: u64 = 2;
    /// Face Detect small-instance seed.
    pub const FACE_DETECT_SMALL: u64 = 3;
    /// SkipList small-instance seed.
    pub const SKIPLIST_SMALL: u64 = 4;
    /// Shortest Path small-instance seed.
    pub const SHORTEST_PATH_SMALL: u64 = 5;
    /// Matrix Multiply small-instance seed.
    pub const MATMUL_SMALL: u64 = 6;
    /// N-Body small-instance seed.
    pub const NBODY_SMALL: u64 = 7;
    /// Ray Tracer small-instance seed.
    pub const RAYTRACER_SMALL: u64 = 8;

    /// Every named generation seed, as `(name, value)` pairs for logging
    /// (Mandelbrot and Seismic generate no random input and have none).
    pub fn manifest() -> Vec<(&'static str, u64)> {
        vec![
            ("suite/BH-desktop", BARNES_HUT_DESKTOP),
            ("suite/BFS-desktop", BFS_DESKTOP),
            ("suite/CC-desktop", CC_DESKTOP),
            ("suite/FD-desktop", FACE_DETECT_DESKTOP),
            ("suite/SL-desktop", SKIPLIST_DESKTOP),
            ("suite/SP-desktop", SHORTEST_PATH_DESKTOP),
            ("suite/BS-desktop", BLACKSCHOLES_DESKTOP),
            ("suite/MM-desktop", MATMUL_DESKTOP),
            ("suite/NB-desktop", NBODY_DESKTOP),
            ("suite/RT-desktop", RAYTRACER_DESKTOP),
            ("suite/SL-tablet", SKIPLIST_TABLET),
            ("suite/BS-tablet", BLACKSCHOLES_TABLET),
            ("suite/MM-tablet", MATMUL_TABLET),
            ("suite/NB-tablet", NBODY_TABLET),
            ("suite/RT-tablet", RAYTRACER_TABLET),
            ("suite/BS-small", BLACKSCHOLES_SMALL),
            ("suite/BFS-small", BFS_SMALL),
            ("suite/BH-small", BARNES_HUT_SMALL),
            ("suite/CC-small", CC_SMALL),
            ("suite/FD-small", FACE_DETECT_SMALL),
            ("suite/SL-small", SKIPLIST_SMALL),
            ("suite/SP-small", SHORTEST_PATH_SMALL),
            ("suite/MM-small", MATMUL_SMALL),
            ("suite/NB-small", NBODY_SMALL),
            ("suite/RT-small", RAYTRACER_SMALL),
        ]
    }
}

/// BarnesHut at desktop evaluation scale (50 k bodies, 1 step).
pub fn barnes_hut_desktop() -> Box<dyn Workload> {
    Box::new(BarnesHut::new(
        50_000,
        seeds::BARNES_HUT_DESKTOP,
        BarnesHut::default_profile(),
    ))
}

/// BFS at desktop evaluation scale (512×512 road network).
pub fn bfs_desktop() -> Box<dyn Workload> {
    Box::new(Bfs::new(
        512,
        512,
        seeds::BFS_DESKTOP,
        Bfs::default_profile(),
    ))
}

/// Connected Components at desktop evaluation scale.
pub fn cc_desktop() -> Box<dyn Workload> {
    Box::new(ConnectedComponents::new(
        512,
        512,
        seeds::CC_DESKTOP,
        ConnectedComponents::default_profile(),
    ))
}

/// Face Detect at desktop evaluation scale (1280×960 synthetic group photo).
pub fn face_detect_desktop() -> Box<dyn Workload> {
    Box::new(FaceDetect::new(
        1280,
        960,
        12,
        12,
        seeds::FACE_DETECT_DESKTOP,
        FaceDetect::default_profile(),
    ))
}

/// Mandelbrot at desktop evaluation scale (1024×768, 256 iterations).
pub fn mandelbrot_desktop() -> Box<dyn Workload> {
    Box::new(Mandelbrot::new(
        1024,
        768,
        256,
        Mandelbrot::default_profile(),
    ))
}

/// SkipList at desktop evaluation scale (500 k keys, 1 M lookups).
pub fn skiplist_desktop() -> Box<dyn Workload> {
    Box::new(SkipList::new(
        500_000,
        1_000_000,
        seeds::SKIPLIST_DESKTOP,
        SkipList::default_profile(),
    ))
}

/// Shortest Path at desktop evaluation scale.
pub fn shortest_path_desktop() -> Box<dyn Workload> {
    Box::new(ShortestPath::new(
        512,
        512,
        seeds::SHORTEST_PATH_DESKTOP,
        ShortestPath::default_profile(),
    ))
}

/// Blackscholes at desktop evaluation scale (64 Ki options × 500 passes).
pub fn blackscholes_desktop() -> Box<dyn Workload> {
    Box::new(BlackScholes::new(
        65_536,
        500,
        seeds::BLACKSCHOLES_DESKTOP,
        BlackScholes::default_profile(),
    ))
}

/// Matrix Multiply at desktop evaluation scale (512×512).
pub fn matmul_desktop() -> Box<dyn Workload> {
    Box::new(MatMul::new(
        512,
        seeds::MATMUL_DESKTOP,
        MatMul::default_profile(),
    ))
}

/// N-Body at desktop evaluation scale (4096 bodies × 101 steps, as in the paper).
pub fn nbody_desktop() -> Box<dyn Workload> {
    Box::new(NBody::new(
        4096,
        101,
        seeds::NBODY_DESKTOP,
        NBody::default_profile(),
    ))
}

/// Ray Tracer at desktop evaluation scale (512×384, 256 spheres, 5 lights).
pub fn raytracer_desktop() -> Box<dyn Workload> {
    Box::new(RayTracer::new(
        512,
        384,
        256,
        5,
        seeds::RAYTRACER_DESKTOP,
        RayTracer::default_profile(),
    ))
}

/// Seismic at desktop evaluation scale (975×663, 100 frames).
pub fn seismic_desktop() -> Box<dyn Workload> {
    Box::new(Seismic::new(975, 663, 100, Seismic::default_profile()))
}

/// The full twelve-benchmark desktop suite, in Table 1 order.
pub fn desktop_suite() -> Vec<Box<dyn Workload>> {
    vec![
        barnes_hut_desktop(),
        bfs_desktop(),
        cc_desktop(),
        face_detect_desktop(),
        mandelbrot_desktop(),
        skiplist_desktop(),
        shortest_path_desktop(),
        blackscholes_desktop(),
        matmul_desktop(),
        nbody_desktop(),
        raytracer_desktop(),
        seismic_desktop(),
    ]
}

/// Mandelbrot at tablet scale (same image as the desktop, per Table 1).
pub fn mandelbrot_tablet() -> Box<dyn Workload> {
    Box::new(Mandelbrot::new(
        1024,
        768,
        256,
        Mandelbrot::default_profile(),
    ))
}

/// SkipList at tablet scale (100 k keys, 200 k lookups).
pub fn skiplist_tablet() -> Box<dyn Workload> {
    Box::new(SkipList::new(
        100_000,
        200_000,
        seeds::SKIPLIST_TABLET,
        SkipList::default_profile(),
    ))
}

/// Blackscholes at tablet scale (256 Ki options × 100 passes — the paper's
/// tablet input is *larger* per pass than the desktop's).
pub fn blackscholes_tablet() -> Box<dyn Workload> {
    Box::new(BlackScholes::new(
        262_144,
        100,
        seeds::BLACKSCHOLES_TABLET,
        BlackScholes::default_profile(),
    ))
}

/// Matrix Multiply at tablet scale (256×256).
pub fn matmul_tablet() -> Box<dyn Workload> {
    Box::new(MatMul::new(
        256,
        seeds::MATMUL_TABLET,
        MatMul::default_profile(),
    ))
}

/// N-Body at tablet scale (1024 bodies × 101 steps, as in the paper).
pub fn nbody_tablet() -> Box<dyn Workload> {
    Box::new(NBody::new(
        1024,
        101,
        seeds::NBODY_TABLET,
        NBody::default_profile(),
    ))
}

/// Ray Tracer at tablet scale (320×240, 225 spheres).
pub fn raytracer_tablet() -> Box<dyn Workload> {
    Box::new(RayTracer::new(
        320,
        240,
        225,
        5,
        seeds::RAYTRACER_TABLET,
        RayTracer::default_profile(),
    ))
}

/// Seismic at tablet scale (same grid as the desktop, per Table 1).
pub fn seismic_tablet() -> Box<dyn Workload> {
    Box::new(Seismic::new(975, 663, 100, Seismic::default_profile()))
}

/// The seven tablet-runnable workloads (Table 1 marks the other five N/A on
/// the 32-bit tablet).
pub fn tablet_suite() -> Vec<Box<dyn Workload>> {
    vec![
        mandelbrot_tablet(),
        skiplist_tablet(),
        blackscholes_tablet(),
        matmul_tablet(),
        nbody_tablet(),
        raytracer_tablet(),
        seismic_tablet(),
    ]
}

/// Reduced-scale Mandelbrot for tests and examples.
pub fn mandelbrot_small() -> Box<dyn Workload> {
    Box::new(Mandelbrot::new(64, 48, 64, Mandelbrot::default_profile()))
}

/// Reduced-scale Blackscholes for tests and examples.
pub fn blackscholes_small() -> Box<dyn Workload> {
    Box::new(BlackScholes::new(
        512,
        4,
        seeds::BLACKSCHOLES_SMALL,
        BlackScholes::default_profile(),
    ))
}

/// Reduced-scale BFS for tests and examples.
pub fn bfs_small() -> Box<dyn Workload> {
    Box::new(Bfs::new(48, 48, seeds::BFS_SMALL, Bfs::default_profile()))
}

/// Reduced-scale suite covering every kernel family quickly (for
/// integration tests).
pub fn small_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(BarnesHut::new(
            600,
            seeds::BARNES_HUT_SMALL,
            BarnesHut::default_profile(),
        )),
        bfs_small(),
        Box::new(ConnectedComponents::new(
            32,
            32,
            seeds::CC_SMALL,
            ConnectedComponents::default_profile(),
        )),
        Box::new(FaceDetect::new(
            200,
            150,
            3,
            8,
            seeds::FACE_DETECT_SMALL,
            FaceDetect::default_profile(),
        )),
        mandelbrot_small(),
        Box::new(SkipList::new(
            4_000,
            8_000,
            seeds::SKIPLIST_SMALL,
            SkipList::default_profile(),
        )),
        Box::new(ShortestPath::new(
            32,
            32,
            seeds::SHORTEST_PATH_SMALL,
            ShortestPath::default_profile(),
        )),
        blackscholes_small(),
        Box::new(MatMul::new(
            40,
            seeds::MATMUL_SMALL,
            MatMul::default_profile(),
        )),
        Box::new(NBody::new(
            64,
            6,
            seeds::NBODY_SMALL,
            NBody::default_profile(),
        )),
        Box::new(RayTracer::new(
            48,
            36,
            12,
            2,
            seeds::RAYTRACER_SMALL,
            RayTracer::default_profile(),
        )),
        Box::new(Seismic::new(33, 29, 8, Seismic::default_profile())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::record_trace;

    #[test]
    fn desktop_suite_has_twelve_in_table_order() {
        let abbrevs: Vec<&str> = desktop_suite().iter().map(|w| w.spec().abbrev).collect();
        assert_eq!(
            abbrevs,
            vec!["BH", "BFS", "CC", "FD", "MB", "SL", "SP", "BS", "MM", "NB", "RT", "SM"]
        );
    }

    #[test]
    fn tablet_suite_has_the_seven_runnable() {
        let suite = tablet_suite();
        assert_eq!(suite.len(), 7);
        assert!(suite.iter().all(|w| w.spec().runs_on_tablet));
    }

    #[test]
    fn small_suite_covers_all_abbrevs_and_verifies() {
        let suite = small_suite();
        assert_eq!(suite.len(), 12);
        for w in &suite {
            let (trace, v) = record_trace(w.as_ref());
            assert!(v.is_passed(), "{} failed verification", w.spec().abbrev);
            assert!(trace.invocations() >= 1, "{}", w.spec().abbrev);
        }
    }

    #[test]
    fn seed_manifest_is_frozen() {
        // These values pin every generated benchmark input; moving one
        // silently changes figures 9/10 and invalidates recorded runs'
        // seed inventories. Change them only with a run-log version bump.
        let manifest = seeds::manifest();
        assert_eq!(manifest.len(), 25);
        let get = |name: &str| {
            manifest
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .1
        };
        assert_eq!(get("suite/BH-desktop"), 0xB4);
        assert_eq!(get("suite/BFS-desktop"), 0xBF5);
        assert_eq!(get("suite/BS-desktop"), 0xB5);
        assert_eq!(get("suite/BS-small"), 0xB7);
        assert_eq!(get("suite/BFS-small"), 0xBF6);
        assert_eq!(get("suite/RT-tablet"), 0x48);
        let mut names: Vec<&str> = manifest.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), manifest.len(), "duplicate manifest names");
    }

    #[test]
    fn regular_irregular_split_matches_table1() {
        let irregular: Vec<&str> = desktop_suite()
            .iter()
            .filter(|w| !w.spec().regular)
            .map(|w| w.spec().abbrev)
            .collect();
        assert_eq!(irregular, vec!["BH", "BFS", "CC", "FD", "MB", "SL", "SP"]);
    }
}
