//! Standard benchmark instances at the evaluation scales.
//!
//! The `_desktop()` constructors build the twelve-benchmark suite the
//! figures harness runs on the Haswell platform; `_tablet()` builds the
//! seven tablet-runnable workloads at their (smaller) Table 1 inputs;
//! `_small()` variants are reduced-scale instances for tests and doc
//! examples. Inputs are scaled down from the paper's (we regenerate, not
//! redistribute, the datasets); the calibration profiles keep execution
//! *times* in the paper's regime — see `profiles`.

use crate::barnes_hut::BarnesHut;
use crate::blackscholes::BlackScholes;
use crate::face_detect::FaceDetect;
use crate::graphs::{Bfs, ConnectedComponents, ShortestPath};
use crate::mandelbrot::Mandelbrot;
use crate::matmul::MatMul;
use crate::nbody::NBody;
use crate::raytracer::RayTracer;
use crate::seismic::Seismic;
use crate::skiplist::SkipList;
use crate::workload::Workload;

/// BarnesHut at desktop evaluation scale (50 k bodies, 1 step).
pub fn barnes_hut_desktop() -> Box<dyn Workload> {
    Box::new(BarnesHut::new(50_000, 0xB4, BarnesHut::default_profile()))
}

/// BFS at desktop evaluation scale (512×512 road network).
pub fn bfs_desktop() -> Box<dyn Workload> {
    Box::new(Bfs::new(512, 512, 0xBF5, Bfs::default_profile()))
}

/// Connected Components at desktop evaluation scale.
pub fn cc_desktop() -> Box<dyn Workload> {
    Box::new(ConnectedComponents::new(
        512,
        512,
        0xCC,
        ConnectedComponents::default_profile(),
    ))
}

/// Face Detect at desktop evaluation scale (1280×960 synthetic group photo).
pub fn face_detect_desktop() -> Box<dyn Workload> {
    Box::new(FaceDetect::new(
        1280,
        960,
        12,
        12,
        0xFD,
        FaceDetect::default_profile(),
    ))
}

/// Mandelbrot at desktop evaluation scale (1024×768, 256 iterations).
pub fn mandelbrot_desktop() -> Box<dyn Workload> {
    Box::new(Mandelbrot::new(
        1024,
        768,
        256,
        Mandelbrot::default_profile(),
    ))
}

/// SkipList at desktop evaluation scale (500 k keys, 1 M lookups).
pub fn skiplist_desktop() -> Box<dyn Workload> {
    Box::new(SkipList::new(
        500_000,
        1_000_000,
        0x51,
        SkipList::default_profile(),
    ))
}

/// Shortest Path at desktop evaluation scale.
pub fn shortest_path_desktop() -> Box<dyn Workload> {
    Box::new(ShortestPath::new(
        512,
        512,
        0x59,
        ShortestPath::default_profile(),
    ))
}

/// Blackscholes at desktop evaluation scale (64 Ki options × 500 passes).
pub fn blackscholes_desktop() -> Box<dyn Workload> {
    Box::new(BlackScholes::new(
        65_536,
        500,
        0xB5,
        BlackScholes::default_profile(),
    ))
}

/// Matrix Multiply at desktop evaluation scale (512×512).
pub fn matmul_desktop() -> Box<dyn Workload> {
    Box::new(MatMul::new(512, 0x33, MatMul::default_profile()))
}

/// N-Body at desktop evaluation scale (4096 bodies × 101 steps, as in the paper).
pub fn nbody_desktop() -> Box<dyn Workload> {
    Box::new(NBody::new(4096, 101, 0x3B, NBody::default_profile()))
}

/// Ray Tracer at desktop evaluation scale (512×384, 256 spheres, 5 lights).
pub fn raytracer_desktop() -> Box<dyn Workload> {
    Box::new(RayTracer::new(
        512,
        384,
        256,
        5,
        0x47,
        RayTracer::default_profile(),
    ))
}

/// Seismic at desktop evaluation scale (975×663, 100 frames).
pub fn seismic_desktop() -> Box<dyn Workload> {
    Box::new(Seismic::new(975, 663, 100, Seismic::default_profile()))
}

/// The full twelve-benchmark desktop suite, in Table 1 order.
pub fn desktop_suite() -> Vec<Box<dyn Workload>> {
    vec![
        barnes_hut_desktop(),
        bfs_desktop(),
        cc_desktop(),
        face_detect_desktop(),
        mandelbrot_desktop(),
        skiplist_desktop(),
        shortest_path_desktop(),
        blackscholes_desktop(),
        matmul_desktop(),
        nbody_desktop(),
        raytracer_desktop(),
        seismic_desktop(),
    ]
}

/// Mandelbrot at tablet scale (same image as the desktop, per Table 1).
pub fn mandelbrot_tablet() -> Box<dyn Workload> {
    Box::new(Mandelbrot::new(
        1024,
        768,
        256,
        Mandelbrot::default_profile(),
    ))
}

/// SkipList at tablet scale (100 k keys, 200 k lookups).
pub fn skiplist_tablet() -> Box<dyn Workload> {
    Box::new(SkipList::new(
        100_000,
        200_000,
        0x52,
        SkipList::default_profile(),
    ))
}

/// Blackscholes at tablet scale (256 Ki options × 100 passes — the paper's
/// tablet input is *larger* per pass than the desktop's).
pub fn blackscholes_tablet() -> Box<dyn Workload> {
    Box::new(BlackScholes::new(
        262_144,
        100,
        0xB6,
        BlackScholes::default_profile(),
    ))
}

/// Matrix Multiply at tablet scale (256×256).
pub fn matmul_tablet() -> Box<dyn Workload> {
    Box::new(MatMul::new(256, 0x34, MatMul::default_profile()))
}

/// N-Body at tablet scale (1024 bodies × 101 steps, as in the paper).
pub fn nbody_tablet() -> Box<dyn Workload> {
    Box::new(NBody::new(1024, 101, 0x3C, NBody::default_profile()))
}

/// Ray Tracer at tablet scale (320×240, 225 spheres).
pub fn raytracer_tablet() -> Box<dyn Workload> {
    Box::new(RayTracer::new(
        320,
        240,
        225,
        5,
        0x48,
        RayTracer::default_profile(),
    ))
}

/// Seismic at tablet scale (same grid as the desktop, per Table 1).
pub fn seismic_tablet() -> Box<dyn Workload> {
    Box::new(Seismic::new(975, 663, 100, Seismic::default_profile()))
}

/// The seven tablet-runnable workloads (Table 1 marks the other five N/A on
/// the 32-bit tablet).
pub fn tablet_suite() -> Vec<Box<dyn Workload>> {
    vec![
        mandelbrot_tablet(),
        skiplist_tablet(),
        blackscholes_tablet(),
        matmul_tablet(),
        nbody_tablet(),
        raytracer_tablet(),
        seismic_tablet(),
    ]
}

/// Reduced-scale Mandelbrot for tests and examples.
pub fn mandelbrot_small() -> Box<dyn Workload> {
    Box::new(Mandelbrot::new(64, 48, 64, Mandelbrot::default_profile()))
}

/// Reduced-scale Blackscholes for tests and examples.
pub fn blackscholes_small() -> Box<dyn Workload> {
    Box::new(BlackScholes::new(
        512,
        4,
        0xB7,
        BlackScholes::default_profile(),
    ))
}

/// Reduced-scale BFS for tests and examples.
pub fn bfs_small() -> Box<dyn Workload> {
    Box::new(Bfs::new(48, 48, 0xBF6, Bfs::default_profile()))
}

/// Reduced-scale suite covering every kernel family quickly (for
/// integration tests).
pub fn small_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(BarnesHut::new(600, 1, BarnesHut::default_profile())),
        bfs_small(),
        Box::new(ConnectedComponents::new(
            32,
            32,
            2,
            ConnectedComponents::default_profile(),
        )),
        Box::new(FaceDetect::new(
            200,
            150,
            3,
            8,
            3,
            FaceDetect::default_profile(),
        )),
        mandelbrot_small(),
        Box::new(SkipList::new(4_000, 8_000, 4, SkipList::default_profile())),
        Box::new(ShortestPath::new(
            32,
            32,
            5,
            ShortestPath::default_profile(),
        )),
        blackscholes_small(),
        Box::new(MatMul::new(40, 6, MatMul::default_profile())),
        Box::new(NBody::new(64, 6, 7, NBody::default_profile())),
        Box::new(RayTracer::new(
            48,
            36,
            12,
            2,
            8,
            RayTracer::default_profile(),
        )),
        Box::new(Seismic::new(33, 29, 8, Seismic::default_profile())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::record_trace;

    #[test]
    fn desktop_suite_has_twelve_in_table_order() {
        let abbrevs: Vec<&str> = desktop_suite().iter().map(|w| w.spec().abbrev).collect();
        assert_eq!(
            abbrevs,
            vec!["BH", "BFS", "CC", "FD", "MB", "SL", "SP", "BS", "MM", "NB", "RT", "SM"]
        );
    }

    #[test]
    fn tablet_suite_has_the_seven_runnable() {
        let suite = tablet_suite();
        assert_eq!(suite.len(), 7);
        assert!(suite.iter().all(|w| w.spec().runs_on_tablet));
    }

    #[test]
    fn small_suite_covers_all_abbrevs_and_verifies() {
        let suite = small_suite();
        assert_eq!(suite.len(), 12);
        for w in &suite {
            let (trace, v) = record_trace(w.as_ref());
            assert!(v.is_passed(), "{} failed verification", w.spec().abbrev);
            assert!(trace.invocations() >= 1, "{}", w.spec().abbrev);
        }
    }

    #[test]
    fn regular_irregular_split_matches_table1() {
        let irregular: Vec<&str> = desktop_suite()
            .iter()
            .filter(|w| !w.spec().regular)
            .map(|w| w.spec().abbrev)
            .collect();
        assert_eq!(irregular, vec!["BH", "BFS", "CC", "FD", "MB", "SL", "SP"]);
    }
}
