//! Per-platform timing/power calibration for the benchmark kernels.
//!
//! On the paper's physical machines, a kernel's CPU and GPU throughput and
//! its power class are properties of the hardware. Our hardware is
//! simulated, so each benchmark carries a [`Calib`] per platform: solo device
//! rates **per functional item** (our inputs are scaled down from the
//! paper's — see `DESIGN.md` §2 — so rates are scaled to keep execution
//! *times* in the paper's regime), the memory-intensity power class, the
//! counter footprint, and the fraction of the memory bus the kernel drives
//! in combined mode.
//!
//! The calibration is chosen so that:
//!
//! * Table 1's classification columns (compute/memory, CPU short/long,
//!   GPU short/long) are reproduced by the *classifier*, not hard-coded;
//! * GPU-vs-CPU speedups span the paper's spectrum: heavily GPU-biased
//!   (MM, NB), moderately GPU-biased (most), and CPU-biased (FD);
//! * memory-bound kernels oversubscribe the shared bus in combined mode
//!   (`bus_fraction` > 1), reproducing the contention that separates the
//!   performance-optimal split from the energy-optimal one (Figure 1).
//!
//! None of these values are visible to the scheduler.

use easched_sim::{AccessPattern, KernelTraits, Platform};

/// Which of the two paper platforms a [`Platform`] value represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// The Haswell desktop.
    Desktop,
    /// The Bay Trail tablet.
    Tablet,
}

/// Classifies a platform by its preset name; unknown platforms are treated
/// as desktops.
///
/// # Examples
///
/// ```
/// use easched_kernels::profiles::{kind_of, PlatformKind};
/// use easched_sim::Platform;
///
/// assert_eq!(kind_of(&Platform::haswell_desktop()), PlatformKind::Desktop);
/// assert_eq!(kind_of(&Platform::baytrail_tablet()), PlatformKind::Tablet);
/// ```
pub fn kind_of(platform: &Platform) -> PlatformKind {
    if platform.name.contains("baytrail") || platform.name.contains("tablet") {
        PlatformKind::Tablet
    } else {
        PlatformKind::Desktop
    }
}

/// One platform's calibration for one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calib {
    /// Solo CPU rate, items/second.
    pub cpu_rate: f64,
    /// Solo GPU rate, items/second.
    pub gpu_rate: f64,
    /// Power-class memory intensity in [0, 1].
    pub mem_intensity: f64,
    /// Counter-model access pattern (calibrated to reproduce the Table 1
    /// class under the 0.33 miss/load threshold; not a claim about source
    /// loop structure).
    pub access: AccessPattern,
    /// Working-set bytes at *paper scale* (drives the L3 miss model).
    pub working_set: u64,
    /// Combined-mode bus demand as a fraction of platform peak bandwidth
    /// (values > 1 oversubscribe and trigger contention).
    pub bus_fraction: f64,
    /// Irregularity (per-invocation throughput noise scale).
    pub irregularity: f64,
    /// Instructions retired per item.
    pub instr_per_item: f64,
    /// Load/store instructions per item.
    pub loads_per_item: f64,
}

impl Calib {
    /// Builds the [`KernelTraits`] for `platform` from this calibration.
    pub fn traits(&self, name: &str, platform: &Platform) -> KernelTraits {
        let combined = self.cpu_rate + self.gpu_rate;
        let bytes_per_item = if combined > 0.0 {
            self.bus_fraction * platform.memory.peak_bw_bytes_per_sec / combined
        } else {
            0.0
        };
        KernelTraits::builder(name)
            .cpu_rate(self.cpu_rate)
            .gpu_rate(self.gpu_rate)
            .memory_intensity(self.mem_intensity)
            .access(self.access)
            .working_set_bytes(self.working_set)
            .bw_bytes_per_item(bytes_per_item)
            .irregularity(self.irregularity)
            .instr_per_item(self.instr_per_item)
            .loads_per_item(self.loads_per_item)
            .build()
    }
}

/// A desktop/tablet calibration pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Profile {
    /// Calibration on the Haswell desktop.
    pub desktop: Calib,
    /// Calibration on the Bay Trail tablet.
    pub tablet: Calib,
}

impl Profile {
    /// Traits for the given platform (unknown platforms use the desktop
    /// calibration).
    pub fn traits_for(&self, name: &str, platform: &Platform) -> KernelTraits {
        match kind_of(platform) {
            PlatformKind::Desktop => self.desktop.traits(name, platform),
            PlatformKind::Tablet => self.tablet.traits(name, platform),
        }
    }

    /// Returns a copy with every rate multiplied by `factor` — used by
    /// reduced-scale test variants so per-invocation *times* stay in the
    /// same classification regime.
    pub fn scale_rates(mut self, factor: f64) -> Profile {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.desktop.cpu_rate *= factor;
        self.desktop.gpu_rate *= factor;
        self.tablet.cpu_rate *= factor;
        self.tablet.gpu_rate *= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 1.0e6,
                gpu_rate: 2.0e6,
                mem_intensity: 0.9,
                access: AccessPattern::Random,
                working_set: 200 << 20,
                bus_fraction: 1.3,
                irregularity: 0.3,
                instr_per_item: 150.0,
                loads_per_item: 60.0,
            },
            tablet: Calib {
                cpu_rate: 1.0e5,
                gpu_rate: 1.2e5,
                mem_intensity: 0.9,
                access: AccessPattern::Random,
                working_set: 50 << 20,
                bus_fraction: 1.3,
                irregularity: 0.3,
                instr_per_item: 150.0,
                loads_per_item: 60.0,
            },
        }
    }

    #[test]
    fn traits_pick_platform_calibration() {
        let p = sample();
        let d = p.traits_for("k", &Platform::haswell_desktop());
        let t = p.traits_for("k", &Platform::baytrail_tablet());
        assert_eq!(d.cpu_rate(), 1.0e6);
        assert_eq!(t.cpu_rate(), 1.0e5);
    }

    #[test]
    fn bus_fraction_maps_to_bytes_per_item() {
        let p = sample();
        let plat = Platform::haswell_desktop();
        let tr = p.traits_for("k", &plat);
        let combined_demand = (tr.cpu_rate() + tr.gpu_rate()) * tr.bw_bytes_per_item();
        let frac = combined_demand / plat.memory.peak_bw_bytes_per_sec;
        assert!((frac - 1.3).abs() < 1e-9);
    }

    #[test]
    fn scale_rates_scales_both_platforms() {
        let p = sample().scale_rates(0.5);
        assert_eq!(p.desktop.cpu_rate, 0.5e6);
        assert_eq!(p.tablet.gpu_rate, 0.6e5);
        // Other fields untouched.
        assert_eq!(p.desktop.bus_fraction, 1.3);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn scale_rates_rejects_zero() {
        sample().scale_rates(0.0);
    }

    #[test]
    fn unknown_platform_defaults_to_desktop() {
        let mut plat = Platform::haswell_desktop();
        plat.name = "mystery-box";
        assert_eq!(kind_of(&plat), PlatformKind::Desktop);
    }
}
