//! Viola-Jones-style face detection (Table 1 "FD").
//!
//! Irregular, compute-bound, many short kernel invocations, and the one
//! CPU-biased workload in the suite (the paper notes EAS correctly sends FD
//! entirely to the CPU while GPU-alone "suffers significantly").
//!
//! The detector is a real sliding-window cascade over an integral image:
//! for each pyramid scale, each cascade stage is one data-parallel kernel
//! invocation over the windows still alive at that stage — so N shrinks as
//! the cascade rejects windows (input-dependent, hence irregular). The
//! image is synthetic with planted high-contrast "face" patterns
//! (substituting for the Solvay-1927 photograph; see DESIGN.md §2).

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

const BASE_WINDOW: usize = 24;
const SCALE_FACTOR: f64 = 1.25;
const STRIDE: usize = 4;

/// The face-detection workload.
#[derive(Debug)]
pub struct FaceDetect {
    width: usize,
    height: usize,
    image: Vec<u32>,
    /// Planted face positions `(x, y)` at the base scale.
    planted: Vec<(usize, usize)>,
    stages: usize,
    profile: Profile,
}

/// Summed-area table with one extra row/column of zeros.
fn integral_image(width: usize, height: usize, img: &[u32]) -> Vec<u64> {
    let w1 = width + 1;
    let mut ii = vec![0u64; w1 * (height + 1)];
    for y in 0..height {
        let mut row = 0u64;
        for x in 0..width {
            row += u64::from(img[y * width + x]);
            ii[(y + 1) * w1 + (x + 1)] = ii[y * w1 + (x + 1)] + row;
        }
    }
    ii
}

/// Sum of the rectangle `[x, x+w) × [y, y+h)` from the integral image.
fn rect_sum(ii: &[u64], iw: usize, x: usize, y: usize, w: usize, h: usize) -> u64 {
    let w1 = iw + 1;
    ii[(y + h) * w1 + (x + w)] + ii[y * w1 + x] - ii[y * w1 + (x + w)] - ii[(y + h) * w1 + x]
}

impl FaceDetect {
    /// Creates a `width × height` synthetic group photo with `n_faces`
    /// planted faces, detected by a `stages`-stage cascade.
    ///
    /// # Panics
    ///
    /// Panics if the image is smaller than the base window, or `stages` or
    /// `n_faces` is zero.
    pub fn new(
        width: usize,
        height: usize,
        n_faces: usize,
        stages: usize,
        seed: u64,
        profile: Profile,
    ) -> Self {
        assert!(
            width >= 2 * BASE_WINDOW && height >= 2 * BASE_WINDOW,
            "image must fit at least 2x the base window"
        );
        assert!(
            stages > 0 && n_faces > 0,
            "stages and faces must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Background: mid-gray noise.
        let mut image: Vec<u32> = (0..width * height)
            .map(|_| rng.gen_range(100..160))
            .collect();
        // Plant faces aligned to the detection grid: left half bright,
        // right half dark (a crude but real Haar-detectable pattern).
        let mut planted = Vec::new();
        let max_x = (width - BASE_WINDOW) / STRIDE;
        let max_y = (height - BASE_WINDOW) / STRIDE;
        while planted.len() < n_faces {
            let wx = rng.gen_range(0..=max_x) * STRIDE;
            let wy = rng.gen_range(0..=max_y) * STRIDE;
            // Avoid overlapping plants (overlap would double-detect).
            if planted.iter().any(|&(px, py): &(usize, usize)| {
                px.abs_diff(wx) < 2 * BASE_WINDOW && py.abs_diff(wy) < 2 * BASE_WINDOW
            }) {
                continue;
            }
            for dy in 0..BASE_WINDOW {
                for dx in 0..BASE_WINDOW {
                    let v = if dx < BASE_WINDOW / 2 { 220 } else { 40 };
                    image[(wy + dy) * width + (wx + dx)] = v;
                }
            }
            planted.push((wx, wy));
        }
        FaceDetect {
            width,
            height,
            image,
            planted,
            stages,
            profile,
        }
    }

    /// Default calibration: the suite's CPU-biased workload (branchy window
    /// rejection runs poorly on SIMD).
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 6.0e6,
                gpu_rate: 2.0e6,
                mem_intensity: 0.15,
                access: AccessPattern::Strided,
                working_set: 3000 * 2171 * 4, // paper: Solvay-1927 3000×2171
                bus_fraction: 0.30,
                irregularity: 0.35,
                instr_per_item: 800.0,
                loads_per_item: 250.0,
            },
            tablet: Calib {
                cpu_rate: 8.0e5,
                gpu_rate: 3.0e5,
                mem_intensity: 0.15,
                access: AccessPattern::Strided,
                working_set: 3000 * 2171 * 4,
                bus_fraction: 0.30,
                irregularity: 0.35,
                instr_per_item: 800.0,
                loads_per_item: 250.0,
            },
        }
    }

    /// Pyramid scales: base window grown by 1.25× until it exceeds half the
    /// smaller image dimension.
    fn scales(&self) -> Vec<usize> {
        let max = self.width.min(self.height) / 2;
        let mut out = Vec::new();
        let mut w = BASE_WINDOW as f64;
        while (w as usize) <= max {
            out.push(w as usize);
            w *= SCALE_FACTOR;
        }
        out
    }

    /// Stage `s` feature test on a window: left band of the stage's
    /// sub-rectangle must out-shine the right band by a per-pixel margin.
    fn stage_passes(&self, ii: &[u64], x: usize, y: usize, win: usize, stage: usize) -> bool {
        // Each stage inspects a different horizontal band of the window.
        let bands = self.stages;
        let band_h = (win / bands).max(1);
        let by = y + (stage * band_h).min(win - band_h);
        let half = win / 2;
        let left = rect_sum(ii, self.width, x, by, half, band_h) as f64;
        let right = rect_sum(ii, self.width, x + half, by, win - half, band_h) as f64;
        let area = (half * band_h) as f64;
        (left - right) / area > 25.0
    }
}

impl Workload for FaceDetect {
    fn input_description(&self) -> String {
        format!(
            "{}x{} synthetic photo, {} faces, {} stages",
            self.width,
            self.height,
            self.planted.len(),
            self.stages
        )
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Face Detect",
            abbrev: "FD",
            regular: false,
            runs_on_tablet: false,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("FD", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let ii = integral_image(self.width, self.height, &self.image);
        let mut detections: Vec<(usize, usize, usize)> = Vec::new();

        for win in self.scales() {
            // All window positions at this scale.
            let mut alive: Vec<(usize, usize)> = (0..=(self.height - win) / STRIDE)
                .flat_map(|gy| {
                    (0..=(self.width - win) / STRIDE).map(move |gx| (gx * STRIDE, gy * STRIDE))
                })
                .collect();
            for stage in 0..self.stages {
                let keep: Vec<AtomicBool> =
                    (0..alive.len()).map(|_| AtomicBool::new(false)).collect();
                {
                    let a = &alive;
                    let k = &keep;
                    let iiref = &ii;
                    invoker.invoke(alive.len() as u64, &|i| {
                        let (x, y) = a[i];
                        if self.stage_passes(iiref, x, y, win, stage) {
                            k[i].store(true, Ordering::Relaxed);
                        }
                    });
                }
                alive = alive
                    .into_iter()
                    .zip(&keep)
                    .filter(|(_, k)| k.load(Ordering::Relaxed))
                    .map(|(w, _)| w)
                    .collect();
                if alive.is_empty() {
                    break;
                }
            }
            detections.extend(alive.into_iter().map(|(x, y)| (x, y, win)));
        }

        // Every planted face must be detected exactly at base scale, and the
        // detector must not light up the whole image.
        for &(px, py) in &self.planted {
            if !detections
                .iter()
                .any(|&(x, y, w)| x == px && y == py && w == BASE_WINDOW)
            {
                return Verification::Failed(format!("planted face at ({px},{py}) missed"));
            }
        }
        let windows_base =
            ((self.width - BASE_WINDOW) / STRIDE + 1) * ((self.height - BASE_WINDOW) / STRIDE + 1);
        if detections.len() > windows_base / 10 {
            return Verification::Failed(format!(
                "{} detections is implausibly many",
                detections.len()
            ));
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn integral_image_sums() {
        // 2x2 image [[1,2],[3,4]]: total 10, first column 4.
        let ii = integral_image(2, 2, &[1, 2, 3, 4]);
        assert_eq!(rect_sum(&ii, 2, 0, 0, 2, 2), 10);
        assert_eq!(rect_sum(&ii, 2, 0, 0, 1, 2), 4);
        assert_eq!(rect_sum(&ii, 2, 1, 1, 1, 1), 4);
    }

    #[test]
    fn planted_faces_detected() {
        let w = FaceDetect::new(160, 120, 3, 6, 1, FaceDetect::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn invocation_count_is_scales_times_stages_at_most() {
        let w = FaceDetect::new(160, 120, 2, 6, 2, FaceDetect::default_profile());
        let scales = w.scales().len();
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert!(trace.invocations() <= scales * 6);
        assert!(trace.invocations() >= scales, "at least stage 0 per scale");
    }

    #[test]
    fn cascade_shrinks_n() {
        let w = FaceDetect::new(160, 120, 2, 6, 3, FaceDetect::default_profile());
        let (trace, _) = record_trace(&w);
        // The first two invocations are stage 0 and stage 1 of the largest
        // window population: stage 1 must see far fewer windows.
        assert!(
            trace.sizes[1] < trace.sizes[0] / 4,
            "{:?}",
            &trace.sizes[..2]
        );
    }

    #[test]
    fn cpu_biased_calibration() {
        let w = FaceDetect::new(64, 64, 1, 2, 4, FaceDetect::default_profile());
        let t = w.traits_for(&Platform::haswell_desktop());
        assert!(t.cpu_rate() > t.gpu_rate(), "FD is the CPU-biased workload");
        let p = Platform::haswell_desktop();
        assert!(t.l3_miss_ratio(p.memory.llc_bytes) < 0.33, "compute-bound");
    }

    #[test]
    fn scales_grow_geometrically() {
        let w = FaceDetect::new(640, 480, 1, 2, 5, FaceDetect::default_profile());
        let s = w.scales();
        assert!(s.len() >= 8, "expect a deep pyramid, got {}", s.len());
        for pair in s.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    #[should_panic(expected = "image must fit")]
    fn rejects_tiny_image() {
        FaceDetect::new(30, 30, 1, 2, 0, FaceDetect::default_profile());
    }
}
