//! The three graph workloads (Table 1 "BFS", "CC", "SP").
//!
//! All three are irregular, memory-bound, *short-kernel* workloads that
//! invoke the same kernel thousands of times: one invocation per
//! level/round, vertex-parallel (N = |V| every invocation, with
//! input-dependent control flow inside each item — the "irregular"
//! classification). The paper runs them on the W-USA road network; we use
//! the road-network generator (see `easched-graph`).
//!
//! Verification compares against the serial references in
//! `easched_graph::reference`.

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_graph::{gen, reference, Csr};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

fn road_graph(width: u32, height: u32, seed: u64) -> Csr {
    gen::road_network(width, height, seed)
}

fn graph_calib(cpu_rate: f64, gpu_rate: f64, irregularity: f64) -> Calib {
    Calib {
        cpu_rate,
        gpu_rate,
        mem_intensity: 0.95,
        access: AccessPattern::Random,
        working_set: 200 << 20, // paper-scale W-USA CSR + state arrays
        bus_fraction: 1.05,
        irregularity,
        instr_per_item: 150.0,
        loads_per_item: 60.0,
    }
}

/// Breadth-first search over a road network (vertex-parallel,
/// level-synchronous).
#[derive(Debug)]
pub struct Bfs {
    graph: Csr,
    source: u32,
    profile: Profile,
}

impl Bfs {
    /// BFS on a `width × height` road network from vertex 0.
    pub fn new(width: u32, height: u32, seed: u64, profile: Profile) -> Self {
        Bfs {
            graph: road_graph(width, height, seed),
            source: 0,
            profile,
        }
    }

    /// Default calibration (desktop GPU modestly ahead on irregular gather).
    pub fn default_profile() -> Profile {
        Profile {
            desktop: graph_calib(4.2e6, 6.1e6, 0.30),
            tablet: graph_calib(5.0e5, 5.5e5, 0.30),
        }
    }
}

impl Workload for Bfs {
    fn input_description(&self) -> String {
        format!(
            "road network |V|={}, |E|={}",
            self.graph.vertex_count(),
            self.graph.edge_count()
        )
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Breadth first search",
            abbrev: "BFS",
            regular: false,
            runs_on_tablet: false,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("BFS", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.graph.vertex_count() as usize;
        if n == 0 {
            return Verification::Passed;
        }
        let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        dist[self.source as usize].store(0, Ordering::Relaxed);
        let mut level = 0u32;
        loop {
            let changed = AtomicBool::new(false);
            {
                let d = &dist;
                let g = &self.graph;
                let ch = &changed;
                invoker.invoke(n as u64, &|i| {
                    // Vertex-parallel: only frontier members do real work —
                    // the input-dependent branch that makes BFS irregular.
                    if d[i].load(Ordering::Relaxed) != level {
                        return;
                    }
                    for &u in g.neighbors(i as u32) {
                        if d[u as usize]
                            .compare_exchange(
                                u32::MAX,
                                level + 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            ch.store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
            level += 1;
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }
        let got: Vec<u32> = dist.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        if got == reference::bfs_levels(&self.graph, self.source) {
            Verification::Passed
        } else {
            Verification::Failed("BFS distances differ from serial reference".into())
        }
    }
}

/// Connected components by synchronous min-label propagation
/// (vertex-parallel).
#[derive(Debug)]
pub struct ConnectedComponents {
    graph: Csr,
    profile: Profile,
}

impl ConnectedComponents {
    /// CC on a `width × height` road network.
    pub fn new(width: u32, height: u32, seed: u64, profile: Profile) -> Self {
        ConnectedComponents {
            graph: road_graph(width, height, seed),
            profile,
        }
    }

    /// Default calibration. The highest irregularity of the suite — the
    /// paper singles CC out as the workload whose online profile misleads
    /// EAS (§5, desktop EDP discussion).
    pub fn default_profile() -> Profile {
        Profile {
            desktop: graph_calib(5.2e6, 7.8e6, 0.45),
            tablet: graph_calib(5.5e5, 6.0e5, 0.45),
        }
    }
}

impl Workload for ConnectedComponents {
    fn input_description(&self) -> String {
        format!(
            "road network |V|={}, |E|={}",
            self.graph.vertex_count(),
            self.graph.edge_count()
        )
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Connected Component",
            abbrev: "CC",
            regular: false,
            runs_on_tablet: false,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("CC", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.graph.vertex_count() as usize;
        if n == 0 {
            return Verification::Passed;
        }
        let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
        loop {
            // Synchronous round: read the previous labels, write the new.
            let snapshot: Vec<u32> = labels.iter().map(|a| a.load(Ordering::Relaxed)).collect();
            let changed = AtomicBool::new(false);
            {
                let g = &self.graph;
                let l = &labels;
                let s = &snapshot;
                let ch = &changed;
                invoker.invoke(n as u64, &|i| {
                    let mut best = s[i];
                    for &u in g.neighbors(i as u32) {
                        best = best.min(s[u as usize]);
                    }
                    if best < s[i] {
                        l[i].fetch_min(best, Ordering::Relaxed);
                        ch.store(true, Ordering::Relaxed);
                    }
                });
            }
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }
        let got: Vec<u32> = labels.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        if got == reference::components(&self.graph) {
            Verification::Passed
        } else {
            Verification::Failed("CC labels differ from serial reference".into())
        }
    }
}

/// Single-source shortest paths by synchronous Bellman-Ford
/// (vertex-parallel).
#[derive(Debug)]
pub struct ShortestPath {
    graph: Csr,
    source: u32,
    profile: Profile,
}

impl ShortestPath {
    /// SSSP on a `width × height` road network from vertex 0.
    pub fn new(width: u32, height: u32, seed: u64, profile: Profile) -> Self {
        ShortestPath {
            graph: road_graph(width, height, seed),
            source: 0,
            profile,
        }
    }

    /// Default calibration.
    pub fn default_profile() -> Profile {
        Profile {
            desktop: graph_calib(3.9e6, 5.8e6, 0.30),
            tablet: graph_calib(4.5e5, 5.0e5, 0.30),
        }
    }
}

impl Workload for ShortestPath {
    fn input_description(&self) -> String {
        format!(
            "road network |V|={}, |E|={}",
            self.graph.vertex_count(),
            self.graph.edge_count()
        )
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Shortest Path",
            abbrev: "SP",
            regular: false,
            runs_on_tablet: false,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("SP", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.graph.vertex_count() as usize;
        if n == 0 {
            return Verification::Passed;
        }
        let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        dist[self.source as usize].store(0, Ordering::Relaxed);
        loop {
            let snapshot: Vec<u64> = dist.iter().map(|a| a.load(Ordering::Relaxed)).collect();
            let changed = AtomicBool::new(false);
            {
                let g = &self.graph;
                let d = &dist;
                let s = &snapshot;
                let ch = &changed;
                invoker.invoke(n as u64, &|i| {
                    let di = s[i];
                    if di == u64::MAX {
                        return;
                    }
                    for (u, w) in g.weighted_neighbors(i as u32) {
                        let nd = di + u64::from(w);
                        if nd < s[u as usize] {
                            let prev = d[u as usize].fetch_min(nd, Ordering::Relaxed);
                            if nd < prev {
                                ch.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }
        let got: Vec<u64> = dist.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        if got == reference::dijkstra(&self.graph, self.source) {
            Verification::Passed
        } else {
            Verification::Failed("SSSP distances differ from Dijkstra".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn bfs_verifies_and_has_many_invocations() {
        let w = Bfs::new(24, 24, 1, Bfs::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        // One invocation per level: at least the grid dimension.
        assert!(trace.invocations() >= 24, "got {}", trace.invocations());
        // Vertex-parallel: every invocation processes |V| items.
        assert!(trace.sizes.iter().all(|&s| s == 576));
    }

    #[test]
    fn cc_verifies() {
        let w = ConnectedComponents::new(16, 16, 2, ConnectedComponents::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert!(trace.invocations() >= 10);
    }

    #[test]
    fn sp_verifies_and_outlasts_bfs() {
        let seed = 3;
        let bfs = Bfs::new(20, 20, seed, Bfs::default_profile());
        let sp = ShortestPath::new(20, 20, seed, ShortestPath::default_profile());
        let (bt, bv) = record_trace(&bfs);
        let (st, sv) = record_trace(&sp);
        assert!(bv.is_passed() && sv.is_passed());
        // Weighted relaxation needs more rounds than hop-count BFS
        // (matches Table 1: SP 2577 > BFS 1748 invocations).
        assert!(
            st.invocations() > bt.invocations(),
            "sp {} vs bfs {}",
            st.invocations(),
            bt.invocations()
        );
    }

    #[test]
    fn all_three_classify_memory_bound() {
        let p = Platform::haswell_desktop();
        for traits in [
            Bfs::new(8, 8, 0, Bfs::default_profile()).traits_for(&p),
            ConnectedComponents::new(8, 8, 0, ConnectedComponents::default_profile())
                .traits_for(&p),
            ShortestPath::new(8, 8, 0, ShortestPath::default_profile()).traits_for(&p),
        ] {
            assert!(traits.l3_miss_ratio(p.memory.llc_bytes) > 0.33, "{traits}");
        }
    }

    #[test]
    fn none_run_on_tablet() {
        assert!(
            !Bfs::new(4, 4, 0, Bfs::default_profile())
                .spec()
                .runs_on_tablet
        );
        assert!(
            !ConnectedComponents::new(4, 4, 0, ConnectedComponents::default_profile())
                .spec()
                .runs_on_tablet
        );
        assert!(
            !ShortestPath::new(4, 4, 0, ShortestPath::default_profile())
                .spec()
                .runs_on_tablet
        );
    }

    #[test]
    fn bfs_serial_invoker_direct() {
        let w = Bfs::new(10, 10, 5, Bfs::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }
}
