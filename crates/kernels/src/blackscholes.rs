//! Black-Scholes option pricing (PARSEC's `blackscholes`, Table 1 "BS").
//!
//! Regular, compute-bound, short kernels invoked many times (2000 in the
//! paper). Each item prices one European option (call and put) with the
//! closed-form Black-Scholes formula; verification checks put-call parity
//! and a serial recomputation of sampled items.

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};

/// One option contract.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Option_ {
    spot: f64,
    strike: f64,
    rate: f64,
    volatility: f64,
    expiry: f64,
}

/// Standard normal CDF via the Abramowitz-Stegun rational approximation
/// (the same approximation PARSEC uses).
fn norm_cdf(x: f64) -> f64 {
    let neg = x < 0.0;
    let x = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * x);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let pdf = (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let cdf = 1.0 - pdf * poly;
    if neg {
        1.0 - cdf
    } else {
        cdf
    }
}

/// Closed-form Black-Scholes price; returns `(call, put)`.
fn price(o: &Option_) -> (f64, f64) {
    let sqrt_t = o.expiry.sqrt();
    let d1 = ((o.spot / o.strike).ln() + (o.rate + o.volatility * o.volatility / 2.0) * o.expiry)
        / (o.volatility * sqrt_t);
    let d2 = d1 - o.volatility * sqrt_t;
    let discount = (-o.rate * o.expiry).exp();
    let call = o.spot * norm_cdf(d1) - o.strike * discount * norm_cdf(d2);
    let put = o.strike * discount * norm_cdf(-d2) - o.spot * norm_cdf(-d1);
    (call, put)
}

/// The Black-Scholes workload: `invocations` pricing passes over a fixed
/// portfolio of `options` contracts.
#[derive(Debug)]
pub struct BlackScholes {
    options: Vec<Option_>,
    invocations: u32,
    profile: Profile,
}

impl BlackScholes {
    /// Creates a portfolio of `n_options` seeded contracts priced
    /// `invocations` times.
    ///
    /// # Panics
    ///
    /// Panics if `n_options` or `invocations` is zero.
    pub fn new(n_options: u32, invocations: u32, seed: u64, profile: Profile) -> Self {
        assert!(n_options > 0 && invocations > 0, "sizes must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let options = (0..n_options)
            .map(|_| Option_ {
                spot: rng.gen_range(20.0..120.0),
                strike: rng.gen_range(20.0..120.0),
                rate: rng.gen_range(0.01..0.08),
                volatility: rng.gen_range(0.1..0.6),
                expiry: rng.gen_range(0.2..2.0),
            })
            .collect();
        BlackScholes {
            options,
            invocations,
            profile,
        }
    }

    /// Default calibration (see `profiles` module docs).
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 3.0e7,
                gpu_rate: 9.0e7,
                mem_intensity: 0.10,
                access: AccessPattern::Streaming,
                working_set: 64 * 1024 * 20, // 64K options × 20 B
                bus_fraction: 0.15,
                irregularity: 0.03,
                instr_per_item: 250.0,
                loads_per_item: 40.0,
            },
            tablet: Calib {
                cpu_rate: 2.8e6,
                gpu_rate: 4.1e6,
                mem_intensity: 0.10,
                access: AccessPattern::Streaming,
                working_set: 2_621_440 * 20, // paper tablet input
                bus_fraction: 0.15,
                irregularity: 0.03,
                instr_per_item: 250.0,
                loads_per_item: 40.0,
            },
        }
    }
}

impl Workload for BlackScholes {
    fn input_description(&self) -> String {
        format!(
            "{} options, {} passes",
            self.options.len(),
            self.invocations
        )
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Blackscholes",
            abbrev: "BS",
            regular: true,
            runs_on_tablet: true,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("BS", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.options.len();
        let calls: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let puts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..self.invocations {
            invoker.invoke(n as u64, &|i| {
                let (c, p) = price(&self.options[i]);
                calls[i].store((c as f32).to_bits(), Ordering::Relaxed);
                puts[i].store((p as f32).to_bits(), Ordering::Relaxed);
            });
        }
        // Verify: put-call parity C − P = S − K·e^{−rT} and a serial spot
        // check of every 97th option.
        for (i, o) in self.options.iter().enumerate() {
            let c = f64::from(f32::from_bits(calls[i].load(Ordering::Relaxed)));
            let p = f64::from(f32::from_bits(puts[i].load(Ordering::Relaxed)));
            let parity = o.spot - o.strike * (-o.rate * o.expiry).exp();
            if (c - p - parity).abs() > 1e-2 {
                return Verification::Failed(format!(
                    "put-call parity violated at {i}: C-P={} vs {}",
                    c - p,
                    parity
                ));
            }
            if i % 97 == 0 {
                let (rc, rp) = price(o);
                if (c - rc).abs() > 1e-3 || (p - rp).abs() > 1e-3 {
                    return Verification::Failed(format!("price mismatch at {i}"));
                }
            }
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn norm_cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(norm_cdf(8.0) > 0.999999);
    }

    #[test]
    fn atm_option_price_sane() {
        // At-the-money call with 20% vol, 1y, zero rate ≈ 0.0796·S.
        let o = Option_ {
            spot: 100.0,
            strike: 100.0,
            rate: 0.0,
            volatility: 0.2,
            expiry: 1.0,
        };
        let (c, p) = price(&o);
        assert!((c - 7.96).abs() < 0.05, "call {c}");
        assert!((c - p).abs() < 1e-9, "ATM zero-rate call=put");
    }

    #[test]
    fn deep_itm_call_approaches_intrinsic() {
        let o = Option_ {
            spot: 200.0,
            strike: 10.0,
            rate: 0.05,
            volatility: 0.2,
            expiry: 0.5,
        };
        let (c, _) = price(&o);
        let intrinsic = 200.0 - 10.0 * (-0.05f64 * 0.5).exp();
        assert!((c - intrinsic).abs() < 0.01);
    }

    #[test]
    fn workload_verifies() {
        let w = BlackScholes::new(512, 3, 1, BlackScholes::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn trace_shape() {
        let w = BlackScholes::new(256, 5, 2, BlackScholes::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert_eq!(trace.invocations(), 5);
        assert!(trace.sizes.iter().all(|&s| s == 256));
    }

    #[test]
    fn classifies_compute_bound_on_both_platforms() {
        let w = BlackScholes::new(64, 1, 3, BlackScholes::default_profile());
        for p in [Platform::haswell_desktop(), Platform::baytrail_tablet()] {
            let t = w.traits_for(&p);
            assert!(
                t.l3_miss_ratio(p.memory.llc_bytes) < 0.33,
                "BS must classify compute-bound on {}",
                p.name
            );
        }
    }

    #[test]
    fn deterministic_construction() {
        let a = BlackScholes::new(64, 1, 9, BlackScholes::default_profile());
        let b = BlackScholes::new(64, 1, 9, BlackScholes::default_profile());
        assert_eq!(a.options, b.options);
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn rejects_zero_options() {
        BlackScholes::new(0, 1, 0, BlackScholes::default_profile());
    }
}
