//! The workload abstraction shared by the runtime, scheduler, and harness.
//!
//! A [`Workload`] is a complete application in the paper's sense: it invokes
//! one data-parallel kernel one or more times (Table 1, column 5), with the
//! number of parallel iterations N potentially varying per invocation
//! (frontier algorithms). The workload drives execution through an
//! [`Invoker`], which decides *where* items run:
//!
//! * [`SerialInvoker`] executes items inline (tests, verification);
//! * [`TraceRecorder`] executes inline *and* records the invocation sizes,
//!   producing an [`InvocationTrace`] that the evaluation harness replays
//!   through schedulers on the simulated machine (trace-driven simulation);
//! * the runtime crate provides invokers that partition items between the
//!   CPU pool and the GPU.
//!
//! Item processing functions must be thread-safe (`Sync`): the heterogeneous
//! runtime calls them concurrently from many workers.

use easched_sim::{KernelTraits, Platform};

/// Static description of a workload (Table 1 metadata).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Full name, e.g. "Connected Component".
    pub name: &'static str,
    /// Table 1 abbreviation, e.g. "CC".
    pub abbrev: &'static str,
    /// Regular (R) vs irregular (IR) control flow.
    pub regular: bool,
    /// Whether the workload runs on the 32-bit tablet (five of the twelve do
    /// not — Table 1 marks their tablet inputs N/A).
    pub runs_on_tablet: bool,
}

/// Result of functionally executing a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verification {
    /// Output matched the reference/invariant check.
    Passed,
    /// Output was wrong; the message says how.
    Failed(String),
}

impl Verification {
    /// True if verification passed.
    pub fn is_passed(&self) -> bool {
        matches!(self, Verification::Passed)
    }
}

/// Executes kernel invocations on behalf of a workload.
pub trait Invoker {
    /// Runs one data-parallel kernel invocation of `n` independent items.
    /// Must execute `process(i)` exactly once for every `i < n` (on any
    /// thread, in any order) before returning.
    fn invoke(&mut self, n: u64, process: &(dyn Fn(usize) + Sync));
}

/// An invoker that executes all items inline on the calling thread.
///
/// # Examples
///
/// ```
/// use easched_kernels::workload::{Invoker, SerialInvoker};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let sum = AtomicU64::new(0);
/// SerialInvoker.invoke(10, &|i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 45);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialInvoker;

impl Invoker for SerialInvoker {
    fn invoke(&mut self, n: u64, process: &(dyn Fn(usize) + Sync)) {
        for i in 0..n as usize {
            process(i);
        }
    }
}

/// The per-invocation item counts of one workload execution.
///
/// Replaying a trace through the simulator is the harness's fast path: the
/// invocation structure of these applications does not depend on how items
/// were partitioned, so one functional execution determines the sizes and
/// every scheduling scheme replays them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InvocationTrace {
    /// N for each kernel invocation, in order.
    pub sizes: Vec<u64>,
}

impl InvocationTrace {
    /// Total items across all invocations.
    pub fn total_items(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Number of invocations.
    pub fn invocations(&self) -> usize {
        self.sizes.len()
    }
}

/// An invoker that executes inline and records invocation sizes.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    trace: InvocationTrace,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_trace(self) -> InvocationTrace {
        self.trace
    }
}

impl Invoker for TraceRecorder {
    fn invoke(&mut self, n: u64, process: &(dyn Fn(usize) + Sync)) {
        self.trace.sizes.push(n);
        for i in 0..n as usize {
            process(i);
        }
    }
}

/// A complete benchmark application.
pub trait Workload: Send + Sync {
    /// Table 1 metadata.
    fn spec(&self) -> WorkloadSpec;

    /// Human-readable input description (Table 1's "Input" column), e.g.
    /// `"1M bodies, 1 step"`.
    fn input_description(&self) -> String {
        String::new()
    }

    /// The kernel's simulation profile on `platform` (timing rates, power
    /// class, counter footprint). The *scheduler* never sees this — it flows
    /// only to the simulated machine, preserving the black-box discipline.
    fn traits_for(&self, platform: &Platform) -> KernelTraits;

    /// Executes the application, issuing every kernel invocation through
    /// `invoker`, and verifies the final output.
    fn drive(&self, invoker: &mut dyn Invoker) -> Verification;
}

/// Runs `workload` once with a [`TraceRecorder`], returning the invocation
/// trace and the verification outcome.
///
/// # Examples
///
/// ```
/// use easched_kernels::suite;
/// use easched_kernels::workload::record_trace;
///
/// let w = suite::blackscholes_small();
/// let (trace, v) = record_trace(w.as_ref());
/// assert!(v.is_passed());
/// assert!(trace.invocations() >= 1);
/// ```
pub fn record_trace(workload: &dyn Workload) -> (InvocationTrace, Verification) {
    let mut rec = TraceRecorder::new();
    let v = workload.drive(&mut rec);
    (rec.into_trace(), v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Doubler;

    impl Workload for Doubler {
        fn spec(&self) -> WorkloadSpec {
            WorkloadSpec {
                name: "Doubler",
                abbrev: "DBL",
                regular: true,
                runs_on_tablet: true,
            }
        }

        fn traits_for(&self, _platform: &Platform) -> KernelTraits {
            KernelTraits::builder("dbl").build()
        }

        fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
            let acc = AtomicU64::new(0);
            invoker.invoke(4, &|i| {
                acc.fetch_add(2 * i as u64, Ordering::Relaxed);
            });
            invoker.invoke(2, &|i| {
                acc.fetch_add(2 * i as u64, Ordering::Relaxed);
            });
            if acc.load(Ordering::Relaxed) == 14 {
                Verification::Passed
            } else {
                Verification::Failed(format!("sum {}", acc.load(Ordering::Relaxed)))
            }
        }
    }

    #[test]
    fn serial_invoker_executes_all_items() {
        let v = Doubler.drive(&mut SerialInvoker);
        assert!(v.is_passed());
    }

    #[test]
    fn trace_recorder_captures_sizes() {
        let (trace, v) = record_trace(&Doubler);
        assert!(v.is_passed());
        assert_eq!(trace.sizes, vec![4, 2]);
        assert_eq!(trace.total_items(), 6);
        assert_eq!(trace.invocations(), 2);
    }

    #[test]
    fn verification_accessors() {
        assert!(Verification::Passed.is_passed());
        assert!(!Verification::Failed("x".into()).is_passed());
    }

    #[test]
    fn empty_trace_defaults() {
        let t = InvocationTrace::default();
        assert_eq!(t.total_items(), 0);
        assert_eq!(t.invocations(), 0);
    }
}
