//! Skip-list search (Table 1 "SL").
//!
//! Irregular, memory-bound, single long kernel invocation. A skip list is
//! built serially over `n_keys` keys (deterministic tower heights from key
//! hashes), then the kernel performs `n_lookups` parallel searches — pure
//! pointer chasing with input-dependent descent paths, the most
//! cache-hostile access pattern in the suite.
//!
//! Verification: every lookup's present/absent answer must match a
//! `BTreeSet` oracle.

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

const MAX_LEVEL: usize = 24;
const NIL: u32 = u32::MAX;

/// Arena-allocated skip list over `u64` keys (index-based links — no
/// unsafe).
#[derive(Debug)]
struct SkipListIndex {
    keys: Vec<u64>,
    /// `next[node * MAX_LEVEL + level]`.
    next: Vec<u32>,
    /// Heads per level.
    head: [u32; MAX_LEVEL],
    levels: usize,
}

/// Deterministic tower height from the key's hash: geometric(1/2).
fn height_of(key: u64) -> usize {
    let h = easched_sim::noise::splitmix64(key);
    ((h.trailing_ones() as usize) + 1).min(MAX_LEVEL)
}

impl SkipListIndex {
    /// Builds from a sorted, deduplicated key slice.
    #[allow(clippy::needless_range_loop)] // level indexes two parallel arrays
    fn build(sorted_keys: &[u64]) -> SkipListIndex {
        let n = sorted_keys.len();
        let mut list = SkipListIndex {
            keys: sorted_keys.to_vec(),
            next: vec![NIL; n * MAX_LEVEL],
            head: [NIL; MAX_LEVEL],
            levels: 1,
        };
        // Last-seen node per level, walking keys in order.
        let mut tail: [u32; MAX_LEVEL] = [NIL; MAX_LEVEL];
        for (i, &key) in sorted_keys.iter().enumerate() {
            let h = height_of(key);
            list.levels = list.levels.max(h);
            for level in 0..h {
                if tail[level] == NIL {
                    list.head[level] = i as u32;
                } else {
                    list.next[tail[level] as usize * MAX_LEVEL + level] = i as u32;
                }
                tail[level] = i as u32;
            }
        }
        list
    }

    /// Standard skip-list search: descend from the top level.
    fn contains(&self, key: u64) -> bool {
        let mut level = self.levels - 1;
        let mut node = NIL; // "before head" sentinel
        loop {
            // Advance along this level while the next key is <= target.
            loop {
                let nxt = if node == NIL {
                    self.head[level]
                } else {
                    self.next[node as usize * MAX_LEVEL + level]
                };
                if nxt == NIL || self.keys[nxt as usize] > key {
                    break;
                }
                if self.keys[nxt as usize] == key {
                    return true;
                }
                node = nxt;
            }
            if level == 0 {
                return false;
            }
            level -= 1;
        }
    }
}

/// The skip-list workload.
#[derive(Debug)]
pub struct SkipList {
    keys: Vec<u64>,
    queries: Vec<u64>,
    oracle: BTreeSet<u64>,
    profile: Profile,
}

impl SkipList {
    /// Builds a list of `n_keys` random keys and a query batch of
    /// `n_lookups` (half hits, half misses in expectation).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_keys: usize, n_lookups: usize, seed: u64, profile: Profile) -> Self {
        assert!(n_keys > 0 && n_lookups > 0, "counts must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        // Even keys only, so odd probes are guaranteed misses.
        let mut set = BTreeSet::new();
        while set.len() < n_keys {
            set.insert(rng.gen::<u64>() & !1);
        }
        let keys: Vec<u64> = set.iter().copied().collect();
        let queries = (0..n_lookups)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    keys[rng.gen_range(0..keys.len())] // guaranteed hit
                } else {
                    rng.gen::<u64>() | 1 // guaranteed miss
                }
            })
            .collect();
        SkipList {
            keys,
            queries,
            oracle: set,
            profile,
        }
    }

    /// Default calibration: pointer-chasing, the largest working set in the
    /// suite (paper: 500 M keys on the desktop, 45 M on the tablet). The
    /// GPU's latency-hiding threads give it a modest edge despite the
    /// serial dependent loads.
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 6.0e5,
                gpu_rate: 9.3e5,
                mem_intensity: 1.0,
                access: AccessPattern::PointerChase,
                working_set: 2 << 30,
                bus_fraction: 1.05,
                irregularity: 0.30,
                instr_per_item: 600.0,
                loads_per_item: 200.0,
            },
            tablet: Calib {
                cpu_rate: 9.0e4,
                gpu_rate: 1.35e5,
                mem_intensity: 1.0,
                access: AccessPattern::PointerChase,
                working_set: 45_000_000 * 24,
                bus_fraction: 1.05,
                irregularity: 0.30,
                instr_per_item: 600.0,
                loads_per_item: 200.0,
            },
        }
    }
}

impl Workload for SkipList {
    fn input_description(&self) -> String {
        format!("{} keys, {} lookups", self.keys.len(), self.queries.len())
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "SkipList",
            abbrev: "SL",
            regular: false,
            runs_on_tablet: true,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("SL", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let list = SkipListIndex::build(&self.keys);
        let found: Vec<AtomicBool> = (0..self.queries.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        {
            let l = &list;
            let q = &self.queries;
            let f = &found;
            invoker.invoke(self.queries.len() as u64, &|i| {
                f[i].store(l.contains(q[i]), Ordering::Relaxed);
            });
        }
        for (i, q) in self.queries.iter().enumerate() {
            let got = found[i].load(Ordering::Relaxed);
            let want = self.oracle.contains(q);
            if got != want {
                return Verification::Failed(format!("query {i} (key {q}): {got} vs {want}"));
            }
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn build_and_search_small() {
        let list = SkipListIndex::build(&[2, 4, 8, 16, 32]);
        for k in [2u64, 4, 8, 16, 32] {
            assert!(list.contains(k), "key {k}");
        }
        for k in [0u64, 3, 5, 31, 33, u64::MAX] {
            assert!(!list.contains(k), "key {k}");
        }
    }

    #[test]
    fn single_key_list() {
        let list = SkipListIndex::build(&[42]);
        assert!(list.contains(42));
        assert!(!list.contains(41));
        assert!(!list.contains(43));
    }

    #[test]
    fn heights_are_geometric_ish() {
        let mut counts = [0usize; MAX_LEVEL + 1];
        for k in 0..100_000u64 {
            counts[height_of(k * 2)] += 1;
        }
        // Roughly half the towers have height 1, a quarter height 2, …
        assert!((counts[1] as f64 / 100_000.0 - 0.5).abs() < 0.02);
        assert!((counts[2] as f64 / 100_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn towers_accelerate_search() {
        // The top level of a 100k-key list should be far shorter than the
        // bottom (otherwise it degenerates to a linked list).
        let keys: Vec<u64> = (0..100_000u64).map(|i| i * 2).collect();
        let list = SkipListIndex::build(&keys);
        assert!(list.levels >= 10, "levels {}", list.levels);
    }

    #[test]
    fn workload_verifies() {
        let w = SkipList::new(5_000, 10_000, 1, SkipList::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn single_invocation_of_all_lookups() {
        let w = SkipList::new(100, 300, 2, SkipList::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert_eq!(trace.sizes, vec![300]);
    }

    #[test]
    fn classifies_memory_bound_both_platforms() {
        let w = SkipList::new(16, 16, 3, SkipList::default_profile());
        for p in [Platform::haswell_desktop(), Platform::baytrail_tablet()] {
            assert!(w.traits_for(&p).l3_miss_ratio(p.memory.llc_bytes) > 0.33);
        }
    }

    #[test]
    fn tablet_gpu_advantage_is_modest() {
        let w = SkipList::new(16, 16, 3, SkipList::default_profile());
        let t = w.traits_for(&Platform::baytrail_tablet());
        let ratio = t.gpu_rate() / t.cpu_rate();
        assert!((1.0..2.0).contains(&ratio), "ratio {ratio}");
    }
}
