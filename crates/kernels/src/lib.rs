//! The CGO'16 evaluation workloads for `easched`.
//!
//! Twelve benchmark applications (Table 1) plus the eight
//! power-characterization micro-benchmarks (§2), each implemented as a real
//! algorithm behind the [`workload::Workload`] abstraction:
//!
//! | Abbrev | Workload | Kind | Module |
//! |---|---|---|---|
//! | BH | Barnes-Hut force calculation | irregular, memory | [`barnes_hut`] |
//! | BFS | Breadth-first search | irregular, memory | [`graphs`] |
//! | CC | Connected components | irregular, memory | [`graphs`] |
//! | FD | Face detection cascade | irregular, compute, CPU-biased | [`face_detect`] |
//! | MB | Mandelbrot | irregular, memory | [`mandelbrot`] |
//! | SL | Skip-list search | irregular, memory | [`skiplist`] |
//! | SP | Shortest path | irregular, memory | [`graphs`] |
//! | BS | Black-Scholes | regular, compute | [`blackscholes`] |
//! | MM | Matrix multiply | regular, compute | [`matmul`] |
//! | NB | N-Body | regular, compute | [`nbody`] |
//! | RT | Ray tracer | regular, compute | [`raytracer`] |
//! | SM | Seismic wave propagation | regular, memory | [`seismic`] |
//!
//! Every workload functionally verifies its output (against serial
//! references, closed-form solutions, or conservation laws) and carries a
//! calibrated per-platform simulation profile ([`profiles`]).
//!
//! # Examples
//!
//! ```
//! use easched_kernels::suite;
//! use easched_kernels::workload::{record_trace, Workload};
//!
//! let w = suite::mandelbrot_small();
//! let (trace, verification) = record_trace(w.as_ref());
//! assert!(verification.is_passed());
//! assert_eq!(trace.invocations(), 1); // MB is a single-invocation kernel
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes_hut;
pub mod blackscholes;
pub mod face_detect;
pub mod graphs;
pub mod mandelbrot;
pub mod matmul;
pub mod microbench;
pub mod nbody;
pub mod profiles;
pub mod raytracer;
pub mod seismic;
pub mod skiplist;
pub mod suite;
pub mod workload;

pub use profiles::{Calib, PlatformKind, Profile};
pub use workload::{
    record_trace, InvocationTrace, Invoker, SerialInvoker, TraceRecorder, Verification, Workload,
    WorkloadSpec,
};
