//! Dense matrix multiplication (Table 1 "MM").
//!
//! Regular, compute-bound, single long kernel invocation. Each item computes
//! one element of C = A·B. The classic GPU-friendly workload: the paper's
//! desktop GPU wins by a wide margin.

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};

/// Square matrix multiply workload: C = A·B with `n × n` matrices.
#[derive(Debug)]
pub struct MatMul {
    n: usize,
    a: Vec<f32>,
    b: Vec<f32>,
    profile: Profile,
}

impl MatMul {
    /// Creates an `n × n` multiply with seeded inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, seed: u64, profile: Profile) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        MatMul { n, a, b, profile }
    }

    /// Default calibration: GPU ≈ 3.2× CPU on the desktop, ≈ 1.8× on the
    /// tablet.
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 2.2e5,
                gpu_rate: 7.0e5,
                mem_intensity: 0.15,
                access: AccessPattern::Strided,
                working_set: 3 * 2048 * 2048 * 4, // paper: 2048×2048 ×3 matrices
                bus_fraction: 0.35,
                irregularity: 0.02,
                instr_per_item: 2600.0,
                loads_per_item: 1040.0,
            },
            tablet: Calib {
                cpu_rate: 1.2e4,
                gpu_rate: 2.2e4,
                mem_intensity: 0.15,
                access: AccessPattern::Strided,
                working_set: 3 * 1024 * 1024 * 4,
                bus_fraction: 0.35,
                irregularity: 0.02,
                instr_per_item: 1300.0,
                loads_per_item: 520.0,
            },
        }
    }

    fn element(&self, row: usize, col: usize) -> f32 {
        let n = self.n;
        let mut acc = 0.0f32;
        for k in 0..n {
            acc += self.a[row * n + k] * self.b[k * n + col];
        }
        acc
    }
}

impl Workload for MatMul {
    fn input_description(&self) -> String {
        format!("{0} by {0}", self.n)
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Matrix Multiply",
            abbrev: "MM",
            regular: true,
            runs_on_tablet: true,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("MM", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.n;
        let c: Vec<AtomicU32> = (0..n * n).map(|_| AtomicU32::new(0)).collect();
        invoker.invoke((n * n) as u64, &|i| {
            let (row, col) = (i / n, i % n);
            c[i].store(self.element(row, col).to_bits(), Ordering::Relaxed);
        });
        // Verify a pseudo-random sample of entries serially (full recompute
        // would double the dominant cost for zero extra coverage).
        let samples = (n * n / 50).clamp(16, 4096);
        let mut idx = 0usize;
        for s in 0..samples {
            idx = (idx.wrapping_mul(6364136223846793005).wrapping_add(s)) % (n * n);
            let (row, col) = (idx / n, idx % n);
            let got = f32::from_bits(c[idx].load(Ordering::Relaxed));
            let want = self.element(row, col);
            if got != want {
                return Verification::Failed(format!("C[{row},{col}] = {got}, want {want}"));
            }
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn identity_times_matrix() {
        // Construct A=I manually and check C == B.
        let mut mm = MatMul::new(4, 0, MatMul::default_profile());
        mm.a.fill(0.0);
        for i in 0..4 {
            mm.a[i * 4 + i] = 1.0;
        }
        let n = 4;
        for r in 0..n {
            for cidx in 0..n {
                assert_eq!(mm.element(r, cidx), mm.b[r * n + cidx]);
            }
        }
    }

    #[test]
    fn workload_verifies() {
        let w = MatMul::new(24, 1, MatMul::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn single_invocation_of_n_squared_items() {
        let w = MatMul::new(16, 2, MatMul::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert_eq!(trace.sizes, vec![256]);
    }

    #[test]
    fn classifies_compute_bound() {
        let w = MatMul::new(8, 3, MatMul::default_profile());
        for p in [Platform::haswell_desktop(), Platform::baytrail_tablet()] {
            let t = w.traits_for(&p);
            assert!(t.l3_miss_ratio(p.memory.llc_bytes) < 0.33, "{}", p.name);
        }
    }

    #[test]
    fn gpu_favored_on_desktop() {
        let w = MatMul::new(8, 3, MatMul::default_profile());
        let t = w.traits_for(&Platform::haswell_desktop());
        let ratio = t.gpu_rate() / t.cpu_rate();
        assert!((1.5..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "matrix dimension must be positive")]
    fn rejects_zero_dim() {
        MatMul::new(0, 0, MatMul::default_profile());
    }
}
