//! Sphere-scene ray tracer (Table 1 "RT").
//!
//! Regular, compute-bound, single long kernel invocation: one item per
//! pixel, each casting a primary ray against every sphere, shading with
//! point lights (diffuse + specular), plus one reflection bounce.
//! Verification re-renders serially and compares bitwise (identical
//! operations per pixel → identical floats).

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};

type Vec3 = [f32; 3];

fn dot(a: Vec3, b: Vec3) -> f32 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn sub(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn add(a: Vec3, b: Vec3) -> Vec3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn scale(a: Vec3, s: f32) -> Vec3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

fn normalize(a: Vec3) -> Vec3 {
    let len = dot(a, a).sqrt();
    if len > 0.0 {
        scale(a, 1.0 / len)
    } else {
        a
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Sphere {
    center: Vec3,
    radius: f32,
    color: Vec3,
    specular: f32,
    reflect: f32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Light {
    pos: Vec3,
    intensity: f32,
}

/// Ray-sphere intersection: smallest positive t, or None.
fn hit(sphere: &Sphere, origin: Vec3, dir: Vec3) -> Option<f32> {
    let oc = sub(origin, sphere.center);
    let b = 2.0 * dot(oc, dir);
    let c = dot(oc, oc) - sphere.radius * sphere.radius;
    let disc = b * b - 4.0 * c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t1 = (-b - sq) / 2.0;
    let t2 = (-b + sq) / 2.0;
    if t1 > 1e-3 {
        Some(t1)
    } else if t2 > 1e-3 {
        Some(t2)
    } else {
        None
    }
}

const BACKGROUND: Vec3 = [0.05, 0.05, 0.1];

/// The ray tracer workload.
#[derive(Debug)]
pub struct RayTracer {
    width: usize,
    height: usize,
    spheres: Vec<Sphere>,
    lights: Vec<Light>,
    profile: Profile,
}

impl RayTracer {
    /// Creates a `width × height` render of `n_spheres` seeded spheres lit
    /// by `n_lights` point lights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or count is zero.
    pub fn new(
        width: usize,
        height: usize,
        n_spheres: usize,
        n_lights: usize,
        seed: u64,
        profile: Profile,
    ) -> Self {
        assert!(
            width > 0 && height > 0 && n_spheres > 0 && n_lights > 0,
            "dimensions and counts must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let spheres = (0..n_spheres)
            .map(|_| Sphere {
                center: [
                    rng.gen_range(-4.0..4.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(3.0..12.0),
                ],
                radius: rng.gen_range(0.2..0.8),
                color: [
                    rng.gen_range(0.1..1.0),
                    rng.gen_range(0.1..1.0),
                    rng.gen_range(0.1..1.0),
                ],
                specular: rng.gen_range(8.0..64.0),
                reflect: rng.gen_range(0.0..0.4),
            })
            .collect();
        let lights = (0..n_lights)
            .map(|_| Light {
                pos: [
                    rng.gen_range(-6.0..6.0),
                    rng.gen_range(2.0..6.0),
                    rng.gen_range(-2.0..4.0),
                ],
                intensity: rng.gen_range(0.4..1.0),
            })
            .collect();
        RayTracer {
            width,
            height,
            spheres,
            lights,
            profile,
        }
    }

    /// Default calibration: GPU ≈ 2.8× CPU on the desktop.
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 1.3e5,
                gpu_rate: 3.4e5,
                mem_intensity: 0.10,
                access: AccessPattern::Random,
                working_set: 256 * 48, // scene fits in cache
                bus_fraction: 0.10,
                irregularity: 0.05,
                instr_per_item: 5_000.0,
                loads_per_item: 1_500.0,
            },
            tablet: Calib {
                cpu_rate: 2.4e4,
                gpu_rate: 3.5e4,
                mem_intensity: 0.10,
                access: AccessPattern::Random,
                working_set: 225 * 48,
                bus_fraction: 0.10,
                irregularity: 0.05,
                instr_per_item: 4_000.0,
                loads_per_item: 1_200.0,
            },
        }
    }

    fn nearest(&self, origin: Vec3, dir: Vec3) -> Option<(usize, f32)> {
        let mut best: Option<(usize, f32)> = None;
        for (i, s) in self.spheres.iter().enumerate() {
            if let Some(t) = hit(s, origin, dir) {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        best
    }

    fn shade(&self, origin: Vec3, dir: Vec3, depth: u32) -> Vec3 {
        let Some((si, t)) = self.nearest(origin, dir) else {
            return BACKGROUND;
        };
        let sphere = &self.spheres[si];
        let point = add(origin, scale(dir, t));
        let normal = normalize(sub(point, sphere.center));
        let mut color = scale(sphere.color, 0.08); // ambient
        for light in &self.lights {
            let to_light = normalize(sub(light.pos, point));
            // Shadow test.
            let blocked = self
                .nearest(point, to_light)
                .is_some_and(|(_, st)| st < dot(sub(light.pos, point), to_light));
            if blocked {
                continue;
            }
            let diffuse = dot(normal, to_light).max(0.0) * light.intensity;
            color = add(color, scale(sphere.color, diffuse));
            let reflect_dir = sub(scale(normal, 2.0 * dot(normal, to_light)), to_light);
            let spec = dot(reflect_dir, scale(dir, -1.0))
                .max(0.0)
                .powf(sphere.specular)
                * light.intensity;
            color = add(color, [spec, spec, spec]);
        }
        if depth > 0 && sphere.reflect > 0.0 {
            let rdir = normalize(sub(dir, scale(normal, 2.0 * dot(dir, normal))));
            let reflected = self.shade(point, rdir, depth - 1);
            color = add(
                scale(color, 1.0 - sphere.reflect),
                scale(reflected, sphere.reflect),
            );
        }
        color
    }

    /// Renders pixel `i` (row-major) to a packed RGB f32 triple.
    fn render_pixel(&self, i: usize) -> [f32; 3] {
        let (x, y) = (i % self.width, i / self.width);
        let u = (x as f32 + 0.5) / self.width as f32 * 2.0 - 1.0;
        let v = 1.0 - (y as f32 + 0.5) / self.height as f32 * 2.0;
        let aspect = self.width as f32 / self.height as f32;
        let dir = normalize([u * aspect, v, 1.5]);
        self.shade([0.0, 0.0, -2.0], dir, 1)
    }
}

impl Workload for RayTracer {
    fn input_description(&self) -> String {
        format!(
            "{}x{}, {} spheres, {} lights",
            self.width,
            self.height,
            self.spheres.len(),
            self.lights.len()
        )
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Ray Tracer",
            abbrev: "RT",
            regular: true,
            runs_on_tablet: true,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("RT", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.width * self.height;
        let image: Vec<[AtomicU32; 3]> = (0..n).map(|_| Default::default()).collect();
        invoker.invoke(n as u64, &|i| {
            let c = self.render_pixel(i);
            for k in 0..3 {
                image[i][k].store(c[k].to_bits(), Ordering::Relaxed);
            }
        });
        // Serial re-render must match bitwise.
        for (i, px) in image.iter().enumerate() {
            let want = self.render_pixel(i);
            for k in 0..3 {
                let got = f32::from_bits(px[k].load(Ordering::Relaxed));
                if got != want[k] {
                    return Verification::Failed(format!(
                        "pixel {i} channel {k}: {got} vs {}",
                        want[k]
                    ));
                }
            }
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn ray_sphere_intersection() {
        let s = Sphere {
            center: [0.0, 0.0, 5.0],
            radius: 1.0,
            color: [1.0; 3],
            specular: 10.0,
            reflect: 0.0,
        };
        let t = hit(&s, [0.0, 0.0, 0.0], [0.0, 0.0, 1.0]).unwrap();
        assert!((t - 4.0).abs() < 1e-5);
        assert!(hit(&s, [0.0, 0.0, 0.0], [0.0, 1.0, 0.0]).is_none());
        // From inside: exits through far wall.
        let t = hit(&s, [0.0, 0.0, 5.0], [0.0, 0.0, 1.0]).unwrap();
        assert!((t - 1.0).abs() < 1e-5);
    }

    #[test]
    fn miss_renders_background() {
        // A scene whose only sphere is far off to the side.
        let mut rt = RayTracer::new(8, 8, 1, 1, 1, RayTracer::default_profile());
        rt.spheres[0].center = [100.0, 100.0, 50.0];
        let c = rt.render_pixel(0);
        assert_eq!(c, BACKGROUND);
    }

    #[test]
    fn workload_verifies() {
        let w = RayTracer::new(24, 18, 8, 2, 3, RayTracer::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn single_invocation_per_pixel() {
        let w = RayTracer::new(10, 6, 4, 1, 4, RayTracer::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert_eq!(trace.sizes, vec![60]);
    }

    #[test]
    fn lit_sphere_brighter_than_background() {
        let rt = RayTracer::new(64, 64, 24, 3, 5, RayTracer::default_profile());
        let mut max_lum = 0.0f32;
        for i in 0..64 * 64 {
            let c = rt.render_pixel(i);
            max_lum = max_lum.max(c[0] + c[1] + c[2]);
        }
        assert!(
            max_lum > BACKGROUND.iter().sum::<f32>() * 2.0,
            "scene all dark"
        );
    }

    #[test]
    fn classifies_compute_bound() {
        let w = RayTracer::new(8, 8, 4, 1, 6, RayTracer::default_profile());
        let p = Platform::haswell_desktop();
        assert!(w.traits_for(&p).l3_miss_ratio(p.memory.llc_bytes) < 0.33);
    }

    #[test]
    #[should_panic(expected = "dimensions and counts must be positive")]
    fn rejects_zero_lights() {
        RayTracer::new(8, 8, 4, 0, 0, RayTracer::default_profile());
    }
}
