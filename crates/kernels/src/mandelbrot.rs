//! Mandelbrot escape-time rendering (Table 1 "MB").
//!
//! Irregular (per-pixel iteration counts are input-dependent) with a single
//! long kernel invocation over all pixels. Table 1 classifies MB as
//! *memory-bound* at the paper's 7680×6144 scale — the image dwarfs the LLC
//! and writes stream straight to DRAM — and our calibration reproduces that
//! classification.

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use std::sync::atomic::{AtomicU32, Ordering};

/// Escape-time iteration count for pixel coordinates in the complex plane.
fn escape_time(cx: f64, cy: f64, max_iter: u32) -> u32 {
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut iter = 0;
    while x * x + y * y <= 4.0 && iter < max_iter {
        let xt = x * x - y * y + cx;
        y = 2.0 * x * y + cy;
        x = xt;
        iter += 1;
    }
    iter
}

/// The Mandelbrot workload: one invocation rendering a `width × height`
/// escape-time image of the region [−2.2, 1] × [−1.2, 1.2].
#[derive(Debug)]
pub struct Mandelbrot {
    width: usize,
    height: usize,
    max_iter: u32,
    profile: Profile,
}

impl Mandelbrot {
    /// Creates a render of the given size.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or `max_iter` is zero.
    pub fn new(width: usize, height: usize, max_iter: u32, profile: Profile) -> Self {
        assert!(
            width > 0 && height > 0 && max_iter > 0,
            "dimensions and max_iter must be positive"
        );
        Mandelbrot {
            width,
            height,
            max_iter,
            profile,
        }
    }

    /// Default calibration. Memory-bound per Table 1 (paper-scale image is
    /// 188 MB; writes and row walks stream past the LLC).
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 3.0e5,
                gpu_rate: 4.8e5,
                mem_intensity: 0.85,
                access: AccessPattern::Random,
                working_set: 7680 * 6144 * 4, // paper-scale image
                bus_fraction: 1.05,
                irregularity: 0.25,
                instr_per_item: 900.0,
                loads_per_item: 150.0,
            },
            tablet: Calib {
                cpu_rate: 3.5e4,
                gpu_rate: 6.0e4,
                mem_intensity: 0.85,
                access: AccessPattern::Random,
                working_set: 7680 * 6144 * 4, // same input on the tablet
                bus_fraction: 1.05,
                irregularity: 0.25,
                instr_per_item: 900.0,
                loads_per_item: 150.0,
            },
        }
    }

    fn pixel_coords(&self, i: usize) -> (f64, f64) {
        let (x, y) = (i % self.width, i / self.width);
        let cx = -2.2 + 3.2 * (x as f64 + 0.5) / self.width as f64;
        let cy = -1.2 + 2.4 * (y as f64 + 0.5) / self.height as f64;
        (cx, cy)
    }
}

impl Workload for Mandelbrot {
    fn input_description(&self) -> String {
        format!(
            "image {}x{}, {} iterations",
            self.width, self.height, self.max_iter
        )
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Mandelbrot",
            abbrev: "MB",
            regular: false,
            runs_on_tablet: true,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("MB", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.width * self.height;
        let image: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        invoker.invoke(n as u64, &|i| {
            let (cx, cy) = self.pixel_coords(i);
            image[i].store(escape_time(cx, cy, self.max_iter), Ordering::Relaxed);
        });
        // Serial recompute must match exactly; also require both interior
        // (max_iter) and escaping pixels to be present — the region straddles
        // the set boundary by construction.
        let mut interior = 0u64;
        let mut exterior = 0u64;
        for (i, px) in image.iter().enumerate() {
            let got = px.load(Ordering::Relaxed);
            let (cx, cy) = self.pixel_coords(i);
            let want = escape_time(cx, cy, self.max_iter);
            if got != want {
                return Verification::Failed(format!("pixel {i}: {got} vs {want}"));
            }
            if got == self.max_iter {
                interior += 1;
            } else {
                exterior += 1;
            }
        }
        if interior == 0 || exterior == 0 {
            return Verification::Failed(format!(
                "degenerate image: {interior} interior, {exterior} exterior"
            ));
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn known_points() {
        // Origin is in the set; far point escapes immediately.
        assert_eq!(escape_time(0.0, 0.0, 100), 100);
        assert_eq!(escape_time(2.0, 2.0, 100), 1);
        // c = −1 is periodic (in the set).
        assert_eq!(escape_time(-1.0, 0.0, 256), 256);
        // c = 0.26 sits just outside the cardioid cusp: escapes slowly.
        let t = escape_time(0.26, 0.0, 256);
        assert!(t > 5 && t < 256, "t={t}");
    }

    #[test]
    fn iteration_count_monotone_in_budget() {
        let a = escape_time(-0.75, 0.1, 50);
        let b = escape_time(-0.75, 0.1, 500);
        assert!(b >= a);
    }

    #[test]
    fn workload_verifies() {
        let w = Mandelbrot::new(48, 32, 64, Mandelbrot::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn single_invocation() {
        let w = Mandelbrot::new(20, 10, 32, Mandelbrot::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert_eq!(trace.sizes, vec![200]);
    }

    #[test]
    fn classifies_memory_bound_per_table1() {
        let w = Mandelbrot::new(8, 8, 16, Mandelbrot::default_profile());
        for p in [Platform::haswell_desktop(), Platform::baytrail_tablet()] {
            let t = w.traits_for(&p);
            assert!(
                t.l3_miss_ratio(p.memory.llc_bytes) > 0.33,
                "MB is memory-bound in Table 1 ({})",
                p.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "dimensions and max_iter must be positive")]
    fn rejects_zero_iter() {
        Mandelbrot::new(8, 8, 0, Mandelbrot::default_profile());
    }
}
