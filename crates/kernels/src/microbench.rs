//! The eight power-characterization micro-benchmarks (paper §2).
//!
//! The paper probes each platform's PCU with a cross-product of execution
//! characteristics: {memory-bound, compute-bound} × {short, long CPU-alone
//! execution} × {short, long GPU-alone execution}, sweeping the GPU offload
//! ratio and fitting a sixth-order polynomial to average package power
//! (Figures 5 and 6). This module defines those eight benchmarks — both
//! their simulation profiles (used by the characterization sweep) and real
//! functional kernels (an FMA loop and random memory updates, as described
//! in the paper) for the thread-runtime demos.

use crate::profiles::{kind_of, Calib, PlatformKind, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use std::sync::atomic::{AtomicU64, Ordering};

/// Items per micro-benchmark run; rates are chosen relative to this.
pub const MICRO_ITEMS: u64 = 1_000_000;

/// Duration targets: "short" solo runs finish well under the paper's 100 ms
/// threshold, "long" runs take on the order of a second. Within each
/// duration class the GPU:CPU rate ratio is set to the platform's typical
/// device-throughput ratio for that power class (≈1.5× for bandwidth-bound
/// work, ≈2.8× for compute-bound work), so each category's power curve
/// reflects the phase structure of real workloads in the category rather
/// than an artificial 1:1 split.
const CPU_SHORT_RATE: f64 = 1.3e7; // 1e6 items → 77 ms
const CPU_LONG_RATE: f64 = 8.0e5; // 1e6 items → 1.25 s

/// GPU:CPU rate tilt per power class and platform — the platform's typical
/// device-throughput ratio (the desktop's HD 4600 is a much stronger
/// accelerator than the tablet's 4-EU part).
fn gpu_tilt(kind: PlatformKind, memory_bound: bool) -> f64 {
    match (kind, memory_bound) {
        (PlatformKind::Desktop, true) => 1.5,
        (PlatformKind::Desktop, false) => 2.8,
        (PlatformKind::Tablet, true) => 1.7,
        (PlatformKind::Tablet, false) => 1.45,
    }
}

/// One of the eight characterization micro-benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroBenchmark {
    /// Memory-bound (true) or compute-bound.
    pub memory_bound: bool,
    /// CPU-alone execution finishes under the 100 ms threshold.
    pub cpu_short: bool,
    /// GPU-alone execution finishes under the 100 ms threshold.
    pub gpu_short: bool,
    /// Number of parallel iterations per run.
    pub items: u64,
    traits: KernelTraits,
}

impl MicroBenchmark {
    /// Builds the micro-benchmark for one corner of the cross-product,
    /// calibrated for `platform`.
    pub fn for_platform(
        platform: &Platform,
        memory_bound: bool,
        cpu_short: bool,
        gpu_short: bool,
    ) -> MicroBenchmark {
        Self::with_tilt(
            gpu_tilt(kind_of(platform), memory_bound),
            memory_bound,
            cpu_short,
            gpu_short,
        )
    }

    /// Builds the micro-benchmark with the desktop's calibration (see
    /// [`MicroBenchmark::for_platform`]).
    pub fn new(memory_bound: bool, cpu_short: bool, gpu_short: bool) -> MicroBenchmark {
        Self::with_tilt(
            gpu_tilt(PlatformKind::Desktop, memory_bound),
            memory_bound,
            cpu_short,
            gpu_short,
        )
    }

    fn with_tilt(
        tilt: f64,
        memory_bound: bool,
        cpu_short: bool,
        gpu_short: bool,
    ) -> MicroBenchmark {
        let name = format!(
            "micro-{}-cpu{}-gpu{}",
            if memory_bound { "mem" } else { "comp" },
            if cpu_short { "S" } else { "L" },
            if gpu_short { "S" } else { "L" },
        );
        let calib = Calib {
            cpu_rate: if cpu_short {
                CPU_SHORT_RATE
            } else {
                CPU_LONG_RATE
            },
            gpu_rate: tilt
                * if gpu_short {
                    CPU_SHORT_RATE
                } else {
                    CPU_LONG_RATE
                },
            mem_intensity: if memory_bound { 1.0 } else { 0.0 },
            access: if memory_bound {
                AccessPattern::Random
            } else {
                AccessPattern::Streaming
            },
            working_set: if memory_bound { 512 << 20 } else { 256 << 10 },
            bus_fraction: if memory_bound { 1.05 } else { 0.10 },
            irregularity: 0.0,
            instr_per_item: if memory_bound { 120.0 } else { 400.0 },
            loads_per_item: if memory_bound { 60.0 } else { 30.0 },
        };
        // The micro-benchmarks are duration-calibrated, so both platforms
        // use the same profile.
        let traits = calib.traits(&name, &Platform::haswell_desktop());
        MicroBenchmark {
            memory_bound,
            cpu_short,
            gpu_short,
            items: MICRO_ITEMS,
            traits,
        }
    }

    /// Simulation profile (identical on both platforms: the benchmarks are
    /// defined by their solo durations, not absolute rates).
    pub fn traits(&self) -> &KernelTraits {
        &self.traits
    }

    /// Category label in Figure 5/6 style, e.g. `"Memory, CPU Short, GPU
    /// Long"`.
    pub fn label(&self) -> String {
        format!(
            "{}, CPU {}, GPU {}",
            if self.memory_bound {
                "Memory"
            } else {
                "Compute"
            },
            if self.cpu_short { "Short" } else { "Long" },
            if self.gpu_short { "Short" } else { "Long" },
        )
    }
}

/// All eight micro-benchmarks for a platform, in Figure 5's order: compute
/// before memory, then (CPU S/L) × (GPU S/L).
///
/// # Examples
///
/// ```
/// use easched_kernels::microbench::characterization_suite;
/// use easched_sim::Platform;
/// let suite = characterization_suite(&Platform::haswell_desktop());
/// assert_eq!(suite.len(), 8);
/// assert!(!suite[0].memory_bound && suite[0].cpu_short && suite[0].gpu_short);
/// ```
pub fn characterization_suite(platform: &Platform) -> Vec<MicroBenchmark> {
    let mut out = Vec::with_capacity(8);
    for memory_bound in [false, true] {
        for cpu_short in [true, false] {
            for gpu_short in [true, false] {
                out.push(MicroBenchmark::for_platform(
                    platform,
                    memory_bound,
                    cpu_short,
                    gpu_short,
                ));
            }
        }
    }
    out
}

/// Functional compute-bound kernel body: `iters` fused multiply-adds, as in
/// the paper's compute micro-benchmark. Returns the accumulator so the work
/// cannot be optimized away.
///
/// ```
/// use easched_kernels::microbench::fma_loop;
/// assert!(fma_loop(1000, 3).is_finite());
/// ```
pub fn fma_loop(iters: u32, seed: u64) -> f64 {
    let mut acc = seed as f64 * 1e-9 + 1.0;
    let mut x = 1.000_000_1f64;
    for _ in 0..iters {
        acc = acc.mul_add(x, 0.5);
        x = -x;
        if acc.abs() > 1e12 {
            acc *= 1e-12;
        }
    }
    acc
}

/// A functional micro-workload usable with the heterogeneous runtime: each
/// item either runs an FMA loop (compute-bound) or performs scattered
/// updates into a shared table (memory-bound random updates, as in §2).
#[derive(Debug)]
pub struct MicroWorkload {
    memory_bound: bool,
    items: u64,
    table_mask: usize,
    profile: Profile,
}

impl MicroWorkload {
    /// Creates a functional micro-workload of `items` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero.
    pub fn new(memory_bound: bool, items: u64) -> MicroWorkload {
        assert!(items > 0, "items must be positive");
        let micro = MicroBenchmark::new(memory_bound, true, true);
        let calib = Calib {
            cpu_rate: micro.traits.cpu_rate(),
            gpu_rate: micro.traits.gpu_rate(),
            mem_intensity: micro.traits.memory_intensity(),
            access: micro.traits.access(),
            working_set: micro.traits.working_set_bytes(),
            bus_fraction: 0.5,
            irregularity: 0.0,
            instr_per_item: micro.traits.instr_per_item(),
            loads_per_item: micro.traits.loads_per_item(),
        };
        MicroWorkload {
            memory_bound,
            items,
            table_mask: (1 << 16) - 1,
            profile: Profile {
                desktop: calib,
                tablet: calib,
            },
        }
    }
}

impl Workload for MicroWorkload {
    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: if self.memory_bound {
                "Memory micro-benchmark"
            } else {
                "Compute micro-benchmark"
            },
            abbrev: "MICRO",
            regular: true,
            runs_on_tablet: true,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("MICRO", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let table: Vec<AtomicU64> = (0..=self.table_mask).map(|_| AtomicU64::new(0)).collect();
        let checksum = AtomicU64::new(0);
        let memory_bound = self.memory_bound;
        let mask = self.table_mask;
        invoker.invoke(self.items, &|i| {
            if memory_bound {
                // Random updates at hashed indices (paper §2).
                let mut h = i as u64;
                for _ in 0..8 {
                    h = easched_sim::noise::splitmix64(h);
                    table[(h as usize) & mask].fetch_add(1, Ordering::Relaxed);
                }
            } else {
                let v = fma_loop(64, i as u64);
                checksum.fetch_add(v.to_bits() & 0xFF, Ordering::Relaxed);
            }
        });
        if memory_bound {
            let total: u64 = table.iter().map(|a| a.load(Ordering::Relaxed)).sum();
            if total == self.items * 8 {
                Verification::Passed
            } else {
                Verification::Failed(format!("update count {total} != {}", self.items * 8))
            }
        } else if self.items == 0 || checksum.load(Ordering::Relaxed) > 0 {
            Verification::Passed
        } else {
            Verification::Failed("checksum degenerate".into())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn suite_covers_all_corners() {
        let suite = characterization_suite(&Platform::haswell_desktop());
        let mut seen = std::collections::HashSet::new();
        for m in &suite {
            seen.insert((m.memory_bound, m.cpu_short, m.gpu_short));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn durations_straddle_threshold() {
        for m in characterization_suite(&Platform::haswell_desktop()) {
            let cpu_t = m.items as f64 / m.traits().cpu_rate();
            let gpu_t = m.items as f64 / m.traits().gpu_rate();
            assert_eq!(cpu_t < 0.1, m.cpu_short, "{}", m.label());
            assert_eq!(gpu_t < 0.1, m.gpu_short, "{}", m.label());
        }
    }

    #[test]
    fn memory_benchmarks_classify_memory_bound() {
        let p = Platform::haswell_desktop();
        for m in characterization_suite(&Platform::haswell_desktop()) {
            let ratio = m.traits().l3_miss_ratio(p.memory.llc_bytes);
            assert_eq!(ratio > 0.33, m.memory_bound, "{}", m.label());
        }
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<String> =
            characterization_suite(&Platform::baytrail_tablet())
                .iter()
                .map(|m| m.label())
                .collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn fma_loop_deterministic_and_finite() {
        assert_eq!(fma_loop(100, 7), fma_loop(100, 7));
        assert!(fma_loop(1_000_000, 1).is_finite());
    }

    #[test]
    fn micro_workloads_verify() {
        for mb in [false, true] {
            let w = MicroWorkload::new(mb, 2_000);
            assert!(w.drive(&mut SerialInvoker).is_passed(), "memory={mb}");
        }
    }

    #[test]
    fn micro_workload_single_invocation() {
        let w = MicroWorkload::new(true, 500);
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert_eq!(trace.sizes, vec![500]);
    }

    #[test]
    #[should_panic(expected = "items must be positive")]
    fn micro_workload_rejects_zero() {
        MicroWorkload::new(false, 0);
    }
}
