//! Seismic wave propagation (TBB's `seismic` example, Table 1 "SM").
//!
//! Regular, memory-bound, one kernel invocation per animation frame (100 in
//! the paper). Each frame applies a damped 5-point-stencil wave-equation
//! update over the grid; a pulse source is injected at the center on the
//! first frame. Verification: a serial simulation of the same frames must
//! match bitwise, and wave energy must propagate (non-zero cells spread
//! outward) while total amplitude stays bounded (damping).

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use std::sync::atomic::{AtomicU32, Ordering};

const WAVE_SPEED: f32 = 0.25;
const DAMPING: f32 = 0.999;

/// One synchronous wave-equation step: reads `prev` and `cur`, writes the
/// next value for cell `i`.
fn step_cell(width: usize, height: usize, prev: &[f32], cur: &[f32], i: usize) -> f32 {
    let (x, y) = (i % width, i / width);
    // Fixed (reflecting) boundary.
    if x == 0 || y == 0 || x == width - 1 || y == height - 1 {
        return 0.0;
    }
    let lap = cur[i - 1] + cur[i + 1] + cur[i - width] + cur[i + width] - 4.0 * cur[i];
    DAMPING * (2.0 * cur[i] - prev[i] + WAVE_SPEED * lap)
}

/// The seismic workload: `frames` wave-equation steps on a `width × height`
/// grid with an initial center pulse.
#[derive(Debug)]
pub struct Seismic {
    width: usize,
    height: usize,
    frames: u32,
    profile: Profile,
}

impl Seismic {
    /// Creates a simulation of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is < 3 or `frames` is zero.
    pub fn new(width: usize, height: usize, frames: u32, profile: Profile) -> Self {
        assert!(
            width >= 3 && height >= 3 && frames > 0,
            "grid must be at least 3x3 with at least one frame"
        );
        Seismic {
            width,
            height,
            frames,
            profile,
        }
    }

    /// Default calibration: memory-bound streaming stencil, short frames.
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 1.6e7,
                gpu_rate: 2.5e7,
                mem_intensity: 0.90,
                access: AccessPattern::Random, // counter-model calibration: Table 1 says M
                working_set: 1950 * 1326 * 4 * 3,
                bus_fraction: 1.05,
                irregularity: 0.08,
                instr_per_item: 60.0,
                loads_per_item: 25.0,
            },
            tablet: Calib {
                cpu_rate: 2.2e6,
                gpu_rate: 3.6e6,
                mem_intensity: 0.90,
                access: AccessPattern::Random,
                working_set: 1950 * 1326 * 4 * 3,
                bus_fraction: 1.05,
                irregularity: 0.08,
                instr_per_item: 60.0,
                loads_per_item: 25.0,
            },
        }
    }

    fn initial(&self) -> Vec<f32> {
        let mut grid = vec![0.0f32; self.width * self.height];
        let center = (self.height / 2) * self.width + self.width / 2;
        grid[center] = 1.0;
        grid
    }

    fn serial_run(&self) -> Vec<f32> {
        let mut prev = vec![0.0f32; self.width * self.height];
        let mut cur = self.initial();
        for _ in 0..self.frames {
            let next: Vec<f32> = (0..cur.len())
                .map(|i| step_cell(self.width, self.height, &prev, &cur, i))
                .collect();
            prev = cur;
            cur = next;
        }
        cur
    }
}

impl Workload for Seismic {
    fn input_description(&self) -> String {
        format!("{} by {}, {} frames", self.width, self.height, self.frames)
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "Seismic",
            abbrev: "SM",
            regular: true,
            runs_on_tablet: true,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("SM", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.width * self.height;
        let mut prev = vec![0.0f32; n];
        let mut cur = self.initial();
        for _ in 0..self.frames {
            let next: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            {
                let (p, c) = (&prev, &cur);
                invoker.invoke(n as u64, &|i| {
                    next[i].store(
                        step_cell(self.width, self.height, p, c, i).to_bits(),
                        Ordering::Relaxed,
                    );
                });
            }
            prev = std::mem::replace(
                &mut cur,
                next.iter()
                    .map(|a| f32::from_bits(a.load(Ordering::Relaxed)))
                    .collect(),
            );
        }
        let reference = self.serial_run();
        if cur != reference {
            return Verification::Failed("parallel frames differ from serial".into());
        }
        // The wave must have spread beyond the source cell and stayed
        // bounded.
        let nonzero = cur.iter().filter(|&&v| v != 0.0).count();
        let max_abs = cur.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let interior = (self.width - 2) * (self.height - 2);
        if self.frames >= 3 && interior >= 9 && nonzero < 5 {
            return Verification::Failed(format!("wave did not propagate: {nonzero} cells"));
        }
        if !max_abs.is_finite() || max_abs > 10.0 {
            return Verification::Failed(format!("unstable amplitude {max_abs}"));
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn boundary_cells_pinned_to_zero() {
        let prev = vec![1.0f32; 9];
        let cur = vec![1.0f32; 9];
        assert_eq!(step_cell(3, 3, &prev, &cur, 0), 0.0);
        assert_eq!(step_cell(3, 3, &prev, &cur, 8), 0.0);
        // Center of a uniform field stays put (zero Laplacian), modulo
        // damping: 2·1 − 1 + 0 = 1, damped.
        assert!((step_cell(3, 3, &prev, &cur, 4) - DAMPING).abs() < 1e-6);
    }

    #[test]
    fn pulse_spreads() {
        let s = Seismic::new(21, 21, 8, Seismic::default_profile());
        let final_grid = s.serial_run();
        let nonzero = final_grid.iter().filter(|&&v| v != 0.0).count();
        assert!(nonzero > 20, "wavefront should expand, got {nonzero} cells");
    }

    #[test]
    fn workload_verifies() {
        let s = Seismic::new(17, 13, 6, Seismic::default_profile());
        assert!(s.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn one_invocation_per_frame() {
        let s = Seismic::new(9, 9, 5, Seismic::default_profile());
        let (trace, v) = record_trace(&s);
        assert!(v.is_passed());
        assert_eq!(trace.invocations(), 5);
        assert!(trace.sizes.iter().all(|&n| n == 81));
    }

    #[test]
    fn classifies_memory_bound() {
        let s = Seismic::new(9, 9, 1, Seismic::default_profile());
        for p in [Platform::haswell_desktop(), Platform::baytrail_tablet()] {
            let t = s.traits_for(&p);
            assert!(t.l3_miss_ratio(p.memory.llc_bytes) > 0.33, "{}", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "grid must be at least 3x3")]
    fn rejects_tiny_grid() {
        Seismic::new(2, 5, 1, Seismic::default_profile());
    }
}
