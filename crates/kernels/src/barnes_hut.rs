//! Barnes-Hut N-body force approximation (Table 1 "BH").
//!
//! Irregular, memory-bound, single long kernel invocation. A 2-D quadtree is
//! built serially (the paper's tree build is also outside the data-parallel
//! kernel), then the kernel computes the approximate force on each body by
//! traversing the tree with the standard opening-angle criterion — the
//! pointer-chasing, input-dependent traversal that makes BH irregular and
//! memory-bound.
//!
//! Verification: approximate forces must be within a few percent of the
//! exact O(n²) forces on a sample of bodies.

use crate::profiles::{Calib, Profile};
use crate::workload::{Invoker, Verification, Workload, WorkloadSpec};
use easched_sim::{AccessPattern, KernelTraits, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

const THETA: f64 = 0.5;
const SOFTENING: f64 = 1e-4;

/// Quadtree node stored in an arena.
#[derive(Debug, Clone)]
struct Node {
    /// Center of this cell.
    cx: f64,
    cy: f64,
    /// Half-width of the cell.
    half: f64,
    /// Total mass and center of mass.
    mass: f64,
    com_x: f64,
    com_y: f64,
    /// Child indices (quadrants), `usize::MAX` = empty.
    children: [usize; 4],
    /// Body index if this is a leaf with one body, else `usize::MAX`.
    body: usize,
}

const NONE: usize = usize::MAX;

/// A quadtree over 2-D bodies.
#[derive(Debug)]
struct QuadTree {
    nodes: Vec<Node>,
}

impl QuadTree {
    fn build(xs: &[f64], ys: &[f64], masses: &[f64]) -> QuadTree {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in xs.iter().chain(ys) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let half = ((hi - lo) / 2.0).max(1e-9) * 1.001;
        let (cx, cy) = ((hi + lo) / 2.0, (hi + lo) / 2.0);
        let mut tree = QuadTree {
            nodes: vec![Node {
                cx,
                cy,
                half,
                mass: 0.0,
                com_x: 0.0,
                com_y: 0.0,
                children: [NONE; 4],
                body: NONE,
            }],
        };
        for i in 0..xs.len() {
            tree.insert(0, i, xs, ys);
        }
        tree.summarize(0, xs, ys, masses);
        tree
    }

    fn quadrant(node: &Node, x: f64, y: f64) -> usize {
        (usize::from(x >= node.cx)) | (usize::from(y >= node.cy) << 1)
    }

    fn child_center(node: &Node, q: usize) -> (f64, f64, f64) {
        let h = node.half / 2.0;
        let cx = node.cx + if q & 1 == 1 { h } else { -h };
        let cy = node.cy + if q & 2 == 2 { h } else { -h };
        (cx, cy, h)
    }

    fn insert(&mut self, node_idx: usize, body: usize, xs: &[f64], ys: &[f64]) {
        let node = &self.nodes[node_idx];
        let is_empty_leaf = node.children == [NONE; 4] && node.body == NONE;
        if is_empty_leaf {
            self.nodes[node_idx].body = body;
            return;
        }
        // If this is an occupied leaf, push the resident body down first.
        let resident = self.nodes[node_idx].body;
        if resident != NONE {
            self.nodes[node_idx].body = NONE;
            self.push_down(node_idx, resident, xs, ys);
        }
        self.push_down(node_idx, body, xs, ys);
    }

    fn push_down(&mut self, node_idx: usize, body: usize, xs: &[f64], ys: &[f64]) {
        let q = Self::quadrant(&self.nodes[node_idx], xs[body], ys[body]);
        if self.nodes[node_idx].children[q] == NONE {
            let (cx, cy, h) = Self::child_center(&self.nodes[node_idx], q);
            self.nodes.push(Node {
                cx,
                cy,
                half: h,
                mass: 0.0,
                com_x: 0.0,
                com_y: 0.0,
                children: [NONE; 4],
                body: NONE,
            });
            let new_idx = self.nodes.len() - 1;
            self.nodes[node_idx].children[q] = new_idx;
        }
        let child = self.nodes[node_idx].children[q];
        self.insert(child, body, xs, ys);
    }

    fn summarize(&mut self, node_idx: usize, xs: &[f64], ys: &[f64], masses: &[f64]) {
        let (mut m, mut mx, mut my) = (0.0, 0.0, 0.0);
        let body = self.nodes[node_idx].body;
        if body != NONE {
            m += masses[body];
            mx += masses[body] * xs[body];
            my += masses[body] * ys[body];
        }
        let children = self.nodes[node_idx].children;
        for c in children.into_iter().filter(|&c| c != NONE) {
            self.summarize(c, xs, ys, masses);
            let cn = &self.nodes[c];
            m += cn.mass;
            mx += cn.mass * cn.com_x;
            my += cn.mass * cn.com_y;
        }
        let node = &mut self.nodes[node_idx];
        node.mass = m;
        if m > 0.0 {
            node.com_x = mx / m;
            node.com_y = my / m;
        }
    }

    /// Approximate force on body `i` via Barnes-Hut traversal.
    fn force(&self, i: usize, xs: &[f64], ys: &[f64]) -> (f64, f64) {
        let (mut fx, mut fy) = (0.0, 0.0);
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if node.mass == 0.0 {
                continue;
            }
            let dx = node.com_x - xs[i];
            let dy = node.com_y - ys[i];
            let dist2 = dx * dx + dy * dy + SOFTENING;
            let dist = dist2.sqrt();
            let is_far = (2.0 * node.half) / dist < THETA;
            let is_single_body_leaf = node.children == [NONE; 4];
            if is_far || is_single_body_leaf {
                if is_single_body_leaf && node.body == i {
                    continue; // self-interaction
                }
                let f = node.mass / (dist2 * dist);
                fx += f * dx;
                fy += f * dy;
            } else {
                stack.extend(node.children.into_iter().filter(|&c| c != NONE));
            }
        }
        (fx, fy)
    }
}

/// Exact O(n) force on body `i` from all others.
fn exact_force(i: usize, xs: &[f64], ys: &[f64], masses: &[f64]) -> (f64, f64) {
    let (mut fx, mut fy) = (0.0, 0.0);
    for j in 0..xs.len() {
        if j == i {
            continue;
        }
        let dx = xs[j] - xs[i];
        let dy = ys[j] - ys[i];
        let dist2 = dx * dx + dy * dy + SOFTENING;
        let f = masses[j] / (dist2 * dist2.sqrt());
        fx += f * dx;
        fy += f * dy;
    }
    (fx, fy)
}

/// The Barnes-Hut workload: one force-computation step over `n` bodies.
#[derive(Debug)]
pub struct BarnesHut {
    xs: Vec<f64>,
    ys: Vec<f64>,
    masses: Vec<f64>,
    profile: Profile,
}

impl BarnesHut {
    /// Creates a seeded `n`-body cluster (two Gaussian blobs, so the tree is
    /// deep and unbalanced).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, seed: u64, profile: Profile) -> Self {
        assert!(n >= 2, "need at least 2 bodies");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let (cx, cy) = if i % 3 == 0 { (3.0, 1.0) } else { (-2.0, -1.0) };
            // Box-Muller-ish spread from uniforms.
            let r: f64 = rng.gen_range(0.01..1.0f64);
            let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            xs.push(cx + r.sqrt() * a.cos());
            ys.push(cy + r.sqrt() * a.sin());
        }
        let masses = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
        BarnesHut {
            xs,
            ys,
            masses,
            profile,
        }
    }

    /// Default calibration: long on both devices, memory-bound
    /// (pointer-chasing traversal).
    pub fn default_profile() -> Profile {
        Profile {
            desktop: Calib {
                cpu_rate: 2.5e4,
                gpu_rate: 3.6e4,
                mem_intensity: 0.90,
                access: AccessPattern::Random,
                working_set: 1_000_000 * 100, // paper: 1M bodies + tree
                bus_fraction: 1.05,
                irregularity: 0.35,
                instr_per_item: 6_000.0,
                loads_per_item: 2_000.0,
            },
            tablet: Calib {
                cpu_rate: 3.0e3,
                gpu_rate: 3.3e3,
                mem_intensity: 0.90,
                access: AccessPattern::Random,
                working_set: 1_000_000 * 100,
                bus_fraction: 1.05,
                irregularity: 0.35,
                instr_per_item: 6_000.0,
                loads_per_item: 2_000.0,
            },
        }
    }
}

impl Workload for BarnesHut {
    fn input_description(&self) -> String {
        format!("{} bodies, 1 step", self.xs.len())
    }

    fn spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "BarnesHut",
            abbrev: "BH",
            regular: false,
            runs_on_tablet: false,
        }
    }

    fn traits_for(&self, platform: &Platform) -> KernelTraits {
        self.profile.traits_for("BH", platform)
    }

    fn drive(&self, invoker: &mut dyn Invoker) -> Verification {
        let n = self.xs.len();
        let tree = QuadTree::build(&self.xs, &self.ys, &self.masses);
        let forces: Vec<[AtomicU64; 2]> = (0..n).map(|_| Default::default()).collect();
        {
            let t = &tree;
            invoker.invoke(n as u64, &|i| {
                let (fx, fy) = t.force(i, &self.xs, &self.ys);
                forces[i][0].store(fx.to_bits(), Ordering::Relaxed);
                forces[i][1].store(fy.to_bits(), Ordering::Relaxed);
            });
        }
        // Spot-check against exact forces. θ=0.5 gives a small *typical*
        // error but individual bodies near force cancellation can see large
        // relative error, so we bound the mean relative error tightly and
        // allow outliers a looser absolute-scale bound.
        let samples = n.min(64);
        let mut rel_sum = 0.0;
        let mut mag_sum = 0.0;
        let mut worst: (usize, f64) = (0, 0.0);
        for s in 0..samples {
            let i = s * n / samples;
            let fx = f64::from_bits(forces[i][0].load(Ordering::Relaxed));
            let fy = f64::from_bits(forces[i][1].load(Ordering::Relaxed));
            let (ex, ey) = exact_force(i, &self.xs, &self.ys, &self.masses);
            let exact_mag = (ex * ex + ey * ey).sqrt();
            let err = ((fx - ex).powi(2) + (fy - ey).powi(2)).sqrt();
            let rel = err / exact_mag.max(1e-9);
            rel_sum += rel;
            mag_sum += exact_mag;
            if rel > worst.1 {
                worst = (i, rel);
            }
        }
        let mean_rel = rel_sum / samples as f64;
        let mean_mag = mag_sum / samples as f64;
        if mean_rel > 0.05 {
            return Verification::Failed(format!("mean force error {:.1}%", mean_rel * 100.0));
        }
        // Outlier guard: even the worst body must stay within a quarter of
        // the cluster's typical force scale (θ=0.5 error concentrates on
        // bodies whose pairwise forces nearly cancel).
        for s in 0..samples {
            let i = s * n / samples;
            let fx = f64::from_bits(forces[i][0].load(Ordering::Relaxed));
            let fy = f64::from_bits(forces[i][1].load(Ordering::Relaxed));
            let (ex, ey) = exact_force(i, &self.xs, &self.ys, &self.masses);
            let err = ((fx - ex).powi(2) + (fy - ey).powi(2)).sqrt();
            if err > 0.25 * mean_mag {
                return Verification::Failed(format!(
                    "body {i}: force error {err:.3e} vs typical magnitude {mean_mag:.3e} (worst rel {:.1}% at {})",
                    worst.1 * 100.0,
                    worst.0
                ));
            }
        }
        Verification::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{record_trace, SerialInvoker};

    #[test]
    fn tree_mass_equals_total() {
        let bh = BarnesHut::new(200, 1, BarnesHut::default_profile());
        let tree = QuadTree::build(&bh.xs, &bh.ys, &bh.masses);
        let total: f64 = bh.masses.iter().sum();
        assert!((tree.nodes[0].mass - total).abs() < 1e-9);
    }

    #[test]
    fn com_is_weighted_mean() {
        let xs = vec![0.0, 2.0];
        let ys = vec![0.0, 0.0];
        let ms = vec![1.0, 3.0];
        let tree = QuadTree::build(&xs, &ys, &ms);
        assert!((tree.nodes[0].com_x - 1.5).abs() < 1e-12);
    }

    #[test]
    fn two_bodies_force_is_exact() {
        // With only two bodies the traversal reaches leaves: exact result.
        let xs = vec![0.0, 1.0];
        let ys = vec![0.0, 0.0];
        let ms = vec![1.0, 1.0];
        let tree = QuadTree::build(&xs, &ys, &ms);
        let (fx, fy) = tree.force(0, &xs, &ys);
        let (ex, ey) = exact_force(0, &xs, &ys, &ms);
        assert!((fx - ex).abs() < 1e-12 && (fy - ey).abs() < 1e-12);
    }

    #[test]
    fn coincident_bodies_do_not_crash() {
        // Degenerate: all bodies at the same point (softening saves us; the
        // tree recursion must also terminate despite unsplittable bodies).
        let xs = vec![1.0, 1.0 + 1e-12, 1.0];
        let ys = vec![2.0, 2.0, 2.0 + 1e-12];
        let ms = vec![1.0; 3];
        let tree = QuadTree::build(&xs, &ys, &ms);
        let (fx, fy) = tree.force(0, &xs, &ys);
        assert!(fx.is_finite() && fy.is_finite());
    }

    #[test]
    fn workload_verifies() {
        let w = BarnesHut::new(400, 2, BarnesHut::default_profile());
        assert!(w.drive(&mut SerialInvoker).is_passed());
    }

    #[test]
    fn single_invocation() {
        let w = BarnesHut::new(64, 3, BarnesHut::default_profile());
        let (trace, v) = record_trace(&w);
        assert!(v.is_passed());
        assert_eq!(trace.sizes, vec![64]);
    }

    #[test]
    fn classifies_memory_bound() {
        let w = BarnesHut::new(8, 4, BarnesHut::default_profile());
        let p = Platform::haswell_desktop();
        assert!(w.traits_for(&p).l3_miss_ratio(p.memory.llc_bytes) > 0.33);
    }
}
