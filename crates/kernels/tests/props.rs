//! Property-based tests: workload verification must hold under any valid
//! item-execution order and partitioning — the contract the heterogeneous
//! runtime relies on.

use easched_kernels::blackscholes::BlackScholes;
use easched_kernels::mandelbrot::Mandelbrot;
use easched_kernels::matmul::MatMul;
use easched_kernels::nbody::NBody;
use easched_kernels::seismic::Seismic;
use easched_kernels::skiplist::SkipList;
use easched_kernels::workload::{Invoker, Workload};
use proptest::prelude::*;

/// An invoker that executes items in a deterministic shuffled order split
/// into two "device" halves processed back to front — a worst-case legal
/// schedule.
struct ShuffledInvoker {
    seed: u64,
}

impl Invoker for ShuffledInvoker {
    fn invoke(&mut self, n: u64, process: &(dyn Fn(usize) + Sync)) {
        let n = n as usize;
        let mut order: Vec<usize> = (0..n).collect();
        // Deterministic Fisher-Yates from splitmix64.
        let mut state = self.seed;
        for i in (1..n).rev() {
            state = easched_sim::noise::splitmix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        // "GPU" half runs first (from the back), then the "CPU" half.
        let split = n / 3;
        for &i in order[split..].iter().rev() {
            process(i);
        }
        for &i in &order[..split] {
            process(i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blackscholes_verifies_under_any_order(
        n in 8u32..300,
        invocations in 1u32..4,
        seed in any::<u64>(),
    ) {
        let w = BlackScholes::new(n, invocations, seed, BlackScholes::default_profile());
        let mut invoker = ShuffledInvoker { seed };
        prop_assert!(w.drive(&mut invoker).is_passed());
    }

    #[test]
    fn matmul_verifies_under_any_order(n in 2usize..24, seed in any::<u64>()) {
        let w = MatMul::new(n, seed, MatMul::default_profile());
        let mut invoker = ShuffledInvoker { seed };
        prop_assert!(w.drive(&mut invoker).is_passed());
    }

    #[test]
    fn mandelbrot_verifies_under_any_order(
        wpx in 4usize..40,
        hpx in 4usize..30,
        seed in any::<u64>(),
    ) {
        let w = Mandelbrot::new(wpx, hpx, 48, Mandelbrot::default_profile());
        let mut invoker = ShuffledInvoker { seed };
        prop_assert!(w.drive(&mut invoker).is_passed());
    }

    #[test]
    fn seismic_verifies_under_any_order(
        wpx in 3usize..20,
        hpx in 3usize..20,
        frames in 1u32..6,
        seed in any::<u64>(),
    ) {
        let w = Seismic::new(wpx, hpx, frames, Seismic::default_profile());
        let mut invoker = ShuffledInvoker { seed };
        prop_assert!(w.drive(&mut invoker).is_passed());
    }

    #[test]
    fn nbody_verifies_under_any_order(n in 4usize..40, steps in 2u32..5, seed in any::<u64>()) {
        let w = NBody::new(n, steps, seed, NBody::default_profile());
        let mut invoker = ShuffledInvoker { seed };
        prop_assert!(w.drive(&mut invoker).is_passed());
    }

    #[test]
    fn skiplist_verifies_under_any_order(
        keys in 2usize..300,
        lookups in 1usize..300,
        seed in any::<u64>(),
    ) {
        let w = SkipList::new(keys, lookups, seed, SkipList::default_profile());
        let mut invoker = ShuffledInvoker { seed };
        prop_assert!(w.drive(&mut invoker).is_passed());
    }
}
