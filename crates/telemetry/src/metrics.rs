//! Metric primitives (counters, gauges, log-scale histograms) and the
//! registry that derives scheduler metrics from [`DecisionRecord`]s.
//!
//! Everything here is relaxed atomics: the registry is updated on the
//! scheduling hot path (once per invocation, when a sink is attached), so
//! it must never lock or allocate. [`MetricsRegistry::expose`] renders a
//! Prometheus-style text page for scraping or snapshot diffing.
//!
//! The one exception to the no-locks rule is the per-kernel drift gauge
//! map fed by [`ControlEvent`]s: after a kernel's first drift sample the
//! gauge update is a read lock (a single uncontended atomic) plus one
//! relaxed store; only the first sighting of a kernel takes the write
//! lock to insert its slot.

use crate::record::{DecisionRecord, InvocationPath};
use crate::sink::ControlEvent;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge, returning the previous value.
    pub fn swap(&self, v: u64) -> u64 {
        self.0.swap(v, Ordering::Relaxed)
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram buckets: one per bit length, so bucket `i` (for `i ≥ 1`)
/// holds values whose binary representation is `i` bits wide — i.e. the
/// range `[2^(i-1), 2^i)` — and bucket 0 holds exactly the value 0.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-scale histogram over `u64` values.
///
/// Bucketing by bit length makes `record` two instructions of math plus
/// one relaxed `fetch_add`, while still resolving the distribution to a
/// factor of two everywhere from 1 to `u64::MAX`.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// The bucket index a value lands in: 0 for 0, otherwise the value's
    /// bit length (1..=64).
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The largest value bucket `i` can hold (the inclusive upper bound
    /// used as the Prometheus `le` label).
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Per-bucket observation counts.
    pub fn counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all observed values (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }
}

/// Number of α distribution buckets: the paper's grid {0, 0.1, …, 1}.
pub const ALPHA_BUCKETS: usize = 11;

/// Scheduler metrics derived from the decision stream: invocation-path
/// counters, fault and breaker activity, decision latency, profiling
/// overhead, and the α distribution. Updated once per invocation via
/// [`update`](MetricsRegistry::update); rendered with
/// [`expose`](MetricsRegistry::expose).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Invocations seen, in total.
    pub invocations: Counter,
    /// Invocations that reused a learned α from the table.
    pub table_hits: Counter,
    /// Invocations too small to fill the GPU (ran CPU-only).
    pub small_n: Counter,
    /// First-seen invocations that profiled online.
    pub profiled: Counter,
    /// Known kernels that re-profiled (periodic or tainted).
    pub reprofiled: Counter,
    /// Recovery-probe invocations (half-open breaker).
    pub probes: Counter,
    /// Invocations that degraded after sustained faults.
    pub degraded: Counter,
    /// Invocations quarantined CPU-only by an open breaker.
    pub quarantined: Counter,
    /// Accepted profiling rounds, summed over invocations.
    pub profile_rounds: Counter,
    /// Rejected (faulty) profiling rounds, summed over invocations.
    pub fault_rounds: Counter,
    /// Breaker state changes observed between consecutive records.
    pub breaker_transitions: Counter,
    /// Most recent breaker state (0 closed, 1 open, 2 half-open).
    pub breaker_state: Gauge,
    /// Realized profiling-phase time, microseconds, summed.
    pub profile_time_us: Counter,
    /// Realized total invocation time, microseconds, summed.
    pub invocation_time_us: Counter,
    /// Wall-clock vet+decide latency per invocation, nanoseconds.
    pub decide_latency_ns: LogHistogram,
    /// Profiling overhead per profiled invocation, basis points of the
    /// invocation's realized time (profile / total × 10⁴).
    pub overhead_bp: LogHistogram,
    /// Executed α, bucketed on the paper's 0.1 grid.
    pub alpha: [Counter; ALPHA_BUCKETS],
    /// Re-profiles scheduled by the drift monitor (DESIGN.md §11).
    pub drift_reprofiles: Counter,
    /// Due re-profiles deferred by an empty token bucket.
    pub reprofiles_suppressed: Counter,
    /// Profiling rounds cancelled by the watchdog deadline.
    pub watchdog_trips: Counter,
    /// Chunk executions that overran the watchdog's split deadline.
    pub split_overruns: Counter,
    /// Invocations whose GPU use was gated by the admission layer's
    /// brownout ladder (ran CPU-only, learned nothing).
    pub throttled: Counter,
    /// Requests shed by the admission layer (queue overflow or brownout
    /// stage 3), across tenants.
    pub requests_shed: Counter,
    /// Requests queued behind earlier ones, across tenants.
    pub requests_queued: Counter,
    /// Requests refused on an exhausted GPU quota window, across tenants.
    pub quota_denials: Counter,
    /// Brownout-ladder rung changes.
    pub brownout_transitions: Counter,
    /// Current brownout rung (0 normal … 3 shed-load).
    pub brownout_level: Gauge,
    /// SLO burn-rate breaches fired by the tracker, across tenants.
    pub slo_breaches: Counter,
    /// Storage-layer I/O faults absorbed by the table store (DESIGN.md
    /// §16): failed appends, poisoned fsyncs, degradation transitions.
    pub store_io_errors: Counter,
    /// 1 while the table store is in degrade-to-memory mode, else 0.
    pub store_degraded: Gauge,
    /// Bytes the table store successfully persisted (set from the health
    /// report by the scrape frontends; control events do not carry it).
    pub store_bytes: Gauge,
    /// Latest drift EWMA per kernel, stored as `f64` bits (see
    /// [`kernel_drift`](MetricsRegistry::kernel_drift)).
    kernel_drift_ewma: RwLock<BTreeMap<u64, AtomicU64>>,
    /// Per-tenant shed counts (tenant id → count).
    tenant_sheds: RwLock<BTreeMap<u64, AtomicU64>>,
    /// Per-tenant queued counts.
    tenant_queued: RwLock<BTreeMap<u64, AtomicU64>>,
    /// Per-tenant quota-denial counts.
    tenant_quota_denials: RwLock<BTreeMap<u64, AtomicU64>>,
    /// Per-tenant SLO breach counts.
    tenant_slo_breaches: RwLock<BTreeMap<u64, AtomicU64>>,
    /// Human-readable tenant names for labels (escaped at exposition).
    tenant_names: RwLock<BTreeMap<u64, String>>,
    /// Build identity rendered as `easched_build_info` (version, commit);
    /// empty strings fall back to this crate's version / "unknown".
    build_info: RwLock<(String, String)>,
    /// Virtual-clock timestamp the registry was armed at, `f64` bits.
    started_s: AtomicU64,
    /// Latest virtual-clock timestamp observed, `f64` bits.
    now_s: AtomicU64,
}

/// Escapes a string for use as a Prometheus label value: backslashes,
/// double quotes, and newlines become `\\`, `\"`, and `\n` per the text
/// exposition format, so a hostile tenant name cannot break the page.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            // Carriage returns have no escape in the format; drop them
            // rather than emit a bare control character.
            '\r' => {}
            c => out.push(c),
        }
    }
    out
}

/// Bumps a labeled counter slot: a read lock plus one relaxed add after
/// the label's first sighting; only the insert takes the write lock
/// (the same idiom as the kernel-drift gauge map).
fn bump_labeled(map: &RwLock<BTreeMap<u64, AtomicU64>>, key: u64) {
    {
        let map = map.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = map.get(&key) {
            slot.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    map.write()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(key)
        .or_insert_with(|| AtomicU64::new(0))
        .fetch_add(1, Ordering::Relaxed);
}

fn dump_labeled(map: &RwLock<BTreeMap<u64, AtomicU64>>) -> Vec<(u64, u64)> {
    map.read()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&k, v)| (k, v.load(Ordering::Relaxed)))
        .collect()
}

impl MetricsRegistry {
    /// Folds one record into every derived metric.
    pub fn update(&self, r: &DecisionRecord) {
        self.invocations.inc();
        match r.path {
            InvocationPath::TableHit => self.table_hits.inc(),
            InvocationPath::SmallN => self.small_n.inc(),
            InvocationPath::Profiled => self.profiled.inc(),
            InvocationPath::Reprofiled => self.reprofiled.inc(),
            InvocationPath::Probe => self.probes.inc(),
            InvocationPath::Degraded => self.degraded.inc(),
            InvocationPath::Quarantined => self.quarantined.inc(),
            InvocationPath::Throttled => self.throttled.inc(),
        }
        self.profile_rounds.add(u64::from(r.rounds));
        self.fault_rounds.add(u64::from(r.fault_rounds));
        let previous = self.breaker_state.swap(u64::from(r.breaker));
        if previous != u64::from(r.breaker) {
            self.breaker_transitions.inc();
        }
        self.profile_time_us.add(seconds_to_us(r.profile_time));
        self.invocation_time_us.add(seconds_to_us(r.total_time()));
        self.decide_latency_ns.record(r.decide_nanos);
        let total = r.total_time();
        if r.path.has_prediction() && total > 0.0 {
            self.overhead_bp
                .record((r.profile_time / total * 1e4).round() as u64);
        }
        let bucket = (r.alpha.clamp(0.0, 1.0) * 10.0).round() as usize;
        self.alpha[bucket.min(ALPHA_BUCKETS - 1)].inc();
    }

    /// Folds one self-healing control event into the derived metrics.
    pub fn control(&self, event: &ControlEvent) {
        match *event {
            ControlEvent::Drift { kernel, ewma } => self.set_kernel_drift(kernel, ewma),
            ControlEvent::Reprofile { kernel, ewma } => {
                self.drift_reprofiles.inc();
                self.set_kernel_drift(kernel, ewma);
            }
            ControlEvent::ReprofileSuppressed { .. } => self.reprofiles_suppressed.inc(),
            ControlEvent::ProfileDeadline { .. } => self.watchdog_trips.inc(),
            ControlEvent::SplitOverrun { .. } => self.split_overruns.inc(),
            ControlEvent::RequestShed { tenant } => {
                self.requests_shed.inc();
                bump_labeled(&self.tenant_sheds, tenant);
            }
            ControlEvent::RequestQueued { tenant } => {
                self.requests_queued.inc();
                bump_labeled(&self.tenant_queued, tenant);
            }
            ControlEvent::QuotaDenied { tenant } => {
                self.quota_denials.inc();
                bump_labeled(&self.tenant_quota_denials, tenant);
            }
            ControlEvent::Brownout { level } => {
                self.brownout_transitions.inc();
                self.brownout_level.swap(u64::from(level));
            }
            ControlEvent::SloBreach { tenant, .. } => {
                self.slo_breaches.inc();
                bump_labeled(&self.tenant_slo_breaches, tenant);
            }
            ControlEvent::StorageFault { degraded, .. } => {
                self.store_io_errors.inc();
                self.store_degraded.swap(u64::from(degraded));
            }
        }
    }

    /// Registers a human-readable tenant name; subsequent expositions
    /// label that tenant's series `tenant="<escaped name>"` instead of
    /// the bare registry index.
    pub fn set_tenant_name(&self, tenant: u64, name: &str) {
        self.tenant_names
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(tenant, name.to_string());
    }

    /// Sets the version/commit pair rendered in `easched_build_info`.
    pub fn set_build_info(&self, version: &str, commit: &str) {
        *self
            .build_info
            .write()
            .unwrap_or_else(PoisonError::into_inner) = (version.to_string(), commit.to_string());
    }

    /// Arms the uptime clock: records `now` (virtual seconds, from the
    /// caller's Clock seam) as the process start.
    pub fn mark_started(&self, now: f64) {
        self.started_s.store(now.to_bits(), Ordering::Relaxed);
        self.observe_now(now);
    }

    /// Advances the uptime clock to `now` (monotonic: earlier samples are
    /// ignored, so out-of-order observers cannot roll uptime back).
    pub fn observe_now(&self, now: f64) {
        let mut seen = f64::from_bits(self.now_s.load(Ordering::Relaxed));
        while now > seen {
            match self.now_s.compare_exchange_weak(
                seen.to_bits(),
                now.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(bits) => seen = f64::from_bits(bits),
            }
        }
    }

    /// Seconds between [`mark_started`](MetricsRegistry::mark_started)
    /// and the latest [`observe_now`](MetricsRegistry::observe_now),
    /// clamped non-negative.
    pub fn uptime_seconds(&self) -> f64 {
        let started = f64::from_bits(self.started_s.load(Ordering::Relaxed));
        let now = f64::from_bits(self.now_s.load(Ordering::Relaxed));
        (now - started).max(0.0)
    }

    /// Per-tenant shed counts, sorted by tenant id.
    pub fn tenant_sheds(&self) -> Vec<(u64, u64)> {
        dump_labeled(&self.tenant_sheds)
    }

    /// Per-tenant queued counts, sorted by tenant id.
    pub fn tenant_queued(&self) -> Vec<(u64, u64)> {
        dump_labeled(&self.tenant_queued)
    }

    /// Per-tenant quota-denial counts, sorted by tenant id.
    pub fn tenant_quota_denials(&self) -> Vec<(u64, u64)> {
        dump_labeled(&self.tenant_quota_denials)
    }

    /// Per-tenant SLO breach counts, sorted by tenant id.
    pub fn tenant_slo_breaches(&self) -> Vec<(u64, u64)> {
        dump_labeled(&self.tenant_slo_breaches)
    }

    /// The latest drift EWMA reported for a kernel, if any.
    pub fn kernel_drift(&self, kernel: u64) -> Option<f64> {
        self.kernel_drift_ewma
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&kernel)
            .map(|bits| f64::from_bits(bits.load(Ordering::Relaxed)))
    }

    /// Every kernel's latest drift EWMA, sorted by kernel id.
    pub fn kernel_drifts(&self) -> Vec<(u64, f64)> {
        self.kernel_drift_ewma
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&k, bits)| (k, f64::from_bits(bits.load(Ordering::Relaxed))))
            .collect()
    }

    fn set_kernel_drift(&self, kernel: u64, ewma: f64) {
        // Non-finite EWMAs are clamped at the source, but guard anyway:
        // the exposition must stay parseable whatever arrives.
        let bits = if ewma.is_finite() { ewma } else { 0.0 }.to_bits();
        {
            let map = self
                .kernel_drift_ewma
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(slot) = map.get(&kernel) {
                slot.store(bits, Ordering::Relaxed);
                return;
            }
        }
        self.kernel_drift_ewma
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(kernel)
            .or_insert_with(|| AtomicU64::new(bits))
            .store(bits, Ordering::Relaxed);
    }

    /// Fraction of invocations served straight from the kernel table.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.table_hits.get(), self.invocations.get())
    }

    /// Fraction of realized run time spent profiling.
    pub fn overhead_fraction(&self) -> f64 {
        ratio(self.profile_time_us.get(), self.invocation_time_us.get())
    }

    /// Renders the registry as a Prometheus-style text exposition page
    /// (`# HELP`/`# TYPE` preambles, `easched_`-prefixed series).
    pub fn expose(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, v: u64| {
            push_meta(&mut out, name, help, "counter");
            out.push_str(&format!("{name} {v}\n"));
        };
        counter(
            "easched_invocations_total",
            "Kernel invocations scheduled",
            self.invocations.get(),
        );
        counter(
            "easched_table_hits_total",
            "Invocations that reused a learned alpha",
            self.table_hits.get(),
        );
        counter(
            "easched_small_n_total",
            "Invocations too small for the GPU (CPU-only)",
            self.small_n.get(),
        );
        counter(
            "easched_profiled_total",
            "First-seen invocations that profiled online",
            self.profiled.get(),
        );
        counter(
            "easched_reprofiled_total",
            "Known kernels that re-profiled",
            self.reprofiled.get(),
        );
        counter(
            "easched_probe_total",
            "Recovery-probe invocations",
            self.probes.get(),
        );
        counter(
            "easched_degraded_total",
            "Invocations degraded after sustained faults",
            self.degraded.get(),
        );
        counter(
            "easched_quarantined_total",
            "Invocations quarantined CPU-only by the breaker",
            self.quarantined.get(),
        );
        counter(
            "easched_profile_rounds_total",
            "Accepted profiling rounds",
            self.profile_rounds.get(),
        );
        counter(
            "easched_fault_rounds_total",
            "Rejected profiling rounds",
            self.fault_rounds.get(),
        );
        counter(
            "easched_breaker_transitions_total",
            "Circuit-breaker state changes",
            self.breaker_transitions.get(),
        );
        counter(
            "easched_drift_reprofiles_total",
            "Re-profiles scheduled by the drift monitor",
            self.drift_reprofiles.get(),
        );
        counter(
            "easched_reprofiles_suppressed_total",
            "Due re-profiles deferred by an empty token bucket",
            self.reprofiles_suppressed.get(),
        );
        counter(
            "easched_watchdog_trips_total",
            "Profiling rounds cancelled by the watchdog deadline",
            self.watchdog_trips.get(),
        );
        counter(
            "easched_split_overruns_total",
            "Chunk executions past the watchdog split deadline",
            self.split_overruns.get(),
        );
        counter(
            "easched_throttled_total",
            "Invocations GPU-gated by the brownout ladder",
            self.throttled.get(),
        );
        counter(
            "easched_requests_shed_total",
            "Requests shed by the admission layer",
            self.requests_shed.get(),
        );
        counter(
            "easched_requests_queued_total",
            "Requests queued by the admission layer",
            self.requests_queued.get(),
        );
        counter(
            "easched_quota_denials_total",
            "Requests refused on an exhausted GPU quota",
            self.quota_denials.get(),
        );
        counter(
            "easched_brownout_transitions_total",
            "Brownout-ladder rung changes",
            self.brownout_transitions.get(),
        );
        counter(
            "easched_slo_breaches_total",
            "SLO burn-rate breaches fired by the tracker",
            self.slo_breaches.get(),
        );
        counter(
            "easched_store_io_errors",
            "Storage I/O faults absorbed by the table store",
            self.store_io_errors.get(),
        );
        counter(
            "easched_profile_time_microseconds_total",
            "Realized profiling-phase time",
            self.profile_time_us.get(),
        );
        counter(
            "easched_invocation_time_microseconds_total",
            "Realized total invocation time",
            self.invocation_time_us.get(),
        );
        push_meta(
            &mut out,
            "easched_breaker_state",
            "Breaker state (0 closed, 1 open, 2 half-open)",
            "gauge",
        );
        out.push_str(&format!(
            "easched_breaker_state {}\n",
            self.breaker_state.get()
        ));
        push_meta(
            &mut out,
            "easched_brownout_level",
            "Brownout rung (0 normal, 1 deny-gpu, 2 force-cpu, 3 shed-load)",
            "gauge",
        );
        out.push_str(&format!(
            "easched_brownout_level {}\n",
            self.brownout_level.get()
        ));
        push_meta(
            &mut out,
            "easched_store_degraded",
            "1 while the table store is in degrade-to-memory mode",
            "gauge",
        );
        out.push_str(&format!(
            "easched_store_degraded {}\n",
            self.store_degraded.get()
        ));
        push_meta(
            &mut out,
            "easched_store_bytes",
            "Bytes the table store successfully persisted",
            "gauge",
        );
        out.push_str(&format!("easched_store_bytes {}\n", self.store_bytes.get()));
        push_histogram(
            &mut out,
            "easched_decide_latency_nanoseconds",
            "Wall-clock vet+decide latency per invocation",
            &self.decide_latency_ns,
        );
        push_histogram(
            &mut out,
            "easched_profile_overhead_basis_points",
            "Profiling share of realized invocation time (1e4 = all)",
            &self.overhead_bp,
        );
        push_meta(
            &mut out,
            "easched_alpha_decisions_total",
            "Executed offload ratio on the paper's 0.1 grid",
            "counter",
        );
        for (i, c) in self.alpha.iter().enumerate() {
            out.push_str(&format!(
                "easched_alpha_decisions_total{{alpha=\"{:.1}\"}} {}\n",
                i as f64 / 10.0,
                c.get()
            ));
        }
        let drifts = self.kernel_drifts();
        if !drifts.is_empty() {
            push_meta(
                &mut out,
                "easched_kernel_drift_ewma",
                "Latest per-kernel EDP drift EWMA from the control loop",
                "gauge",
            );
            for (kernel, ewma) in drifts {
                out.push_str(&format!(
                    "easched_kernel_drift_ewma{{kernel=\"{kernel}\"}} {ewma:e}\n"
                ));
            }
        }
        let names = self
            .tenant_names
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut labeled = |name: &str, help: &str, entries: Vec<(u64, u64)>| {
            if entries.is_empty() {
                return;
            }
            push_meta(&mut out, name, help, "counter");
            for (tenant, v) in entries {
                let label = match names.get(&tenant) {
                    Some(n) => escape_label_value(n),
                    None => tenant.to_string(),
                };
                out.push_str(&format!("{name}{{tenant=\"{label}\"}} {v}\n"));
            }
        };
        labeled(
            "easched_tenant_requests_shed_total",
            "Requests shed by the admission layer, per tenant",
            self.tenant_sheds(),
        );
        labeled(
            "easched_tenant_requests_queued_total",
            "Requests queued by the admission layer, per tenant",
            self.tenant_queued(),
        );
        labeled(
            "easched_tenant_quota_denials_total",
            "Requests refused on an exhausted GPU quota, per tenant",
            self.tenant_quota_denials(),
        );
        labeled(
            "easched_tenant_slo_breaches_total",
            "SLO burn-rate breaches, per tenant",
            self.tenant_slo_breaches(),
        );
        let (version, commit) = self
            .build_info
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let version = if version.is_empty() {
            env!("CARGO_PKG_VERSION").to_string()
        } else {
            version
        };
        let commit = if commit.is_empty() {
            "unknown".to_string()
        } else {
            commit
        };
        push_meta(
            &mut out,
            "easched_build_info",
            "Build identity; always 1, the info rides in the labels",
            "gauge",
        );
        out.push_str(&format!(
            "easched_build_info{{version=\"{}\",commit=\"{}\"}} 1\n",
            escape_label_value(&version),
            escape_label_value(&commit),
        ));
        push_meta(
            &mut out,
            "easched_uptime_seconds",
            "Virtual seconds since the registry was armed",
            "counter",
        );
        out.push_str(&format!(
            "easched_uptime_seconds {}\n",
            self.uptime_seconds()
        ));
        out
    }
}

fn seconds_to_us(s: f64) -> u64 {
    (s * 1e6).round().max(0.0) as u64
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn push_meta(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Renders a histogram in the Prometheus cumulative-bucket convention,
/// truncated after the highest non-empty bucket (the `+Inf` bucket always
/// closes the series).
fn push_histogram(out: &mut String, name: &str, help: &str, h: &LogHistogram) {
    push_meta(out, name, help, "histogram");
    let counts = h.counts();
    let last = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate().take(last + 1) {
        cumulative += c;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            LogHistogram::bucket_bound(i)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_math_at_the_edges() {
        // Bucket 0 is exactly zero; bucket i is the bit-length-i range.
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index((1 << 62) - 1), 62);
        assert_eq!(LogHistogram::bucket_index(1 << 62), 63);
        assert_eq!(LogHistogram::bucket_index(u64::MAX / 2), 63);
        assert_eq!(LogHistogram::bucket_index(u64::MAX / 2 + 1), 64);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        // Bounds are inclusive upper edges; the top bucket caps at MAX.
        assert_eq!(LogHistogram::bucket_bound(0), 0);
        assert_eq!(LogHistogram::bucket_bound(1), 1);
        assert_eq!(LogHistogram::bucket_bound(2), 3);
        assert_eq!(LogHistogram::bucket_bound(64), u64::MAX);
        // Boundary values land within their bound.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(LogHistogram::bucket_index(LogHistogram::bucket_bound(i)), i);
        }
    }

    #[test]
    fn histogram_records_extremes_without_overflow() {
        let h = LogHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let counts = h.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[64], 2);
        assert_eq!(h.count(), 3);
        // The sum wraps (documented); the count stays exact.
        assert_eq!(h.sum(), u64::MAX.wrapping_add(u64::MAX));
    }

    #[test]
    fn registry_update_classifies_paths() {
        let reg = MetricsRegistry::default();
        let mut r = DecisionRecord {
            path: InvocationPath::Profiled,
            rounds: 3,
            fault_rounds: 1,
            alpha: 0.7,
            profile_time: 0.5,
            split_time: 0.5,
            decide_nanos: 1200,
            ..DecisionRecord::default()
        };
        reg.update(&r);
        r.path = InvocationPath::TableHit;
        r.breaker = 1;
        reg.update(&r);
        assert_eq!(reg.invocations.get(), 2);
        assert_eq!(reg.profiled.get(), 1);
        assert_eq!(reg.table_hits.get(), 1);
        assert_eq!(reg.profile_rounds.get(), 6);
        assert_eq!(reg.fault_rounds.get(), 2);
        assert_eq!(reg.breaker_transitions.get(), 1);
        assert_eq!(reg.breaker_state.get(), 1);
        assert!((reg.hit_rate() - 0.5).abs() < 1e-12);
        // Only the profiled record contributes an overhead sample: 50%.
        assert_eq!(reg.overhead_bp.count(), 1);
        assert_eq!(reg.overhead_bp.sum(), 5000);
        assert_eq!(reg.alpha[7].get(), 2);
    }

    #[test]
    fn control_events_accumulate_and_track_latest_ewma() {
        let reg = MetricsRegistry::default();
        assert_eq!(reg.kernel_drift(7), None);
        reg.control(&ControlEvent::Drift {
            kernel: 7,
            ewma: 0.4,
        });
        reg.control(&ControlEvent::Drift {
            kernel: 7,
            ewma: 0.8,
        });
        reg.control(&ControlEvent::Drift {
            kernel: 2,
            ewma: 0.1,
        });
        reg.control(&ControlEvent::Reprofile {
            kernel: 7,
            ewma: 2.1,
        });
        reg.control(&ControlEvent::ReprofileSuppressed { kernel: 7 });
        reg.control(&ControlEvent::ProfileDeadline {
            kernel: 2,
            elapsed: 90.0,
        });
        reg.control(&ControlEvent::SplitOverrun {
            kernel: 2,
            elapsed: 900.0,
        });
        assert_eq!(reg.kernel_drift(7), Some(2.1), "last value wins");
        assert_eq!(reg.kernel_drifts(), vec![(2, 0.1), (7, 2.1)]);
        assert_eq!(reg.drift_reprofiles.get(), 1);
        assert_eq!(reg.reprofiles_suppressed.get(), 1);
        assert_eq!(reg.watchdog_trips.get(), 1);
        assert_eq!(reg.split_overruns.get(), 1);
        // A non-finite EWMA is clamped so the exposition stays parseable.
        reg.control(&ControlEvent::Drift {
            kernel: 9,
            ewma: f64::NAN,
        });
        assert_eq!(reg.kernel_drift(9), Some(0.0));
    }

    #[test]
    fn admission_events_accumulate_with_tenant_labels() {
        let reg = MetricsRegistry::default();
        reg.control(&ControlEvent::RequestShed { tenant: 3 });
        reg.control(&ControlEvent::RequestShed { tenant: 3 });
        reg.control(&ControlEvent::RequestShed { tenant: 0 });
        reg.control(&ControlEvent::RequestQueued { tenant: 1 });
        reg.control(&ControlEvent::QuotaDenied { tenant: 5 });
        reg.control(&ControlEvent::Brownout { level: 2 });
        assert_eq!(reg.requests_shed.get(), 3);
        assert_eq!(reg.requests_queued.get(), 1);
        assert_eq!(reg.quota_denials.get(), 1);
        assert_eq!(reg.brownout_transitions.get(), 1);
        assert_eq!(reg.brownout_level.get(), 2);
        assert_eq!(reg.tenant_sheds(), vec![(0, 1), (3, 2)]);
        assert_eq!(reg.tenant_queued(), vec![(1, 1)]);
        assert_eq!(reg.tenant_quota_denials(), vec![(5, 1)]);
        reg.update(&DecisionRecord {
            path: InvocationPath::Throttled,
            ..DecisionRecord::default()
        });
        assert_eq!(reg.throttled.get(), 1);
        let page = reg.expose();
        assert!(page.contains("easched_requests_shed_total 3"));
        assert!(page.contains("easched_tenant_requests_shed_total{tenant=\"3\"} 2"));
        assert!(page.contains("easched_tenant_requests_queued_total{tenant=\"1\"} 1"));
        assert!(page.contains("easched_tenant_quota_denials_total{tenant=\"5\"} 1"));
        assert!(page.contains("easched_brownout_level 2"));
        assert!(page.contains("easched_throttled_total 1"));
        for line in page.lines() {
            assert!(
                line.starts_with("# ") || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn hostile_tenant_names_are_escaped_in_labels() {
        let reg = MetricsRegistry::default();
        reg.set_tenant_name(0, "evil\"} 666\nfake_metric 1");
        reg.set_tenant_name(1, "back\\slash");
        reg.control(&ControlEvent::RequestShed { tenant: 0 });
        reg.control(&ControlEvent::RequestShed { tenant: 1 });
        reg.control(&ControlEvent::RequestShed { tenant: 2 });
        let page = reg.expose();
        // The quote, newline, and backslash are all escaped: the hostile
        // name cannot close the label, inject a series, or truncate it.
        assert!(
            page.contains("{tenant=\"evil\\\"} 666\\nfake_metric 1\"} 1"),
            "{page}"
        );
        assert!(page.contains("{tenant=\"back\\\\slash\"} 1"), "{page}");
        assert!(
            !page.contains("fake_metric 1\n"),
            "injected series:\n{page}"
        );
        // Unnamed tenants keep their numeric label.
        assert!(page.contains("{tenant=\"2\"} 1"), "{page}");
        // Every physical line still starts like a metric or a comment.
        for line in page.lines() {
            assert!(
                line.starts_with("# ") || line.starts_with("easched_"),
                "stray line: {line}"
            );
        }
        assert_eq!(escape_label_value("plain-name"), "plain-name");
        assert_eq!(escape_label_value("a\rb"), "ab");
    }

    #[test]
    fn build_info_and_uptime_ride_the_exposition() {
        let reg = MetricsRegistry::default();
        let page = reg.expose();
        // Defaults: crate version, unknown commit, zero uptime.
        assert!(
            page.contains(&format!(
                "easched_build_info{{version=\"{}\",commit=\"unknown\"}} 1",
                env!("CARGO_PKG_VERSION")
            )),
            "{page}"
        );
        assert!(page.contains("easched_uptime_seconds 0\n"), "{page}");
        reg.set_build_info("1.2.3", "abc1234");
        reg.mark_started(100.0);
        reg.observe_now(107.5);
        reg.observe_now(103.0); // out-of-order sample must not roll back
        let page = reg.expose();
        assert!(
            page.contains("easched_build_info{version=\"1.2.3\",commit=\"abc1234\"} 1"),
            "{page}"
        );
        assert!(page.contains("easched_uptime_seconds 7.5\n"), "{page}");
    }

    #[test]
    fn slo_breach_events_count_globally_and_per_tenant() {
        let reg = MetricsRegistry::default();
        reg.control(&ControlEvent::SloBreach {
            tenant: 4,
            signal: 2,
        });
        reg.control(&ControlEvent::SloBreach {
            tenant: 4,
            signal: 0,
        });
        reg.control(&ControlEvent::SloBreach {
            tenant: 1,
            signal: 1,
        });
        assert_eq!(reg.slo_breaches.get(), 3);
        assert_eq!(reg.tenant_slo_breaches(), vec![(1, 1), (4, 2)]);
        let page = reg.expose();
        assert!(page.contains("easched_slo_breaches_total 3"));
        assert!(page.contains("easched_tenant_slo_breaches_total{tenant=\"4\"} 2"));
    }

    #[test]
    fn storage_fault_events_count_and_track_degradation() {
        let reg = MetricsRegistry::default();
        reg.control(&ControlEvent::StorageFault {
            kind: 8,
            degraded: false,
        });
        reg.control(&ControlEvent::StorageFault {
            kind: 10,
            degraded: true,
        });
        assert_eq!(reg.store_io_errors.get(), 2);
        assert_eq!(reg.store_degraded.get(), 1);
        reg.control(&ControlEvent::StorageFault {
            kind: 10,
            degraded: false,
        });
        assert_eq!(reg.store_degraded.get(), 0, "re-arm clears the gauge");
        reg.store_bytes.swap(4096);
        let page = reg.expose();
        assert!(page.contains("easched_store_io_errors 3"));
        assert!(page.contains("easched_store_degraded 0"));
        assert!(page.contains("easched_store_bytes 4096"));
    }

    #[test]
    fn exposition_is_prometheus_shaped() {
        let reg = MetricsRegistry::default();
        reg.update(&DecisionRecord {
            path: InvocationPath::Profiled,
            alpha: 1.0,
            decide_nanos: 5,
            profile_time: 0.25,
            split_time: 0.75,
            ..DecisionRecord::default()
        });
        reg.control(&ControlEvent::Drift {
            kernel: 42,
            ewma: 0.25,
        });
        reg.control(&ControlEvent::Reprofile {
            kernel: 42,
            ewma: 2.5,
        });
        let page = reg.expose();
        assert!(page.contains("# TYPE easched_kernel_drift_ewma gauge"));
        assert!(page.contains("easched_kernel_drift_ewma{kernel=\"42\"} 2.5e0"));
        assert!(page.contains("easched_drift_reprofiles_total 1"));
        assert!(page.contains("easched_watchdog_trips_total 0"));
        assert!(page.contains("# TYPE easched_invocations_total counter"));
        assert!(page.contains("easched_invocations_total 1"));
        assert!(page.contains("# TYPE easched_decide_latency_nanoseconds histogram"));
        assert!(page.contains("easched_decide_latency_nanoseconds_bucket{le=\"+Inf\"} 1"));
        assert!(page.contains("easched_decide_latency_nanoseconds_count 1"));
        assert!(page.contains("easched_alpha_decisions_total{alpha=\"1.0\"} 1"));
        // Every line is either a comment or `name{labels} value`.
        for line in page.lines() {
            assert!(
                line.starts_with("# ") || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }
}
