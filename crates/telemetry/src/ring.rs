//! A lock-free, bounded, overwrite-on-wrap ring of fixed-width records.
//!
//! Writers claim a global sequence number with one `fetch_add`, map it to
//! a slot, and publish through a per-slot *version word* driven like a
//! seqlock. The version for claim `c` is `2c + 1` while writing and
//! `2c + 2` once stable; `0` means never written. A writer takes
//! ownership of its slot with a single CAS from whatever *even* (stable)
//! version the slot holds to its own odd tag, stores the payload words,
//! and publishes with a release store of the even tag. Because the words
//! are only ever touched between a successful even→odd CAS and the
//! odd→even publish, exactly one writer can be inside a slot at a time —
//! a stalled writer can never tear a record that a newer lap has already
//! published. If the CAS loses (another lap's writer is mid-flight or got
//! there first), the record is *dropped*: for always-on telemetry,
//! dropping one event under same-slot wrap contention beats blocking the
//! scheduler. Readers are purely optimistic — read version, read words,
//! re-read version — and skip the slot if a writer was in flight.
//! Memory is bounded by construction: once full, the ring overwrites its
//! oldest records.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One slot: a version word plus the payload.
#[derive(Debug)]
struct Slot<const WORDS: usize> {
    version: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl<const WORDS: usize> Slot<WORDS> {
    fn new() -> Slot<WORDS> {
        Slot {
            version: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Lock-free bounded ring of `[u64; WORDS]` records (see [module
/// docs](self)).
#[derive(Debug)]
pub struct AtomicRing<const WORDS: usize> {
    slots: Vec<Slot<WORDS>>,
    mask: u64,
    next: AtomicU64,
    dropped: AtomicU64,
}

/// Retries before a reader gives up on a slot a writer keeps touching.
const READ_RETRIES: usize = 64;

impl<const WORDS: usize> AtomicRing<WORDS> {
    /// A ring holding the last `capacity` records (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> AtomicRing<WORDS> {
        let cap = capacity.next_power_of_two().max(2);
        AtomicRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap - 1) as u64,
            next: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count (always a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records ever claimed — may exceed `capacity()`; the surplus was
    /// overwritten or (rarely) dropped.
    pub fn pushed(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// Records abandoned because another lap's writer owned the slot.
    /// Zero unless writers lap each other inside a single write window.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publishes a record; returns its global sequence number. Lock-free:
    /// one `fetch_add` plus one CAS, never blocks on readers or other
    /// writers. As long as fewer than `capacity()` records have been
    /// pushed, nothing is ever dropped or overwritten.
    pub fn push(&self, words: [u64; WORDS]) -> u64 {
        let claim = self.next.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(claim & self.mask) as usize];
        let writing = claim * 2 + 1;
        // Take ownership: CAS from the slot's current *stable* version to
        // our odd tag. An odd current version means another lap's writer
        // is mid-flight; a version at or past ours means a newer lap beat
        // us. Either way this record loses the slot and is dropped —
        // never torn.
        let current = slot.version.load(Ordering::Acquire);
        if current % 2 == 1
            || current >= writing
            || slot
                .version
                .compare_exchange(current, writing, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return claim;
        }
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        // We own the slot; publish unconditionally.
        slot.version.store(writing + 1, Ordering::Release);
        claim
    }

    /// Optimistically reads one slot; `None` if it was never written or a
    /// writer kept it busy for `READ_RETRIES` attempts.
    fn read_slot(&self, index: usize) -> Option<(u64, [u64; WORDS])> {
        let slot = &self.slots[index];
        for _ in 0..READ_RETRIES {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 {
                return None; // never written
            }
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue; // writer mid-flight
            }
            let words = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Order the payload loads before the version re-check.
            fence(Ordering::Acquire);
            let v2 = slot.version.load(Ordering::Acquire);
            if v1 == v2 {
                return Some(((v1 - 2) / 2, words));
            }
        }
        None
    }

    /// A non-destructive snapshot of every stable record currently in the
    /// ring, sorted by sequence number. Concurrent writers may overwrite
    /// slots while the snapshot runs; such slots are simply read at
    /// whichever lap was stable.
    pub fn snapshot(&self) -> Vec<(u64, [u64; WORDS])> {
        let mut out: Vec<(u64, [u64; WORDS])> = (0..self.slots.len())
            .filter_map(|i| self.read_slot(i))
            .collect();
        out.sort_unstable_by_key(|(seq, _)| *seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(AtomicRing::<1>::new(0).capacity(), 2);
        assert_eq!(AtomicRing::<1>::new(5).capacity(), 8);
        assert_eq!(AtomicRing::<1>::new(8).capacity(), 8);
    }

    #[test]
    fn push_then_snapshot_in_order() {
        let ring = AtomicRing::<2>::new(8);
        for i in 0..5u64 {
            let seq = ring.push([i, i * 10]);
            assert_eq!(seq, i);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, (seq, words)) in snap.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(words[0], i as u64);
            assert_eq!(words[1], i as u64 * 10);
        }
    }

    #[test]
    fn wraparound_keeps_the_newest_records() {
        let ring = AtomicRing::<1>::new(4);
        for i in 0..10u64 {
            ring.push([i]);
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 0, "single-threaded pushes never drop");
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        for (seq, words) in snap {
            assert_eq!(words[0], seq);
        }
    }

    #[test]
    fn empty_ring_snapshots_empty() {
        let ring = AtomicRing::<3>::new(16);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.pushed(), 0);
    }
}
