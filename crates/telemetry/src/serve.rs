//! The scrape server: a dependency-free HTTP/1.0 responder for live
//! observability pages (DESIGN.md §14).
//!
//! Design rules, inherited from the crate's charter:
//!
//! * **Plain `std`.** `std::net::TcpListener` (plus a unix-socket
//!   variant) and threads — no async runtime, no HTTP library. The
//!   protocol surface is deliberately tiny: `GET <path>`, one response,
//!   `Connection: close`.
//! * **No upward dependencies.** The server knows nothing about
//!   schedulers, health reports, or clocks. Each route is a closure
//!   producing a page; the wall-clock seam is an injected `now()`
//!   closure (the CLI adapts the runtime's `Clock` trait), so request
//!   deadlines are testable with a virtual clock like everything else.
//! * **Bounded everything.** At most `max_connections` handler threads;
//!   excess connections get an immediate `503`. Request heads are read
//!   through socket read timeouts under an overall deadline; responses
//!   are written under a write timeout. A scrape can be slow — it can
//!   never wedge the daemon.
//!
//! Reads from live registries are torn-page-free by construction: every
//! provider snapshots through the seqlock rings or atomic counters and
//! renders one `String`, which is written with an exact
//! `Content-Length`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The injected wall-clock seam: seconds from an arbitrary origin.
pub type TimeSource = Arc<dyn Fn() -> f64 + Send + Sync>;

/// One rendered page.
#[derive(Debug, Clone)]
pub struct Page {
    /// The response `Content-Type`.
    pub content_type: &'static str,
    /// The response body.
    pub body: String,
}

impl Page {
    /// A Prometheus text-exposition page.
    pub fn metrics(body: String) -> Page {
        Page {
            content_type: "text/plain; version=0.0.4",
            body,
        }
    }

    /// A JSON page.
    pub fn json(body: String) -> Page {
        Page {
            content_type: "application/json",
            body,
        }
    }
}

type Provider = Arc<dyn Fn() -> Page + Send + Sync>;

/// The route table: exact-match paths to page providers.
#[derive(Clone, Default)]
pub struct Router {
    routes: Vec<(String, Provider)>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field(
                "routes",
                &self.routes.iter().map(|(p, _)| p).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Adds a route (builder form). Paths match exactly, query strings
    /// stripped.
    pub fn route(
        mut self,
        path: &str,
        provider: impl Fn() -> Page + Send + Sync + 'static,
    ) -> Router {
        self.routes.push((path.to_string(), Arc::new(provider)));
        self
    }

    /// The registered paths, in registration order.
    pub fn paths(&self) -> Vec<String> {
        self.routes.iter().map(|(p, _)| p.clone()).collect()
    }

    fn find(&self, path: &str) -> Option<&Provider> {
        self.routes.iter().find(|(p, _)| p == path).map(|(_, h)| h)
    }
}

/// Server limits and deadlines.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Concurrent handler threads; further connections get `503`.
    pub max_connections: usize,
    /// Overall per-request deadline, seconds (read + handle + write),
    /// enforced against the injected [`TimeSource`].
    pub request_deadline: f64,
    /// Per-socket-operation read/write timeout, seconds.
    pub io_timeout: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_connections: 32,
            request_deadline: 5.0,
            io_timeout: 1.0,
        }
    }
}

/// What the server listens on.
enum Endpoint {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// A running scrape server. Dropping it without
/// [`shutdown`](ScrapeServer::shutdown) leaves the accept thread
/// running for the process lifetime — call `shutdown` for a graceful
/// stop.
#[derive(Debug)]
pub struct ScrapeServer {
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    endpoint: Endpoint,
    stats: Arc<ServerStats>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// Served/rejected request counters (relaxed; for tests and `/metrics`).
#[derive(Debug, Default)]
struct ServerStats {
    served: AtomicU64,
    rejected: AtomicU64,
    active: AtomicUsize,
}

impl ScrapeServer {
    /// Binds a TCP listener on `addr` (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port) and starts accepting.
    pub fn bind_tcp(
        addr: &str,
        router: Router,
        cfg: ServeConfig,
        time: TimeSource,
    ) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let accept = {
            let (stop, stats) = (Arc::clone(&stop), Arc::clone(&stats));
            let router = Arc::new(router);
            std::thread::spawn(move || {
                accept_loop(
                    || listener.accept().map(|(s, _)| s),
                    stop,
                    stats,
                    router,
                    cfg,
                    time,
                );
            })
        };
        Ok(ScrapeServer {
            stop,
            accept_thread: Some(accept),
            endpoint: Endpoint::Tcp(local),
            stats,
        })
    }

    /// Binds a unix-domain socket at `path` (removed and re-created) and
    /// starts accepting.
    #[cfg(unix)]
    pub fn bind_unix(
        path: &std::path::Path,
        router: Router,
        cfg: ServeConfig,
        time: TimeSource,
    ) -> std::io::Result<ScrapeServer> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let accept = {
            let (stop, stats) = (Arc::clone(&stop), Arc::clone(&stats));
            let router = Arc::new(router);
            std::thread::spawn(move || {
                accept_loop(
                    || listener.accept().map(|(s, _)| s),
                    stop,
                    stats,
                    router,
                    cfg,
                    time,
                );
            })
        };
        Ok(ScrapeServer {
            stop,
            accept_thread: Some(accept),
            endpoint: Endpoint::Unix(path.to_path_buf()),
            stats,
        })
    }

    /// The bound TCP address (`None` for unix-socket servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match self.endpoint {
            Endpoint::Tcp(addr) => Some(addr),
            #[cfg(unix)]
            Endpoint::Unix(_) => None,
        }
    }

    /// Requests answered with a routed page or 404/405.
    pub fn served(&self) -> u64 {
        self.stats.served.load(Ordering::Relaxed)
    }

    /// Connections refused with `503` at the concurrency bound.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::Relaxed)
    }

    /// Stops accepting, unblocks the accept thread, and joins it.
    /// In-flight handler threads finish under their own deadlines.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, Duration::from_millis(250));
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The stream surface a handler needs (TCP and unix sockets both).
trait Conn: Read + Write + Send + 'static {
    fn set_timeouts(&self, io_timeout: Duration);
}

impl Conn for TcpStream {
    fn set_timeouts(&self, io_timeout: Duration) {
        let _ = self.set_read_timeout(Some(io_timeout));
        let _ = self.set_write_timeout(Some(io_timeout));
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_timeouts(&self, io_timeout: Duration) {
        let _ = self.set_read_timeout(Some(io_timeout));
        let _ = self.set_write_timeout(Some(io_timeout));
    }
}

fn accept_loop<C: Conn>(
    mut accept: impl FnMut() -> std::io::Result<C>,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    router: Arc<Router>,
    cfg: ServeConfig,
    time: TimeSource,
) {
    while !stop.load(Ordering::SeqCst) {
        let Ok(stream) = accept() else { continue };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if stats.active.load(Ordering::Acquire) >= cfg.max_connections.max(1) {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            stream.set_timeouts(Duration::from_secs_f64(cfg.io_timeout.max(0.01)));
            let _ = stream.write_all(
                b"HTTP/1.0 503 Service Unavailable\r\nConnection: close\r\nContent-Length: 0\r\n\r\n",
            );
            continue;
        }
        stats.active.fetch_add(1, Ordering::AcqRel);
        let (stats, router, time) = (Arc::clone(&stats), Arc::clone(&router), Arc::clone(&time));
        std::thread::spawn(move || {
            handle_connection(stream, &router, cfg, &time, &stats);
            stats.active.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// Longest request head the server reads before answering `414`.
const MAX_HEAD: usize = 8 * 1024;

fn handle_connection<C: Conn>(
    mut stream: C,
    router: &Router,
    cfg: ServeConfig,
    time: &TimeSource,
    stats: &ServerStats,
) {
    stream.set_timeouts(Duration::from_secs_f64(cfg.io_timeout.max(0.01)));
    let started = time();
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the blank line ending the request head, the size bound,
    // or the overall deadline.
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() >= MAX_HEAD {
            let _ = respond(&mut stream, 414, "URI Too Long", None);
            return;
        }
        if time() - started > cfg.request_deadline {
            let _ = respond(&mut stream, 408, "Request Timeout", None);
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed before a full head
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // per-op timeout; the deadline check above bounds the loop
            }
            Err(_) => return,
        }
    }
    let request_line = String::from_utf8_lossy(&head);
    let request_line = request_line.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        stats.served.fetch_add(1, Ordering::Relaxed);
        let _ = respond(&mut stream, 405, "Method Not Allowed", None);
        return;
    }
    let path = target.split('?').next().unwrap_or("");
    stats.served.fetch_add(1, Ordering::Relaxed);
    match router.find(path) {
        Some(provider) => {
            let page = provider();
            let _ = respond(&mut stream, 200, "OK", Some(&page));
        }
        None => {
            let _ = respond(&mut stream, 404, "Not Found", None);
        }
    }
}

fn respond<C: Conn>(
    stream: &mut C,
    status: u16,
    reason: &str,
    page: Option<&Page>,
) -> std::io::Result<()> {
    let (content_type, body) = match page {
        Some(p) => (p.content_type, p.body.as_bytes()),
        None => ("text/plain; charset=utf-8", &b""[..]),
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A minimal scrape client for tests and the `easched scrape`
/// subcommand: one `GET`, returns `(status, body)`.
pub fn http_get(
    addr: &SocketAddr,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let stream = TcpStream::connect_timeout(addr, timeout)?;
    request_over(stream, path, timeout)
}

/// [`http_get`] over a unix-domain socket.
#[cfg(unix)]
pub fn uds_get(
    socket: &std::path::Path,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    let stream = UnixStream::connect(socket)?;
    request_over(stream, path, timeout)
}

fn request_over<C: Conn>(
    mut stream: C,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    stream.set_timeouts(timeout);
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let text = String::from_utf8_lossy(&response).into_owned();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall() -> TimeSource {
        let origin = std::time::Instant::now();
        Arc::new(move || origin.elapsed().as_secs_f64())
    }

    fn test_router() -> Router {
        Router::new()
            .route("/metrics", || Page::metrics("up 1\n".to_string()))
            .route("/health", || Page::json("{\"ok\":true}".to_string()))
    }

    #[test]
    fn serves_routes_and_404s_unknown_paths() {
        let server =
            ScrapeServer::bind_tcp("127.0.0.1:0", test_router(), ServeConfig::default(), wall())
                .expect("bind");
        let addr = server.local_addr().expect("tcp server has an address");
        let timeout = Duration::from_secs(5);
        let (status, body) = http_get(&addr, "/metrics", timeout).expect("get /metrics");
        assert_eq!((status, body.as_str()), (200, "up 1\n"));
        let (status, body) = http_get(&addr, "/health", timeout).expect("get /health");
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));
        let (status, _) = http_get(&addr, "/nope", timeout).expect("get /nope");
        assert_eq!(status, 404);
        // Query strings are stripped before matching.
        let (status, _) = http_get(&addr, "/metrics?x=1", timeout).expect("get with query");
        assert_eq!(status, 200);
        assert_eq!(server.served(), 4);
        server.shutdown();
    }

    #[test]
    fn rejects_non_get_methods() {
        let server =
            ScrapeServer::bind_tcp("127.0.0.1:0", test_router(), ServeConfig::default(), wall())
                .expect("bind");
        let addr = server.local_addr().unwrap();
        let mut stream =
            TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        stream
            .write_all(b"POST /metrics HTTP/1.0\r\n\r\n")
            .expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
        server.shutdown();
    }

    #[test]
    fn oversize_request_heads_are_refused() {
        let server =
            ScrapeServer::bind_tcp("127.0.0.1:0", test_router(), ServeConfig::default(), wall())
                .expect("bind");
        let addr = server.local_addr().unwrap();
        let mut stream =
            TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
        let long = "x".repeat(MAX_HEAD + 1024);
        let _ = stream.write_all(format!("GET /{long} HTTP/1.0\r\n").as_bytes());
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(response.starts_with("HTTP/1.0 414"), "{response}");
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_variant_serves_and_cleans_up() {
        let path =
            std::env::temp_dir().join(format!("easched-serve-test-{}.sock", std::process::id()));
        let server = ScrapeServer::bind_unix(&path, test_router(), ServeConfig::default(), wall())
            .expect("bind unix");
        let (status, body) =
            uds_get(&path, "/metrics", Duration::from_secs(5)).expect("get over uds");
        assert_eq!((status, body.as_str()), (200, "up 1\n"));
        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn shutdown_joins_the_accept_thread() {
        let server =
            ScrapeServer::bind_tcp("127.0.0.1:0", test_router(), ServeConfig::default(), wall())
                .expect("bind");
        let addr = server.local_addr().unwrap();
        server.shutdown();
        // The listener is gone: a fresh connection gets refused (or the
        // ephemeral port is rebindable — both prove the accept loop
        // exited; the join in shutdown() already proved it returned).
        let after = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        drop(after);
    }
}
