//! Chrome-trace export of the decision stream, loadable in Perfetto or
//! `chrome://tracing`, and the matching parser used by the post-hoc
//! analyzer.
//!
//! The format is the Trace Event JSON array with **one event object per
//! line** (JSONL-style), so the file both loads in a trace viewer and
//! streams through line-oriented tools. Each invocation becomes one
//! complete (`"ph":"X"`) event on its kernel's track; every
//! [`DecisionRecord`] field rides along in `args`, with floats printed in
//! Rust's shortest round-trip decimal form so
//! [`parse_trace`] reconstructs records bit-for-bit —
//! `parse_trace(&to_trace(&records))` equals `records`.
//!
//! Timestamps are *virtual*: each kernel's invocations are laid end to
//! end from zero on its own track, using the realized (simulated)
//! durations. The viewer shows where time and profiling overhead went,
//! not wall-clock interleaving.

use crate::record::{DecisionRecord, InvocationPath};
use crate::span::{Span, SpanKind};
use std::collections::HashMap;
use std::fmt;

/// Why a trace line failed to parse back into a [`DecisionRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number in the trace text.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceParseError {}

/// Serializes records as a Chrome-trace JSON array, one event per line.
pub fn to_trace(records: &[DecisionRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 360 + 64);
    out.push_str("[\n");
    // Dense per-kernel track ids in order of first appearance, plus a
    // cursor laying each kernel's invocations end to end.
    let mut tracks: HashMap<u64, (u64, f64)> = HashMap::new();
    let mut first = true;
    for r in records {
        let new_track = !tracks.contains_key(&r.kernel);
        let next_tid = tracks.len() as u64 + 1;
        // A fault-corrupted record can carry non-finite phase totals;
        // those draw as zero-length events so ts/dur stay valid JSON.
        let duration = if r.total_time().is_finite() {
            r.total_time()
        } else {
            0.0
        };
        let (tid, cursor) = {
            let entry = tracks.entry(r.kernel).or_insert((next_tid, 0.0));
            let at = entry.1;
            entry.1 += duration;
            (entry.0, at)
        };
        if !first {
            out.push_str(",\n");
        }
        if new_track {
            // First event on this track: name it after the kernel.
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"kernel {:#x}\"}}}},\n",
                r.kernel
            ));
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"eas\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
            r.path.as_str(),
            cursor * 1e6,
            duration * 1e6,
            args_json(r),
        ));
        first = false;
    }
    out.push_str("\n]\n");
    out
}

/// Serializes records *and* causal spans into one Chrome-trace file:
/// the decision events exactly as [`to_trace`] lays them (pid 1, one
/// track per kernel) plus the span forest as nested duration events
/// (pid 2, one track per trace, `"cat":"span"`). Span ts/dur come from
/// the sink-rebased starts, so the admit → queue-wait → decide →
/// cpu-phase/gpu-phase → fold chain of each request renders nested on
/// its own track; every span field rides bit-exactly in `args`, so
/// [`parse_spans`] round-trips the span stream the way
/// [`parse_trace`] round-trips the records.
pub fn to_trace_with_spans(records: &[DecisionRecord], spans: &[Span]) -> String {
    let base = to_trace(records);
    if spans.is_empty() {
        return base;
    }
    // Splice span lines in before the closing bracket.
    let mut out = base.strip_suffix("\n]\n").unwrap_or(&base).to_string();
    let had_events = !records.is_empty();
    let mut tracks: HashMap<u64, u64> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        if had_events || i > 0 {
            out.push_str(",\n");
        }
        let next_tid = tracks.len() as u64 + 1;
        let new_track = !tracks.contains_key(&s.trace);
        let tid = *tracks.entry(s.trace).or_insert(next_tid);
        if new_track {
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{tid},\
                 \"args\":{{\"name\":\"trace {:#x}\"}}}},\n",
                s.trace
            ));
        }
        let ts = if s.start.is_finite() { s.start } else { 0.0 };
        let dur = if s.dur.is_finite() && s.dur > 0.0 {
            s.dur
        } else {
            0.0
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":2,\"tid\":{tid},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"seq\":{},\"trace\":{},\"kernel\":{},\
             \"id\":{},\"parent\":{},\"tenant\":{},\"start\":{},\"dur_s\":{},\"payload\":{}}}}}",
            s.kind.as_str(),
            ts * 1e6,
            dur * 1e6,
            s.seq,
            s.trace,
            s.kernel,
            s.id,
            s.parent,
            s.tenant,
            json_f64(s.start),
            json_f64(s.dur),
            json_f64(s.payload),
        ));
    }
    out.push_str("\n]\n");
    out
}

/// The `args` payload: every record field, floats in shortest
/// round-trip decimal form.
fn args_json(r: &DecisionRecord) -> String {
    format!(
        "\"seq\":{},\"kernel\":{},\"path\":\"{}\",\"class\":{},\"breaker\":{},\
         \"last_fault\":{},\"rounds\":{},\"fault_rounds\":{},\"r_c\":{},\"r_g\":{},\
         \"alpha\":{},\"pred_power\":{},\"pred_time\":{},\"pred_obj\":{},\
         \"profile_time\":{},\"profile_energy\":{},\"split_time\":{},\
         \"split_energy\":{},\"items\":{},\"decide_ns\":{}",
        r.seq,
        r.kernel,
        r.path.as_str(),
        opt_byte(r.class),
        r.breaker,
        opt_byte(r.last_fault),
        r.rounds,
        r.fault_rounds,
        json_f64(r.r_c),
        json_f64(r.r_g),
        json_f64(r.alpha),
        json_f64(r.predicted_power),
        json_f64(r.predicted_time),
        json_f64(r.predicted_objective),
        json_f64(r.profile_time),
        json_f64(r.profile_energy),
        json_f64(r.split_time),
        json_f64(r.split_energy),
        r.items,
        r.decide_nanos,
    )
}

fn opt_byte(v: Option<u8>) -> String {
    match v {
        Some(b) => b.to_string(),
        None => "null".into(),
    }
}

/// Rust's `Display` for finite floats is the shortest decimal that
/// round-trips and never uses exponent notation, which is exactly valid
/// JSON. Non-finite values — which fault-corrupted records *do* contain
/// (a NaN observation poisons its phase total) — have no JSON number
/// form, so they ride as the strings `"NaN"`/`"inf"`/`"-inf"` and parse
/// back to the matching non-finite value.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "\"NaN\"".into()
    } else if v > 0.0 {
        "\"inf\"".into()
    } else {
        "\"-inf\"".into()
    }
}

/// Parses a trace produced by [`to_trace`] back into records, in file
/// order. Tolerates the array brackets, trailing commas, and skips
/// metadata (`"ph":"M"`) events.
pub fn parse_trace(text: &str) -> Result<Vec<DecisionRecord>, TraceParseError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        if line.contains("\"ph\":\"M\"") || line.contains("\"cat\":\"span\"") {
            continue;
        }
        let err = |reason: &str| TraceParseError {
            line: idx + 1,
            reason: reason.to_string(),
        };
        let path_str = str_field(line, "path").ok_or_else(|| err("missing path"))?;
        let path = InvocationPath::parse(path_str)
            .ok_or_else(|| err(&format!("unknown path {path_str:?}")))?;
        let record = DecisionRecord {
            seq: int_field(line, "seq").ok_or_else(|| err("missing seq"))?,
            kernel: int_field(line, "kernel").ok_or_else(|| err("missing kernel"))?,
            path,
            class: byte_field(line, "class").ok_or_else(|| err("missing class"))?,
            breaker: int_field(line, "breaker").ok_or_else(|| err("missing breaker"))? as u8,
            last_fault: byte_field(line, "last_fault").ok_or_else(|| err("missing last_fault"))?,
            rounds: int_field(line, "rounds").ok_or_else(|| err("missing rounds"))? as u32,
            fault_rounds: int_field(line, "fault_rounds")
                .ok_or_else(|| err("missing fault_rounds"))? as u32,
            r_c: f64_field(line, "r_c").ok_or_else(|| err("missing r_c"))?,
            r_g: f64_field(line, "r_g").ok_or_else(|| err("missing r_g"))?,
            alpha: f64_field(line, "alpha").ok_or_else(|| err("missing alpha"))?,
            predicted_power: f64_field(line, "pred_power")
                .ok_or_else(|| err("missing pred_power"))?,
            predicted_time: f64_field(line, "pred_time").ok_or_else(|| err("missing pred_time"))?,
            predicted_objective: f64_field(line, "pred_obj")
                .ok_or_else(|| err("missing pred_obj"))?,
            profile_time: f64_field(line, "profile_time")
                .ok_or_else(|| err("missing profile_time"))?,
            profile_energy: f64_field(line, "profile_energy")
                .ok_or_else(|| err("missing profile_energy"))?,
            split_time: f64_field(line, "split_time").ok_or_else(|| err("missing split_time"))?,
            split_energy: f64_field(line, "split_energy")
                .ok_or_else(|| err("missing split_energy"))?,
            items: int_field(line, "items").ok_or_else(|| err("missing items"))?,
            decide_nanos: int_field(line, "decide_ns").ok_or_else(|| err("missing decide_ns"))?,
        };
        out.push(record);
    }
    Ok(out)
}

/// Parses the span events out of a trace produced by
/// [`to_trace_with_spans`], in file order, ignoring decision events and
/// metadata. `parse_spans(&to_trace_with_spans(&[], &spans))` equals
/// `spans` bit-for-bit (the authoritative `start`/`dur` ride in `args`,
/// not in the viewer's clamped `ts`/`dur`).
pub fn parse_spans(text: &str) -> Result<Vec<Span>, TraceParseError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if !line.contains("\"cat\":\"span\"") || line.contains("\"ph\":\"M\"") {
            continue;
        }
        let err = |reason: &str| TraceParseError {
            line: idx + 1,
            reason: reason.to_string(),
        };
        let name = str_field(line, "name").ok_or_else(|| err("missing name"))?;
        let kind = SpanKind::parse(name).ok_or_else(|| err(&format!("unknown kind {name:?}")))?;
        out.push(Span {
            seq: int_field(line, "seq").ok_or_else(|| err("missing seq"))?,
            trace: int_field(line, "trace").ok_or_else(|| err("missing trace"))?,
            kernel: int_field(line, "kernel").ok_or_else(|| err("missing kernel"))?,
            id: int_field(line, "id").ok_or_else(|| err("missing id"))? as u16,
            parent: int_field(line, "parent").ok_or_else(|| err("missing parent"))? as u16,
            kind,
            tenant: int_field(line, "tenant").ok_or_else(|| err("missing tenant"))? as u16,
            start: f64_field(line, "start").ok_or_else(|| err("missing start"))?,
            dur: f64_field(line, "dur_s").ok_or_else(|| err("missing dur_s"))?,
            payload: f64_field(line, "payload").ok_or_else(|| err("missing payload"))?,
        });
    }
    Ok(out)
}

/// The raw value text of `"key":<value>` in a one-line JSON object. Our
/// values are numbers, `null`, or plain strings without escapes, so the
/// value ends at the next `,`, `}`, or (for strings) closing quote.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    raw_field(line, key)?
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
}

fn int_field(line: &str, key: &str) -> Option<u64> {
    raw_field(line, key)?.parse().ok()
}

fn byte_field(line: &str, key: &str) -> Option<Option<u8>> {
    match raw_field(line, key)? {
        "null" => Some(None),
        v => v.parse().ok().map(Some),
    }
}

fn f64_field(line: &str, key: &str) -> Option<f64> {
    match raw_field(line, key)? {
        "null" => Some(0.0),
        "\"NaN\"" => Some(f64::NAN),
        "\"inf\"" => Some(f64::INFINITY),
        "\"-inf\"" => Some(f64::NEG_INFINITY),
        v => v.parse().ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, kernel: u64) -> DecisionRecord {
        DecisionRecord {
            seq,
            kernel,
            path: InvocationPath::Profiled,
            class: Some(3),
            breaker: 0,
            last_fault: None,
            rounds: 4,
            fault_rounds: 0,
            r_c: 1.0e6 / 3.0,
            r_g: std::f64::consts::E,
            alpha: 0.7,
            predicted_power: 41.125,
            predicted_time: 0.001953125,
            predicted_objective: 8.031e-5,
            profile_time: 0.0001,
            profile_energy: 0.004,
            split_time: 0.0019,
            split_energy: 0.081,
            items: 123_456,
            decide_nanos: 1_850,
        }
    }

    #[test]
    fn trace_roundtrips_bit_for_bit() {
        let records = vec![
            sample(0, 0xAA),
            DecisionRecord {
                path: InvocationPath::TableHit,
                class: None,
                ..sample(1, 0xAA)
            },
            DecisionRecord {
                path: InvocationPath::Degraded,
                last_fault: Some(2),
                fault_rounds: 5,
                ..sample(2, 0xBB)
            },
        ];
        let text = to_trace(&records);
        let parsed = parse_trace(&text).expect("trace must parse");
        assert_eq!(parsed, records);
    }

    #[test]
    fn trace_is_a_json_array_with_one_event_per_line() {
        let text = to_trace(&[sample(0, 1), sample(1, 2)]);
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("\n]\n"));
        // Every interior line is a single JSON object (metadata or event).
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if line == "[" || line == "]" || line.is_empty() {
                continue;
            }
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        // Two kernels → two thread-name metadata events, two X events.
        assert_eq!(text.matches("\"ph\":\"M\"").count(), 2);
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn same_kernel_events_lay_end_to_end_on_one_track() {
        let a = sample(0, 7);
        let b = sample(1, 7);
        let text = to_trace(&[a, b]);
        assert_eq!(text.matches("\"ph\":\"M\"").count(), 1, "one track");
        let expected_ts = (a.total_time() * 1e6 * 1000.0).round() / 1000.0;
        assert!(
            text.contains(&format!("\"ts\":{expected_ts:.3}")),
            "second event starts where the first ended:\n{text}"
        );
    }

    #[test]
    fn non_finite_floats_survive_the_trace() {
        let r = DecisionRecord {
            profile_time: f64::NAN,
            split_time: f64::INFINITY,
            r_c: f64::NEG_INFINITY,
            ..sample(0, 1)
        };
        let text = to_trace(&[r]);
        // ts/dur must stay valid JSON numbers even with poisoned totals.
        assert!(
            text.contains("\"ts\":0.000") && text.contains("\"dur\":0.000"),
            "{text}"
        );
        assert!(!text.contains(":NaN") && !text.contains(":inf"), "{text}");
        let parsed = parse_trace(&text).expect("must stay parseable");
        assert_eq!(parsed.len(), 1);
        assert!(parsed[0].profile_time.is_nan());
        assert_eq!(parsed[0].split_time, f64::INFINITY);
        assert_eq!(parsed[0].r_c, f64::NEG_INFINITY);
        // PartialEq can't see NaN == NaN; the bit-level check can.
        assert!(parsed[0].bitwise_eq(&r));
    }

    fn sample_span(seq: u64, trace: u64, kind: SpanKind) -> Span {
        Span {
            seq,
            trace,
            kernel: 0xAB,
            id: seq as u16 + 1,
            parent: seq as u16,
            kind,
            tenant: 3,
            start: 0.25 * seq as f64,
            dur: 0.125,
            payload: 1.5,
        }
    }

    #[test]
    fn spans_roundtrip_bit_for_bit_including_non_finite() {
        let spans = vec![
            sample_span(0, 0xDEAD, SpanKind::Decide),
            Span {
                dur: f64::NAN,
                payload: f64::NEG_INFINITY,
                ..sample_span(1, 0xDEAD, SpanKind::CpuPhase)
            },
            sample_span(2, 0xBEEF, SpanKind::Fold),
        ];
        let text = to_trace_with_spans(&[], &spans);
        let parsed = parse_spans(&text).expect("spans must parse");
        assert_eq!(parsed.len(), spans.len());
        for (p, s) in parsed.iter().zip(&spans) {
            assert!(p.bitwise_eq(s), "{p:?} vs {s:?}");
        }
        // Viewer-facing ts/dur stay valid JSON numbers despite the NaN.
        assert!(!text.contains("\"ts\":NaN") && !text.contains("\"dur\":NaN"));
    }

    #[test]
    fn combined_trace_parses_both_ways() {
        let records = vec![sample(0, 0xAA), sample(1, 0xBB)];
        let spans = vec![
            sample_span(0, 0x11, SpanKind::Admit),
            sample_span(1, 0x11, SpanKind::QueueWait),
            sample_span(2, 0x22, SpanKind::GpuPhase),
        ];
        let text = to_trace_with_spans(&records, &spans);
        // The record parser ignores span lines; the span parser ignores
        // record lines. Both reconstruct their stream exactly.
        assert_eq!(parse_trace(&text).expect("records"), records);
        let parsed = parse_spans(&text).expect("spans");
        assert_eq!(parsed.len(), 3);
        for (p, s) in parsed.iter().zip(&spans) {
            assert!(p.bitwise_eq(s));
        }
        // pid 1 carries the kernels, pid 2 the traces; each trace gets a
        // thread-name metadata line.
        assert_eq!(text.matches("\"pid\":2").count(), 3 + 2, "{text}");
        assert!(text.contains("trace 0x11") && text.contains("trace 0x22"));
    }

    #[test]
    fn spans_without_records_still_form_a_json_array() {
        let text = to_trace_with_spans(&[], &[sample_span(0, 1, SpanKind::Decide)]);
        assert!(text.starts_with("[\n") && text.ends_with("\n]\n"), "{text}");
        assert_eq!(parse_trace(&text).expect("no records"), vec![]);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = parse_trace("[\n{\"ph\":\"X\",\"args\":{}}\n]\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("path"));
    }
}
