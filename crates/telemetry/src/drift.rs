//! Post-hoc model-drift analysis: how far the scheduler's predictions
//! strayed from what actually happened.
//!
//! Every record on a prediction-carrying path ([`InvocationPath::
//! has_prediction`](crate::InvocationPath::has_prediction)) pins three
//! model outputs — P(α), T(α), and their EDP — against the realized
//! energy and time of the final split it scheduled. Per-kernel relative
//! errors aggregate those into a drift report: on a healthy platform the
//! errors reflect only measurement noise and residual model error, so a
//! drift that grows over a run (or differs wildly between kernels) is
//! the black-box signal that a power curve or the time model no longer
//! matches the machine — exactly the feedback the paper's static
//! characterization cannot provide.

use crate::record::DecisionRecord;
use std::collections::BTreeMap;

/// Per-kernel summary of predicted-vs-realized error.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelDrift {
    /// The kernel.
    pub kernel: u64,
    /// Records seen for this kernel, on any path.
    pub invocations: u64,
    /// Invocations served straight from the table.
    pub table_hits: u64,
    /// Invocations that carried a model prediction (the sample the
    /// errors below are averaged over).
    pub predicted: u64,
    /// Mean relative error of T(α) against the realized split time.
    pub mean_time_error: f64,
    /// Mean relative error of P(α) against the realized split power.
    pub mean_power_error: f64,
    /// Mean relative error of predicted EDP (P·T²) against realized
    /// split EDP (E·T).
    pub mean_edp_drift: f64,
    /// Worst single-invocation EDP error.
    pub max_edp_drift: f64,
}

#[derive(Default)]
struct Accumulator {
    invocations: u64,
    table_hits: u64,
    predicted: u64,
    time_error: f64,
    power_error: f64,
    edp_drift: f64,
    max_edp_drift: f64,
}

/// Aggregates records into per-kernel drift summaries, sorted by kernel
/// id. Records without a prediction (table hits, small-N, quarantined,
/// degraded) count toward `invocations` but contribute no error terms.
pub fn model_drift(records: &[DecisionRecord]) -> Vec<KernelDrift> {
    let mut per_kernel: BTreeMap<u64, Accumulator> = BTreeMap::new();
    for r in records {
        let acc = per_kernel.entry(r.kernel).or_default();
        acc.invocations += 1;
        if r.path == crate::record::InvocationPath::TableHit {
            acc.table_hits += 1;
        }
        if !r.path.has_prediction() || r.split_time <= 0.0 || r.predicted_time <= 0.0 {
            continue;
        }
        let realized_power = r.split_energy / r.split_time;
        let predicted_edp = r.predicted_power * r.predicted_time * r.predicted_time;
        let realized_edp = r.split_energy * r.split_time;
        let time_err = relative_error(r.predicted_time, r.split_time);
        let power_err = relative_error(r.predicted_power, realized_power);
        let edp_err = relative_error(predicted_edp, realized_edp);
        acc.predicted += 1;
        acc.time_error += time_err;
        acc.power_error += power_err;
        acc.edp_drift += edp_err;
        acc.max_edp_drift = acc.max_edp_drift.max(edp_err);
    }
    per_kernel
        .into_iter()
        .map(|(kernel, acc)| {
            let n = acc.predicted.max(1) as f64;
            KernelDrift {
                kernel,
                invocations: acc.invocations,
                table_hits: acc.table_hits,
                predicted: acc.predicted,
                mean_time_error: acc.time_error / n,
                mean_power_error: acc.power_error / n,
                mean_edp_drift: acc.edp_drift / n,
                max_edp_drift: acc.max_edp_drift,
            }
        })
        .collect()
}

/// |predicted − realized| / realized, guarding degenerate denominators.
fn relative_error(predicted: f64, realized: f64) -> f64 {
    if realized.abs() < f64::EPSILON || !realized.is_finite() || !predicted.is_finite() {
        return 0.0;
    }
    ((predicted - realized) / realized).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InvocationPath;

    fn predicted_record(kernel: u64, pred_time: f64, split_time: f64) -> DecisionRecord {
        DecisionRecord {
            kernel,
            path: InvocationPath::Profiled,
            predicted_power: 50.0,
            predicted_time: pred_time,
            split_time,
            split_energy: 50.0 * split_time, // realized power exactly 50 W
            ..DecisionRecord::default()
        }
    }

    #[test]
    fn perfect_predictions_report_zero_drift() {
        let records = vec![predicted_record(1, 0.5, 0.5), predicted_record(1, 2.0, 2.0)];
        let drift = model_drift(&records);
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].predicted, 2);
        assert_eq!(drift[0].mean_time_error, 0.0);
        assert_eq!(drift[0].mean_power_error, 0.0);
        assert_eq!(drift[0].mean_edp_drift, 0.0);
        assert_eq!(drift[0].max_edp_drift, 0.0);
    }

    #[test]
    fn time_error_propagates_into_edp() {
        // T off by 2× at equal power: EDP = P·T² off by 4× → error 3.0.
        let drift = model_drift(&[predicted_record(3, 1.0, 0.5)]);
        assert!((drift[0].mean_time_error - 1.0).abs() < 1e-12);
        assert!((drift[0].mean_power_error - 0.0).abs() < 1e-12);
        assert!((drift[0].mean_edp_drift - 3.0).abs() < 1e-12);
        assert_eq!(drift[0].max_edp_drift, drift[0].mean_edp_drift);
    }

    #[test]
    fn non_predicted_paths_count_invocations_only() {
        let records = vec![
            predicted_record(9, 1.0, 1.0),
            DecisionRecord {
                kernel: 9,
                path: InvocationPath::TableHit,
                ..DecisionRecord::default()
            },
            DecisionRecord {
                kernel: 9,
                path: InvocationPath::Quarantined,
                ..DecisionRecord::default()
            },
        ];
        let drift = model_drift(&records);
        assert_eq!(drift[0].invocations, 3);
        assert_eq!(drift[0].table_hits, 1);
        assert_eq!(drift[0].predicted, 1);
    }

    #[test]
    fn kernels_sort_by_id() {
        let records = vec![predicted_record(7, 1.0, 1.0), predicted_record(2, 1.0, 1.0)];
        let drift = model_drift(&records);
        assert_eq!(drift[0].kernel, 2);
        assert_eq!(drift[1].kernel, 7);
    }
}
