//! The sink abstraction the scheduler reports through, and the standard
//! lock-free ring-backed implementation.
//!
//! Frontends hold an `Option<Arc<dyn TelemetrySink>>`. With `None`
//! (the default) the scheduler takes the exact pre-telemetry code path —
//! no wrapper backend, no timing, no record construction — which is what
//! keeps telemetry zero-cost when disabled. With a sink attached, one
//! [`DecisionRecord`] per invocation flows in on the scheduling thread,
//! so implementations must be cheap, lock-free, and must never panic.

use crate::metrics::MetricsRegistry;
use crate::record::DecisionRecord;
use crate::ring::AtomicRing;
use std::fmt;

/// Receives one structured event per kernel invocation.
///
/// Implementations must be thread-safe: the shared frontend calls
/// [`record`](TelemetrySink::record) from every stream concurrently.
pub trait TelemetrySink: Send + Sync + fmt::Debug {
    /// Called once per invocation, after the remainder has executed.
    fn record(&self, record: &DecisionRecord);
}

/// A sink that discards everything — for tests and for measuring the
/// overhead of record construction itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _record: &DecisionRecord) {}
}

/// The standard sink: a bounded lock-free ring of the most recent
/// records, plus a [`MetricsRegistry`] folded up front (so metrics cover
/// *every* invocation even after the ring wraps).
#[derive(Debug)]
pub struct RingSink {
    ring: AtomicRing<{ DecisionRecord::WORDS }>,
    metrics: MetricsRegistry,
}

/// Default ring capacity: enough for every invocation of the benchmark
/// suites with room to spare, ~3.4 MB resident.
const DEFAULT_CAPACITY: usize = 1 << 15;

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::with_capacity(DEFAULT_CAPACITY)
    }
}

impl RingSink {
    /// A sink retaining the last `capacity` records (rounded up to a
    /// power of two).
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            ring: AtomicRing::new(capacity),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Records ever recorded (including any the ring has since
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// Records dropped under same-slot wrap contention (zero unless
    /// writers lap each other; see [`AtomicRing::dropped`]).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The metrics registry fed by this sink.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A non-destructive snapshot of the retained records, in sequence
    /// order, each stamped with its global sequence number.
    pub fn snapshot(&self) -> Vec<DecisionRecord> {
        self.ring
            .snapshot()
            .into_iter()
            .map(|(seq, words)| DecisionRecord::decode(seq, &words))
            .collect()
    }
}

impl TelemetrySink for RingSink {
    fn record(&self, record: &DecisionRecord) {
        self.metrics.update(record);
        self.ring.push(record.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InvocationPath;

    #[test]
    fn sink_roundtrips_records_with_sequence_numbers() {
        let sink = RingSink::with_capacity(8);
        for i in 0..3u64 {
            sink.record(&DecisionRecord {
                kernel: 100 + i,
                path: InvocationPath::Profiled,
                alpha: 0.1 * i as f64,
                items: 1000 * (i + 1),
                ..DecisionRecord::default()
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 3);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.kernel, 100 + i as u64);
            assert_eq!(r.items, 1000 * (i as u64 + 1));
        }
        assert_eq!(sink.recorded(), 3);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.metrics().invocations.get(), 3);
    }

    #[test]
    fn metrics_survive_ring_wrap() {
        let sink = RingSink::with_capacity(4);
        for _ in 0..100 {
            sink.record(&DecisionRecord::default());
        }
        assert_eq!(sink.snapshot().len(), 4, "ring retains only the newest");
        assert_eq!(
            sink.metrics().invocations.get(),
            100,
            "metrics cover every invocation regardless of wrap"
        );
    }
}
