//! The sink abstraction the scheduler reports through, and the standard
//! lock-free ring-backed implementation.
//!
//! Frontends hold an `Option<Arc<dyn TelemetrySink>>`. With `None`
//! (the default) the scheduler takes the exact pre-telemetry code path —
//! no wrapper backend, no timing, no record construction — which is what
//! keeps telemetry zero-cost when disabled. With a sink attached, one
//! [`DecisionRecord`] per invocation flows in on the scheduling thread,
//! so implementations must be cheap, lock-free, and must never panic.

use crate::metrics::MetricsRegistry;
use crate::record::DecisionRecord;
use crate::ring::AtomicRing;
use std::fmt;

/// An out-of-band event from the self-healing control loop (DESIGN.md
/// §11): drift-monitor folds, reprofile scheduling, and watchdog
/// cancellations. Unlike [`DecisionRecord`]s these are not one-per-
/// invocation — they fire only when the loop observes or acts — and they
/// never enter the record ring; sinks fold them into metrics instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlEvent {
    /// The drift monitor folded a predicted-vs-realized EDP sample into a
    /// kernel's EWMA (fires once per monitored split).
    Drift {
        /// The kernel observed.
        kernel: u64,
        /// The EWMA after folding this sample.
        ewma: f64,
    },
    /// Sustained drift crossed the bound: the kernel's table entry was
    /// marked stale and a re-profile scheduled.
    Reprofile {
        /// The kernel scheduled for re-profiling.
        kernel: u64,
        /// The EWMA that triggered the re-profile.
        ewma: f64,
    },
    /// A re-profile was due but the global token bucket was empty — the
    /// budget guard against reprofile storms.
    ReprofileSuppressed {
        /// The kernel whose re-profile was deferred.
        kernel: u64,
    },
    /// The watchdog cancelled a profiling round that overran its
    /// deadline (the round is treated as a typed fault).
    ProfileDeadline {
        /// The kernel whose round was cancelled.
        kernel: u64,
        /// The round's observed elapsed time, seconds.
        elapsed: f64,
    },
    /// A chunk execution overran the watchdog's split deadline; the
    /// kernel's entry was tainted and the breaker notified.
    SplitOverrun {
        /// The kernel whose split overran.
        kernel: u64,
        /// The split's observed elapsed time, seconds.
        elapsed: f64,
    },
    /// The admission layer shed a tenant's request (queue overflow or
    /// brownout stage 3). Adaptation, not a fault.
    RequestShed {
        /// The shedding tenant's id (registry index).
        tenant: u64,
    },
    /// The admission layer queued a tenant's request behind earlier ones.
    RequestQueued {
        /// The queuing tenant's id (registry index).
        tenant: u64,
    },
    /// The admission layer refused a request because the tenant's GPU
    /// quota window was exhausted.
    QuotaDenied {
        /// The denied tenant's id (registry index).
        tenant: u64,
    },
    /// The brownout ladder moved to a new rung.
    Brownout {
        /// The new rung's stable code (0 normal … 3 shed-load).
        level: u8,
    },
}

/// Receives one structured event per kernel invocation.
///
/// Implementations must be thread-safe: the shared frontend calls
/// [`record`](TelemetrySink::record) from every stream concurrently.
pub trait TelemetrySink: Send + Sync + fmt::Debug {
    /// Called once per invocation, after the remainder has executed.
    fn record(&self, record: &DecisionRecord);

    /// Called when the self-healing control loop observes or acts
    /// (DESIGN.md §11). Default is a no-op so pre-existing sinks keep
    /// compiling; like [`record`](TelemetrySink::record), implementations
    /// must be cheap and must never panic.
    fn control(&self, event: &ControlEvent) {
        let _ = event;
    }
}

/// A sink that discards everything — for tests and for measuring the
/// overhead of record construction itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _record: &DecisionRecord) {}
}

/// The standard sink: a bounded lock-free ring of the most recent
/// records, plus a [`MetricsRegistry`] folded up front (so metrics cover
/// *every* invocation even after the ring wraps).
#[derive(Debug)]
pub struct RingSink {
    ring: AtomicRing<{ DecisionRecord::WORDS }>,
    metrics: MetricsRegistry,
}

/// Default ring capacity: enough for every invocation of the benchmark
/// suites with room to spare, ~3.4 MB resident.
const DEFAULT_CAPACITY: usize = 1 << 15;

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::with_capacity(DEFAULT_CAPACITY)
    }
}

impl RingSink {
    /// A sink retaining the last `capacity` records (rounded up to a
    /// power of two).
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            ring: AtomicRing::new(capacity),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Records ever recorded (including any the ring has since
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// Records dropped under same-slot wrap contention (zero unless
    /// writers lap each other; see [`AtomicRing::dropped`]).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The metrics registry fed by this sink.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A non-destructive snapshot of the retained records, in sequence
    /// order, each stamped with its global sequence number.
    pub fn snapshot(&self) -> Vec<DecisionRecord> {
        self.ring
            .snapshot()
            .into_iter()
            .map(|(seq, words)| DecisionRecord::decode(seq, &words))
            .collect()
    }
}

impl TelemetrySink for RingSink {
    fn record(&self, record: &DecisionRecord) {
        self.metrics.update(record);
        self.ring.push(record.encode());
    }

    fn control(&self, event: &ControlEvent) {
        self.metrics.control(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InvocationPath;

    #[test]
    fn sink_roundtrips_records_with_sequence_numbers() {
        let sink = RingSink::with_capacity(8);
        for i in 0..3u64 {
            sink.record(&DecisionRecord {
                kernel: 100 + i,
                path: InvocationPath::Profiled,
                alpha: 0.1 * i as f64,
                items: 1000 * (i + 1),
                ..DecisionRecord::default()
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 3);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.kernel, 100 + i as u64);
            assert_eq!(r.items, 1000 * (i as u64 + 1));
        }
        assert_eq!(sink.recorded(), 3);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.metrics().invocations.get(), 3);
    }

    #[test]
    fn control_events_feed_metrics_not_the_ring() {
        let sink = RingSink::with_capacity(8);
        sink.control(&ControlEvent::Drift {
            kernel: 7,
            ewma: 0.5,
        });
        sink.control(&ControlEvent::Reprofile {
            kernel: 7,
            ewma: 2.5,
        });
        sink.control(&ControlEvent::ReprofileSuppressed { kernel: 9 });
        sink.control(&ControlEvent::ProfileDeadline {
            kernel: 7,
            elapsed: 100.0,
        });
        sink.control(&ControlEvent::SplitOverrun {
            kernel: 7,
            elapsed: 900.0,
        });
        assert!(sink.snapshot().is_empty(), "events never enter the ring");
        assert_eq!(sink.metrics().drift_reprofiles.get(), 1);
        assert_eq!(sink.metrics().reprofiles_suppressed.get(), 1);
        assert_eq!(sink.metrics().watchdog_trips.get(), 1);
        assert_eq!(sink.metrics().split_overruns.get(), 1);
        assert_eq!(sink.metrics().kernel_drift(7), Some(2.5));
    }

    #[test]
    fn null_sink_ignores_control_events() {
        // The default trait method: attaching a sink that only implements
        // record() must not break when the control loop speaks.
        NullSink.control(&ControlEvent::Drift {
            kernel: 1,
            ewma: 0.1,
        });
    }

    #[test]
    fn metrics_survive_ring_wrap() {
        let sink = RingSink::with_capacity(4);
        for _ in 0..100 {
            sink.record(&DecisionRecord::default());
        }
        assert_eq!(sink.snapshot().len(), 4, "ring retains only the newest");
        assert_eq!(
            sink.metrics().invocations.get(),
            100,
            "metrics cover every invocation regardless of wrap"
        );
    }
}
