//! The sink abstraction the scheduler reports through, and the standard
//! lock-free ring-backed implementation.
//!
//! Frontends hold an `Option<Arc<dyn TelemetrySink>>`. With `None`
//! (the default) the scheduler takes the exact pre-telemetry code path —
//! no wrapper backend, no timing, no record construction — which is what
//! keeps telemetry zero-cost when disabled. With a sink attached, one
//! [`DecisionRecord`] per invocation flows in on the scheduling thread,
//! so implementations must be cheap, lock-free, and must never panic.

use crate::metrics::MetricsRegistry;
use crate::record::DecisionRecord;
use crate::ring::AtomicRing;
use crate::span::{Span, SpanSink};
use std::fmt;
use std::sync::Arc;

/// An out-of-band event from the self-healing control loop (DESIGN.md
/// §11): drift-monitor folds, reprofile scheduling, and watchdog
/// cancellations. Unlike [`DecisionRecord`]s these are not one-per-
/// invocation — they fire only when the loop observes or acts — and they
/// never enter the record ring; sinks fold them into metrics instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlEvent {
    /// The drift monitor folded a predicted-vs-realized EDP sample into a
    /// kernel's EWMA (fires once per monitored split).
    Drift {
        /// The kernel observed.
        kernel: u64,
        /// The EWMA after folding this sample.
        ewma: f64,
    },
    /// Sustained drift crossed the bound: the kernel's table entry was
    /// marked stale and a re-profile scheduled.
    Reprofile {
        /// The kernel scheduled for re-profiling.
        kernel: u64,
        /// The EWMA that triggered the re-profile.
        ewma: f64,
    },
    /// A re-profile was due but the global token bucket was empty — the
    /// budget guard against reprofile storms.
    ReprofileSuppressed {
        /// The kernel whose re-profile was deferred.
        kernel: u64,
    },
    /// The watchdog cancelled a profiling round that overran its
    /// deadline (the round is treated as a typed fault).
    ProfileDeadline {
        /// The kernel whose round was cancelled.
        kernel: u64,
        /// The round's observed elapsed time, seconds.
        elapsed: f64,
    },
    /// A chunk execution overran the watchdog's split deadline; the
    /// kernel's entry was tainted and the breaker notified.
    SplitOverrun {
        /// The kernel whose split overran.
        kernel: u64,
        /// The split's observed elapsed time, seconds.
        elapsed: f64,
    },
    /// The admission layer shed a tenant's request (queue overflow or
    /// brownout stage 3). Adaptation, not a fault.
    RequestShed {
        /// The shedding tenant's id (registry index).
        tenant: u64,
    },
    /// The admission layer queued a tenant's request behind earlier ones.
    RequestQueued {
        /// The queuing tenant's id (registry index).
        tenant: u64,
    },
    /// The admission layer refused a request because the tenant's GPU
    /// quota window was exhausted.
    QuotaDenied {
        /// The denied tenant's id (registry index).
        tenant: u64,
    },
    /// The brownout ladder moved to a new rung.
    Brownout {
        /// The new rung's stable code (0 normal … 3 shed-load).
        level: u8,
    },
    /// An SLO burn-rate alert fired for a tenant (DESIGN.md §14). The
    /// full typed event — burn rates, exemplar offset — lives in the
    /// `SloTracker`; this control event is the metrics-exposure echo.
    SloBreach {
        /// The breaching tenant's id (registry index).
        tenant: u64,
        /// Stable signal code (0 queue-wait, 1 edp-ratio, 2 shed-rate).
        signal: u8,
    },
    /// The table store absorbed a storage-layer I/O fault (DESIGN.md
    /// §16): a failed append, a poisoned fsync, or a degradation-state
    /// transition. Reduced durability, never reduced scheduling fidelity.
    StorageFault {
        /// The stable `FaultKind` code (8 write, 9 fsync, 10
        /// degradation transition).
        kind: u8,
        /// Whether the store is in degrade-to-memory mode after this
        /// event.
        degraded: bool,
    },
}

/// Receives one structured event per kernel invocation.
///
/// Implementations must be thread-safe: the shared frontend calls
/// [`record`](TelemetrySink::record) from every stream concurrently.
pub trait TelemetrySink: Send + Sync + fmt::Debug {
    /// Called once per invocation, after the remainder has executed.
    fn record(&self, record: &DecisionRecord);

    /// Called when the self-healing control loop observes or acts
    /// (DESIGN.md §11). Default is a no-op so pre-existing sinks keep
    /// compiling; like [`record`](TelemetrySink::record), implementations
    /// must be cheap and must never panic.
    fn control(&self, event: &ControlEvent) {
        let _ = event;
    }

    /// Whether this sink wants causal spans (DESIGN.md §14). Emitters
    /// gate *all* span construction on this, so a sink that answers
    /// `false` — the default — pays nothing.
    fn wants_spans(&self) -> bool {
        false
    }

    /// Allocates the next deterministic trace id (0 when the sink does
    /// not trace).
    fn next_trace(&self) -> u64 {
        0
    }

    /// Publishes one batch of spans for `trace`. Ids and starts are
    /// batch-relative (see [`SpanSink::push_batch`]); the spans are
    /// rebased in place so the caller observes the published values.
    /// Default is a no-op.
    fn span_batch(&self, trace: u64, spans: &mut [Span]) {
        let _ = (trace, spans);
    }

    /// The sink's current replay-log offset (events recorded so far), or
    /// 0 when the sink keeps no log. SLO exemplars are read from here at
    /// observation time.
    fn offset(&self) -> u64 {
        0
    }
}

/// A sink that discards everything — for tests and for measuring the
/// overhead of record construction itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _record: &DecisionRecord) {}
}

/// The standard sink: a bounded lock-free ring of the most recent
/// records, plus a [`MetricsRegistry`] folded up front (so metrics cover
/// *every* invocation even after the ring wraps), plus — when enabled —
/// a [`SpanSink`] for causal request traces.
#[derive(Debug)]
pub struct RingSink {
    ring: AtomicRing<{ DecisionRecord::WORDS }>,
    metrics: MetricsRegistry,
    spans: Option<SpanSink>,
}

/// Default ring capacity: enough for every invocation of the benchmark
/// suites with room to spare, ~3.4 MB resident.
const DEFAULT_CAPACITY: usize = 1 << 15;

impl Default for RingSink {
    fn default() -> RingSink {
        RingSink::with_capacity(DEFAULT_CAPACITY)
    }
}

impl RingSink {
    /// A sink retaining the last `capacity` records (rounded up to a
    /// power of two).
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            ring: AtomicRing::new(capacity),
            metrics: MetricsRegistry::default(),
            spans: None,
        }
    }

    /// Enables causal span tracing (builder form): retains the last
    /// `capacity` spans, allocating trace ids from `trace_root` — pass
    /// `RunSeed::derive("trace")` for replay-stable ids.
    pub fn with_span_tracing(mut self, capacity: usize, trace_root: u64) -> RingSink {
        self.spans = Some(SpanSink::new(capacity, trace_root));
        self
    }

    /// The span ring, when tracing is enabled.
    pub fn span_sink(&self) -> Option<&SpanSink> {
        self.spans.as_ref()
    }

    /// Snapshot of the retained spans (empty when tracing is disabled).
    pub fn span_snapshot(&self) -> Vec<Span> {
        self.spans
            .as_ref()
            .map(SpanSink::snapshot)
            .unwrap_or_default()
    }

    /// Records the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Records ever recorded (including any the ring has since
    /// overwritten).
    pub fn recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// Records dropped under same-slot wrap contention (zero unless
    /// writers lap each other; see [`AtomicRing::dropped`]).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The metrics registry fed by this sink.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A non-destructive snapshot of the retained records, in sequence
    /// order, each stamped with its global sequence number.
    pub fn snapshot(&self) -> Vec<DecisionRecord> {
        self.ring
            .snapshot()
            .into_iter()
            .map(|(seq, words)| DecisionRecord::decode(seq, &words))
            .collect()
    }
}

impl TelemetrySink for RingSink {
    fn record(&self, record: &DecisionRecord) {
        self.metrics.update(record);
        self.ring.push(record.encode());
    }

    fn control(&self, event: &ControlEvent) {
        self.metrics.control(event);
    }

    fn wants_spans(&self) -> bool {
        self.spans.is_some()
    }

    fn next_trace(&self) -> u64 {
        self.spans.as_ref().map(SpanSink::next_trace).unwrap_or(0)
    }

    fn span_batch(&self, trace: u64, spans: &mut [Span]) {
        if let Some(sink) = &self.spans {
            sink.push_batch(trace, spans);
        }
    }
}

/// A sink that tees every event to several children — the serve CLI uses
/// it to drive a [`Recorder`](../easched-replay) (run log + exemplar
/// offsets) and a [`RingSink`] (metrics + spans) from one scheduler.
///
/// Span allocation must stay deterministic, so exactly one child — the
/// first that [`wants_spans`](TelemetrySink::wants_spans) — owns trace
/// ids and span batches; [`offset`](TelemetrySink::offset) likewise
/// reports the first child with a log.
#[derive(Debug)]
pub struct FanoutSink {
    children: Vec<Arc<dyn TelemetrySink>>,
}

impl FanoutSink {
    /// A sink fanning out to `children`, in order.
    pub fn new(children: Vec<Arc<dyn TelemetrySink>>) -> FanoutSink {
        FanoutSink { children }
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&self, record: &DecisionRecord) {
        for child in &self.children {
            child.record(record);
        }
    }

    fn control(&self, event: &ControlEvent) {
        for child in &self.children {
            child.control(event);
        }
    }

    fn wants_spans(&self) -> bool {
        self.children.iter().any(|c| c.wants_spans())
    }

    fn next_trace(&self) -> u64 {
        self.children
            .iter()
            .find(|c| c.wants_spans())
            .map(|c| c.next_trace())
            .unwrap_or(0)
    }

    fn span_batch(&self, trace: u64, spans: &mut [Span]) {
        if let Some(owner) = self.children.iter().find(|c| c.wants_spans()) {
            owner.span_batch(trace, spans);
        }
    }

    fn offset(&self) -> u64 {
        self.children
            .iter()
            .map(|c| c.offset())
            .find(|&o| o > 0)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InvocationPath;

    #[test]
    fn sink_roundtrips_records_with_sequence_numbers() {
        let sink = RingSink::with_capacity(8);
        for i in 0..3u64 {
            sink.record(&DecisionRecord {
                kernel: 100 + i,
                path: InvocationPath::Profiled,
                alpha: 0.1 * i as f64,
                items: 1000 * (i + 1),
                ..DecisionRecord::default()
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 3);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.kernel, 100 + i as u64);
            assert_eq!(r.items, 1000 * (i as u64 + 1));
        }
        assert_eq!(sink.recorded(), 3);
        assert_eq!(sink.dropped(), 0);
        assert_eq!(sink.metrics().invocations.get(), 3);
    }

    #[test]
    fn control_events_feed_metrics_not_the_ring() {
        let sink = RingSink::with_capacity(8);
        sink.control(&ControlEvent::Drift {
            kernel: 7,
            ewma: 0.5,
        });
        sink.control(&ControlEvent::Reprofile {
            kernel: 7,
            ewma: 2.5,
        });
        sink.control(&ControlEvent::ReprofileSuppressed { kernel: 9 });
        sink.control(&ControlEvent::ProfileDeadline {
            kernel: 7,
            elapsed: 100.0,
        });
        sink.control(&ControlEvent::SplitOverrun {
            kernel: 7,
            elapsed: 900.0,
        });
        assert!(sink.snapshot().is_empty(), "events never enter the ring");
        assert_eq!(sink.metrics().drift_reprofiles.get(), 1);
        assert_eq!(sink.metrics().reprofiles_suppressed.get(), 1);
        assert_eq!(sink.metrics().watchdog_trips.get(), 1);
        assert_eq!(sink.metrics().split_overruns.get(), 1);
        assert_eq!(sink.metrics().kernel_drift(7), Some(2.5));
    }

    #[test]
    fn null_sink_ignores_control_events() {
        // The default trait method: attaching a sink that only implements
        // record() must not break when the control loop speaks.
        NullSink.control(&ControlEvent::Drift {
            kernel: 1,
            ewma: 0.1,
        });
    }

    #[test]
    fn span_tracing_is_opt_in_and_flows_through_the_sink() {
        use crate::span::SpanKind;
        let plain = RingSink::with_capacity(8);
        assert!(!plain.wants_spans());
        assert_eq!(plain.next_trace(), 0);
        assert!(plain.span_snapshot().is_empty());

        let traced = RingSink::with_capacity(8).with_span_tracing(16, 99);
        assert!(traced.wants_spans());
        let trace = traced.next_trace();
        assert_ne!(trace, 0);
        let mut batch = vec![Span {
            id: 1,
            kind: SpanKind::Decide,
            dur: 0.25,
            ..Span::default()
        }];
        traced.span_batch(trace, &mut batch);
        let snap = traced.span_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].trace, trace);
    }

    #[test]
    fn fanout_tees_records_and_gives_spans_one_owner() {
        let a = Arc::new(RingSink::with_capacity(8));
        let b = Arc::new(RingSink::with_capacity(8).with_span_tracing(16, 7));
        let fan = FanoutSink::new(vec![
            Arc::clone(&a) as Arc<dyn TelemetrySink>,
            Arc::clone(&b) as Arc<dyn TelemetrySink>,
        ]);
        fan.record(&DecisionRecord::default());
        assert_eq!(a.recorded(), 1);
        assert_eq!(b.recorded(), 1);
        assert!(fan.wants_spans());
        let trace = fan.next_trace();
        let mut batch = vec![Span::default()];
        fan.span_batch(trace, &mut batch);
        assert_eq!(b.span_snapshot().len(), 1, "span owner is the traced child");
        assert!(a.span_snapshot().is_empty());
        assert_eq!(fan.offset(), 0, "no log-keeping child attached");
    }

    #[test]
    fn metrics_survive_ring_wrap() {
        let sink = RingSink::with_capacity(4);
        for _ in 0..100 {
            sink.record(&DecisionRecord::default());
        }
        assert_eq!(sink.snapshot().len(), 4, "ring retains only the newest");
        assert_eq!(
            sink.metrics().invocations.get(),
            100,
            "metrics cover every invocation regardless of wrap"
        );
    }
}
