//! Telemetry for the EAS pipeline: lock-free decision tracing, metrics
//! exposition, and model-drift analysis.
//!
//! The paper's scheduler is a feedback loop — observe, classify, predict,
//! split — but nothing in the original design lets you *watch* that loop:
//! once an α lands in the kernel table there is no record of the
//! observation it came from, the prediction it rested on, or how close
//! that prediction came to reality. This crate is the observability layer
//! over the whole pipeline:
//!
//! - [`DecisionRecord`] — one structured event per kernel invocation:
//!   control path, profiling rounds, observed R_C/R_G, predicted
//!   P(α)/T(α)/objective, realized time and energy, fault and breaker
//!   context ([`record`]).
//! - [`TelemetrySink`] — the trait the scheduling frontends report
//!   through; `None` means the scheduler runs the exact pre-telemetry
//!   code path ([`sink`]).
//! - [`RingSink`] — the standard sink: a bounded, lock-free,
//!   overwrite-on-wrap ring ([`ring`]) plus an always-on
//!   [`MetricsRegistry`] with Prometheus-style exposition ([`metrics`]).
//! - [`to_trace`] / [`parse_trace`] — Chrome-trace export (one event per
//!   line, loadable in Perfetto / `chrome://tracing`) that round-trips
//!   bit-for-bit ([`trace`]).
//! - [`model_drift`] — per-kernel predicted-vs-realized error analysis
//!   ([`drift`]).
//!
//! The crate is deliberately standalone — plain `std`, no dependency on
//! the scheduler crates — so any layer (core, runtime, bench, a future
//! serving daemon) can report through it without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod drift;
pub mod metrics;
pub mod record;
pub mod ring;
pub mod sink;
pub mod trace;

pub use drift::{model_drift, KernelDrift};
pub use metrics::{Counter, Gauge, LogHistogram, MetricsRegistry, ALPHA_BUCKETS};
pub use record::{DecisionRecord, InvocationPath};
pub use ring::AtomicRing;
pub use sink::{ControlEvent, NullSink, RingSink, TelemetrySink};
pub use trace::{parse_trace, to_trace, TraceParseError};
