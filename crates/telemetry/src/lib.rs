//! Telemetry for the EAS pipeline: lock-free decision tracing, metrics
//! exposition, and model-drift analysis.
//!
//! The paper's scheduler is a feedback loop — observe, classify, predict,
//! split — but nothing in the original design lets you *watch* that loop:
//! once an α lands in the kernel table there is no record of the
//! observation it came from, the prediction it rested on, or how close
//! that prediction came to reality. This crate is the observability layer
//! over the whole pipeline:
//!
//! - [`DecisionRecord`] — one structured event per kernel invocation:
//!   control path, profiling rounds, observed R_C/R_G, predicted
//!   P(α)/T(α)/objective, realized time and energy, fault and breaker
//!   context ([`record`]).
//! - [`TelemetrySink`] — the trait the scheduling frontends report
//!   through; `None` means the scheduler runs the exact pre-telemetry
//!   code path ([`sink`]).
//! - [`RingSink`] — the standard sink: a bounded, lock-free,
//!   overwrite-on-wrap ring ([`ring`]) plus an always-on
//!   [`MetricsRegistry`] with Prometheus-style exposition ([`metrics`]).
//! - [`to_trace`] / [`parse_trace`] — Chrome-trace export (one event per
//!   line, loadable in Perfetto / `chrome://tracing`) that round-trips
//!   bit-for-bit ([`trace`]).
//! - [`model_drift`] — per-kernel predicted-vs-realized error analysis
//!   ([`drift`]).
//! - [`Span`] / [`SpanSink`] — causal per-request span tracing through
//!   the same seqlock ring idiom, replay-stable by construction
//!   ([`span`]).
//! - [`ScrapeServer`] — a dependency-free HTTP/1.0 responder for live
//!   `/metrics`, `/health`, `/tenants`, and `/slo` pages ([`serve`]).
//! - [`SloTracker`] — per-tenant multi-window burn-rate SLOs whose fired
//!   events carry replay-offset exemplars ([`slo`]).
//!
//! The crate is deliberately standalone — plain `std`, no dependency on
//! the scheduler crates — so any layer (core, runtime, bench, a future
//! serving daemon) can report through it without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod drift;
pub mod metrics;
pub mod record;
pub mod ring;
pub mod serve;
pub mod sink;
pub mod slo;
pub mod span;
pub mod trace;

pub use drift::{model_drift, KernelDrift};
pub use metrics::{Counter, Gauge, LogHistogram, MetricsRegistry, ALPHA_BUCKETS};
pub use record::{DecisionRecord, InvocationPath};
pub use ring::AtomicRing;
#[cfg(unix)]
pub use serve::uds_get;
pub use serve::{http_get, Page, Router, ScrapeServer, ServeConfig, TimeSource};
pub use sink::{ControlEvent, FanoutSink, NullSink, RingSink, TelemetrySink};
pub use slo::{BurnStatus, SloConfig, SloEvent, SloKind, SloTracker};
pub use span::{Span, SpanKind, SpanSink, DEFAULT_SPAN_CAPACITY, NO_TENANT};
pub use trace::{parse_spans, parse_trace, to_trace, to_trace_with_spans, TraceParseError};
