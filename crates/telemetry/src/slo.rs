//! Per-tenant SLO burn-rate tracking with replay-offset exemplars
//! (DESIGN.md §14).
//!
//! Three signals per tenant, each an error-budget SLO: queue-wait p99
//! (a request waiting longer than the target is budget spend), the
//! admitted-EDP ratio (an execution whose realized EDP blows past its
//! prediction by more than the margin is budget spend), and the shed
//! rate (every shed is budget spend). For each signal the tracker keeps
//! two sliding windows — short (default 5 min) and long (default 1 h) —
//! of good/bad counts in coarse buckets, and computes the *burn rate*:
//! the observed bad fraction divided by the signal's error budget. An
//! alert fires only when **both** windows burn above the threshold — the
//! classic multi-window rule: the short window proves the problem is
//! happening *now*, the long window proves it is not a blip.
//!
//! Every fired [`SloEvent`] carries the feeding site's current `RunLog`
//! offset as an **exemplar**: `easched replay --log … --at <offset>`
//! replays exactly the slice of the run that spent the budget. Events
//! are derived state — a faithful replay regenerates them from the same
//! deterministic observation stream — so, like control events, they are
//! never written to the log itself.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

/// Which SLO signal an observation or event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloKind {
    /// Queue-wait p99: waits beyond the target spend the 1 % budget.
    QueueWait,
    /// Admitted-EDP ratio: realized EDP beyond `edp_margin ×` predicted.
    EdpRatio,
    /// Shed rate: refused offers against the shed budget.
    ShedRate,
}

impl SloKind {
    /// Stable display/wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            SloKind::QueueWait => "queue_wait_p99",
            SloKind::EdpRatio => "edp_ratio",
            SloKind::ShedRate => "shed_rate",
        }
    }

    /// Stable wire code (0..=2), used as the `SloBreach` control-event
    /// signal byte.
    pub fn code(self) -> u8 {
        match self {
            SloKind::QueueWait => 0,
            SloKind::EdpRatio => 1,
            SloKind::ShedRate => 2,
        }
    }

    /// All signals, in rendering order.
    pub fn all() -> [SloKind; 3] {
        [SloKind::QueueWait, SloKind::EdpRatio, SloKind::ShedRate]
    }
}

/// SLO targets and window geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Short window length, seconds (default 300 — 5 minutes).
    pub short_window: f64,
    /// Long window length, seconds (default 3600 — 1 hour).
    pub long_window: f64,
    /// Queue-wait target, seconds: a request waiting longer spends
    /// budget. The budget is 1 % (it is a p99 objective).
    pub queue_wait_target: f64,
    /// A request's realized EDP may exceed its predicted objective by
    /// this factor before the sample spends budget.
    pub edp_margin: f64,
    /// Error budget for the EDP signal: allowed fraction of
    /// beyond-margin executions.
    pub edp_budget: f64,
    /// Error budget for the shed signal: allowed fraction of shed
    /// offers.
    pub shed_budget: f64,
    /// Burn rate (bad fraction ÷ budget) both windows must exceed for an
    /// alert to fire.
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            short_window: 300.0,
            long_window: 3600.0,
            queue_wait_target: 4.0,
            edp_margin: 2.0,
            edp_budget: 0.25,
            shed_budget: 0.1,
            burn_threshold: 2.0,
        }
    }
}

/// The queue-wait signal's fixed error budget (p99 ⇒ 1 %).
const QUEUE_WAIT_BUDGET: f64 = 0.01;

/// Window buckets per signal: the short window is resolved into this
/// many coarse buckets (the long window reuses the same bucket span).
const BUCKETS_PER_SHORT_WINDOW: usize = 30;

/// A fired SLO alert: both windows burned past the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloEvent {
    /// The breaching tenant's registry index.
    pub tenant: u64,
    /// The breaching signal.
    pub kind: SloKind,
    /// Short-window burn rate at fire time.
    pub burn_short: f64,
    /// Long-window burn rate at fire time.
    pub burn_long: f64,
    /// The configured threshold both rates exceeded.
    pub threshold: f64,
    /// Virtual time of the firing observation, seconds.
    pub at: f64,
    /// `RunLog` event offset at fire time — the exemplar.
    /// `easched replay --log … --at <offset>` replays the breaching
    /// slice. Zero when no log was attached to the run.
    pub exemplar_offset: u64,
}

/// Burn-rate reading for one `(tenant, signal)` pair (the `/slo` page).
#[derive(Debug, Clone, PartialEq)]
pub struct BurnStatus {
    /// Tenant registry index.
    pub tenant: u64,
    /// Tenant display name, if registered.
    pub name: Option<String>,
    /// The signal.
    pub kind: SloKind,
    /// Short-window burn rate.
    pub burn_short: f64,
    /// Long-window burn rate.
    pub burn_long: f64,
    /// Samples in the short window.
    pub samples_short: u64,
    /// Whether the alert is currently firing (hysteresis-latched).
    pub firing: bool,
}

/// One signal's sliding window: good/bad counts in coarse time buckets.
#[derive(Debug, Default, Clone)]
struct Window {
    /// `bucket index -> (good, bad)`; pruned as time advances.
    buckets: BTreeMap<u64, (u64, u64)>,
    firing: bool,
}

#[derive(Debug, Default)]
struct TrackerState {
    /// `(tenant, signal) -> window`.
    windows: BTreeMap<(u64, SloKind), Window>,
    names: BTreeMap<u64, String>,
    events: Vec<SloEvent>,
}

/// Cap on retained fired events (oldest dropped first).
const MAX_EVENTS: usize = 256;

/// Minimum samples a window needs before its burn rate can fire an
/// alert: one bad first sample is a blip, not a breach.
const MIN_SAMPLES: u64 = 10;

/// The SLO engine: feed observations, read burn rates, collect fired
/// events. Interior-mutexed — feeding happens per request / per offer,
/// far off the per-item hot path.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    bucket_span: f64,
    state: Mutex<TrackerState>,
}

impl Default for SloTracker {
    fn default() -> SloTracker {
        SloTracker::new(SloConfig::default())
    }
}

impl SloTracker {
    /// A tracker with the given targets and windows.
    pub fn new(cfg: SloConfig) -> SloTracker {
        SloTracker {
            bucket_span: (cfg.short_window / BUCKETS_PER_SHORT_WINDOW as f64).max(1e-9),
            cfg,
            state: Mutex::new(TrackerState::default()),
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Registers a tenant display name for `/slo` rendering.
    pub fn set_tenant_name(&self, tenant: u64, name: &str) {
        let mut state = self.lock();
        state.names.insert(tenant, name.to_string());
    }

    /// Feeds one drained request's queue wait. Returns the alert if this
    /// observation fired one.
    pub fn observe_queue_wait(
        &self,
        tenant: u64,
        wait_seconds: f64,
        now: f64,
        offset: u64,
    ) -> Option<SloEvent> {
        // NaN waits (chaos-corrupted observations) spend budget too.
        let bad = wait_seconds > self.cfg.queue_wait_target || wait_seconds.is_nan();
        self.observe(tenant, SloKind::QueueWait, bad, now, offset)
    }

    /// Feeds one offer outcome (`shed = true` spends budget).
    pub fn observe_shed(&self, tenant: u64, shed: bool, now: f64, offset: u64) -> Option<SloEvent> {
        self.observe(tenant, SloKind::ShedRate, shed, now, offset)
    }

    /// Feeds one executed request's predicted and realized EDP (the
    /// scheduler-visible stream, identical under replay). A sample with
    /// no prediction is skipped; a corrupted (non-finite) realized value
    /// spends budget.
    pub fn observe_edp(
        &self,
        tenant: u64,
        predicted: f64,
        realized: f64,
        now: f64,
        offset: u64,
    ) -> Option<SloEvent> {
        if predicted <= 0.0 || !predicted.is_finite() {
            return None;
        }
        // NaN realized EDP (corrupted observation) spends budget too.
        let bad = realized > self.cfg.edp_margin * predicted || realized.is_nan();
        self.observe(tenant, SloKind::EdpRatio, bad, now, offset)
    }

    fn budget(&self, kind: SloKind) -> f64 {
        match kind {
            SloKind::QueueWait => QUEUE_WAIT_BUDGET,
            SloKind::EdpRatio => self.cfg.edp_budget,
            SloKind::ShedRate => self.cfg.shed_budget,
        }
    }

    fn observe(
        &self,
        tenant: u64,
        kind: SloKind,
        bad: bool,
        now: f64,
        offset: u64,
    ) -> Option<SloEvent> {
        if !now.is_finite() || now < 0.0 {
            return None;
        }
        let bucket = (now / self.bucket_span) as u64;
        let budget = self.budget(kind);
        let threshold = self.cfg.burn_threshold;
        let (short, long) = (self.cfg.short_window, self.cfg.long_window);
        let bucket_span = self.bucket_span;

        let mut state = self.lock();
        let window = state.windows.entry((tenant, kind)).or_default();
        // Prune buckets older than the long window.
        let horizon = (now - long).max(0.0);
        let oldest = (horizon / bucket_span) as u64;
        window.buckets = window.buckets.split_off(&oldest);
        let entry = window.buckets.entry(bucket).or_insert((0, 0));
        if bad {
            entry.1 += 1;
        } else {
            entry.0 += 1;
        }

        let (burn_short, samples_short) =
            burn_counted(&window.buckets, bucket, short, bucket_span, budget);
        let (burn_long, samples_long) =
            burn_counted(&window.buckets, bucket, long, bucket_span, budget);
        let breaching = burn_short >= threshold
            && burn_long >= threshold
            && samples_short >= MIN_SAMPLES
            && samples_long >= MIN_SAMPLES;
        let fired = breaching && !window.firing;
        window.firing = breaching;
        if !fired {
            return None;
        }
        let event = SloEvent {
            tenant,
            kind,
            burn_short,
            burn_long,
            threshold,
            at: now,
            exemplar_offset: offset,
        };
        if state.events.len() >= MAX_EVENTS {
            state.events.remove(0);
        }
        state.events.push(event);
        Some(event)
    }

    /// Every fired event still retained, oldest first.
    pub fn events(&self) -> Vec<SloEvent> {
        self.lock().events.clone()
    }

    /// Current burn rates for every `(tenant, signal)` with data, as of
    /// virtual time `now`.
    pub fn burn_rates(&self, now: f64) -> Vec<BurnStatus> {
        let state = self.lock();
        let bucket = (now.max(0.0) / self.bucket_span) as u64;
        state
            .windows
            .iter()
            .map(|(&(tenant, kind), window)| {
                let budget = self.budget(kind);
                let samples_short: u64 = window
                    .buckets
                    .range(in_window(bucket, self.cfg.short_window, self.bucket_span))
                    .map(|(_, &(g, b))| g + b)
                    .sum();
                BurnStatus {
                    tenant,
                    name: state.names.get(&tenant).cloned(),
                    kind,
                    burn_short: burn(
                        &window.buckets,
                        bucket,
                        self.cfg.short_window,
                        self.bucket_span,
                        budget,
                    ),
                    burn_long: burn(
                        &window.buckets,
                        bucket,
                        self.cfg.long_window,
                        self.bucket_span,
                        budget,
                    ),
                    samples_short,
                    firing: window.firing,
                }
            })
            .collect()
    }

    /// Renders the `/slo` page: burn rates and fired events as JSON.
    pub fn render_json(&self, now: f64) -> String {
        let statuses = self.burn_rates(now);
        let events = self.events();
        let mut out = String::with_capacity(512);
        out.push_str("{\"burn_threshold\":");
        push_json_f64(&mut out, self.cfg.burn_threshold);
        out.push_str(",\"signals\":[");
        for (i, s) in statuses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tenant\":{},\"name\":{},\"signal\":\"{}\",\"burn_short\":",
                s.tenant,
                match &s.name {
                    Some(n) => format!("\"{}\"", escape_json(n)),
                    None => "null".to_string(),
                },
                s.kind.as_str()
            );
            push_json_f64(&mut out, s.burn_short);
            out.push_str(",\"burn_long\":");
            push_json_f64(&mut out, s.burn_long);
            let _ = write!(
                out,
                ",\"samples_short\":{},\"firing\":{}}}",
                s.samples_short, s.firing
            );
        }
        out.push_str("],\"events\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"tenant\":{},\"signal\":\"{}\",\"burn_short\":",
                e.tenant,
                e.kind.as_str()
            );
            push_json_f64(&mut out, e.burn_short);
            out.push_str(",\"burn_long\":");
            push_json_f64(&mut out, e.burn_long);
            out.push_str(",\"at\":");
            push_json_f64(&mut out, e.at);
            let _ = write!(out, ",\"exemplar_offset\":{}}}", e.exemplar_offset);
        }
        out.push_str("]}");
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TrackerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Bucket range covering the trailing `window` seconds ending at
/// `bucket` (inclusive).
fn in_window(bucket: u64, window: f64, bucket_span: f64) -> std::ops::RangeInclusive<u64> {
    let span_buckets = (window / bucket_span).ceil() as u64;
    bucket.saturating_sub(span_buckets.saturating_sub(1))..=bucket
}

/// Burn rate over the trailing window: bad fraction ÷ budget (0 with no
/// samples). A window shorter than its nominal length — early in a run —
/// burns over the samples it has: the alert rule's long window then
/// simply needs sustained evidence rather than an hour of history.
fn burn(
    buckets: &BTreeMap<u64, (u64, u64)>,
    bucket: u64,
    window: f64,
    bucket_span: f64,
    budget: f64,
) -> f64 {
    burn_counted(buckets, bucket, window, bucket_span, budget).0
}

/// [`burn`] plus the window's sample count (the alert rule's
/// [`MIN_SAMPLES`] guard needs both).
fn burn_counted(
    buckets: &BTreeMap<u64, (u64, u64)>,
    bucket: u64,
    window: f64,
    bucket_span: f64,
    budget: f64,
) -> (f64, u64) {
    let (good, bad) = buckets
        .range(in_window(bucket, window, bucket_span))
        .fold((0u64, 0u64), |(g, b), (_, &(dg, db))| (g + dg, b + db));
    let total = good + bad;
    if total == 0 || budget <= 0.0 {
        return (0.0, total);
    }
    ((bad as f64 / total as f64) / budget, total)
}

/// JSON number rendering shared with the trace writer's convention:
/// non-finite values become quoted strings.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_alert_without_sustained_burn() {
        let t = SloTracker::default();
        // 1 shed in 100 offers = 10% of a 10% budget = burn 1.0 < 2.0.
        for i in 0..100 {
            let fired = t.observe_shed(0, i == 0, i as f64 * 0.1, i);
            assert!(fired.is_none(), "burn below threshold must not fire");
        }
        let rates = t.burn_rates(10.0);
        let shed = rates
            .iter()
            .find(|s| s.kind == SloKind::ShedRate)
            .expect("shed window exists");
        assert!(shed.burn_short < 2.0);
        assert!(!shed.firing);
        assert!(t.events().is_empty());
    }

    #[test]
    fn sustained_sheds_fire_once_with_exemplar() {
        let t = SloTracker::default();
        let mut fired = Vec::new();
        // 50% sheds against a 10% budget: burn 5.0 in both windows.
        for i in 0..40u64 {
            if let Some(e) = t.observe_shed(3, i % 2 == 0, i as f64, 1000 + i) {
                fired.push(e);
            }
        }
        assert_eq!(fired.len(), 1, "hysteresis: one event per breach episode");
        let e = fired[0];
        assert_eq!(e.tenant, 3);
        assert_eq!(e.kind, SloKind::ShedRate);
        assert!(e.burn_short >= 2.0 && e.burn_long >= 2.0);
        assert_eq!(e.exemplar_offset, 1000 + e.at as u64);
        assert_eq!(t.events(), fired);
    }

    #[test]
    fn recovery_rearms_the_alert() {
        let cfg = SloConfig {
            short_window: 10.0,
            long_window: 20.0,
            ..SloConfig::default()
        };
        let t = SloTracker::new(cfg);
        for i in 0..20u64 {
            t.observe_shed(0, true, i as f64, i);
        }
        assert_eq!(t.events().len(), 1);
        // A clean stretch longer than both windows clears the burn...
        for i in 20..60u64 {
            t.observe_shed(0, false, i as f64, i);
        }
        assert!(!t.burn_rates(59.0)[0].firing);
        // ...and the next sustained breach fires a second event.
        for i in 60..80u64 {
            t.observe_shed(0, true, i as f64, i);
        }
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn queue_wait_is_a_p99_objective() {
        let t = SloTracker::default();
        // 5% of waits over target vs a 1% budget: burn 5.0 — fires.
        let mut fired = 0;
        for i in 0..100u64 {
            let wait = if i % 20 == 0 { 10.0 } else { 1.0 };
            if t.observe_queue_wait(1, wait, i as f64, i).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
    }

    #[test]
    fn edp_samples_without_prediction_are_skipped() {
        let t = SloTracker::default();
        assert!(t.observe_edp(0, 0.0, 5.0, 1.0, 0).is_none());
        assert!(t.observe_edp(0, f64::NAN, 5.0, 1.0, 0).is_none());
        assert!(t.burn_rates(1.0).is_empty());
        // Corrupted realized values spend budget.
        for i in 0..30u64 {
            t.observe_edp(0, 1.0, f64::NAN, i as f64, i);
        }
        let rates = t.burn_rates(29.0);
        assert!(rates[0].burn_short > 0.0);
    }

    #[test]
    fn json_rendering_is_wellformed_and_escapes_names() {
        let t = SloTracker::default();
        t.set_tenant_name(0, "bad\"name\\with\nnewline");
        for i in 0..30u64 {
            t.observe_shed(0, true, i as f64, i);
        }
        let json = t.render_json(30.0);
        assert!(json.contains("\"signal\":\"shed_rate\""));
        assert!(json.contains("\"exemplar_offset\":"));
        assert!(json.contains("bad\\\"name\\\\with\\nnewline"));
        assert!(!json.contains('\n'), "page is a single line");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
