//! Causal span tracing: per-request hierarchical spans flowing through
//! the same seqlock ring idiom as [`DecisionRecord`](crate::DecisionRecord)s.
//!
//! A *trace* groups every span of one admitted request: the admission
//! subtree (`admit` → `queue-wait`, emitted by the tenant frontend at
//! drain time) and one execution subtree per invocation the request ran
//! (`decide` → `cpu-phase` / `gpu-phase` → `fold`, emitted by the
//! profile loop). Trace ids derive from the run's root seed exactly the
//! way `RunSeed::derive_indexed("trace", ordinal)` would — same
//! splitmix64 finalizer, same golden-ratio index stride — so a replayed
//! run regenerates byte-identical ids without the log ever carrying
//! them: spans are derived state, like control events.
//!
//! Emitters build spans with *batch-relative* ids and starts (ids from 1,
//! starts from 0); [`SpanSink::push_batch`] rebases each batch onto the
//! trace's id counter and time cursor, so concurrent traces interleave
//! freely while every span of one trace lands with stable ids and
//! sequential, nest-able timing. All durations are virtual seconds from
//! the deterministic observation stream — never wall clock — which is
//! what makes a span stream a replayable artifact rather than a
//! profile of the host machine.

use crate::ring::AtomicRing;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Tenant field value for spans outside any tenant frontend.
pub const NO_TENANT: u16 = u16::MAX;

/// What one span measures. The taxonomy is fixed (DESIGN.md §14): the
/// admission subtree is rooted at [`Admit`](SpanKind::Admit), each
/// execution subtree at [`Decide`](SpanKind::Decide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanKind {
    /// A request survived admission (root of the admission subtree;
    /// payload: admission verdict code).
    #[default]
    Admit,
    /// Ticks the request waited in its tenant queue before a drain slot
    /// (payload: ticks waited).
    QueueWait,
    /// The scheduler's decide step for one invocation (root of an
    /// execution subtree; payload: chosen α).
    Decide,
    /// CPU-side execution of the invocation, profiling and split phases
    /// combined (payload: CPU items).
    CpuPhase,
    /// GPU-side execution of the invocation (payload: GPU items).
    GpuPhase,
    /// Folding the observed rates back into the kernel table
    /// (payload: chosen α).
    Fold,
    /// One fleet anti-entropy application pass on a node (payload:
    /// replica entries applied this pass; the `tenant` field carries the
    /// node id). Emitted by `easched-fleet`, DESIGN.md §15.
    Replication,
}

impl SpanKind {
    /// Stable wire code (0..=6).
    pub fn code(self) -> u8 {
        match self {
            SpanKind::Admit => 0,
            SpanKind::QueueWait => 1,
            SpanKind::Decide => 2,
            SpanKind::CpuPhase => 3,
            SpanKind::GpuPhase => 4,
            SpanKind::Fold => 5,
            SpanKind::Replication => 6,
        }
    }

    /// Inverse of [`code`](SpanKind::code).
    pub fn from_code(code: u8) -> Option<SpanKind> {
        Some(match code {
            0 => SpanKind::Admit,
            1 => SpanKind::QueueWait,
            2 => SpanKind::Decide,
            3 => SpanKind::CpuPhase,
            4 => SpanKind::GpuPhase,
            5 => SpanKind::Fold,
            6 => SpanKind::Replication,
            _ => return None,
        })
    }

    /// The span's display name (used as the Chrome-trace event name).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Admit => "admit",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::Decide => "decide",
            SpanKind::CpuPhase => "cpu-phase",
            SpanKind::GpuPhase => "gpu-phase",
            SpanKind::Fold => "fold",
            SpanKind::Replication => "replication",
        }
    }

    /// Inverse of [`as_str`](SpanKind::as_str).
    pub fn parse(name: &str) -> Option<SpanKind> {
        Some(match name {
            "admit" => SpanKind::Admit,
            "queue-wait" => SpanKind::QueueWait,
            "decide" => SpanKind::Decide,
            "cpu-phase" => SpanKind::CpuPhase,
            "gpu-phase" => SpanKind::GpuPhase,
            "fold" => SpanKind::Fold,
            "replication" => SpanKind::Replication,
            _ => return None,
        })
    }
}

/// One span of a request trace. Fixed-width like a
/// [`DecisionRecord`](crate::DecisionRecord): floats are carried as raw
/// bits through the ring and the trace file, so NaN payloads from
/// chaos-corrupted observations survive round-trips bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Span {
    /// Global sequence number, stamped by the ring at push time.
    pub seq: u64,
    /// The owning trace's id (`RunSeed`-derived; see module docs).
    pub trace: u64,
    /// Kernel the span concerns (0 for admission-subtree spans).
    pub kernel: u64,
    /// Span id, unique within the trace (assigned by the sink).
    pub id: u16,
    /// Parent span id within the trace; 0 marks a subtree root.
    pub parent: u16,
    /// What the span measures.
    pub kind: SpanKind,
    /// Owning tenant's registry index, or [`NO_TENANT`].
    pub tenant: u16,
    /// Start offset from the trace origin, virtual seconds.
    pub start: f64,
    /// Duration, virtual seconds (kept bit-exact even when a corrupted
    /// observation makes it NaN or negative).
    pub dur: f64,
    /// Kind-specific payload (see [`SpanKind`] variants).
    pub payload: f64,
}

impl Span {
    /// Ring/wire width in 64-bit words (excluding the sequence number,
    /// which the ring carries).
    pub const WORDS: usize = 6;

    /// Packs the span into its wire words.
    pub fn encode(&self) -> [u64; Self::WORDS] {
        let packed = u64::from(self.id)
            | u64::from(self.parent) << 16
            | u64::from(self.kind.code()) << 32
            | u64::from(self.tenant) << 40;
        [
            self.trace,
            self.kernel,
            packed,
            self.start.to_bits(),
            self.dur.to_bits(),
            self.payload.to_bits(),
        ]
    }

    /// Inverse of [`encode`](Span::encode); unknown kind codes decode as
    /// the default kind (forward compatibility over panics).
    pub fn decode(seq: u64, words: &[u64; Self::WORDS]) -> Span {
        let packed = words[2];
        Span {
            seq,
            trace: words[0],
            kernel: words[1],
            id: (packed & 0xFFFF) as u16,
            parent: (packed >> 16 & 0xFFFF) as u16,
            kind: SpanKind::from_code((packed >> 32 & 0xFF) as u8).unwrap_or_default(),
            tenant: (packed >> 40 & 0xFFFF) as u16,
            start: f64::from_bits(words[3]),
            dur: f64::from_bits(words[4]),
            payload: f64::from_bits(words[5]),
        }
    }

    /// Bit-level equality: NaN payloads with identical bit patterns
    /// compare equal (the round-trip tests' definition of identity).
    pub fn bitwise_eq(&self, other: &Span) -> bool {
        self.seq == other.seq && self.encode() == other.encode()
    }
}

/// Per-trace rebase state: the next free span id and the time cursor
/// batches append at.
#[derive(Debug, Clone, Copy)]
struct TraceCursor {
    next_id: u16,
    at: f64,
}

/// Bound on live trace cursors. Cursors are only needed while a trace is
/// still receiving batches; evicting the whole map at the bound keeps
/// memory flat on long-serving daemons and is deterministic (a replayed
/// run fills and evicts the map at the exact same points).
const MAX_TRACE_CURSORS: usize = 1 << 16;

/// The span ring: seqlock-published spans plus the deterministic
/// trace-id allocator and per-trace rebase cursors.
///
/// Like the record ring, readers never block writers: a scrape
/// snapshotting mid-storm sees only fully published spans.
#[derive(Debug)]
pub struct SpanSink {
    ring: AtomicRing<{ Span::WORDS }>,
    root: u64,
    traces: AtomicU64,
    cursors: Mutex<BTreeMap<u64, TraceCursor>>,
}

/// Default span-ring capacity (each request emits a handful of spans, so
/// this retains several thousand recent requests, ~3 MB resident).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

impl SpanSink {
    /// A sink retaining the last `capacity` spans (rounded up to a power
    /// of two), allocating trace ids from `root` — pass
    /// `RunSeed::derive("trace")` so ids are replay-stable.
    pub fn new(capacity: usize, root: u64) -> SpanSink {
        SpanSink {
            ring: AtomicRing::new(capacity),
            root,
            traces: AtomicU64::new(0),
            cursors: Mutex::new(BTreeMap::new()),
        }
    }

    /// The trace-id root this sink allocates from.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Spans the ring can hold.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Spans ever pushed (including any the ring has overwritten).
    pub fn pushed(&self) -> u64 {
        self.ring.pushed()
    }

    /// Spans dropped under same-slot wrap contention.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Allocates the next trace id: `mix(root ^ ordinal · φ)` — the same
    /// construction as `RunSeed::derive_indexed("trace", ordinal)`, so a
    /// replay allocating traces in the same order regenerates the same
    /// ids (a cross-crate test in `easched-replay` pins the equality).
    pub fn next_trace(&self) -> u64 {
        let ordinal = self.traces.fetch_add(1, Ordering::Relaxed);
        mix(self.root ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Trace ids allocated so far.
    pub fn traces_started(&self) -> u64 {
        self.traces.load(Ordering::Relaxed)
    }

    /// Rebases one batch of spans onto `trace` and publishes it: ids and
    /// parent links shift onto the trace's id counter, starts shift onto
    /// its time cursor, and the cursor advances past the batch. Emitters
    /// therefore use ids from 1 and starts from 0; batches of one trace
    /// must arrive in causal order (they do — a request executes
    /// sequentially).
    pub fn push_batch(&self, trace: u64, spans: &mut [Span]) {
        if spans.is_empty() {
            return;
        }
        let (base_id, origin) = {
            let mut cursors = self.cursors.lock().unwrap_or_else(PoisonError::into_inner);
            if cursors.len() >= MAX_TRACE_CURSORS && !cursors.contains_key(&trace) {
                cursors.clear();
            }
            let cursor = cursors.entry(trace).or_insert(TraceCursor {
                next_id: 1,
                at: 0.0,
            });
            let base_id = cursor.next_id;
            let origin = cursor.at;
            let extent = spans
                .iter()
                .map(|s| {
                    s.start
                        + if s.dur.is_finite() && s.dur > 0.0 {
                            s.dur
                        } else {
                            0.0
                        }
                })
                .filter(|e| e.is_finite() && *e > 0.0)
                .fold(0.0, f64::max);
            cursor.next_id = cursor.next_id.saturating_add(spans.len() as u16);
            cursor.at += extent;
            (base_id, origin)
        };
        for span in spans.iter_mut() {
            span.trace = trace;
            span.id = base_id.saturating_add(span.id.saturating_sub(1));
            if span.parent != 0 {
                span.parent = base_id.saturating_add(span.parent.saturating_sub(1));
            }
            span.start += origin;
            span.seq = self.ring.push(span.encode());
        }
    }

    /// A non-destructive snapshot of the retained spans, in publish
    /// order, each stamped with its global sequence number.
    pub fn snapshot(&self) -> Vec<Span> {
        self.ring
            .snapshot()
            .into_iter()
            .map(|(seq, words)| Span::decode(seq, &words))
            .collect()
    }
}

/// splitmix64-style finalizer — kept identical to `RunSeed`'s mix (and
/// the chaos injector's) so trace ids equal `derive_indexed` output.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_names_roundtrip() {
        for code in 0..7 {
            let kind = SpanKind::from_code(code).unwrap();
            assert_eq!(kind.code(), code);
            assert_eq!(SpanKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SpanKind::from_code(7), None);
        assert_eq!(SpanKind::parse("???"), None);
    }

    #[test]
    fn encoding_roundtrips_bit_for_bit() {
        let span = Span {
            seq: 9,
            trace: 0xDEAD_BEEF_1234_5678,
            kernel: 42,
            id: 3,
            parent: 1,
            kind: SpanKind::GpuPhase,
            tenant: 5,
            start: 1.25,
            dur: f64::from_bits(0x7FF8_0000_0000_1234), // a payload-carrying NaN
            payload: f64::NEG_INFINITY,
        };
        let decoded = Span::decode(span.seq, &span.encode());
        assert!(span.bitwise_eq(&decoded));
        assert!(decoded.dur.is_nan());
        assert_eq!(decoded.dur.to_bits(), span.dur.to_bits());
    }

    #[test]
    fn trace_ids_match_derive_indexed_construction() {
        let root = 0xABCD;
        let sink = SpanSink::new(16, root);
        for i in 0..4u64 {
            let expect = mix(root ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(sink.next_trace(), expect);
        }
        assert_eq!(sink.traces_started(), 4);
    }

    #[test]
    fn batches_rebase_ids_and_cursor_sequentially() {
        let sink = SpanSink::new(64, 1);
        let trace = sink.next_trace();
        // Frontend batch: admit + queue-wait.
        let mut first = vec![
            Span {
                id: 1,
                kind: SpanKind::Admit,
                tenant: 2,
                ..Span::default()
            },
            Span {
                id: 2,
                parent: 1,
                kind: SpanKind::QueueWait,
                tenant: 2,
                dur: 3.0,
                ..Span::default()
            },
        ];
        sink.push_batch(trace, &mut first);
        // Execution batch: decide + cpu + fold.
        let mut second = vec![
            Span {
                id: 1,
                kind: SpanKind::Decide,
                dur: 0.5,
                ..Span::default()
            },
            Span {
                id: 2,
                parent: 1,
                kind: SpanKind::CpuPhase,
                start: 0.5,
                dur: 2.0,
                ..Span::default()
            },
            Span {
                id: 3,
                parent: 1,
                kind: SpanKind::Fold,
                start: 2.5,
                ..Span::default()
            },
        ];
        sink.push_batch(trace, &mut second);

        let snap = sink.snapshot();
        assert_eq!(snap.len(), 5);
        assert!(snap.iter().all(|s| s.trace == trace));
        let ids: Vec<(u16, u16)> = snap.iter().map(|s| (s.id, s.parent)).collect();
        assert_eq!(ids, vec![(1, 0), (2, 1), (3, 0), (4, 3), (5, 3)]);
        // The execution batch starts where the admission batch ended.
        assert_eq!(snap[2].start, 3.0);
        assert_eq!(snap[3].start, 3.5);
        assert_eq!(snap[4].start, 5.5);
        // Seq numbers are the ring's publish order.
        assert_eq!(
            snap.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn corrupted_durations_do_not_poison_the_cursor() {
        let sink = SpanSink::new(16, 1);
        let trace = sink.next_trace();
        let mut batch = vec![Span {
            id: 1,
            kind: SpanKind::Decide,
            dur: f64::NAN,
            ..Span::default()
        }];
        sink.push_batch(trace, &mut batch);
        let mut next = vec![Span {
            id: 1,
            kind: SpanKind::Decide,
            dur: 1.0,
            ..Span::default()
        }];
        sink.push_batch(trace, &mut next);
        let snap = sink.snapshot();
        assert!(snap[0].dur.is_nan(), "raw bits preserved");
        assert_eq!(snap[1].start, 0.0, "NaN batch advanced the cursor by 0");
    }

    #[test]
    fn distinct_traces_do_not_share_cursors() {
        let sink = SpanSink::new(16, 1);
        let (a, b) = (sink.next_trace(), sink.next_trace());
        assert_ne!(a, b);
        let mut batch_a = vec![Span {
            id: 1,
            kind: SpanKind::Decide,
            dur: 5.0,
            ..Span::default()
        }];
        sink.push_batch(a, &mut batch_a);
        let mut batch_b = vec![Span {
            id: 1,
            kind: SpanKind::Decide,
            dur: 1.0,
            ..Span::default()
        }];
        sink.push_batch(b, &mut batch_b);
        assert_eq!(batch_b[0].start, 0.0);
        assert_eq!(batch_b[0].id, 1);
    }
}
