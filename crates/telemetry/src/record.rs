//! The per-invocation telemetry event and its fixed-width wire encoding.
//!
//! One [`DecisionRecord`] is emitted per kernel invocation that reaches a
//! scheduling frontend. It captures the whole story of that invocation:
//! which control path Figure 7 took, what the profiler observed (R_C,
//! R_G), what the model predicted (P(α), T(α), OBJ), and what actually
//! happened (realized time and energy of the profiling phase and the
//! final split), plus the fault/breaker context. The record is a plain
//! value type; the ring sink stores it as a fixed array of `u64` words
//! ([`DecisionRecord::encode`]) so writers never allocate or lock.

/// Which Figure 7 control path an invocation took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum InvocationPath {
    /// Steps 2–4: a learned α was reused straight from the kernel table.
    #[default]
    TableHit,
    /// Steps 6–10: the invocation was too small to fill the GPU and ran
    /// CPU-only.
    SmallN,
    /// Steps 11–26: a first-seen kernel was profiled online and the
    /// remainder ran at the decided α.
    Profiled,
    /// A known kernel was re-profiled (periodic re-profile or a tainted
    /// table entry).
    Reprofiled,
    /// A half-open circuit breaker routed this invocation through a
    /// recovery probe (profiling with table reuse skipped).
    Probe,
    /// Profiling gave up after sustained faults; the remainder ran at the
    /// last trusted α (or CPU-only).
    Degraded,
    /// An open circuit breaker quarantined the GPU; the invocation ran
    /// CPU-only and learned nothing.
    Quarantined,
    /// The admission layer's brownout ladder gated the GPU for this
    /// invocation (deny-new-offload or forced α = 0); it ran CPU-only
    /// and learned nothing.
    Throttled,
}

impl InvocationPath {
    /// Stable wire code of the path.
    pub fn code(self) -> u8 {
        match self {
            InvocationPath::TableHit => 0,
            InvocationPath::SmallN => 1,
            InvocationPath::Profiled => 2,
            InvocationPath::Reprofiled => 3,
            InvocationPath::Probe => 4,
            InvocationPath::Degraded => 5,
            InvocationPath::Quarantined => 6,
            InvocationPath::Throttled => 7,
        }
    }

    /// Decodes a wire code; unknown codes map to `None`.
    pub fn from_code(code: u8) -> Option<InvocationPath> {
        Some(match code {
            0 => InvocationPath::TableHit,
            1 => InvocationPath::SmallN,
            2 => InvocationPath::Profiled,
            3 => InvocationPath::Reprofiled,
            4 => InvocationPath::Probe,
            5 => InvocationPath::Degraded,
            6 => InvocationPath::Quarantined,
            7 => InvocationPath::Throttled,
            _ => return None,
        })
    }

    /// Human-readable label, also used in the trace export.
    pub fn as_str(self) -> &'static str {
        match self {
            InvocationPath::TableHit => "table-hit",
            InvocationPath::SmallN => "small-n",
            InvocationPath::Profiled => "profiled",
            InvocationPath::Reprofiled => "reprofiled",
            InvocationPath::Probe => "probe",
            InvocationPath::Degraded => "degraded",
            InvocationPath::Quarantined => "quarantined",
            InvocationPath::Throttled => "throttled",
        }
    }

    /// Inverse of [`as_str`](InvocationPath::as_str).
    pub fn parse(s: &str) -> Option<InvocationPath> {
        Some(match s {
            "table-hit" => InvocationPath::TableHit,
            "small-n" => InvocationPath::SmallN,
            "profiled" => InvocationPath::Profiled,
            "reprofiled" => InvocationPath::Reprofiled,
            "probe" => InvocationPath::Probe,
            "degraded" => InvocationPath::Degraded,
            "quarantined" => InvocationPath::Quarantined,
            "throttled" => InvocationPath::Throttled,
            _ => return None,
        })
    }

    /// Whether records on this path carry a model prediction (the paths
    /// that finished a profiling pass and executed at the decided α).
    pub fn has_prediction(self) -> bool {
        matches!(
            self,
            InvocationPath::Profiled | InvocationPath::Reprofiled | InvocationPath::Probe
        )
    }
}

/// Sentinel for "no workload class" / "no fault" in the packed byte
/// fields.
const NONE_BYTE: u8 = u8::MAX;

/// One structured telemetry event per kernel invocation.
///
/// Times are in (virtual) seconds, rates in items/second, energies in
/// joules — the same units the scheduler itself works in. Fields that do
/// not apply to a path are zero (e.g. `predicted_time` on a table hit);
/// [`InvocationPath::has_prediction`] tells the analyzer which records
/// can be compared against the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecisionRecord {
    /// Global sequence number, assigned by the sink in publication order.
    pub seq: u64,
    /// The kernel the invocation belonged to.
    pub kernel: u64,
    /// Which Figure 7 control path the invocation took.
    pub path: InvocationPath,
    /// Workload-class index (0..8) from the last accepted profiling
    /// round, if the invocation profiled.
    pub class: Option<u8>,
    /// Circuit-breaker state after the invocation (0 closed, 1 open,
    /// 2 half-open).
    pub breaker: u8,
    /// Guard code of the last rejected observation, if any round faulted.
    pub last_fault: Option<u8>,
    /// Accepted profiling rounds.
    pub rounds: u32,
    /// Rejected (faulty) profiling rounds.
    pub fault_rounds: u32,
    /// Combined-mode CPU throughput from the last accepted round.
    pub r_c: f64,
    /// Combined-mode GPU throughput from the last accepted round.
    pub r_g: f64,
    /// The offload ratio the remainder actually executed at.
    pub alpha: f64,
    /// Model-predicted package power P(α) at the executed α, watts.
    pub predicted_power: f64,
    /// Model-predicted remainder time T(α) at the executed α, seconds.
    pub predicted_time: f64,
    /// Objective value OBJ(P(α), T(α)) the minimizer chose.
    pub predicted_objective: f64,
    /// Realized wall time of the profiling phase.
    pub profile_time: f64,
    /// Realized energy of the profiling phase, joules.
    pub profile_energy: f64,
    /// Realized wall time of the final split (the remainder run).
    pub split_time: f64,
    /// Realized energy of the final split, joules.
    pub split_energy: f64,
    /// Items in the invocation.
    pub items: u64,
    /// Wall-clock nanoseconds spent in vet + decide across the
    /// invocation (measured only when a sink is attached).
    pub decide_nanos: u64,
}

impl DecisionRecord {
    /// Number of `u64` words in the wire encoding (`seq` is carried by
    /// the ring slot, not the payload).
    pub const WORDS: usize = 13;

    /// Packs the record into fixed-width words for the lock-free ring.
    /// `rounds`/`fault_rounds` saturate at `u16::MAX`.
    pub fn encode(&self) -> [u64; Self::WORDS] {
        let packed = u64::from(self.class.unwrap_or(NONE_BYTE))
            | u64::from(self.path.code()) << 8
            | u64::from(self.breaker) << 16
            | u64::from(self.last_fault.unwrap_or(NONE_BYTE)) << 24
            | u64::from(self.rounds.min(u32::from(u16::MAX)) as u16) << 32
            | u64::from(self.fault_rounds.min(u32::from(u16::MAX)) as u16) << 48;
        let items_word = self.items.min(ITEM_MASK) | self.decide_nanos.min(NANOS_MAX) << ITEM_BITS;
        [
            self.kernel,
            packed,
            self.r_c.to_bits(),
            self.r_g.to_bits(),
            self.alpha.to_bits(),
            self.predicted_power.to_bits(),
            self.predicted_time.to_bits(),
            self.predicted_objective.to_bits(),
            self.profile_time.to_bits(),
            self.profile_energy.to_bits(),
            self.split_time.to_bits(),
            self.split_energy.to_bits(),
            items_word,
        ]
    }

    /// Unpacks a record from ring words; `seq` is supplied by the slot.
    pub fn decode(seq: u64, words: &[u64; Self::WORDS]) -> DecisionRecord {
        let packed = words[1];
        let class = (packed & 0xFF) as u8;
        let path = ((packed >> 8) & 0xFF) as u8;
        let breaker = ((packed >> 16) & 0xFF) as u8;
        let last_fault = ((packed >> 24) & 0xFF) as u8;
        let (items, decide_nanos) = unsplit(words[12]);
        DecisionRecord {
            seq,
            kernel: words[0],
            path: InvocationPath::from_code(path).unwrap_or_default(),
            class: (class != NONE_BYTE).then_some(class),
            breaker,
            last_fault: (last_fault != NONE_BYTE).then_some(last_fault),
            rounds: ((packed >> 32) & 0xFFFF) as u32,
            fault_rounds: ((packed >> 48) & 0xFFFF) as u32,
            r_c: f64::from_bits(words[2]),
            r_g: f64::from_bits(words[3]),
            alpha: f64::from_bits(words[4]),
            predicted_power: f64::from_bits(words[5]),
            predicted_time: f64::from_bits(words[6]),
            predicted_objective: f64::from_bits(words[7]),
            profile_time: f64::from_bits(words[8]),
            profile_energy: f64::from_bits(words[9]),
            split_time: f64::from_bits(words[10]),
            split_energy: f64::from_bits(words[11]),
            items,
            decide_nanos,
        }
    }

    /// Bit-level equality: like `==`, except NaN floats compare equal to
    /// themselves. Fault-corrupted records legitimately carry NaN phase
    /// totals, so trace round-trip checks use this instead of
    /// `PartialEq` (under which any NaN field makes a record unequal to
    /// its own copy).
    pub fn bitwise_eq(&self, other: &DecisionRecord) -> bool {
        self.seq == other.seq && self.encode() == other.encode()
    }

    /// Total realized wall time of the invocation.
    pub fn total_time(&self) -> f64 {
        self.profile_time + self.split_time
    }

    /// Total realized energy of the invocation, joules.
    pub fn total_energy(&self) -> f64 {
        self.profile_energy + self.split_energy
    }
}

/// `items` and `decide_nanos` share the last word: `items` in the low 40
/// bits (a 10¹² ceiling, far beyond any invocation here) and
/// `decide_nanos` in the high 24, saturating at ~16.7 ms — decisions are
/// the paper's "1–2 µs" path, so that is three orders of magnitude of
/// headroom. Both saturate rather than wrap.
const ITEM_BITS: u32 = 40;
const ITEM_MASK: u64 = (1 << ITEM_BITS) - 1;
const NANOS_MAX: u64 = (1 << (64 - ITEM_BITS)) - 1;

fn unsplit(word: u64) -> (u64, u64) {
    (word & ITEM_MASK, word >> ITEM_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionRecord {
        DecisionRecord {
            seq: 17,
            kernel: 0xDEAD_BEEF_CAFE,
            path: InvocationPath::Reprofiled,
            class: Some(5),
            breaker: 2,
            last_fault: Some(3),
            rounds: 9,
            fault_rounds: 2,
            r_c: 1.25e6,
            r_g: 3.5e6,
            alpha: 0.7,
            predicted_power: 43.25,
            predicted_time: 0.0123,
            predicted_objective: 0.00654,
            profile_time: 0.004,
            profile_energy: 0.17,
            split_time: 0.0125,
            split_energy: 0.52,
            items: 1_000_000,
            decide_nanos: 2_345,
        }
    }

    #[test]
    fn encode_decode_roundtrips() {
        let r = sample();
        let words = r.encode();
        assert_eq!(DecisionRecord::decode(r.seq, &words), r);
    }

    #[test]
    fn none_fields_roundtrip() {
        let r = DecisionRecord {
            class: None,
            last_fault: None,
            path: InvocationPath::Quarantined,
            ..sample()
        };
        let back = DecisionRecord::decode(r.seq, &r.encode());
        assert_eq!(back.class, None);
        assert_eq!(back.last_fault, None);
        assert_eq!(back, r);
    }

    #[test]
    fn counters_saturate_not_wrap() {
        let r = DecisionRecord {
            rounds: 1_000_000,
            fault_rounds: u32::MAX,
            items: u64::MAX,
            decide_nanos: u64::MAX,
            ..sample()
        };
        let back = DecisionRecord::decode(0, &r.encode());
        assert_eq!(back.rounds, u64::from(u16::MAX) as u32);
        assert_eq!(back.fault_rounds, u64::from(u16::MAX) as u32);
        assert_eq!(back.items, ITEM_MASK);
        assert_eq!(back.decide_nanos, NANOS_MAX);
    }

    #[test]
    fn every_path_code_roundtrips() {
        for code in 0..8 {
            let p = InvocationPath::from_code(code).unwrap();
            assert_eq!(p.code(), code);
            assert_eq!(InvocationPath::parse(p.as_str()), Some(p));
        }
        assert_eq!(InvocationPath::from_code(8), None);
        assert_eq!(InvocationPath::parse("bogus"), None);
    }
}
