//! Property tests for the span wire codec and the Chrome-trace span
//! round-trip (ISSUE: observability plane, DESIGN.md §14).
//!
//! Spans carry chaos-era floats — NaN durations from corrupted
//! observations included — through two codecs: the seqlock ring's
//! fixed-width word encoding and the Chrome-trace `args` JSON. Both must
//! be lossless. The ring codec is bit-for-bit for *every* payload bit
//! pattern (floats ride as raw bits); the trace codec is bit-for-bit for
//! every finite float, signed zero, and both infinities, and canonical
//! for NaN (any NaN serializes as `"NaN"` and parses back to the one
//! canonical quiet NaN, mirroring the decision-record trace codec).

use easched_telemetry::{parse_spans, to_trace_with_spans, DecisionRecord, Span, SpanKind};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = SpanKind> {
    (0u8..7).prop_map(|c| SpanKind::from_code(c).expect("codes 0..7 are the span kinds"))
}

/// Full bit-pattern float coverage — infinities and every NaN payload —
/// with NaN optionally collapsed to the canonical quiet NaN the trace
/// parser restores.
fn arb_f64(canonical_nan: bool) -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(move |bits| {
        let v = f64::from_bits(bits);
        if canonical_nan && v.is_nan() {
            f64::NAN
        } else {
            v
        }
    })
}

fn arb_span(canonical_nan: bool) -> impl Strategy<Value = Span> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u16>(), any::<u16>(), arb_kind(), any::<u16>()),
        (
            arb_f64(canonical_nan),
            arb_f64(canonical_nan),
            arb_f64(canonical_nan),
        ),
    )
        .prop_map(
            |((seq, trace, kernel), (id, parent, kind, tenant), (start, dur, payload))| Span {
                seq,
                trace,
                kernel,
                id,
                parent,
                kind,
                tenant,
                start,
                dur,
                payload,
            },
        )
}

proptest! {
    /// Ring wire codec: encode → decode is the identity for every bit
    /// pattern, NaN payloads included.
    #[test]
    fn span_words_roundtrip_bit_for_bit(span in arb_span(false)) {
        let decoded = Span::decode(span.seq, &span.encode());
        prop_assert!(decoded.bitwise_eq(&span), "{decoded:?} != {span:?}");
    }

    /// Chrome-trace codec: a span stream spliced into a trace file parses
    /// back bit-for-bit (canonical NaN), in file order, with decision
    /// events interleaved and ignored.
    #[test]
    fn span_trace_roundtrips_bit_for_bit(
        spans in prop::collection::vec(arb_span(true), 0..24),
        with_records in any::<bool>(),
    ) {
        let records = if with_records {
            vec![DecisionRecord::default(), DecisionRecord { seq: 1, kernel: 7, ..Default::default() }]
        } else {
            Vec::new()
        };
        let text = to_trace_with_spans(&records, &spans);
        let parsed = parse_spans(&text).expect("trace we just wrote must parse");
        prop_assert_eq!(parsed.len(), spans.len());
        for (got, want) in parsed.iter().zip(&spans) {
            prop_assert!(got.bitwise_eq(want), "{:?} != {:?}", got, want);
        }
    }
}
