//! The ring sink under write contention: 8 threads hammering one sink
//! must lose nothing (when capacity suffices), stay within bounded
//! memory, and preserve per-thread event order.

use easched_telemetry::{DecisionRecord, InvocationPath, RingSink, TelemetrySink};
use std::sync::Arc;

const THREADS: u64 = 8;
const PER_THREAD: u64 = 2_000;

/// Each thread records as its own kernel so ordering is checkable
/// per kernel afterwards.
fn hammer(sink: &Arc<RingSink>, threads: u64, per_thread: u64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let sink = Arc::clone(sink);
            s.spawn(move || {
                for i in 0..per_thread {
                    sink.record(&DecisionRecord {
                        kernel: t,
                        items: i,
                        alpha: (i % 11) as f64 / 10.0,
                        path: InvocationPath::Profiled,
                        ..DecisionRecord::default()
                    });
                }
            });
        }
    });
}

#[test]
fn eight_threads_no_record_lost_when_capacity_suffices() {
    let sink = Arc::new(RingSink::with_capacity((THREADS * PER_THREAD) as usize));
    hammer(&sink, THREADS, PER_THREAD);

    assert_eq!(sink.recorded(), THREADS * PER_THREAD);
    assert_eq!(
        sink.dropped(),
        0,
        "a ring larger than the push count must never drop"
    );
    let snapshot = sink.snapshot();
    assert_eq!(snapshot.len(), (THREADS * PER_THREAD) as usize);

    // Every (kernel, item) pair appears exactly once.
    let mut seen = vec![vec![false; PER_THREAD as usize]; THREADS as usize];
    for r in &snapshot {
        let slot = &mut seen[r.kernel as usize][r.items as usize];
        assert!(
            !*slot,
            "duplicate record kernel={} item={}",
            r.kernel, r.items
        );
        *slot = true;
    }
    assert!(seen.iter().flatten().all(|&b| b), "missing records");

    // Metrics counted every event exactly once.
    assert_eq!(sink.metrics().invocations.get(), THREADS * PER_THREAD);
    assert_eq!(sink.metrics().profiled.get(), THREADS * PER_THREAD);
}

#[test]
fn eight_threads_per_kernel_order_follows_sequence_numbers() {
    let sink = Arc::new(RingSink::with_capacity((THREADS * PER_THREAD) as usize));
    hammer(&sink, THREADS, PER_THREAD);

    // snapshot() sorts by seq; within one kernel (= one thread), items
    // must then be strictly increasing — a thread's later push can never
    // receive an earlier sequence number.
    let snapshot = sink.snapshot();
    let mut last_item = vec![None::<u64>; THREADS as usize];
    for r in &snapshot {
        let prev = &mut last_item[r.kernel as usize];
        if let Some(p) = *prev {
            assert!(
                r.items > p,
                "kernel {} item {} arrived after {}",
                r.kernel,
                r.items,
                p
            );
        }
        *prev = Some(r.items);
    }
    // And the global sequence numbers are unique.
    let mut seqs: Vec<u64> = snapshot.iter().map(|r| r.seq).collect();
    seqs.dedup();
    assert_eq!(seqs.len(), snapshot.len());
}

#[test]
fn contended_wrap_stays_bounded_and_readable() {
    // Capacity far below the push volume: the ring must wrap, keep only
    // the newest records, and every surviving record must be internally
    // consistent (no torn reads materialize as impossible field mixes).
    let capacity = 256;
    let sink = Arc::new(RingSink::with_capacity(capacity));
    hammer(&sink, THREADS, PER_THREAD);

    assert_eq!(sink.capacity(), capacity);
    assert_eq!(sink.recorded(), THREADS * PER_THREAD);
    let snapshot = sink.snapshot();
    assert!(snapshot.len() <= capacity, "bounded memory");
    for r in &snapshot {
        assert!(r.kernel < THREADS, "torn record: kernel {}", r.kernel);
        assert!(r.items < PER_THREAD, "torn record: items {}", r.items);
        assert_eq!(r.path, InvocationPath::Profiled);
        // The alpha a thread wrote for this item, bit-for-bit.
        assert_eq!(r.alpha, (r.items % 11) as f64 / 10.0, "torn payload");
    }
    // Whatever was dropped under wrap contention is accounted for, and
    // everything else is retained or was overwritten — never corrupted.
    assert!(sink.dropped() <= sink.recorded());
    // Metrics still counted every single event.
    assert_eq!(sink.metrics().invocations.get(), THREADS * PER_THREAD);
}

#[test]
fn snapshot_races_with_writers_safely() {
    // A reader snapshotting while writers are active must only ever see
    // fully published records.
    let sink = Arc::new(RingSink::with_capacity(512));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let sink = Arc::clone(&sink);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    sink.record(&DecisionRecord {
                        kernel: t,
                        items: i,
                        alpha: (i % 11) as f64 / 10.0,
                        ..DecisionRecord::default()
                    });
                }
            });
        }
        let sink = Arc::clone(&sink);
        s.spawn(move || {
            for _ in 0..200 {
                for r in sink.snapshot() {
                    assert!(r.kernel < 4);
                    assert!(r.items < PER_THREAD);
                    assert_eq!(r.alpha, (r.items % 11) as f64 / 10.0, "torn read");
                }
            }
        });
    });
}
