//! The acceptance-bar scenario: the three CI chaos seeds (7, 23, 1009 —
//! the same roots `ci.sh` drives through `EASCHED_CHAOS_SEED`) each
//! record a mixed chaos storm whose replay reproduces the decision
//! stream byte-for-byte and reconverges to the same health counters and
//! kernel table.

use easched_replay::{record_chaos_storm, replay_chaos_storm, StormSpec};

#[test]
fn ci_chaos_seeds_replay_byte_identically() {
    for root in [7u64, 23, 1009] {
        let recorded = record_chaos_storm(&StormSpec::new(root));
        let outcome = replay_chaos_storm(&recorded.log).unwrap();
        assert!(
            outcome.identical(),
            "seed {root} diverged: {}",
            outcome.divergence.unwrap().render()
        );
        assert!(!outcome.recorded.is_empty(), "seed {root} recorded nothing");
        assert_eq!(
            outcome.live.len(),
            outcome.recorded.len(),
            "seed {root} stream lengths"
        );
        assert_eq!(outcome.health, recorded.health, "seed {root} health");
        assert_eq!(outcome.table, recorded.table, "seed {root} table");
    }
}

#[test]
fn logs_survive_a_text_round_trip_before_replay() {
    let recorded = record_chaos_storm(&StormSpec::new(1009));
    let text = recorded.log.to_text();
    let reloaded = easched_replay::RunLog::from_text(&text).unwrap();
    // Bitwise comparison via re-serialization: chaos-corrupted observations
    // can carry NaNs, which structural `==` would reject.
    assert_eq!(reloaded.to_text(), text);
    let outcome = replay_chaos_storm(&reloaded).unwrap();
    assert!(outcome.identical());
}
