//! Property tests for the run-log codec and the end-to-end replay
//! guarantee (ISSUE: record/replay, DESIGN.md §12).
//!
//! The codec properties mirror the persistence journal's: serialization
//! round-trips byte-identically, and a torn tail (crash mid-write, the
//! FNV-1a line-seal idiom from the v3 journal) never breaks parsing —
//! the surviving prefix is intact and the loss is flagged, not silent.

use easched_replay::{AdmissionRecord, Event, LogError, RecordedStep, RunLog, StepCall};
use easched_runtime::Observation;
use easched_sim::CounterSnapshot;
use easched_telemetry::DecisionRecord;
use proptest::prelude::*;

fn arb_f64() -> impl Strategy<Value = f64> {
    // Full bit-pattern coverage (infinities and NaNs included): the codec
    // stores float bits verbatim, so every pattern must survive.
    any::<u64>().prop_map(f64::from_bits)
}

fn arb_observation() -> impl Strategy<Value = Observation> {
    (
        (arb_f64(), any::<u64>(), any::<u64>()),
        (arb_f64(), arb_f64(), arb_f64()),
        (arb_f64(), arb_f64(), arb_f64()),
    )
        .prop_map(
            |((elapsed, cpu_items, gpu_items), (cpu_time, gpu_time, energy), (i, l, m))| {
                Observation {
                    elapsed,
                    cpu_items,
                    gpu_items,
                    cpu_time,
                    gpu_time,
                    energy_joules: energy,
                    counters: CounterSnapshot {
                        instructions: i,
                        loads: l,
                        l3_misses: m,
                    },
                }
            },
        )
}

fn arb_step() -> impl Strategy<Value = RecordedStep> {
    let call = prop_oneof![
        any::<u64>().prop_map(|chunk| StepCall::Profile { chunk }),
        arb_f64().prop_map(|alpha| StepCall::Split { alpha }),
    ];
    (call, arb_observation(), any::<u64>()).prop_map(|(call, obs, remaining_after)| RecordedStep {
        call,
        obs,
        remaining_after,
    })
}

/// Arbitrary words decoded into a record give a *canonical* record: its
/// `encode()` is a fixed point, which is what the text format stores.
fn arb_decision() -> impl Strategy<Value = DecisionRecord> {
    (any::<u64>(), prop::collection::vec(any::<u64>(), 13)).prop_map(|(seq, words)| {
        let words: [u64; 13] = words.try_into().expect("vec of 13");
        let canonical = DecisionRecord::decode(seq, &words);
        DecisionRecord::decode(seq, &canonical.encode())
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    let domain = prop_oneof![
        Just("chaos"),
        Just("suite/BFS-desktop"),
        Just("workload_gen"),
    ];
    let label = prop_oneof![Just("BFS"), Just("BS"), Just("MB"), Just("-")];
    prop_oneof![
        (
            domain,
            prop_oneof![Just(None), any::<u64>().prop_map(Some)],
            any::<u64>()
        )
            .prop_map(|(d, index, seed)| Event::Derive {
                domain: d.to_string(),
                index,
                seed,
            }),
        (any::<u64>(), any::<u64>(), any::<u64>(), label).prop_map(
            |(kernel, items, profile_size, l)| Event::Invocation {
                kernel,
                items,
                profile_size,
                label: l.to_string(),
            }
        ),
        arb_step().prop_map(Event::Step),
        arb_decision().prop_map(Event::Decision),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u8>(),
            any::<u8>(),
            any::<u64>()
        )
            .prop_map(|(tick, tenant, level, verdict, arg)| Event::Admission(
                AdmissionRecord {
                    tick,
                    tenant,
                    level,
                    verdict,
                    arg,
                }
            )),
    ]
}

fn arb_log() -> impl Strategy<Value = RunLog> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(arb_event(), 0..40),
    )
        .prop_map(|(root, platform_fp, config_fp, events)| RunLog {
            version: if events.iter().any(|e| matches!(e, Event::Admission(_))) {
                easched_replay::FORMAT_VERSION_ADMISSION
            } else {
                easched_replay::FORMAT_VERSION
            },
            root,
            platform_fp,
            config_fp,
            events,
            complete: true,
        })
}

/// Byte offset just past the 4-line header (magic, root, platform, config).
fn header_end(text: &str) -> usize {
    let mut end = 0;
    for _ in 0..4 {
        end += text[end..].find('\n').expect("header has 4 lines") + 1;
    }
    end
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialization round-trips byte-identically, including NaN payloads
    /// and extreme values: parse(text).to_text() == text, with every
    /// event and header field surviving structurally intact.
    #[test]
    fn runlog_round_trips_byte_equal(log in arb_log()) {
        let text = log.to_text();
        let parsed = RunLog::from_text(&text).expect("own output parses");
        prop_assert!(parsed.complete);
        prop_assert_eq!(parsed.events.len(), log.events.len());
        // Byte-level equality is the property (structural `==` would reject
        // NaN observations, whose bit payloads the codec must preserve).
        prop_assert_eq!(parsed.to_text(), text);
    }

    /// Cutting the byte stream anywhere behind the header yields a clean
    /// prefix flagged incomplete — never a parse error, never a mangled
    /// event (the CRC seal rejects the torn line).
    #[test]
    fn torn_tails_leave_a_replayable_prefix(log in arb_log(), cut_frac in 0.0..1.0f64) {
        let text = log.to_text();
        let header = header_end(&text);
        let cut = header + ((text.len() - header) as f64 * cut_frac) as usize;
        prop_assume!(cut < text.len());

        let torn = RunLog::from_text(&text[..cut]).expect("torn tail is not a parse error");
        prop_assert!(!torn.complete, "missing footer must be flagged");
        prop_assert!(torn.events.len() <= log.events.len());
        // The surviving events are a bitwise prefix of the original stream:
        // re-sealing them reproduces the original's leading lines exactly.
        let resealed = RunLog { complete: true, ..torn.clone() }.to_text();
        let original: Vec<&str> = text.lines().collect();
        let prefix: Vec<&str> = resealed.lines().collect();
        // Last line of the reseal is its own `end` footer; skip it.
        for (i, line) in prefix[..prefix.len() - 1].iter().enumerate() {
            prop_assert_eq!(*line, original[i], "line {} differs", i);
        }
    }

    /// A header cut is a hard error, not silent data loss.
    #[test]
    fn torn_header_is_an_error(log in arb_log(), cut in 1usize..20) {
        let text = log.to_text();
        let cut = cut.min(header_end(&text) - 1);
        let result = RunLog::from_text(&text[..cut]);
        prop_assert!(
            matches!(result, Err(LogError::NotARunLog | LogError::MalformedHeader(_))),
            "got {result:?}"
        );
    }
}
