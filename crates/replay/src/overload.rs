//! Record/replay of the canonical multi-tenant overload storm
//! (DESIGN.md §13): eight tenants offering twice the frontend's drain
//! capacity, a bursty co-tenant fault plan hammering the package, and
//! the admission controller's full surface — bounded queues, weighted
//! fair-share draining, quota windows, and the brownout ladder — driven
//! end to end in front of one shared scheduler.
//!
//! Determinism strategy: the admission controller is pure state (no
//! clocks, no RNG), so the log does not carry its *state* — it carries
//! its *inputs*. Traffic derives from the run's [`RunSeed`] (domain
//! `"traffic"`), power samples and GPU-proxy debits derive from the
//! [`DecisionRecord`](easched_telemetry::DecisionRecord) stream the
//! scheduler emits (the same stream replay reproduces bit-for-bit), and
//! every admission verdict is written to the log as a v2
//! [`AdmissionRecord`]. Replay re-runs the controller against the
//! replayed decision stream and re-derives every verdict; byte-equality
//! of the two logs is the proof that the whole overloaded run — sheds,
//! brownout transitions, quota denials and all — reproduced exactly.
//!
//! The power signal fed to the ladder is the *scheduler-visible* energy
//! over time of each tick's decisions — post-chaos, corruption included.
//! That is deliberate and black-box-faithful: the admission layer reads
//! the same telemetry an operator would, not simulator ground truth.

use crate::harness::{
    recording_setup, recording_setup_observed, scheduler_for_log, storm_platform, ReplayError,
};
use crate::log::{AdmissionRecord, Event, RunLog};
use crate::record::{Recorder, RecordingScheduler};
use crate::replay::ReplayBackend;
use easched_core::{
    table_to_text, EasScheduler, HealthReport, RunSeed, SharedEasExt, TenantFrontend,
};
use easched_kernels::suite;
use easched_runtime::{
    run_workload, run_workload_chaos, AdmissionConfig, BrownoutLevel, ChaosInjector, FaultPlan,
    InvocationCtx, Scheduler, TenantRegistry, TenantSpec, TenantStats, TenantTraffic, TrafficModel,
};
use easched_sim::Machine;
use easched_telemetry::{RingSink, SloConfig, SloTracker, TelemetrySink};
use std::sync::Arc;

/// Wire verdict marking the start of one drained request's execution in
/// the admission event stream (codes 0..=2 are the offer outcomes —
/// see [`AdmissionOutcome::code`](easched_runtime::AdmissionOutcome::code)).
/// The invocations recorded between
/// consecutive markers belong to the marked request, which is how replay
/// regroups a multi-invocation workload run under its admission ticket.
pub const VERDICT_EXEC: u8 = 3;

/// Billing-quantum band, seconds, for one request's fair-share debit:
/// the measured scheduler-visible occupancy is clamped into
/// `[DEBIT_FLOOR, DEBIT_CEIL]` before it is charged. The band does two
/// jobs. It insulates the ledger from chaos-corrupted timing (the 10 s
/// hang lie would otherwise starve the victim tenant for the rest of
/// the run and read as unfairness), and it bounds the ledger's
/// granularity: the worst-case fair-share deficit after `N` drains is
/// about `DEBIT_CEIL · W / (w_min · N · mean_debit)`, so a narrow band
/// is what makes the ≤ 5 % ci gate meaningful at storm length rather
/// than an artifact of which tenant happened to draw the largest
/// workload last.
const DEBIT_FLOOR: f64 = 0.004;

/// Upper edge of the billing-quantum band (see [`DEBIT_FLOOR`]).
const DEBIT_CEIL: f64 = 0.005;

/// Shape of a recorded overload storm.
#[derive(Debug, Clone)]
pub struct OverloadSpec {
    /// Root seed; traffic and chaos both derive from it.
    pub seed: RunSeed,
    /// Admission ticks to drive.
    pub ticks: u64,
}

impl OverloadSpec {
    /// The canonical storm rooted at `root`: 32 ticks of 2× overload
    /// (long enough for the fair-share ledger to converge inside the
    /// billing-quantum granularity bound — see `DEBIT_FLOOR`).
    pub fn new(root: u64) -> OverloadSpec {
        OverloadSpec {
            seed: RunSeed::new(root),
            ticks: 32,
        }
    }
}

/// The canonical eight-tenant registry: one sheddable batch tenant, a
/// spread of weights, one quota-metered tenant, one deadline-carrying
/// tenant. Tenant ids are registry positions.
pub fn overload_registry() -> TenantRegistry {
    TenantRegistry::new(vec![
        TenantSpec::new("batch", 0.5)
            .with_priority(0)
            .with_queue_cap(4),
        TenantSpec::new("svc-a", 2.0).with_queue_cap(8),
        TenantSpec::new("svc-b", 2.0).with_queue_cap(8),
        TenantSpec::new("svc-c", 2.0).with_queue_cap(8),
        TenantSpec::new("svc-d", 2.0).with_queue_cap(8),
        TenantSpec::new("heavy", 4.0).with_queue_cap(12),
        TenantSpec::new("metered", 1.0)
            .with_quota(0.02)
            .with_queue_cap(4),
        TenantSpec::new("latency", 2.0)
            .with_deadline(30.0)
            .with_queue_cap(8),
    ])
}

/// Per-tenant traffic shapes. Baseline rates sum to ~12 arrivals/tick —
/// twice the storm's drain capacity of 6 slots — and two tenants burst
/// in anti-phase on top of that. Every fairness-eligible tenant's rate
/// sits well above its entitled share of the drain slots, keeping its
/// queue backlogged so the fair-share ledger can actually converge to
/// the weight vector (an idle tenant's "deficit" would be demand, not
/// unfairness).
pub fn overload_traffic() -> Vec<TenantTraffic> {
    vec![
        TenantTraffic::poisson(0.6),
        TenantTraffic::poisson(1.6),
        TenantTraffic::poisson(1.6),
        TenantTraffic::bursty(1.6, 8, 3, 3.0, 0),
        TenantTraffic::bursty(1.6, 8, 3, 3.0, 4),
        TenantTraffic::poisson(3.0),
        TenantTraffic::poisson(0.5),
        TenantTraffic::poisson(1.6),
    ]
}

/// Admission knobs for the canonical storm. The brownout budget sits
/// above the platform's nominal scheduler-visible power (~50 W) so the
/// ladder responds to the co-tenant's surge episodes, not to healthy
/// operation — and can walk back down between episodes. The EWMA weight
/// and streak are tightened from the library defaults so surge episodes
/// resolve within the 32-tick canonical run.
pub fn overload_admission() -> AdmissionConfig {
    AdmissionConfig {
        brownout: easched_runtime::BrownoutConfig {
            power_budget: 65.0,
            enter_margin: 1.0,
            exit_margin: 0.8,
            ewma_weight: 0.5,
            streak: 2,
        },
        slots_per_tick: 6,
        ..AdmissionConfig::default()
    }
}

/// The storm's workload rotation, selected per request by ticket.
fn overload_workloads() -> Vec<Box<dyn easched_kernels::Workload>> {
    vec![
        suite::bfs_small(),
        suite::blackscholes_small(),
        suite::mandelbrot_small(),
    ]
}

/// A finished overload recording plus the run's final state and the
/// acceptance-gate measurements.
#[derive(Debug)]
pub struct RecordedOverload {
    /// The sealed v2 log.
    pub log: RunLog,
    /// Final health counters of the shared scheduler.
    pub health: HealthReport,
    /// Final kernel table, as text.
    pub table: String,
    /// Worst relative fair-share deficit at end of run.
    pub fair_share_deficit: f64,
    /// Whether every queue respected its bound throughout (checked at
    /// end; the controller enforces it on every offer).
    pub queues_bounded: bool,
    /// Requests offered across all tenants.
    pub offered: u64,
    /// Requests shed across all tenants (all causes).
    pub shed: u64,
    /// Requests that executed to completion.
    pub executed: usize,
    /// Mean energy-delay product of the executed (admitted) requests,
    /// simulator ground truth.
    pub mean_admitted_edp: f64,
    /// Mean EDP of the same workload sequence on an unloaded, fault-free
    /// frontend — the denominator of the degradation gate.
    pub clean_mean_edp: f64,
    /// Brownout rung at end of run.
    pub final_level: BrownoutLevel,
    /// Ladder transitions over the run.
    pub brownout_transitions: u64,
    /// Final per-tenant admission counters, `(name, stats)` in registry
    /// order.
    pub tenant_stats: Vec<(String, TenantStats)>,
}

impl RecordedOverload {
    /// Clean-to-overloaded EDP ratio for admitted work (1.0 = no
    /// degradation; the ci gate asserts ≥ 0.7).
    pub fn edp_efficiency(&self) -> f64 {
        if self.mean_admitted_edp > 0.0 && self.clean_mean_edp > 0.0 {
            self.clean_mean_edp / self.mean_admitted_edp
        } else {
            1.0
        }
    }
}

/// Outcome of replaying an overload log.
#[derive(Debug)]
pub struct OverloadReplayOutcome {
    /// The log the replay re-recorded.
    pub replayed: RunLog,
    /// Whether the replayed log is byte-identical to the input.
    pub identical: bool,
    /// First differing line between the two logs, if any
    /// (`line number: recorded / replayed`, human-readable).
    pub first_difference: Option<String>,
    /// Final health counters of the replaying scheduler.
    pub health: HealthReport,
    /// Final kernel table of the replaying scheduler, as text.
    pub table: String,
}

/// What the shared per-tick driver accumulated.
struct DriveTotals {
    /// Workload-rotation index of each executed request, in order.
    kinds: Vec<usize>,
    /// Ground-truth EDP of each executed request (zeros on replay,
    /// where no simulator runs).
    edps: Vec<f64>,
}

/// Drives `ticks` admission ticks: offers seeded traffic, drains in
/// fair-share order, executes each drained request via `exec`, debits
/// GPU-proxy time from the decision records the execution emitted, and
/// feeds the tick's scheduler-visible power to the brownout ladder.
/// Identical on the record and replay sides — only `exec` differs.
fn drive_overload<E>(
    ticks: u64,
    slots: usize,
    tenants: usize,
    frontend: &TenantFrontend,
    traffic: &TrafficModel,
    recorder: &Arc<Recorder>,
    mut exec: E,
) -> DriveTotals
where
    E: FnMut(usize, u64, InvocationCtx) -> f64,
{
    let mut totals = DriveTotals {
        kinds: Vec::new(),
        edps: Vec::new(),
    };
    for tick in 0..ticks {
        let tick_start = recorder.decisions().len();
        for tenant in 0..tenants {
            for _ in 0..traffic.arrivals(tenant, tick) {
                let level = frontend.level().code();
                let outcome = frontend.offer(tenant);
                recorder.note_admission(AdmissionRecord {
                    tick,
                    tenant: tenant as u64,
                    level,
                    verdict: outcome.code(),
                    arg: outcome.arg(),
                });
            }
        }
        for req in frontend.drain_detailed(slots) {
            // `drain_detailed` has already published the admission spans
            // and queue-wait SLO samples (both derived state, absent from
            // the log); the ctx threads the request's trace id into the
            // execution spans.
            let ctx = frontend.ctx_for_request(&req);
            recorder.note_admission(AdmissionRecord {
                tick,
                tenant: req.tenant as u64,
                level: frontend.level().code(),
                verdict: VERDICT_EXEC,
                arg: req.ticket,
            });
            let before = recorder.decisions().len();
            let edp = exec(req.tenant, req.ticket, ctx);
            let records = recorder.decisions().split_off(before);
            // Proxy occupancy: the drain slot held the shared package for
            // the run's scheduler-visible time, so that is what the
            // fair-share ledger and quota window are charged — clamped
            // into the billing-quantum band (hang lies cannot weaponize
            // the ledger; ledger granularity stays below the fairness
            // gate).
            let measured: f64 = records.iter().map(|r| r.profile_time + r.split_time).sum();
            // The EDP SLO signal is scheduler-visible on both sides of
            // replay: predicted objective vs realized energy·time, both
            // straight from the decision stream the replay reproduces
            // bit-for-bit. Ground-truth `edp` would read zero on replay.
            let predicted: f64 = records.iter().map(|r| r.predicted_objective).sum();
            let realized: f64 = records
                .iter()
                .map(|r| (r.profile_energy + r.split_energy) * (r.profile_time + r.split_time))
                .sum();
            frontend.observe_request_edp(req.tenant, predicted, realized);
            let debit = measured.clamp(DEBIT_FLOOR, DEBIT_CEIL);
            frontend.complete(req.tenant, debit);
            totals.kinds.push((req.ticket % 3) as usize);
            totals.edps.push(edp);
        }
        // Package power for the ladder: the mean of per-decision
        // energy-over-time samples. A per-sample ratio is robust to the
        // hang fault's time dilation (a 10 s near-zero-energy lie reads
        // as one ~0 W sample instead of crushing the whole tick), while
        // surge-corrupted samples still pull the mean up — exactly the
        // sustained-pressure signal the ladder hystereses over.
        let records = recorder.decisions().split_off(tick_start);
        let samples: Vec<f64> = records
            .iter()
            .filter(|r| r.profile_time + r.split_time > 0.0)
            .map(|r| (r.profile_energy + r.split_energy) / (r.profile_time + r.split_time))
            .collect();
        let watts = mean(&samples);
        frontend.observe_power(watts);
        frontend.advance_tick();
    }
    totals
}

/// An overload recording plus the live observability plane that watched
/// it: the span-tracing ring sink (metrics registry + causal spans — the
/// scrape server's providers) and the SLO tracker the frontend fed.
#[derive(Debug)]
pub struct ObservedOverload {
    /// The recording and its acceptance-gate measurements. Its log is
    /// byte-identical to an unobserved recording of the same spec — the
    /// observability plane is strictly derived state.
    pub recorded: RecordedOverload,
    /// The ring sink that observed the run (metrics + spans).
    pub ring: Arc<RingSink>,
    /// The burn-rate tracker; its events carry run-log exemplar offsets
    /// (`easched replay --at <offset>`).
    pub slo: Arc<SloTracker>,
}

/// Records the canonical overload storm, returning the sealed v2 log,
/// the run's final state, and the acceptance-gate measurements.
pub fn record_overload_storm(spec: &OverloadSpec) -> RecordedOverload {
    let (eas, recorder) = recording_setup(spec.seed);
    record_storm_with(spec, eas, recorder, None, None)
}

/// Live handles to an observed storm in flight, passed to the serve
/// hook of [`record_overload_storm_observed_with`] just before the
/// first tick — everything a scrape server's route providers close
/// over.
#[derive(Debug, Clone)]
pub struct LiveObservability {
    /// The admission frontend (tenant stats, brownout level).
    pub frontend: Arc<TenantFrontend>,
    /// Metrics registry + span ring.
    pub ring: Arc<RingSink>,
    /// Burn-rate tracker.
    pub slo: Arc<SloTracker>,
    /// The recorder (live log offset for exemplar displays).
    pub recorder: Arc<Recorder>,
}

/// [`record_overload_storm`] with the observability plane attached: the
/// scheduler's telemetry tees into a span-tracing [`RingSink`], the
/// frontend feeds a [`SloTracker`] (queue-wait, EDP-ratio, and shed-rate
/// burn rates, exemplar offsets from the recorder), and tenant names are
/// registered with both so scrape output carries human labels. The log
/// itself is byte-identical to the unobserved recording.
pub fn record_overload_storm_observed(spec: &OverloadSpec) -> ObservedOverload {
    record_overload_storm_observed_with(spec, |_| {})
}

/// [`record_overload_storm_observed`] with a hook that receives the live
/// handles before the first tick — the `easched serve` subcommand binds
/// its scrape server here, so every page reads a storm actually in
/// flight.
pub fn record_overload_storm_observed_with(
    spec: &OverloadSpec,
    on_live: impl FnOnce(&LiveObservability),
) -> ObservedOverload {
    let (eas, recorder, ring) = recording_setup_observed(spec.seed);
    let slo = Arc::new(SloTracker::new(SloConfig::default()));
    let registry = overload_registry();
    for tenant in 0..registry.len() {
        let name = &registry.spec(tenant).name;
        slo.set_tenant_name(tenant as u64, name);
        ring.metrics().set_tenant_name(tenant as u64, name);
    }
    let mut on_live = Some(on_live);
    let ring_for_hook = Arc::clone(&ring);
    let recorded = record_storm_with(
        spec,
        eas,
        Arc::clone(&recorder),
        Some(Arc::clone(&slo)),
        Some(&mut |frontend: &Arc<TenantFrontend>| {
            if let Some(hook) = on_live.take() {
                hook(&LiveObservability {
                    frontend: Arc::clone(frontend),
                    ring: Arc::clone(&ring_for_hook),
                    slo: Arc::clone(&slo),
                    recorder: Arc::clone(&recorder),
                });
            }
        }),
    );
    ObservedOverload {
        recorded,
        ring,
        slo,
    }
}

/// The frontend hook `record_storm_with` fires once the live handles
/// exist, before the first tick.
type OnLive<'a> = &'a mut dyn FnMut(&Arc<TenantFrontend>);

/// The shared storm body behind both record entry points.
fn record_storm_with(
    spec: &OverloadSpec,
    eas: EasScheduler,
    recorder: Arc<Recorder>,
    slo: Option<Arc<SloTracker>>,
    on_live: Option<OnLive<'_>>,
) -> RecordedOverload {
    let chaos_seed = recorder.derive(spec.seed, "chaos");
    let traffic_seed = recorder.derive(spec.seed, "traffic");

    let shared = eas.into_shared();
    let registry = overload_registry();
    let tenants = registry.len();
    let cfg = overload_admission();
    let slots = cfg.slots_per_tick;
    let mut frontend = TenantFrontend::new(Arc::clone(&shared), registry, cfg);
    if let Some(slo) = slo {
        frontend = frontend.with_slo(slo);
    }
    let frontend = Arc::new(frontend);
    if let Some(hook) = on_live {
        hook(&frontend);
    }
    let traffic = TrafficModel::new(traffic_seed, overload_traffic());

    let workloads = overload_workloads();
    let mut machine = Machine::new(storm_platform());
    // Burst geometry is in backend steps; one admission tick executes
    // roughly 60-100 steps, so these windows give the run distinct
    // multi-tick surge episodes separated by quiet stretches — the
    // tick-scale pressure pattern the ladder's hysteresis is built for.
    let mut injector = ChaosInjector::new(FaultPlan::BurstyTenant {
        seed: chaos_seed,
        period: 320,
        burst_len: 128,
        rate: 0.5,
    });

    let totals = drive_overload(
        spec.ticks,
        slots,
        tenants,
        &frontend,
        &traffic,
        &recorder,
        |_tenant, ticket, ctx| {
            let workload = &workloads[(ticket % 3) as usize];
            let mut handle = shared.handle().with_ctx(ctx);
            let mut recording =
                RecordingScheduler::new(&mut handle, Arc::clone(&recorder), workload.spec().abbrev);
            let (metrics, verification) = run_workload_chaos(
                &mut machine,
                workload.as_ref(),
                &mut recording,
                &mut injector,
            );
            assert!(
                verification.is_passed(),
                "chaos corrupts observations, never outputs: {}",
                workload.spec().abbrev
            );
            metrics.energy_joules * metrics.time
        },
    );

    let registry = overload_registry();
    let tenant_stats: Vec<(String, TenantStats)> = (0..tenants)
        .map(|t| (registry.spec(t).name.clone(), frontend.tenant_stats(t)))
        .collect();
    let (offered, shed) = tenant_stats
        .iter()
        .fold((0, 0), |(o, s), (_, st)| (o + st.offered, s + st.shed));
    let executed = totals.kinds.len();
    let mean_admitted_edp = mean(&totals.edps);
    let clean_mean_edp = clean_mean_edp(spec.seed, &totals.kinds);
    let health = shared.health();

    RecordedOverload {
        log: recorder.finish(),
        table: table_to_text(shared.table()),
        fair_share_deficit: frontend.fair_share_deficit(),
        queues_bounded: frontend.queues_bounded(),
        offered,
        shed,
        executed,
        mean_admitted_edp,
        clean_mean_edp,
        final_level: frontend.level(),
        brownout_transitions: health.brownout_transitions,
        tenant_stats,
        health,
    }
}

/// Mean EDP of the executed workload sequence on an unloaded frontend:
/// same seed, same scheduler construction, same workload order — but no
/// chaos, no admission gating, no brownout. The denominator of the
/// "admitted work keeps ≥ 70 % efficiency" gate.
fn clean_mean_edp(seed: RunSeed, kinds: &[usize]) -> f64 {
    if kinds.is_empty() {
        return 0.0;
    }
    let (mut eas, _recorder) = recording_setup(seed);
    eas.set_telemetry(None);
    let workloads = overload_workloads();
    let mut machine = Machine::new(storm_platform());
    let edps: Vec<f64> = kinds
        .iter()
        .map(|&k| {
            let (metrics, verification) =
                run_workload(&mut machine, workloads[k].as_ref(), &mut eas);
            assert!(verification.is_passed());
            metrics.energy_joules * metrics.time
        })
        .collect();
    mean(&edps)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Groups the log's invocation ordinals by the execution marker
/// (verdict [`VERDICT_EXEC`]) they follow: `groups[k]` holds the
/// invocations belonging to the `k`-th drained request.
fn invocation_groups(log: &RunLog) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut ordinal = 0usize;
    for event in &log.events {
        match event {
            Event::Admission(r) if r.verdict == VERDICT_EXEC => groups.push(Vec::new()),
            Event::Invocation { .. } => {
                if let Some(group) = groups.last_mut() {
                    group.push(ordinal);
                }
                ordinal += 1;
            }
            _ => {}
        }
    }
    groups
}

/// Replays an overload log recorded by [`record_overload_storm`]: checks
/// the fingerprints, rebuilds the scheduler, re-derives traffic from the
/// log's root seed, re-runs the admission controller against the
/// replayed decision stream, and re-records the whole run. Byte-equality
/// of the re-recorded log against the input is the identity check — it
/// covers every admission verdict, every brownout transition, and every
/// scheduler decision at once.
pub fn replay_overload_storm(log: &RunLog) -> Result<OverloadReplayOutcome, ReplayError> {
    let mut eas = scheduler_for_log(log)?;
    let seed = RunSeed::new(log.root);
    let recorder = Recorder::new(seed, log.platform_fp, log.config_fp);
    for (name, value) in suite::seeds::manifest() {
        recorder.note_seed(name, value);
    }
    eas.set_telemetry(Some(Arc::clone(&recorder) as Arc<dyn TelemetrySink>));
    // Mirror the record side's derivation order so the event streams
    // align line for line (the chaos seed steers no replay decisions —
    // faults are baked into the recorded observations).
    let _chaos_seed = recorder.derive(seed, "chaos");
    let traffic_seed = recorder.derive(seed, "traffic");

    let shared = eas.into_shared();
    let registry = overload_registry();
    let tenants = registry.len();
    let cfg = overload_admission();
    let slots = cfg.slots_per_tick;
    let frontend = TenantFrontend::new(Arc::clone(&shared), registry, cfg);
    let traffic = TrafficModel::new(traffic_seed, overload_traffic());

    let invocations = log.invocations();
    let groups = invocation_groups(log);
    // Ticks with no offers and no drains leave no trace in the log and
    // change no later admission state, so replaying up to the last
    // eventful tick reproduces the stream exactly.
    let ticks = log
        .admissions()
        .iter()
        .map(|r| r.tick + 1)
        .max()
        .unwrap_or(0);

    let mut exec_index = 0usize;
    drive_overload(
        ticks,
        slots,
        tenants,
        &frontend,
        &traffic,
        &recorder,
        |_tenant, _ticket, ctx| {
            let group = groups.get(exec_index).cloned().unwrap_or_default();
            exec_index += 1;
            for ordinal in group {
                let invocation = &invocations[ordinal];
                let mut backend = ReplayBackend::new(invocation);
                let mut handle = shared.handle().with_ctx(ctx);
                let mut recording =
                    RecordingScheduler::new(&mut handle, Arc::clone(&recorder), invocation.label);
                recording.schedule(invocation.kernel, &mut backend);
            }
            0.0
        },
    );

    let replayed = recorder.finish();
    let (recorded_text, replayed_text) = (log.to_text(), replayed.to_text());
    let identical = replayed_text == recorded_text;
    let first_difference = (!identical).then(|| {
        recorded_text
            .lines()
            .zip(replayed_text.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: recorded `{a}` / replayed `{b}`", i + 1))
            .unwrap_or_else(|| {
                format!(
                    "length mismatch: recorded {} lines, replayed {}",
                    recorded_text.lines().count(),
                    replayed_text.lines().count()
                )
            })
    });

    Ok(OverloadReplayOutcome {
        replayed,
        identical,
        first_difference,
        health: shared.health(),
        table: table_to_text(shared.table()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_spec(root: u64) -> OverloadSpec {
        OverloadSpec {
            ticks: 8,
            ..OverloadSpec::new(root)
        }
    }

    #[test]
    fn overload_storm_replays_byte_identically() {
        let recorded = record_overload_storm(&short_spec(7));
        assert_eq!(recorded.log.version, crate::log::FORMAT_VERSION_ADMISSION);
        let outcome = replay_overload_storm(&recorded.log).unwrap();
        assert!(
            outcome.identical,
            "divergence: {}",
            outcome.first_difference.as_deref().unwrap_or("?")
        );
        assert_eq!(outcome.table, recorded.table);
        assert_eq!(outcome.health, recorded.health);
    }

    #[test]
    fn overload_recording_is_deterministic() {
        let a = record_overload_storm(&short_spec(23));
        let b = record_overload_storm(&short_spec(23));
        assert_eq!(a.log.to_text(), b.log.to_text());
        assert_eq!(a.fair_share_deficit, b.fair_share_deficit);
    }

    #[test]
    fn observed_storm_logs_byte_identically_to_unobserved() {
        // The zero-cost invariant, end to end: spans, SLO tracking, and
        // metrics are derived state, so attaching the whole observability
        // plane must not move a single byte of the recording.
        let plain = record_overload_storm(&short_spec(7));
        let observed = record_overload_storm_observed(&short_spec(7));
        assert_eq!(observed.recorded.log.to_text(), plain.log.to_text());
        // ... while the plane actually observed the run.
        let spans = observed.ring.span_snapshot();
        assert!(!spans.is_empty(), "observed storm must capture spans");
        use easched_telemetry::SpanKind;
        for kind in [SpanKind::Admit, SpanKind::QueueWait, SpanKind::Decide] {
            assert!(
                spans.iter().any(|s| s.kind == kind),
                "missing {kind:?} spans"
            );
        }
        // Admission and execution batches share trace ids (causality
        // across the admit → decide boundary).
        let admit_traces: std::collections::BTreeSet<u64> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Admit)
            .map(|s| s.trace)
            .collect();
        assert!(
            spans
                .iter()
                .any(|s| s.kind == SpanKind::Decide && admit_traces.contains(&s.trace)),
            "execution spans must join their admission traces"
        );
    }

    #[test]
    fn slo_breach_exemplar_replays_to_the_breaching_slice() {
        // The canonical 32-tick storm sheds hard enough to breach.
        let observed = record_overload_storm_observed(&OverloadSpec::new(7));
        let events = observed.slo.events();
        assert!(!events.is_empty(), "2x overload must breach an SLO");
        // Breaches propagated to the metrics plane as control events.
        assert!(observed.ring.metrics().slo_breaches.get() > 0);

        let event = events[0];
        assert!(
            event.exemplar_offset > 0,
            "exemplar must point into the log"
        );
        let slice = observed.recorded.log.slice_at(event.exemplar_offset);
        assert!(!slice.events.is_empty());
        assert!(slice.events.len() <= event.exemplar_offset as usize);

        // Replaying the slice reproduces it line for line up to the cut
        // (the replay then runs past it, regenerating the rest of the
        // final tick — that tail is beyond the exemplar's claim).
        let outcome = replay_overload_storm(&slice).unwrap();
        let slice_text = slice.to_text();
        let replay_text = outcome.replayed.to_text();
        let body_lines = slice_text.lines().count() - 1; // drop `end` footer
        for (i, (want, got)) in slice_text
            .lines()
            .zip(replay_text.lines())
            .take(body_lines)
            .enumerate()
        {
            assert_eq!(want, got, "replayed slice diverged at line {}", i + 1);
        }
    }

    #[test]
    fn overload_respects_bounds_fairness_and_efficiency() {
        let r = record_overload_storm(&short_spec(7));
        assert!(r.queues_bounded, "queue bound invariant violated");
        assert!(r.offered > r.executed as u64, "storm must oversubscribe");
        assert!(r.shed > 0, "2x load must shed");
        assert!(
            r.fair_share_deficit <= 0.05,
            "fair-share deficit {} > 5%",
            r.fair_share_deficit
        );
        assert!(
            r.edp_efficiency() >= 0.7,
            "admitted-work EDP efficiency {} < 0.7 (overloaded {}, clean {})",
            r.edp_efficiency(),
            r.mean_admitted_edp,
            r.clean_mean_edp
        );
        // Chaos faults legitimately disturb `fault_free()` here; the
        // overload-protection-is-not-a-fault invariant is pinned by the
        // chaos-free tenancy unit tests. What the storm must show is
        // that the protection layer actually engaged.
        assert!(r.health.requests_shed > 0, "sheds must reach health");
        assert!(r.health.requests_queued > 0, "queues must reach health");
        assert!(
            r.health.brownout_transitions > 0,
            "ladder must move under storm power"
        );
    }
}
